#!/usr/bin/env python3
"""In-network load balancing on a hot object (§4.5 / Fig 10).

Eight clients hammer one popular object.  With NICE's source-prefix rules
the switch spreads their gets across the R replicas; with the rules
disabled every get lands on the primary.  No gateway machine either way.

Run:  python examples/hot_object_load_balancing.py
"""

from repro.core import ClusterConfig, NiceCluster

N_CLIENTS = 8
OPS_PER_CLIENT = 50


def run(load_balancing: bool):
    cluster = NiceCluster(
        ClusterConfig(
            n_storage_nodes=15, n_clients=N_CLIENTS, load_balancing=load_balancing
        )
    )
    cluster.warm_up()
    key = "hot-object"
    done = {}

    def driver(sim):
        yield cluster.clients[0].put(key, "v", 1024)
        from repro.sim import AllOf

        def getter(c):
            total = 0.0
            for _ in range(OPS_PER_CLIENT):
                r = yield c.get(key)
                total += r.latency
            return total / OPS_PER_CLIENT

        procs = [sim.process(getter(c)) for c in cluster.clients]
        got = yield AllOf(sim, procs)
        done["avg_ms"] = sum(got.values()) / len(got) * 1e3

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=120.0)
    replicas = cluster.replica_nodes(key)
    served = {n.name: n.gets_served.value for n in replicas}
    return done["avg_ms"], served


def main() -> None:
    for lb in (True, False):
        avg_ms, served = run(lb)
        label = "with §4.5 LB rules" if lb else "without LB (primary only)"
        print(f"{label}:")
        print(f"  mean get latency: {avg_ms:.3f} ms")
        print(f"  gets served per replica: {served}")
        spread = sum(1 for v in served.values() if v > 0)
        print(f"  replicas serving traffic: {spread}/{len(served)}\n")


if __name__ == "__main__":
    main()
