#!/usr/bin/env python3
"""YCSB-style comparison: NICE vs two NOOB configurations (Fig 12).

Runs YCSB workload F (read-modify-write, zipfian popularity, 1 KB objects)
with several concurrent clients on three systems and prints the throughput
table the paper's Fig 12 plots.

Run:  python examples/ycsb_style_workload.py
"""

import numpy as np

from repro.bench import build_nice, build_noob, run_to_completion
from repro.workloads import WORKLOADS, YcsbRunner

N_CLIENTS = 6
OPS_PER_CLIENT = 150
N_RECORDS = 300


def run(system_name: str, builder) -> dict:
    cluster = builder()
    runner = YcsbRunner(
        WORKLOADS["F"], n_records=N_RECORDS, rng=np.random.default_rng(7)
    )
    proc = runner.run(cluster.clients[:N_CLIENTS], cluster.sim, OPS_PER_CLIENT)
    stats = run_to_completion(cluster, proc)
    return {
        "system": system_name,
        "ops/s": stats["throughput_ops_s"],
        "mean ms": runner.op_latency.mean * 1e3,
        "p99 ms": runner.op_latency.percentile(99) * 1e3,
        "errors": stats["errors"],
    }


def main() -> None:
    systems = [
        ("NICE", lambda: build_nice(n_storage_nodes=15, n_clients=N_CLIENTS)),
        (
            "NOOB primary-only (RAC)",
            lambda: build_noob(
                n_storage_nodes=15, n_clients=N_CLIENTS,
                access="rac", consistency="primary",
            ),
        ),
        (
            "NOOB 2PC (RAG gateway)",
            lambda: build_noob(
                n_storage_nodes=15, n_clients=N_CLIENTS,
                access="rag", consistency="2pc",
            ),
        ),
    ]
    rows = [run(name, builder) for name, builder in systems]
    header = f"{'system':<26} {'ops/s':>10} {'mean ms':>9} {'p99 ms':>9} {'errors':>7}"
    print(f"YCSB F — {N_CLIENTS} clients x {OPS_PER_CLIENT} ops, zipfian, 1 KB\n")
    print(header)
    print("-" * len(header))
    for r in rows:
        print(
            f"{r['system']:<26} {r['ops/s']:>10.0f} {r['mean ms']:>9.3f} "
            f"{r['p99 ms']:>9.3f} {r['errors']:>7d}"
        )
    nice = rows[0]["ops/s"]
    print()
    for r in rows[1:]:
        print(f"NICE is {nice / r['ops/s']:.2f}x faster than {r['system']}")


if __name__ == "__main__":
    main()
