#!/usr/bin/env python3
"""Consistency-aware fault tolerance walkthrough (§3.3, §4.4 / Fig 11).

A secondary replica crashes mid-workload.  Watch the metadata service:

1. detect the failure via missed heartbeats,
2. hide the node from the switch mappings (clients can't reach it),
3. install a handoff node that absorbs new puts and forwards get misses,
4. stage the rejoin: put-visible first, get-visible once consistent.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.core import ClusterConfig, NiceCluster
from repro.workloads import keys_in_partition


def main() -> None:
    cluster = NiceCluster(ClusterConfig(n_storage_nodes=8, n_clients=2))
    cluster.warm_up()
    client = cluster.clients[0]
    sim = cluster.sim

    partition = 0
    keys = keys_in_partition(partition, cluster.config.n_partitions, 8)
    rs = cluster.partition_map.get(partition)
    victim_name = [m for m in rs.members if m != rs.primary][0]
    victim = cluster.nodes[victim_name]
    log = []

    def say(msg):
        log.append(f"[t={sim.now:7.3f}s] {msg}")

    def scenario(sim):
        yield client.put(keys[0], "before-failure", 1000)
        say(f"stored {keys[0]!r} on {[m for m in rs.members]}")

        victim.crash()
        say(f"{victim_name} CRASHED (NIC dark, in-memory state lost)")

        r = yield client.put(keys[1], "during-failure", 1000)
        say(
            f"put during failure: ok={r.ok} after {r.retries} retries "
            f"({r.latency:.2f}s — detection + handoff install)"
        )
        rs_now = cluster.partition_map.get(partition)
        say(f"membership now: absent={sorted(rs_now.absent)} handoffs={rs_now.handoffs}")

        handoff = cluster.nodes[rs_now.handoffs[0]]
        say(
            f"handoff {handoff.name}: {handoff.store.handoff_count()} object(s) "
            "in its separate handoff namespace"
        )

        g = yield client.get(keys[0])
        say(f"get of pre-failure object still works: {g.value!r}")

        recovered = yield victim.restart()
        say(f"{victim_name} rejoined; fetched {recovered} missed object(s) from handoff")
        yield sim.timeout(1.0)
        rs_final = cluster.partition_map.get(partition)
        say(
            f"final membership: members={rs_final.members} "
            f"handoffs={rs_final.handoffs} absent={sorted(rs_final.absent)}"
        )
        obj = victim.store.get(keys[1])
        say(f"{victim_name} now holds the object written while it was down: {obj.value!r}")

    sim.process(scenario(sim))
    sim.run(until=60.0)
    print("\n".join(log))


if __name__ == "__main__":
    main()
