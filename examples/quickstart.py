#!/usr/bin/env python3
"""Quickstart: build a NICE cluster, store and fetch objects.

Builds the paper's deployment (§6) in a simulator — 15 storage nodes, a
metadata service, an OpenFlow switch programmed by the NICE controller —
then performs a few puts and gets through the virtual rings and shows what
the network did (single-hop routing, switch-level multicast replication).

Run:  python examples/quickstart.py
"""

from repro.core import ClusterConfig, NiceCluster


def main() -> None:
    config = ClusterConfig(
        n_storage_nodes=15,   # §6 platform: 15 storage + 1 metadata node
        n_clients=2,
        replication_level=3,  # §6 default
    )
    cluster = NiceCluster(config)
    cluster.warm_up()  # let the controller's flow-mods land

    client = cluster.clients[0]
    results = {}

    def workload(sim):
        # A put is multicast by the switch to the whole replica set and
        # committed with the NICE-2PC protocol (Fig 3).
        put = yield client.put("hello", value="world", size=1024)
        results["put"] = put

        # A get is rewritten in-network to the responsible replica: a
        # single hop, no gateway, no client-side placement metadata.
        get = yield client.get("hello")
        results["get"] = get

        # Overwrites are ordered by the primary's commit timestamp.
        yield client.put("hello", value="world v2", size=1024)
        results["get2"] = yield client.get("hello")

    cluster.sim.process(workload(cluster.sim))
    cluster.sim.run(until=10.0)

    put, get, get2 = results["put"], results["get"], results["get2"]
    print(f"put('hello')  -> ok={put.ok}  latency={put.latency * 1e3:.3f} ms")
    print(f"get('hello')  -> {get.value!r}  latency={get.latency * 1e3:.3f} ms")
    print(f"after update  -> {get2.value!r}")

    replicas = cluster.replica_nodes("hello")
    print(f"\nreplica set: {[n.name for n in replicas]}")
    for node in replicas:
        obj = node.store.get("hello")
        print(f"  {node.name}: value={obj.value!r} stamp={obj.stamp.primary_ts:.6f}")

    print(f"\nswitch rules installed: {len(cluster.switch.table)}")
    print(f"multicast groups:       {len(cluster.switch.groups)}")
    print(f"vring entries (§4.6):   {cluster.controller.rule_count()}")


if __name__ == "__main__":
    main()
