"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package (and no
network), so PEP-660 editable installs are unavailable; this shim lets
``pip install -e .`` take the legacy ``setup.py develop`` path.  All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
