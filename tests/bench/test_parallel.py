"""Tests for the parallel sweep orchestrator (repro.bench.parallel).

The bar (set by PR 1 for the flow cache): the optimization must be
invisible in the results.  ``--jobs N`` output must be bit-identical to
``--jobs 1`` output, and a cache hit must be indistinguishable from a
fresh run.
"""

import concurrent.futures
import json
import os

import pytest

from repro.bench import chaos, figures, parallel
from repro.bench.parallel import (
    Cell,
    canonical,
    derive_seed,
    drain_records,
    provenance,
    run_cells,
    source_fingerprint,
)


# Module-level cell functions: picklable by reference for pool workers.
def square_cell(x, seed):
    return {"rows": [{"x": x, "sq": x * x, "seed": seed}]}


def float_cell(x, seed):
    # An awkward float: exercises exact JSON round-tripping.
    return {"v": x / 3.0 + 0.1, "third": 1.0 / 3.0}


def boom_cell(seed):
    raise ValueError("boom")


def mode_cell(seed):
    # Reports which sim mode the executor installed around the cell body.
    from repro.core import get_default_sim_mode

    return {"mode": get_default_sim_mode(), "seed": seed}


@pytest.fixture(autouse=True)
def _clean_records():
    drain_records()
    yield
    drain_records()


# ------------------------------------------------------------------ cells
def test_cell_canonicalizes_params():
    cell = Cell(square_cell, {"x": (1, 2), "y": {"b": 2, "a": 1}}, seed=7)
    assert cell.params == {"x": [1, 2], "y": {"b": 2, "a": 1}}


def test_cell_cache_key_independent_of_param_order():
    a = Cell(square_cell, {"x": 1, "y": 2}, seed=3)
    b = Cell(square_cell, {"y": 2, "x": 1}, seed=3)
    assert a.cache_key("fp") == b.cache_key("fp")


def test_cell_cache_key_sensitive_to_params_seed_and_source():
    base = Cell(square_cell, {"x": 1}, seed=3)
    assert base.cache_key("fp") != Cell(square_cell, {"x": 2}, seed=3).cache_key("fp")
    assert base.cache_key("fp") != Cell(square_cell, {"x": 1}, seed=4).cache_key("fp")
    assert base.cache_key("fp") != base.cache_key("other-src")
    assert base.cache_key("fp") != Cell(float_cell, {"x": 1}, seed=3).cache_key("fp")


def test_derive_seed_stable_and_distinct():
    assert derive_seed(42, "fig4", "NICE") == derive_seed(42, "fig4", "NICE")
    assert derive_seed(42, "fig4", "NICE") != derive_seed(42, "fig4", "NOOB")
    assert derive_seed(42, "a") != derive_seed(43, "a")
    assert 0 <= derive_seed(0) < 2**63


# -------------------------------------------------------------- run_cells
def test_inline_and_pool_results_bit_identical():
    cells = [Cell(float_cell, {"x": x}, seed=x) for x in range(6)]
    seq = run_cells(cells, jobs=1, cache_dir=None)
    par = run_cells(cells, jobs=2, cache_dir=None)
    assert seq == par
    assert seq[0]["third"] == 1.0 / 3.0  # exact float round-trip


def test_merge_order_is_input_order():
    cells = [Cell(square_cell, {"x": x}, seed=0) for x in (5, 1, 9, 2)]
    results = run_cells(cells, jobs=3, cache_dir=None)
    assert [r["rows"][0]["x"] for r in results] == [5, 1, 9, 2]


def test_jobs1_never_creates_a_pool(monkeypatch):
    def forbidden(*a, **kw):
        raise AssertionError("jobs=1 must not create a process pool")

    monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", forbidden)
    monkeypatch.setattr(parallel, "ProcessPoolExecutor", forbidden)
    cells = [Cell(square_cell, {"x": x}, seed=0) for x in range(3)]
    assert run_cells(cells, jobs=1, cache_dir=None)[2]["rows"][0]["sq"] == 4


def test_worker_exception_propagates():
    with pytest.raises(ValueError, match="boom"):
        run_cells([Cell(boom_cell, {}, seed=0)], jobs=1, cache_dir=None)
    with pytest.raises(ValueError, match="boom"):
        run_cells([Cell(boom_cell, {}, seed=0), Cell(square_cell, {"x": 1}, seed=0)],
                  jobs=2, cache_dir=None)


def test_configure_sets_session_defaults():
    prior = parallel.configure(jobs=4, cache_dir=None)
    try:
        assert parallel._config["jobs"] == 4
    finally:
        parallel.configure(**prior)


# ------------------------------------------------------------------ cache
def test_cache_second_run_hits_and_payload_identical(tmp_path):
    cache = str(tmp_path / "bc")
    cells = [Cell(float_cell, {"x": x}, seed=1) for x in range(3)]
    first = run_cells(cells, jobs=1, cache_dir=cache)
    rec1 = drain_records()
    second = run_cells(cells, jobs=1, cache_dir=cache)
    rec2 = drain_records()
    assert first == second
    assert [r["cache_hit"] for r in rec1] == [False, False, False]
    assert [r["cache_hit"] for r in rec2] == [True, True, True]
    # Cached wall time is the original compute time, for trend tracking.
    assert all(r["wall_s"] >= 0 for r in rec2)


def test_cache_miss_on_param_change(tmp_path):
    cache = str(tmp_path / "bc")
    run_cells([Cell(square_cell, {"x": 1}, seed=1)], jobs=1, cache_dir=cache)
    drain_records()
    run_cells([Cell(square_cell, {"x": 2}, seed=1)], jobs=1, cache_dir=cache)
    assert [r["cache_hit"] for r in drain_records()] == [False]
    run_cells([Cell(square_cell, {"x": 1}, seed=2)], jobs=1, cache_dir=cache)
    assert [r["cache_hit"] for r in drain_records()] == [False]


def test_cache_corrupt_entry_recomputes(tmp_path):
    cache = str(tmp_path / "bc")
    cell = Cell(square_cell, {"x": 3}, seed=1)
    run_cells([cell], jobs=1, cache_dir=cache)
    drain_records()
    key = cell.cache_key(source_fingerprint())
    path = parallel._cache_path(cache, key)
    with open(path, "w") as fh:
        fh.write("{not json")
    (result,) = run_cells([cell], jobs=1, cache_dir=cache)
    assert result["rows"][0]["sq"] == 9
    assert [r["cache_hit"] for r in drain_records()] == [False]


def test_cache_disabled_with_none():
    cells = [Cell(square_cell, {"x": 1}, seed=1)]
    prior = parallel.configure(jobs=1, cache_dir="/nonexistent-should-not-be-used")
    try:
        # Explicit cache_dir=None overrides the session default.
        run_cells(cells, cache_dir=None)
    finally:
        parallel.configure(**prior)
    assert [r["key"] for r in drain_records()] == [None]


def test_source_fingerprint_tracks_edits(tmp_path):
    src = tmp_path / "pkg"
    src.mkdir()
    (src / "a.py").write_text("x = 1\n")
    fp1 = source_fingerprint(str(src))
    parallel.invalidate_fingerprint_memo()
    fp2 = source_fingerprint(str(src))
    assert fp1 == fp2  # deterministic
    (src / "a.py").write_text("x = 2\n")
    parallel.invalidate_fingerprint_memo()
    assert source_fingerprint(str(src)) != fp1
    (src / "a.py").write_text("x = 1\n")
    (src / "b.txt").write_text("not python\n")
    parallel.invalidate_fingerprint_memo()
    assert source_fingerprint(str(src)) == fp1  # only .py files count


def test_canonical_round_trips_tuples_and_numpy():
    import numpy as np

    out = canonical({"t": (1, 2), "f": np.float64(0.1), "i": np.int64(7)})
    assert out == {"t": [1, 2], "f": 0.1, "i": 7}
    assert isinstance(out["f"], float) and isinstance(out["i"], int)


# --------------------------------------------------------------- sim_mode
def test_cell_sim_mode_defaults_from_session_config():
    prior = parallel.configure(jobs=1, cache_dir=None, sim_mode="approx")
    try:
        assert Cell(square_cell, {"x": 1}, seed=1).sim_mode == "approx"
    finally:
        parallel.configure(**prior)
    assert Cell(square_cell, {"x": 1}, seed=1).sim_mode == "exact"


def test_cell_rejects_unknown_sim_mode():
    with pytest.raises(ValueError, match="sim_mode"):
        Cell(square_cell, {"x": 1}, seed=1, sim_mode="fuzzy")
    with pytest.raises(ValueError, match="sim_mode"):
        parallel.configure(sim_mode="fuzzy")


def test_cell_cache_key_sensitive_to_sim_mode():
    exact = Cell(square_cell, {"x": 1}, seed=3, sim_mode="exact")
    approx = Cell(square_cell, {"x": 1}, seed=3, sim_mode="approx")
    assert exact.cache_key("fp") != approx.cache_key("fp")


def test_cell_label_marks_approx_mode():
    assert "@approx" not in Cell(square_cell, {"x": 1}, seed=1).label
    assert Cell(square_cell, {"x": 1}, seed=1, sim_mode="approx").label.endswith(
        "@approx"
    )


def test_execute_installs_and_restores_sim_mode():
    from repro.core import get_default_sim_mode

    assert get_default_sim_mode() == "exact"
    (result,) = run_cells(
        [Cell(mode_cell, {}, seed=0, sim_mode="approx")], jobs=1, cache_dir=None
    )
    assert result["mode"] == "approx"
    assert get_default_sim_mode() == "exact"  # restored after the cell


def test_sim_mode_pool_parity():
    cells = [
        Cell(mode_cell, {}, seed=s, sim_mode=m)
        for s in range(3)
        for m in ("exact", "approx")
    ]
    seq = run_cells(cells, jobs=1, cache_dir=None)
    par = run_cells(cells, jobs=2, cache_dir=None)
    assert seq == par
    assert [r["mode"] for r in seq] == ["exact", "approx"] * 3


def test_sim_mode_cache_entries_do_not_cross_contaminate(tmp_path):
    """Same fn/params/seed in different modes are distinct cache entries:
    each warm rerun must hit its own entry and return its own payload."""
    cache = str(tmp_path / "bc")
    exact = Cell(mode_cell, {}, seed=7, sim_mode="exact")
    approx = Cell(mode_cell, {}, seed=7, sim_mode="approx")
    run_cells([exact], jobs=1, cache_dir=cache)
    drain_records()
    # Approx with identical params/seed: must MISS the exact entry.
    (a1,) = run_cells([approx], jobs=1, cache_dir=cache)
    assert [r["cache_hit"] for r in drain_records()] == [False]
    assert a1["mode"] == "approx"
    # Warm reruns each hit their own entry with the right payload.
    (e2,) = run_cells([exact], jobs=1, cache_dir=cache)
    (a2,) = run_cells([approx], jobs=1, cache_dir=cache)
    assert [r["cache_hit"] for r in drain_records()] == [True, True]
    assert e2["mode"] == "exact" and a2["mode"] == "approx"


def test_approx_scale_cell_jobs_parity(tmp_path):
    """Approx-mode figure cells compose with --jobs N and the cache: the
    lifted restriction from the old 'approx forces --jobs 1' behavior."""
    cfgs = (
        dict(racks=2, hosts_per_rack=3, n_clients=2, budget=256,
             sim_mode="approx"),
        dict(racks=3, hosts_per_rack=2, n_clients=2, budget=256,
             sim_mode="approx"),
    )
    seq = figures.scale_fabric(n_ops=5, configs=cfgs)
    drain_records()
    prior = parallel.configure(jobs=2, cache_dir=str(tmp_path / "bc"))
    try:
        par = figures.scale_fabric(n_ops=5, configs=cfgs)
        rec_cold = drain_records()
        warm = figures.scale_fabric(n_ops=5, configs=cfgs)
        rec_warm = drain_records()
    finally:
        parallel.configure(**prior)
    assert par.rows == seq.rows
    assert warm.rows == seq.rows
    rungs = [row for row in seq.rows if "sim_mode" in row]
    assert len(rungs) == 2
    assert all(row["sim_mode"] == "approx" for row in rungs)
    # 2 rung cells + the ride-along chaos cell, all cached and replayed.
    assert [r["cache_hit"] for r in rec_cold] == [False] * 3
    assert [r["cache_hit"] for r in rec_warm] == [True] * 3


# -------------------------------------------------------------- provenance
def test_provenance_block():
    block = provenance(records=[{"cache_hit": True}, {"cache_hit": False}],
                       ops=20, jobs=2)
    assert block["cells"] == 2 and block["cache_hits"] == 1
    assert block["ops"] == 20 and block["jobs"] == 2
    assert block["python"] and block["platform"] and block["git_sha"]


# ------------------------------------------- figure & chaos sweep parity
def test_figure_sweep_parallel_parity_and_cache(tmp_path):
    """The acceptance bar: --jobs 1 and --jobs N rows are bit-identical,
    and a warm-cache rerun skips every cell yet returns identical rows."""
    kw = dict(n_ops=3, sizes=(4, 1024))
    seq = figures.fig4_request_routing(**kw)
    drain_records()
    prior = parallel.configure(jobs=2, cache_dir=str(tmp_path / "bc"))
    try:
        par = figures.fig4_request_routing(**kw)
        rec_cold = drain_records()
        warm = figures.fig4_request_routing(**kw)
        rec_warm = drain_records()
    finally:
        parallel.configure(**prior)
    assert par.rows == seq.rows
    assert warm.rows == seq.rows
    assert [r["cache_hit"] for r in rec_cold] == [False] * 4
    assert [r["cache_hit"] for r in rec_warm] == [True] * 4


def test_multi_result_sweep_parallel_parity():
    kw = dict(n_ops=3, sizes=(1024,))
    seq = figures.fig5_6_7_replication(**kw)
    prior = parallel.configure(jobs=2, cache_dir=None)
    try:
        par = figures.fig5_6_7_replication(**kw)
    finally:
        parallel.configure(**prior)
    for name in ("fig5", "fig6", "fig7"):
        assert par[name].rows == seq[name].rows


def test_chaos_matrix_parallel_parity():
    kw = dict(seeds=1, baseline_seeds=1, modes=["nice", "rac-weak"],
              schedules=["partition_rejoin"], duration=3.0, out_path=None)
    seq = chaos.run_suite(**kw)
    prior = parallel.configure(jobs=2, cache_dir=None)
    try:
        par = chaos.run_suite(**kw)
    finally:
        parallel.configure(**prior)
    assert seq["cases"] == par["cases"]
    assert seq["summary"] == par["summary"]
    # The weak config must still be caught when its cell runs in a worker.
    assert any(not c["linearizable"] for c in par["cases"])


def test_chaos_cells_cacheable(tmp_path):
    kw = dict(seeds=1, baseline_seeds=1, modes=["nice"],
              schedules=["crash_rejoin"], duration=2.0, out_path=None)
    prior = parallel.configure(jobs=1, cache_dir=str(tmp_path / "bc"))
    try:
        cold = chaos.run_suite(**kw)
        warm = chaos.run_suite(**kw)
    finally:
        parallel.configure(**prior)
    assert cold["cases"] == warm["cases"]
    assert [c["cache_hit"] for c in cold["cells"]] == [False]
    assert [c["cache_hit"] for c in warm["cells"]] == [True]
