"""Tests for the bench harness plumbing and the CLI."""

import json

import pytest

from repro.bench import build_nice, build_noob, run_to_completion
from repro.bench.__main__ import main


def test_build_nice_is_warm():
    cluster = build_nice(n_storage_nodes=4, n_clients=1, replication_level=2)
    assert cluster.sim.now > 0
    assert cluster.controller.rule_count() > 0


def test_build_noob_modes():
    cluster = build_noob(
        n_storage_nodes=4, n_clients=1, replication_level=2, access="rag"
    )
    assert cluster.gateways


def test_run_to_completion_returns_value():
    cluster = build_nice(n_storage_nodes=4, n_clients=1, replication_level=2)

    def p(sim):
        yield sim.timeout(1.0)
        return 42

    assert run_to_completion(cluster, cluster.sim.process(p(cluster.sim))) == 42


def test_run_to_completion_propagates_failure():
    cluster = build_nice(n_storage_nodes=4, n_clients=1, replication_level=2)

    def p(sim):
        yield sim.timeout(0.1)
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        run_to_completion(cluster, cluster.sim.process(p(cluster.sim)))


def test_run_to_completion_detects_drained_sim():
    cluster = build_nice(n_storage_nodes=2, n_clients=1, replication_level=1)

    def stuck(sim):
        yield sim.event()  # never triggered

    # Heartbeat loops keep the sim busy forever, so use a tiny horizon to
    # exercise the horizon error path instead.
    with pytest.raises(RuntimeError, match="horizon"):
        run_to_completion(cluster, cluster.sim.process(stuck(cluster.sim)), horizon_s=5.0)


def test_cli_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["no-such-figure", "--no-cache", "--figures-out", "-"])


def test_cli_rejects_bad_jobs():
    with pytest.raises(SystemExit):
        main(["sec46", "--jobs", "0", "--no-cache", "--figures-out", "-"])


def test_cli_runs_sec46(capsys):
    rc = main(["sec46", "--jobs", "1", "--no-cache", "--figures-out", "-"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "sec46" in out
    assert "65,536" in out or "65536" in out


def test_cli_writes_figures_report_with_provenance(tmp_path, capsys):
    out_path = tmp_path / "BENCH_figures.json"
    rc = main(["sec46", "--jobs", "1", "--no-cache", "--figures-out", str(out_path)])
    assert rc == 0
    report = json.loads(out_path.read_text())
    assert report["suite"] == "figures"
    prov = report["provenance"]
    assert prov["jobs"] == 1 and prov["ops"] == 100
    assert prov["cells"] == 1 and prov["cache_hits"] == 0
    assert prov["python"] and prov["git_sha"]
    (exp,) = report["experiments"]
    assert exp["name"] == "sec46"
    assert exp["rows"] and exp["cells"][0]["cache_hit"] is False


def test_cli_uses_cache_on_second_run(tmp_path, capsys):
    argv = [
        "sec46", "--jobs", "1",
        "--cache-dir", str(tmp_path / "bc"),
        "--figures-out", str(tmp_path / "out.json"),
    ]
    assert main(argv) == 0
    first = json.loads((tmp_path / "out.json").read_text())
    assert main(argv) == 0
    second = json.loads((tmp_path / "out.json").read_text())
    assert first["experiments"][0]["rows"] == second["experiments"][0]["rows"]
    assert second["provenance"]["cache_hits"] == 1


def test_cli_memoizes_shared_fig5_6_7_sweep(tmp_path, monkeypatch, capsys):
    """fig5 fig6 fig7 must run the shared replication sweep exactly once."""
    from repro.bench import figures
    from repro.bench import __main__ as cli

    calls = []
    real = figures.fig5_6_7_replication

    def counting(n_ops=1000, **kw):
        calls.append(n_ops)
        return real(n_ops=3, sizes=(1024,))

    monkeypatch.setattr(cli.figures, "fig5_6_7_replication", counting)
    rc = main(["fig5", "fig6", "fig7", "--ops", "3", "--no-cache",
               "--figures-out", str(tmp_path / "out.json")])
    assert rc == 0
    assert len(calls) == 1
    report = json.loads((tmp_path / "out.json").read_text())
    assert [e["name"] for e in report["experiments"]] == ["fig5", "fig6", "fig7"]
