"""Tests for the bench harness plumbing and the CLI."""

import pytest

from repro.bench import build_nice, build_noob, run_to_completion
from repro.bench.__main__ import main


def test_build_nice_is_warm():
    cluster = build_nice(n_storage_nodes=4, n_clients=1, replication_level=2)
    assert cluster.sim.now > 0
    assert cluster.controller.rule_count() > 0


def test_build_noob_modes():
    cluster = build_noob(
        n_storage_nodes=4, n_clients=1, replication_level=2, access="rag"
    )
    assert cluster.gateways


def test_run_to_completion_returns_value():
    cluster = build_nice(n_storage_nodes=4, n_clients=1, replication_level=2)

    def p(sim):
        yield sim.timeout(1.0)
        return 42

    assert run_to_completion(cluster, cluster.sim.process(p(cluster.sim))) == 42


def test_run_to_completion_propagates_failure():
    cluster = build_nice(n_storage_nodes=4, n_clients=1, replication_level=2)

    def p(sim):
        yield sim.timeout(0.1)
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        run_to_completion(cluster, cluster.sim.process(p(cluster.sim)))


def test_run_to_completion_detects_drained_sim():
    cluster = build_nice(n_storage_nodes=2, n_clients=1, replication_level=1)

    def stuck(sim):
        yield sim.event()  # never triggered

    # Heartbeat loops keep the sim busy forever, so use a tiny horizon to
    # exercise the horizon error path instead.
    with pytest.raises(RuntimeError, match="horizon"):
        run_to_completion(cluster, cluster.sim.process(stuck(cluster.sim)), horizon_s=5.0)


def test_cli_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["no-such-figure"])


def test_cli_runs_sec46(capsys):
    rc = main(["sec46"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "sec46" in out
    assert "65,536" in out or "65536" in out
