"""Tests for the report rendering and the experiment-result container."""

import pytest

from repro.bench import ExperimentResult, format_result, format_table, ratio_summary


def make_result():
    r = ExperimentResult("figX", "demo", ["system", "size", "ms"])
    r.add(system="NICE", size=4, ms=1.0)
    r.add(system="NICE", size=1024, ms=2.0)
    r.add(system="NOOB", size=4, ms=3.0)
    r.add(system="NOOB", size=1024, ms=5.0)
    r.note("a note")
    return r


def test_add_and_column():
    r = make_result()
    assert r.column("ms", where={"system": "NICE"}) == [1.0, 2.0]
    assert r.column("ms") == [1.0, 2.0, 3.0, 5.0]
    assert r.column("ms", where={"system": "NOOB", "size": 4}) == [3.0]


def test_format_table_alignment():
    text = format_table(["a", "bb"], [{"a": 1, "bb": 2.5}, {"a": 1000, "bb": 0.001}])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]
    widths = {len(l) for l in lines}
    assert len(widths) == 1  # all rows padded to equal width


def test_format_table_empty_rows():
    text = format_table(["col"], [])
    assert "col" in text


def test_format_result_includes_notes():
    text = format_result(make_result())
    assert "figX" in text
    assert "a note" in text
    assert "NICE" in text


def test_ratio_summary_per_group():
    r = make_result()
    text = ratio_summary(r, "ms", "NICE", group_cols=["size"])
    assert "NICE vs NOOB" in text
    assert "min 2.50x" in text  # 5/2 at size 1024
    assert "max 3.00x" in text  # 3/1 at size 4


def test_ratio_summary_missing_baseline():
    r = ExperimentResult("x", "d", ["system", "v"])
    r.add(system="OTHER", v=1.0)
    assert ratio_summary(r, "v", "NICE") == ""


def test_formatting_of_value_kinds():
    text = format_table(
        ["v"],
        [{"v": True}, {"v": False}, {"v": 12345.6}, {"v": 0.00012}, {"v": "s"}, {"v": 0.0}],
    )
    assert "yes" in text and "no" in text
    assert "12,346" in text
    assert "0.00012" in text


def test_ascii_chart_renders_series():
    from repro.bench import ascii_chart

    chart = ascii_chart(
        {"a": [(0, 0.0), (1, 1.0), (2, 4.0)], "b": [(0, 4.0), (2, 0.0)]},
        width=40,
        height=8,
        title="demo",
    )
    lines = chart.splitlines()
    assert lines[0] == "demo"
    assert "*" in chart and "o" in chart
    assert "*=a" in chart and "o=b" in chart
    assert "4" in lines[1]  # y max label on the top row


def test_ascii_chart_empty():
    from repro.bench import ascii_chart

    assert "(no data)" in ascii_chart({}, title="t")


def test_ascii_chart_flat_series():
    from repro.bench import ascii_chart

    chart = ascii_chart({"flat": [(0, 5.0), (10, 5.0)]})
    assert "*" in chart
