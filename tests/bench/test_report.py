"""Tests for the report rendering and the experiment-result container."""

import pytest

from repro.bench import ExperimentResult, format_result, format_table, ratio_summary


def make_result():
    r = ExperimentResult("figX", "demo", ["system", "size", "ms"])
    r.add(system="NICE", size=4, ms=1.0)
    r.add(system="NICE", size=1024, ms=2.0)
    r.add(system="NOOB", size=4, ms=3.0)
    r.add(system="NOOB", size=1024, ms=5.0)
    r.note("a note")
    return r


def test_add_and_column():
    r = make_result()
    assert r.column("ms", where={"system": "NICE"}) == [1.0, 2.0]
    assert r.column("ms") == [1.0, 2.0, 3.0, 5.0]
    assert r.column("ms", where={"system": "NOOB", "size": 4}) == [3.0]


def test_format_table_alignment():
    text = format_table(["a", "bb"], [{"a": 1, "bb": 2.5}, {"a": 1000, "bb": 0.001}])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]
    widths = {len(l) for l in lines}
    assert len(widths) == 1  # all rows padded to equal width


def test_format_table_empty_rows():
    text = format_table(["col"], [])
    assert "col" in text


def test_format_result_includes_notes():
    text = format_result(make_result())
    assert "figX" in text
    assert "a note" in text
    assert "NICE" in text


def test_ratio_summary_per_group():
    r = make_result()
    text = ratio_summary(r, "ms", "NICE", group_cols=["size"])
    assert "NICE vs NOOB" in text
    assert "min 2.50x" in text  # 5/2 at size 1024
    assert "max 3.00x" in text  # 3/1 at size 4


def test_ratio_summary_missing_baseline():
    r = ExperimentResult("x", "d", ["system", "v"])
    r.add(system="OTHER", v=1.0)
    assert ratio_summary(r, "v", "NICE") == ""


def test_formatting_of_value_kinds():
    text = format_table(
        ["v"],
        [{"v": True}, {"v": False}, {"v": 12345.6}, {"v": 0.00012}, {"v": "s"}, {"v": 0.0}],
    )
    assert "yes" in text and "no" in text
    assert "12,346" in text
    assert "0.00012" in text


def test_ascii_chart_renders_series():
    from repro.bench import ascii_chart

    chart = ascii_chart(
        {"a": [(0, 0.0), (1, 1.0), (2, 4.0)], "b": [(0, 4.0), (2, 0.0)]},
        width=40,
        height=8,
        title="demo",
    )
    lines = chart.splitlines()
    assert lines[0] == "demo"
    assert "*" in chart and "o" in chart
    assert "*=a" in chart and "o=b" in chart
    assert "4" in lines[1]  # y max label on the top row


def test_ascii_chart_empty():
    from repro.bench import ascii_chart

    assert "(no data)" in ascii_chart({}, title="t")


def test_ascii_chart_flat_series():
    from repro.bench import ascii_chart

    chart = ascii_chart({"flat": [(0, 5.0), (10, 5.0)]})
    assert "*" in chart


def test_ascii_chart_series_with_empty_point_list():
    from repro.bench import ascii_chart

    # A labeled series with no points must not crash the span math.
    assert "(no data)" in ascii_chart({"a": []}, title="t")
    chart = ascii_chart({"a": [], "b": [(0, 1.0), (1, 2.0)]})
    assert "o" in chart  # 'b' keeps its own (second) marker
    assert "o=b" in chart


def test_ascii_chart_single_point_series():
    from repro.bench import ascii_chart

    chart = ascii_chart({"one": [(3.0, 7.0)]}, width=20, height=6)
    lines = chart.splitlines()
    grid = "\n".join(lines[:-3])  # rows above the axis/x-label/legend lines
    # Degenerate x and y spans: exactly one marker, and the axis labels
    # still show the point's coordinates instead of dividing by zero.
    assert grid.count("*") == 1
    assert "7" in lines[0]  # y-max label
    assert "3" in lines[-2]  # x-axis label line


def test_ascii_chart_all_equal_values():
    from repro.bench import ascii_chart

    chart = ascii_chart({"a": [(0, 2.5), (1, 2.5), (2, 2.5)]}, width=30, height=5)
    # Zero y-span: every point renders on one row, no ZeroDivisionError.
    grid_lines = chart.splitlines()[:-3]  # exclude axis/x-label/legend
    marked = [l for l in grid_lines if "*" in l]
    assert len(marked) == 1
    assert marked[0].count("*") == 3


def test_column_where_filter_edge_cases():
    from repro.bench import ExperimentResult

    r = ExperimentResult("x", "d", ["system", "v"])
    assert r.column("v") == []  # no rows at all
    assert r.column("v", where={"system": "NICE"}) == []
    r.add(system="NICE", v=1.0)
    r.add(system="NOOB", v=2.0)
    # A where-key absent from the rows matches nothing.
    assert r.column("v", where={"missing_col": 1}) == []
    # A missing value column yields None per matching row.
    assert r.column("missing_col", where={"system": "NICE"}) == [None]
    # Multi-key filters AND together.
    assert r.column("v", where={"system": "NOOB", "v": 2.0}) == [2.0]
    assert r.column("v", where={"system": "NOOB", "v": 1.0}) == []
