"""Unit + property tests for the FlowTable exact-match cache.

The cache is a pure memo: it must never change which rule a lookup
returns, only skip the linear scan.  These tests pin the hit/miss
accounting, every invalidation edge (flow-mod, remove, remove-by-cookie,
idle expiry), the escape hatch, and — via hypothesis — agreement between
the cached lookup and the wildcard scan on randomized rule sets.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import (
    Drop,
    FlowTable,
    IPv4Address,
    IPv4Network,
    Match,
    Output,
    Packet,
    Proto,
    Rule,
)
from repro.net.flowtable import flow_cache_enabled_default


def pkt(src="10.0.0.1", dst="10.10.1.5", proto=Proto.UDP, dport=4000, dst_mac=None):
    return Packet(
        src_ip=IPv4Address(src),
        dst_ip=IPv4Address(dst),
        proto=proto,
        dport=dport,
        payload_bytes=10,
        dst_mac=dst_mac,
    )


def cached_table():
    return FlowTable(cache_enabled=True)


# ------------------------------------------------------------ hit/miss path
def test_first_lookup_misses_second_hits():
    table = cached_table()
    rule = table.add(Rule(Match(ip_dst="10.10.1.5"), [Output(1)]))
    assert table.lookup(pkt()) is rule
    assert (table.cache_hits, table.cache_misses) == (0, 1)
    assert table.lookup(pkt()) is rule
    assert (table.cache_hits, table.cache_misses) == (1, 1)


def test_distinct_flows_get_distinct_entries():
    table = cached_table()
    r1 = table.add(Rule(Match(ip_dst="10.10.1.5"), [Output(1)]))
    r2 = table.add(Rule(Match(ip_dst="10.10.1.6"), [Output(2)]))
    assert table.lookup(pkt(dst="10.10.1.5")) is r1
    assert table.lookup(pkt(dst="10.10.1.6")) is r2
    assert table.cache_misses == 2
    assert table.lookup(pkt(dst="10.10.1.5")) is r1
    assert table.lookup(pkt(dst="10.10.1.6")) is r2
    assert table.cache_hits == 2


def test_negative_result_is_cached():
    table = cached_table()
    table.add(Rule(Match(ip_dst="1.2.3.4"), [Output(1)]))
    assert table.lookup(pkt()) is None
    assert table.lookup(pkt()) is None
    assert (table.cache_hits, table.cache_misses) == (1, 1)


def test_in_port_is_part_of_the_key():
    table = cached_table()
    rule = table.add(Rule(Match(in_port=3), [Output(1)]))
    assert table.lookup(pkt(), in_port=3) is rule
    assert table.lookup(pkt(), in_port=4) is None
    assert table.cache_misses == 2  # two distinct keys, no false sharing


# ------------------------------------------------------------- invalidation
def test_flow_mod_add_invalidates():
    table = cached_table()
    low = table.add(Rule(Match(), [Drop()], priority=1))
    assert table.lookup(pkt()) is low
    high = table.add(Rule(Match(ip_dst="10.10.1.5"), [Output(1)], priority=10))
    # A stale cache would still return `low` here.
    assert table.lookup(pkt()) is high


def test_remove_invalidates():
    table = cached_table()
    rule = table.add(Rule(Match(ip_dst="10.10.1.5"), [Output(1)]))
    fallback = table.add(Rule(Match(), [Drop()], priority=1))
    assert table.lookup(pkt()) is rule
    table.remove(rule)
    assert table.lookup(pkt()) is fallback


def test_remove_by_cookie_invalidates():
    table = cached_table()
    rule = table.add(Rule(Match(ip_dst="10.10.1.5"), [Output(1)], cookie="uni:x"))
    assert table.lookup(pkt()) is rule
    assert table.remove_by_cookie("uni:x") == 1
    assert table.lookup(pkt()) is None


def test_remove_by_absent_cookie_keeps_cache_warm():
    table = cached_table()
    table.add(Rule(Match(ip_dst="10.10.1.5"), [Output(1)], cookie="uni:x"))
    table.lookup(pkt())
    assert table.remove_by_cookie("no-such-cookie") == 0
    table.lookup(pkt())
    assert table.cache_hits == 1


def test_idle_expiry_invalidates():
    table = cached_table()
    rule = table.add(Rule(Match(ip_dst="10.10.1.5"), [Output(1)], idle_timeout=5.0))
    assert table.lookup(pkt()) is rule
    rule.last_used = 0.0
    assert table.expire_idle(now=10.0) == 1
    assert table.lookup(pkt()) is None


def test_expire_with_no_evictions_keeps_cache_warm():
    table = cached_table()
    table.add(Rule(Match(ip_dst="10.10.1.5"), [Output(1)]))  # no timeout
    table.lookup(pkt())
    assert table.expire_idle(now=1e9) == 0
    table.lookup(pkt())
    assert table.cache_hits == 1


def test_cache_limit_resets_memo():
    table = cached_table()
    table.CACHE_LIMIT = 4
    rule = table.add(Rule(Match(), [Drop()]))
    for i in range(10):
        assert table.lookup(pkt(dport=4000 + i)) is rule
    assert table.cache_misses == 10  # every flow distinct; memo wiped twice
    assert len(table._cache) <= 5


# ------------------------------------------------------------- escape hatch
def test_cache_disabled_never_counts():
    table = FlowTable(cache_enabled=False)
    rule = table.add(Rule(Match(), [Drop()]))
    for _ in range(3):
        assert table.lookup(pkt()) is rule
    assert (table.cache_hits, table.cache_misses) == (0, 0)


def test_env_escape_hatch(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_FLOW_CACHE", "1")
    assert flow_cache_enabled_default() is False
    assert FlowTable().cache_enabled is False
    monkeypatch.setenv("REPRO_DISABLE_FLOW_CACHE", "0")
    assert FlowTable().cache_enabled is True
    monkeypatch.delenv("REPRO_DISABLE_FLOW_CACHE")
    assert FlowTable().cache_enabled is True


# ------------------------------------------------------- property: memo-only
_PREFIXES = [
    None,
    "10.10.0.0/16",
    "10.10.1.0/24",
    "10.10.1.5/32",
    "10.20.0.0/24",
]

_rule_specs = st.tuples(
    st.integers(min_value=1, max_value=5),        # priority
    st.sampled_from(_PREFIXES),                   # ip_dst
    st.sampled_from([None, Proto.UDP, Proto.TCP]),
    st.sampled_from([None, 4000, 4001]),          # dport
    st.sampled_from(["a", "b", "c"]),             # cookie
)

_packet_specs = st.tuples(
    st.sampled_from(["10.10.1.5", "10.10.1.7", "10.10.2.1", "10.20.0.9", "1.1.1.1"]),
    st.sampled_from([Proto.UDP, Proto.TCP]),
    st.sampled_from([4000, 4001]),
    st.sampled_from([None, 1, 2]),                # in_port
)


@given(
    rules=st.lists(_rule_specs, min_size=0, max_size=12),
    lookups=st.lists(_packet_specs, min_size=1, max_size=30),
    evict_cookie=st.sampled_from([None, "a", "b"]),
)
@settings(max_examples=200, deadline=None)
def test_cached_lookup_always_agrees_with_scan(rules, lookups, evict_cookie):
    """The cache must be invisible: lookup() == the wildcard linear scan,
    before and after a mid-stream flow-mod."""
    table = FlowTable(cache_enabled=True)
    for prio, dst, proto, dport, cookie in rules:
        table.add(
            Rule(
                Match(ip_dst=IPv4Network(dst) if dst else None, proto=proto, dport=dport),
                [Drop()],
                priority=prio,
                cookie=cookie,
            )
        )
    half = len(lookups) // 2
    for i, (dst, proto, dport, in_port) in enumerate(lookups):
        if i == half and evict_cookie is not None:
            table.remove_by_cookie(evict_cookie)
        p = pkt(dst=dst, proto=proto, dport=dport)
        assert table.lookup(p, in_port) is table._scan(p, in_port)
