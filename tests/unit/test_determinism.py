"""Determinism regression: the flow cache must not change any result.

Runs a small fig5-style put leg twice with the same seed — once with the
exact-match cache enabled, once with the ``REPRO_DISABLE_FLOW_CACHE=1``
escape hatch — and asserts bit-identical result rows and final simulated
time.  This is the contract that lets the cache ship at all: it is a memo
over the wildcard scan, not a semantic change.
"""

from repro.bench.harness import build_nice, run_to_completion
from repro.workloads import closed_loop_puts


def _fig5_leg(n_ops=8, sizes=(4, 1 << 14)):
    """A miniature fig5 put leg; returns (result rows, final sim time)."""
    cluster = build_nice(n_storage_nodes=15, n_clients=1)
    client = cluster.clients[0]
    rows = []

    def driver(sim):
        for size in sizes:
            key = f"repl-{size}"
            seed = yield client.put(key, "x", size)
            assert seed.ok
            tally = yield closed_loop_puts(client, sim, n_ops, size, keys=[key])
            rows.append(
                {
                    "size_bytes": size,
                    "put_ms": tally.mean * 1e3,
                    "stdev_ms": tally.stdev * 1e3,
                    "count": tally.count,
                }
            )

    run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
    stats = {
        "cache_hits": cluster.switch.table.cache_hits,
        "cache_misses": cluster.switch.table.cache_misses,
        "cache_enabled": cluster.switch.table.cache_enabled,
    }
    return rows, cluster.sim.now, stats


def test_fig5_leg_identical_with_cache_on_and_off(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_FLOW_CACHE", "0")
    rows_on, now_on, stats_on = _fig5_leg()
    monkeypatch.setenv("REPRO_DISABLE_FLOW_CACHE", "1")
    rows_off, now_off, stats_off = _fig5_leg()

    # The runs really did take the two different paths.
    assert stats_on["cache_enabled"] and not stats_off["cache_enabled"]
    assert stats_on["cache_hits"] > 0
    assert stats_off["cache_hits"] == stats_off["cache_misses"] == 0

    # Bit-identical outcomes: every row field and the final clock.
    assert rows_on == rows_off
    assert now_on == now_off


def test_same_seed_same_results_with_cache(monkeypatch):
    """Two identical cache-enabled runs agree with themselves (sanity)."""
    monkeypatch.setenv("REPRO_DISABLE_FLOW_CACHE", "0")
    a = _fig5_leg(n_ops=4, sizes=(1 << 10,))
    b = _fig5_leg(n_ops=4, sizes=(1 << 10,))
    assert a[0] == b[0]
    assert a[1] == b[1]


# -- chaos-engine determinism (the reproducibility contract of repro.chaos) ---------


def _chaos_run(seed, schedule_seed):
    """One chaos case: NICE cluster + random schedule + recorded history.

    Returns (chaos event log, canonical op-history tuples, final sim time).
    """
    from repro.bench.chaos import rebuild_for_key, run_case  # noqa: F401
    from repro.bench.harness import build_nice
    from repro.chaos import ChaosEngine, FaultSchedule
    from repro.check import HistoryRecorder
    from repro.workloads.synthetic import keys_in_partition

    import numpy as np

    cluster = build_nice(n_storage_nodes=6, n_clients=2, seed=seed)
    keys = keys_in_partition(0, cluster.config.n_partitions, 2)
    schedule = FaultSchedule.random(schedule_seed, keys[0], horizon=4.0, n_episodes=2)
    recorder = HistoryRecorder()
    sim = cluster.sim

    def loop(client, stream):
        seq = 0
        while sim.now < 5.0:
            yield sim.timeout(stream.exponential(0.05))
            seq += 1
            if stream.random() < 0.5:
                yield client.put(keys[seq % 2], f"{client.host.name}:{seq}", 500, max_retries=1)
            else:
                yield client.get(keys[seq % 2], max_retries=1)

    for idx, client in enumerate(cluster.clients):
        recorder.attach(client)
        sim.process(loop(client, np.random.default_rng([seed, idx])))
    engine = ChaosEngine(cluster, schedule, seed=seed)
    engine.start()
    sim.run(until=5.0)
    return engine.events, recorder.as_tuples(), sim.now


def test_chaos_same_seed_bit_identical():
    """Same (seed, schedule) => identical event log AND identical history."""
    events_a, history_a, now_a = _chaos_run(seed=3, schedule_seed=11)
    events_b, history_b, now_b = _chaos_run(seed=3, schedule_seed=11)
    assert events_a == events_b
    assert history_a == history_b
    assert now_a == now_b
    assert events_a, "schedule should have fired at least one fault"
    assert len(history_a) > 10


def test_chaos_different_schedule_seed_diverges():
    """A different schedule seed must actually change the fault sequence."""
    events_a, _, _ = _chaos_run(seed=3, schedule_seed=11)
    events_b, _, _ = _chaos_run(seed=3, schedule_seed=12)
    assert events_a != events_b


def test_random_schedule_is_deterministic():
    from repro.chaos import FaultSchedule

    a = FaultSchedule.random(99, "k0")
    b = FaultSchedule.random(99, "k0")
    assert a.events == b.events
    assert FaultSchedule.random(100, "k0").events != a.events
