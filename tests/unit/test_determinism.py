"""Determinism regression: the flow cache must not change any result.

Runs a small fig5-style put leg twice with the same seed — once with the
exact-match cache enabled, once with the ``REPRO_DISABLE_FLOW_CACHE=1``
escape hatch — and asserts bit-identical result rows and final simulated
time.  This is the contract that lets the cache ship at all: it is a memo
over the wildcard scan, not a semantic change.
"""

from repro.bench.harness import build_nice, run_to_completion
from repro.workloads import closed_loop_puts


def _fig5_leg(n_ops=8, sizes=(4, 1 << 14)):
    """A miniature fig5 put leg; returns (result rows, final sim time)."""
    cluster = build_nice(n_storage_nodes=15, n_clients=1)
    client = cluster.clients[0]
    rows = []

    def driver(sim):
        for size in sizes:
            key = f"repl-{size}"
            seed = yield client.put(key, "x", size)
            assert seed.ok
            tally = yield closed_loop_puts(client, sim, n_ops, size, keys=[key])
            rows.append(
                {
                    "size_bytes": size,
                    "put_ms": tally.mean * 1e3,
                    "stdev_ms": tally.stdev * 1e3,
                    "count": tally.count,
                }
            )

    run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
    stats = {
        "cache_hits": cluster.switch.table.cache_hits,
        "cache_misses": cluster.switch.table.cache_misses,
        "cache_enabled": cluster.switch.table.cache_enabled,
    }
    return rows, cluster.sim.now, stats


def test_fig5_leg_identical_with_cache_on_and_off(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_FLOW_CACHE", "0")
    rows_on, now_on, stats_on = _fig5_leg()
    monkeypatch.setenv("REPRO_DISABLE_FLOW_CACHE", "1")
    rows_off, now_off, stats_off = _fig5_leg()

    # The runs really did take the two different paths.
    assert stats_on["cache_enabled"] and not stats_off["cache_enabled"]
    assert stats_on["cache_hits"] > 0
    assert stats_off["cache_hits"] == stats_off["cache_misses"] == 0

    # Bit-identical outcomes: every row field and the final clock.
    assert rows_on == rows_off
    assert now_on == now_off


def test_same_seed_same_results_with_cache(monkeypatch):
    """Two identical cache-enabled runs agree with themselves (sanity)."""
    monkeypatch.setenv("REPRO_DISABLE_FLOW_CACHE", "0")
    a = _fig5_leg(n_ops=4, sizes=(1 << 10,))
    b = _fig5_leg(n_ops=4, sizes=(1 << 10,))
    assert a[0] == b[0]
    assert a[1] == b[1]
