"""Determinism regression: performance machinery must not change results.

Each knob that exists purely for speed — the switch's exact-match flow
cache, the vectorized multicast fan-out batching, the approx simulation
mode's *exact* setting — runs a small fig5-style put leg twice with the
same seed, once per path, and asserts bit-identical result rows and final
simulated time.  This is the contract that lets each optimization ship at
all: a memo or a batched schedule, never a semantic change.
"""

from repro.bench.harness import build_nice, run_to_completion
from repro.core import set_default_sim_mode
from repro.workloads import closed_loop_puts


def _fig5_leg(n_ops=8, sizes=(4, 1 << 14)):
    """A miniature fig5 put leg; returns (result rows, final sim time)."""
    cluster = build_nice(n_storage_nodes=15, n_clients=1)
    client = cluster.clients[0]
    rows = []

    def driver(sim):
        for size in sizes:
            key = f"repl-{size}"
            seed = yield client.put(key, "x", size)
            assert seed.ok
            tally = yield closed_loop_puts(client, sim, n_ops, size, keys=[key])
            rows.append(
                {
                    "size_bytes": size,
                    "put_ms": tally.mean * 1e3,
                    "stdev_ms": tally.stdev * 1e3,
                    "count": tally.count,
                }
            )

    run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
    stats = {
        "cache_hits": cluster.switch.table.cache_hits,
        "cache_misses": cluster.switch.table.cache_misses,
        "cache_enabled": cluster.switch.table.cache_enabled,
    }
    return rows, cluster.sim.now, stats


def test_fig5_leg_identical_with_cache_on_and_off(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_FLOW_CACHE", "0")
    rows_on, now_on, stats_on = _fig5_leg()
    monkeypatch.setenv("REPRO_DISABLE_FLOW_CACHE", "1")
    rows_off, now_off, stats_off = _fig5_leg()

    # The runs really did take the two different paths.
    assert stats_on["cache_enabled"] and not stats_off["cache_enabled"]
    assert stats_on["cache_hits"] > 0
    assert stats_off["cache_hits"] == stats_off["cache_misses"] == 0

    # Bit-identical outcomes: every row field and the final clock.
    assert rows_on == rows_off
    assert now_on == now_off


def test_same_seed_same_results_with_cache(monkeypatch):
    """Two identical cache-enabled runs agree with themselves (sanity)."""
    monkeypatch.setenv("REPRO_DISABLE_FLOW_CACHE", "0")
    a = _fig5_leg(n_ops=4, sizes=(1 << 10,))
    b = _fig5_leg(n_ops=4, sizes=(1 << 10,))
    assert a[0] == b[0]
    assert a[1] == b[1]


# -- multicast fan-out batching (DESIGN.md §5g) -------------------------------------


def test_fig5_leg_identical_with_and_without_tx_batching(monkeypatch):
    """Vectorized group fan-out vs per-receiver transmit chains.

    ``REPRO_NO_TX_BATCH=1`` makes every switch built afterwards schedule a
    full per-receiver grant/serialize/finish/deliver chain per multicast
    leg; the default shares one chain across the R legs.  Both paths must
    draw per-receiver loss/jitter in the same RNG order, so every result
    bit must agree.
    """
    monkeypatch.delenv("REPRO_NO_TX_BATCH", raising=False)
    rows_batched, now_batched, _ = _fig5_leg()
    monkeypatch.setenv("REPRO_NO_TX_BATCH", "1")
    rows_unbatched, now_unbatched, _ = _fig5_leg()
    assert rows_batched == rows_unbatched
    assert now_batched == now_unbatched


# -- sim_mode (flow approximation, DESIGN.md §5g) -----------------------------------


def _sim_mode_leg(mode, n_ops=8, sizes=(4, 1 << 14)):
    prior = set_default_sim_mode(mode)
    try:
        return _fig5_leg(n_ops=n_ops, sizes=sizes)
    finally:
        set_default_sim_mode(prior)


def test_sim_mode_approx_is_deterministic():
    """Same seed, same approx run — approximate but reproducible."""
    rows_a, now_a, _ = _sim_mode_leg("approx")
    rows_b, now_b, _ = _sim_mode_leg("approx")
    assert rows_a == rows_b
    assert now_a == now_b


def test_sim_mode_exact_untouched_by_approx_plumbing():
    """Explicitly-requested exact mode equals the pre-knob default path.

    Building a cluster with ``sim_mode="exact"`` (the default) must give
    results bit-identical to a run where the approx default was toggled
    on and back off around it — the process-global default must leak into
    nothing but configs built while it is set.
    """
    rows_a, now_a, _ = _fig5_leg()
    set_default_sim_mode("approx")
    set_default_sim_mode("exact")
    rows_b, now_b, _ = _fig5_leg()
    assert rows_a == rows_b
    assert now_a == now_b


def test_sim_mode_approx_tracks_exact_closely():
    """Approx results are not required to be identical, but must stay
    within the ±5% envelope the mode advertises (EXPERIMENTS.md)."""
    rows_exact, now_exact, _ = _sim_mode_leg("exact")
    rows_approx, now_approx, _ = _sim_mode_leg("approx")
    assert abs(now_approx - now_exact) <= 0.05 * now_exact
    for re_, ra in zip(rows_exact, rows_approx):
        assert ra["count"] == re_["count"]
        assert abs(ra["put_ms"] - re_["put_ms"]) <= 0.05 * re_["put_ms"]


# -- chaos-engine determinism (the reproducibility contract of repro.chaos) ---------


def _chaos_run(seed, schedule_seed):
    """One chaos case: NICE cluster + random schedule + recorded history.

    Returns (chaos event log, canonical op-history tuples, final sim time).
    """
    from repro.bench.chaos import rebuild_for_key, run_case  # noqa: F401
    from repro.bench.harness import build_nice
    from repro.chaos import ChaosEngine, FaultSchedule
    from repro.check import HistoryRecorder
    from repro.workloads.synthetic import keys_in_partition

    import numpy as np

    cluster = build_nice(n_storage_nodes=6, n_clients=2, seed=seed)
    keys = keys_in_partition(0, cluster.config.n_partitions, 2)
    schedule = FaultSchedule.random(schedule_seed, keys[0], horizon=4.0, n_episodes=2)
    recorder = HistoryRecorder()
    sim = cluster.sim

    def loop(client, stream):
        seq = 0
        while sim.now < 5.0:
            yield sim.timeout(stream.exponential(0.05))
            seq += 1
            if stream.random() < 0.5:
                yield client.put(keys[seq % 2], f"{client.host.name}:{seq}", 500, max_retries=1)
            else:
                yield client.get(keys[seq % 2], max_retries=1)

    for idx, client in enumerate(cluster.clients):
        recorder.attach(client)
        sim.process(loop(client, np.random.default_rng([seed, idx])))
    engine = ChaosEngine(cluster, schedule, seed=seed)
    engine.start()
    sim.run(until=5.0)
    return engine.events, recorder.as_tuples(), sim.now


def test_chaos_same_seed_bit_identical():
    """Same (seed, schedule) => identical event log AND identical history."""
    events_a, history_a, now_a = _chaos_run(seed=3, schedule_seed=11)
    events_b, history_b, now_b = _chaos_run(seed=3, schedule_seed=11)
    assert events_a == events_b
    assert history_a == history_b
    assert now_a == now_b
    assert events_a, "schedule should have fired at least one fault"
    assert len(history_a) > 10


def test_chaos_different_schedule_seed_diverges():
    """A different schedule seed must actually change the fault sequence."""
    events_a, _, _ = _chaos_run(seed=3, schedule_seed=11)
    events_b, _, _ = _chaos_run(seed=3, schedule_seed=12)
    assert events_a != events_b


def test_random_schedule_is_deterministic():
    from repro.chaos import FaultSchedule

    a = FaultSchedule.random(99, "k0")
    b = FaultSchedule.random(99, "k0")
    assert a.events == b.events
    assert FaultSchedule.random(100, "k0").events != a.events


# -- leaf-spine fabric (DESIGN.md §5h) ----------------------------------------------


_SCALE_KW = dict(
    n_ops=4,
    configs=[dict(racks=2, hosts_per_rack=3, n_clients=2, budget=512)],
    chaos_duration=4.0,
)


def test_scale_cells_identical_across_jobs_and_warm_cache(tmp_path):
    """Multi-switch cells honor the same contract as the figure suite:
    --jobs 1, --jobs 2 and a warm-cache rerun are bit-identical."""
    from repro.bench import figures, parallel

    parallel.drain_records()
    seq = figures.scale_fabric(**_SCALE_KW)
    parallel.drain_records()
    prior = parallel.configure(jobs=2, cache_dir=str(tmp_path / "bc"))
    try:
        par = figures.scale_fabric(**_SCALE_KW)
        parallel.drain_records()
        warm = figures.scale_fabric(**_SCALE_KW)
        rec_warm = parallel.drain_records()
    finally:
        parallel.configure(**prior)
    assert par.rows == seq.rows
    assert warm.rows == seq.rows
    assert rec_warm and all(r["cache_hit"] for r in rec_warm)


def test_fabric_leg_repeatable():
    """Same seed, same fabric shape => bit-identical rows and clock."""

    def leg():
        cluster = build_nice(n_storage_nodes=6, n_clients=1, n_racks=2)
        client = cluster.clients[0]

        def driver(sim):
            tally = yield closed_loop_puts(client, sim, 6, 1024, keys=["fab0", "fab1"])
            return (tally.count, tally.mean, tally.stdev)

        stats = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
        return stats, cluster.sim.now

    assert leg() == leg()


def test_single_switch_default_untouched_by_fabric_knobs():
    """The pre-fabric seed path: explicit fabric defaults (n_racks=1 etc.)
    must build the identical single-switch cluster and produce bit-identical
    results — the 81-cell baseline depends on it."""
    rows_default, now_default, _ = _fig5_leg(n_ops=4, sizes=(1024,))

    explicit = build_nice(
        n_storage_nodes=15, n_clients=1,
        n_racks=1, n_spines=2, switch_rule_budget=0, ecmp_seed=0,
    )
    assert explicit.fabric is None
    assert explicit.switch.name == "sw0"
    client = explicit.clients[0]
    rows = []

    def driver(sim):
        for size in (1024,):
            key = f"repl-{size}"
            seed = yield client.put(key, "x", size)
            assert seed.ok
            tally = yield closed_loop_puts(client, sim, 4, size, keys=[key])
            rows.append(
                {
                    "size_bytes": size,
                    "put_ms": tally.mean * 1e3,
                    "stdev_ms": tally.stdev * 1e3,
                    "count": tally.count,
                }
            )

    run_to_completion(explicit, explicit.sim.process(driver(explicit.sim)))
    assert rows == rows_default
    assert explicit.sim.now == now_default
