"""Tests for the NOOB baseline: access modes, consistency modes,
replication fan-out costs."""

import pytest

from repro.net import wire_size
from repro.noob import NoobCluster, NoobConfig


def make_cluster(**kw):
    defaults = dict(n_storage_nodes=5, n_clients=2, replication_level=3)
    defaults.update(kw)
    cluster = NoobCluster(NoobConfig(**defaults))
    cluster.warm_up()
    return cluster


def run_driver(cluster, gen, until=30.0):
    out = {}
    cluster.sim.process(gen(cluster.sim, out))
    cluster.sim.run(until=until)
    return out


def put_get(client, key="k", value="v", size=1024):
    def gen(sim, out):
        out["put"] = yield client.put(key, value, size)
        out["get"] = yield client.get(key)

    return gen


@pytest.mark.parametrize("consistency", ["primary", "2pc", "quorum", "chain"])
def test_put_replicates_everywhere(consistency):
    cluster = make_cluster(consistency=consistency)
    out = run_driver(cluster, put_get(cluster.clients[0]))
    assert out["put"].ok and out["get"].ok
    cluster.sim.run(until=cluster.sim.now + 5.0)  # quorum stragglers
    for node in cluster.replica_nodes("k"):
        obj = node.store.get("k")
        assert obj is not None and obj.value == "v"


def test_config_validation():
    with pytest.raises(ValueError):
        NoobConfig(access="bogus")
    with pytest.raises(ValueError):
        NoobConfig(consistency="bogus")
    with pytest.raises(ValueError):
        NoobConfig(consistency="quorum", quorum_k=9, replication_level=3, n_storage_nodes=5)
    with pytest.raises(ValueError):
        NoobConfig(access="rag", n_gateways=0)
    with pytest.raises(ValueError):
        NoobConfig(get_lb="bogus")


def test_2pc_defaults_to_round_robin_gets():
    assert NoobConfig(consistency="2pc").get_lb == "round_robin"
    assert NoobConfig(consistency="primary").get_lb == "primary"


def test_rog_requests_pass_through_gateway_and_random_node():
    cluster = make_cluster(access="rog")
    out = run_driver(cluster, put_get(cluster.clients[0]))
    assert out["put"].ok
    assert cluster.gateways[0].requests_forwarded.value >= 2
    # With 5 nodes the random pick usually misses the primary: over several
    # ops at least one forward must happen.
    def more(sim, o):
        for i in range(10):
            r = yield cluster.clients[0].put(f"key{i}", "v", 100)
            assert r.ok

    run_driver(cluster, more)
    assert sum(n.forwards.value for n in cluster.nodes.values()) >= 1


def test_rag_forwards_to_primary_without_extra_node_hop():
    cluster = make_cluster(access="rag")
    def gen(sim, o):
        for i in range(5):
            r = yield cluster.clients[0].put(f"key{i}", "v", 100)
            assert r.ok

    run_driver(cluster, gen)
    assert cluster.gateways[0].requests_forwarded.value == 5
    assert sum(n.forwards.value for n in cluster.nodes.values()) == 0


def test_access_latency_ordering_small_objects():
    """Fig 4's mechanism: RAC < RAG < ROG for small gets."""
    lat = {}
    for access in ["rac", "rag", "rog"]:
        cluster = make_cluster(access=access, seed=7)
        client = cluster.clients[0]

        def gen(sim, out):
            yield client.put("probe", "v", 100)
            total = 0.0
            for _ in range(20):
                r = yield client.get("probe")
                assert r.ok
                total += r.latency
            out["avg"] = total / 20

        out = run_driver(cluster, gen, until=60.0)
        lat[access] = out["avg"]
    assert lat["rac"] < lat["rag"] < lat["rog"]


def test_primary_fanout_generates_r_copies_on_primary_uplink():
    """The NOOB inefficiency NICE removes: the primary sends R−1 copies."""
    cluster = make_cluster(consistency="primary")
    client = cluster.clients[0]
    size = 100_000

    def gen(sim, out):
        yield client.put("fat", "v", size)

    run_driver(cluster, gen)
    cluster.sim.run(until=cluster.sim.now + 2.0)
    primary = cluster.primary_of("fat")
    uplink = cluster.network.link_between(cluster.switch, primary.host)
    to_switch = uplink.channel_from(
        uplink.a if uplink.a.device is primary.host else uplink.b
    )
    # The primary transmitted ~2 object copies (R−1 = 2) plus acks.
    assert to_switch.tx_bytes.value >= 2 * wire_size(size)


def test_chain_latency_grows_with_chain_length():
    lat = {}
    for r in [1, 3, 5]:
        cluster = make_cluster(consistency="chain", replication_level=r, seed=3)
        client = cluster.clients[0]

        def gen(sim, out):
            res = yield client.put("chained", "v", 200_000)
            out["lat"] = res.latency

        out = run_driver(cluster, gen)
        lat[r] = out["lat"]
    assert lat[1] < lat[3] < lat[5]


def test_quorum_returns_before_all_transfers_finish():
    cluster = make_cluster(consistency="quorum", quorum_k=1, replication_level=3)
    client = cluster.clients[0]
    size = 1 << 20

    def gen(sim, out):
        res = yield client.put("q", "v", size)
        out["t_ack"] = sim.now
        out["res"] = res

    out = run_driver(cluster, gen, until=60.0)
    assert out["res"].ok
    cluster.sim.run(until=cluster.sim.now + 10.0)
    stored = sum(1 for n in cluster.replica_nodes("q") if n.store.get("q"))
    assert stored == 3


def test_round_robin_get_lb_spreads_load():
    cluster = make_cluster(consistency="2pc", n_clients=6, seed=5)

    def gen(sim, out):
        yield cluster.clients[0].put("popular", "v", 100)
        for _ in range(5):
            for c in cluster.clients:
                r = yield c.get("popular")
                assert r.ok

    run_driver(cluster, gen, until=60.0)
    served = [n.gets_served.value for n in cluster.replica_nodes("popular")]
    assert sum(served) == 30
    assert sum(1 for s in served if s > 0) >= 2


def test_primary_only_gets_concentrate_on_primary():
    cluster = make_cluster(consistency="primary", n_clients=6)

    def gen(sim, out):
        yield cluster.clients[0].put("popular", "v", 100)
        for c in cluster.clients:
            r = yield c.get("popular")
            assert r.ok

    run_driver(cluster, gen)
    replicas = cluster.replica_nodes("popular")
    assert replicas[0].gets_served.value == 6
    assert all(n.gets_served.value == 0 for n in replicas[1:])


def test_membership_broadcast_is_o_n():
    cluster = make_cluster(n_storage_nodes=8)
    done = {}

    def gen(sim, out):
        n = yield cluster.broadcast_membership_change()
        out["n"] = n

    out = run_driver(cluster, gen)
    assert out["n"] == 8
    assert cluster.membership_messages_sent == 8
    assert sum(n.membership_updates.value for n in cluster.nodes.values()) == 8


def test_get_miss():
    cluster = make_cluster()

    def gen(sim, out):
        out["get"] = yield cluster.clients[0].get("ghost", max_retries=0)

    out = run_driver(cluster, gen)
    assert not out["get"].ok
    assert out["get"].status == "miss"


def test_quorum_get_reads_write_set_covering_quorum():
    """§3.3: quorum designs must read R−W+1 replicas on get.  A replica
    holding a stale version must still return the newest committed value."""
    cluster = make_cluster(consistency="quorum", quorum_k=2, replication_level=3)
    client = cluster.clients[0]
    out = {}

    def gen(sim, o):
        r = yield client.put("qread", "v1", 500)
        assert r.ok
        yield sim.timeout(2.0)  # let all transfers land
        # Make one replica stale (simulate a write it never saw).
        replicas = cluster.replica_nodes("qread")
        from repro.kv import PutStamp, StoredObject

        newer = PutStamp("10.0.0.1", 99.0, str(client.ip), 98.0)
        for node in replicas[:2]:
            node.store.put(StoredObject("qread", "v2-newer", 500, newer))
        # replicas[2] still has v1; with read_set = R-W+1 = 2, any serving
        # replica must consult at least one holder of v2.
        o["get"] = yield client.get("qread")

    out = run_driver(cluster, gen, until=60.0)
    assert out["get"].ok
    assert out["get"].value == "v2-newer"


def test_quorum_get_latency_grows_as_write_set_shrinks():
    """W=1 forces R-replica reads; W=R makes reads local — the §3.3
    trade-off between put and get overhead."""
    lat = {}
    for k in (1, 3):
        cluster = make_cluster(
            consistency="quorum", quorum_k=k, replication_level=3, seed=9
        )
        client = cluster.clients[0]

        def gen(sim, o):
            r = yield client.put("qlat", "v", 4096)
            assert r.ok
            yield sim.timeout(2.0)
            total = 0.0
            for _ in range(10):
                g = yield client.get("qlat")
                assert g.ok
                total += g.latency
            o["avg"] = total / 10

        out = run_driver(cluster, gen, until=120.0)
        lat[k] = out["avg"]
    assert lat[1] > lat[3]  # W=1 reads 3 replicas; W=3 reads 1
