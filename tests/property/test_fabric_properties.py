"""Property-based tests over the leaf–spine fabric (DESIGN.md §5h).

Random fabric shapes (racks x hosts-per-rack x replication) must always
give rack-spanning placement, stay inside the per-switch rule budget, and
— the aggregation property — forward every (ingress leaf, host) pair to
the right host through the installed tables, where remote racks are
covered by wildcard prefix routes instead of per-host entries.
"""

from hypothesis import given, settings, strategies as st

from repro.bench.harness import build_nice
from repro.net.packet import Packet, Proto
from repro.net.switch import OpenFlowSwitch

shapes = st.tuples(
    st.integers(min_value=2, max_value=4),   # racks
    st.integers(min_value=2, max_value=4),   # hosts per rack
    st.integers(min_value=1, max_value=3),   # spines
    st.integers(min_value=2, max_value=3),   # replication level
)

BUDGET = 1024


def build(racks, per_rack, spines, replication):
    return build_nice(
        n_storage_nodes=racks * per_rack,
        n_clients=2,
        n_racks=racks,
        n_spines=spines,
        replication_level=min(replication, racks * per_rack),
        switch_rule_budget=BUDGET,
    )


def walk(cluster, ingress_leaf, dst_ip):
    """Follow installed flow tables from ``ingress_leaf`` toward ``dst_ip``;
    returns the device the packet lands on (or None) and the switch path."""
    from repro.net.host import Host

    packet = Packet(src_ip=dst_ip, dst_ip=dst_ip, proto=Proto.UDP, dport=7100)
    device, path = ingress_leaf, []
    for _ in range(4):  # > fabric diameter: leaf -> spine -> leaf -> host
        path.append(device.name)
        rule = device.table.lookup(packet)
        if rule is None:
            return None, path
        out_port = None
        for action in rule.actions:
            if type(action).__name__ == "Output":
                out_port = action.port
        if out_port is None or out_port not in device.ports:
            return None, path
        peer = device.ports[out_port].peer
        if peer is None:
            return None, path
        device = peer.device
        if isinstance(device, Host):
            return device, path
        if not isinstance(device, OpenFlowSwitch):
            return device, path
    return None, path


@given(shape=shapes)
@settings(max_examples=6, deadline=None)
def test_fabric_shape_invariants(shape):
    racks, per_rack, spines, replication = shape
    cluster = build(racks, per_rack, spines, replication)

    # 1. Rack-aware placement: every replica set spans >= 2 failure domains.
    for rs in cluster.metadata.partition_map:
        covered = {cluster.rack_of[m] for m in rs.members}
        assert len(covered) >= 2, (
            f"{racks}x{per_rack} r={replication}: p{rs.partition} "
            f"{rs.members} confined to rack {covered}"
        )

    # 2. Per-switch rule counts never exceed the configured budget.
    counts = cluster.controller.rule_counts_by_switch()
    for switch in cluster.switches:
        installed = sum(1 for _ in switch.table.iter_rules())
        assert installed <= BUDGET, (
            f"{switch.name}: {installed} rules > budget {BUDGET}"
        )
        if switch.name in counts:
            assert counts[switch.name] <= BUDGET

    # 3. Aggregated routes forward identically to per-host routes: from any
    #    ingress leaf, the installed tables (rack wildcards included) must
    #    land every storage host's physical IP on that host.
    for leaf in cluster.fabric.leaves:
        for name, node in cluster.nodes.items():
            target, path = walk(cluster, leaf, node.host.ip)
            assert target is node.host, (
                f"from {leaf.name} to {name} ({node.host.ip}): "
                f"reached {getattr(target, 'name', None)} via {path}"
            )
