"""Property tests for the history checkers (Hypothesis).

Two families:

* histories generated *linearizable by construction* — each op is given an
  explicit linearization point inside its window and reads return the
  register value at that point — must always be accepted;
* histories with an injected stale-read-after-acked-overwrite must always
  be rejected, the screen's verdict must agree with the exact checker, and
  the minimal core must itself be a violating subhistory.
"""

from hypothesis import given, settings, strategies as st

from repro.check import Operation, check_linearizable, check_monotonic


def _op(i, client, kind, key, inv, ret, value=None, ok=True, status="ok"):
    return Operation(
        op_index=i,
        client=client,
        kind=kind,
        key=key,
        invoke_ts=inv,
        return_ts=ret,
        value=value,
        ok=ok,
        status=status,
    )


@st.composite
def linearizable_history(draw, max_ops=24, n_clients=3, keys=("a", "b")):
    """A history with explicit in-window linearization points per op.

    Per-client sequential (invoke after the client's previous return),
    reads return the register value at their linearization point — so a
    valid linearization exists by construction.
    """
    n = draw(st.integers(min_value=1, max_value=max_ops))
    client_clock = {c: 0.0 for c in range(n_clients)}
    ops = []  # (linearization_point, op_record_stub)
    seq = 0
    for i in range(n):
        client = draw(st.integers(min_value=0, max_value=n_clients - 1))
        key = draw(st.sampled_from(keys))
        is_put = draw(st.booleans())
        gap = draw(st.floats(min_value=0.0, max_value=1.0))
        dur = draw(st.floats(min_value=0.01, max_value=1.5))
        inv = client_clock[client] + gap
        ret = inv + dur
        frac = draw(st.floats(min_value=0.0, max_value=1.0))
        lin = inv + frac * dur
        client_clock[client] = ret + 1e-3
        if is_put:
            seq += 1
            value = f"c{client}:{seq}"
        else:
            value = None  # filled from register state below
        ops.append([lin, i, client, key, inv, ret, is_put, value])

    # Replay in linearization order to resolve read values.
    register = {}
    history = []
    for lin, i, client, key, inv, ret, is_put, value in sorted(ops):
        if is_put:
            register[key] = value
        else:
            value = register.get(key)
        history.append(
            _op(
                i,
                f"c{client}",
                "put" if is_put else "get",
                key,
                inv,
                ret,
                value=value,
                ok=True if is_put or value is not None else False,
                status="ok" if is_put or value is not None else "miss",
            )
        )
    history.sort(key=lambda op: op.invoke_ts)
    return history


@settings(max_examples=40, deadline=None)
@given(linearizable_history())
def test_accepts_truly_linearizable_histories(history):
    result = check_linearizable(history)
    assert result.ok, result.describe()
    assert check_monotonic(history).ok


@settings(max_examples=40, deadline=None)
@given(linearizable_history(), st.sampled_from(["a", "b"]))
def test_rejects_stale_read_after_acked_overwrite(history, key):
    """Appending put(old); put(new); get->old must always be caught."""
    t = max((op.return_ts for op in history), default=0.0) + 1.0
    n = len(history)
    poison = [
        _op(n, "w", "put", key, t, t + 1, value="stale-old"),
        _op(n + 1, "w", "put", key, t + 2, t + 3, value="stale-new"),
        _op(n + 2, "r", "get", key, t + 4, t + 5, value="stale-old"),
    ]
    bad = history + poison

    lin = check_linearizable(bad)
    assert not lin.ok
    assert lin.key == key
    # The minimal core is itself a violating subhistory, no bigger than
    # the key's slice, and still fails when re-checked in isolation.
    assert 0 < len(lin.violation) <= sum(1 for op in bad if op.key == key)
    assert not check_linearizable(lin.violation).ok

    # The cheap screen agrees (it only ever reports true violations).
    mono = check_monotonic(bad)
    assert not mono.ok
    assert mono.key == key


@settings(max_examples=40, deadline=None)
@given(linearizable_history())
def test_ambiguous_ops_never_cause_false_positives(history):
    """Marking any suffix of puts as timed-out keeps the history accepted
    (an ambiguous put may simply have taken effect)."""
    mutated = []
    for op in history:
        if op.kind == "put" and op.invoke_ts > 1.0:
            op = Operation(
                op_index=op.op_index,
                client=op.client,
                kind=op.kind,
                key=op.key,
                invoke_ts=op.invoke_ts,
                return_ts=op.return_ts,
                value=op.value,
                ok=False,
                status="timeout",
            )
        mutated.append(op)
    assert check_linearizable(mutated).ok


@settings(max_examples=25, deadline=None)
@given(linearizable_history(max_ops=16))
def test_screen_never_disagrees_with_exact_checker(history):
    """check_monotonic reports only true violations: if it fires on a
    (possibly mutated) history, Wing–Gong must reject that history too."""
    mono = check_monotonic(history)
    if not mono.ok:
        assert not check_linearizable(history).ok
