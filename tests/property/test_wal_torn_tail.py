"""Property tests for the WAL's on-disk framing (Hypothesis).

:func:`repro.kv.wal.encode_record` / :func:`repro.kv.wal.decode_log` are
the pure functions the simulator's power-loss path runs a node's log
image through.  The durability contract (DESIGN.md §5k):

* truncating a log image at *any* byte offset yields exactly the records
  whose frames fit wholly inside the prefix — never a phantom record,
  never a corrupted one;
* the ``torn`` flag is raised iff the cut landed inside a frame (a clean
  cut on a frame boundary is not a torn write);
* encode/decode round-trips every field, including the commit bit and
  the four-tuple stamp.
"""

from hypothesis import given, settings, strategies as st

from repro.kv import LogRecord, PutStamp
from repro.kv.wal import decode_log, encode_record


def _stamp(pts):
    return PutStamp("10.0.0.2", pts, "10.0.1.1", pts / 2.0)


@st.composite
def log_records(draw):
    n = draw(st.integers(min_value=0, max_value=999999))
    committed = draw(st.booleans())
    return LogRecord(
        op_id=("c%d" % draw(st.integers(0, 3)), n),
        key=draw(st.text(min_size=1, max_size=12)),
        size_bytes=draw(st.integers(min_value=0, max_value=1 << 20)),
        client_addr="10.0.1.%d" % draw(st.integers(1, 9)),
        client_ts=draw(st.floats(0, 1e6, allow_nan=False)),
        value=draw(
            st.one_of(st.none(), st.text(max_size=20), st.binary(max_size=20))
        ),
        client_port=draw(st.integers(0, 65535)),
        partition=draw(st.integers(-1, 63)),
        committed=committed,
        stamp=_stamp(draw(st.floats(0, 1e6, allow_nan=False)))
        if committed
        else None,
    )


@given(st.lists(log_records(), max_size=8), st.data())
@settings(max_examples=200, deadline=None)
def test_truncation_yields_exact_prefix(records, data):
    frames = [encode_record(r) for r in records]
    image = b"".join(frames)
    cut = data.draw(st.integers(min_value=0, max_value=len(image)))
    decoded, torn = decode_log(image[:cut])

    # Which frames fit wholly inside the prefix?
    fits, offset = 0, 0
    for frame in frames:
        if offset + len(frame) > cut:
            break
        fits += 1
        offset += len(frame)

    assert len(decoded) == fits
    assert torn == (cut != offset)  # torn iff the cut landed mid-frame
    for want, got in zip(records, decoded):
        assert got.op_id == want.op_id
        assert got.key == want.key
        assert got.value == want.value
        assert got.committed == want.committed
        assert got.stamp == want.stamp
        assert got.size_bytes == want.size_bytes


@given(st.lists(log_records(), max_size=8))
@settings(max_examples=100, deadline=None)
def test_full_image_round_trips(records):
    image = b"".join(encode_record(r) for r in records)
    decoded, torn = decode_log(image)
    assert not torn
    assert [r.op_id for r in decoded] == [r.op_id for r in records]
    assert [r.stamp for r in decoded] == [r.stamp for r in records]


@given(st.lists(log_records(), min_size=1, max_size=4), st.data())
@settings(max_examples=100, deadline=None)
def test_corrupt_byte_never_fabricates_a_record(records, data):
    """Flipping any byte invalidates that frame and truncates from it —
    every record that does decode is byte-exact from an intact frame."""
    frames = [encode_record(r) for r in records]
    image = bytearray(b"".join(frames))
    pos = data.draw(st.integers(min_value=0, max_value=len(image) - 1))
    image[pos] ^= data.draw(st.integers(min_value=1, max_value=255))
    decoded, torn = decode_log(bytes(image))

    # The flip lands in some frame i: frames < i decode, the rest are cut.
    offset, intact = 0, 0
    for frame in frames:
        if offset <= pos < offset + len(frame):
            break
        intact += 1
        offset += len(frame)

    assert torn
    assert len(decoded) <= intact
    for want, got in zip(records, decoded):
        assert got.op_id == want.op_id
        assert got.value == want.value
