"""Property-based tests over the vring mapping, workload generators and
simulator determinism."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import ClusterConfig, NiceCluster, VirtualRing
from repro.kv import RING_SIZE
from repro.net import IPv4Network, wire_size, MTU_BYTES, HEADER_BYTES
from repro.workloads import LatestGenerator, ZipfianGenerator

subgroup_counts = st.sampled_from([1, 2, 4, 8, 16, 64, 256])


@given(n=subgroup_counts, h=st.integers(min_value=0, max_value=RING_SIZE - 1))
def test_vring_vnode_always_lands_in_its_subgroup(n, h):
    ring = VirtualRing(IPv4Network("10.10.0.0/16"), n)
    vaddr = ring.vnode_for_hash(h)
    sg = ring.subgroup_of_hash(h)
    assert vaddr in ring.subgroup_prefix(sg)
    assert ring.subgroup_of_address(vaddr) == sg


@given(n=subgroup_counts, key=st.text(min_size=1, max_size=40))
def test_unicast_and_multicast_rings_agree(n, key):
    uni = VirtualRing(IPv4Network("10.10.0.0/16"), n)
    mc = VirtualRing(IPv4Network("10.11.0.0/16"), n)
    assert uni.subgroup_of_key(key) == mc.subgroup_of_key(key)


@given(size=st.integers(min_value=0, max_value=10_000_000))
def test_wire_size_bounds(size):
    w = wire_size(size)
    chunks = max(1, -(-size // MTU_BYTES))
    assert w == size + chunks * HEADER_BYTES
    assert w > size or size == 0


@given(n=st.integers(min_value=2, max_value=5000), seed=st.integers(0, 2**16))
@settings(max_examples=30)
def test_zipf_samples_in_range(n, seed):
    g = ZipfianGenerator(n, rng=np.random.default_rng(seed))
    s = g.sample(50)
    assert s.min() >= 0 and s.max() < n


@given(n=st.integers(min_value=2, max_value=500), seed=st.integers(0, 2**16))
@settings(max_examples=20)
def test_latest_generator_prefers_newest(n, seed):
    g = LatestGenerator(n, rng=np.random.default_rng(seed))
    s = g.sample(300)
    assert s.min() >= 0 and s.max() < n
    # The newest quartile dominates the oldest quartile.
    newest = np.mean(s >= 3 * n // 4)
    oldest = np.mean(s < n // 4)
    assert newest > oldest


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=5, deadline=None)
def test_simulation_is_deterministic(seed):
    """Same seed ⇒ bit-identical results, for any seed."""

    def run():
        cluster = NiceCluster(
            ClusterConfig(n_storage_nodes=4, n_clients=2, replication_level=2, seed=seed)
        )
        cluster.warm_up()
        client = cluster.clients[0]
        results = []

        def driver(sim):
            for i in range(5):
                r = yield client.put(f"k{i}", i, 100 + i)
                results.append((round(sim.now, 12), r.ok))
                g = yield client.get(f"k{i}")
                results.append((round(sim.now, 12), g.value))

        cluster.sim.process(driver(cluster.sim))
        cluster.sim.run(until=20.0)
        return results, cluster.network.total_link_bytes()

    a, b = run(), run()
    assert a == b
