"""Property-based tests (hypothesis) for consistent hashing invariants."""

from hypothesis import given, settings, strategies as st

from repro.kv import ConsistentHashRing, RING_SIZE, key_hash

node_lists = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=20, unique=True
)


@given(nodes=node_lists, key=st.text(min_size=1, max_size=30))
def test_lookup_total_and_stable(nodes, key):
    """Every key maps to exactly one live node, deterministically."""
    ring = ConsistentHashRing()
    for n in nodes:
        ring.add_node(n)
    owner = ring.node_for_key(key)
    assert owner in nodes
    assert ring.node_for_key(key) == owner


@given(nodes=node_lists, point=st.integers(min_value=0, max_value=RING_SIZE - 1))
def test_successors_prefix_consistency(nodes, point):
    """successors(p, k) is a prefix of successors(p, k+1)."""
    ring = ConsistentHashRing()
    for n in nodes:
        ring.add_node(n)
    for k in range(1, len(nodes)):
        assert ring.successors(point, k) == ring.successors(point, k + 1)[:k]


@given(
    nodes=st.lists(
        st.integers(min_value=0, max_value=10_000), min_size=2, max_size=15, unique=True
    ),
    keys=st.lists(st.text(min_size=1, max_size=20), min_size=1, max_size=50),
    data=st.data(),
)
@settings(max_examples=50)
def test_node_removal_monotone(nodes, keys, data):
    """Removing a node never remaps a key that it did not own."""
    ring = ConsistentHashRing()
    for n in nodes:
        ring.add_node(n)
    victim = data.draw(st.sampled_from(nodes))
    before = {k: ring.node_for_key(k) for k in keys}
    ring.remove_node(victim)
    for k in keys:
        if before[k] != victim:
            assert ring.node_for_key(k) == before[k]


@given(
    nodes=node_lists,
    point=st.integers(min_value=0, max_value=RING_SIZE - 1),
)
def test_replica_sets_are_distinct(nodes, point):
    ring = ConsistentHashRing(points_per_node=4)
    for n in nodes:
        ring.add_node(n)
    k = min(3, len(nodes))
    reps = ring.successors(point, k)
    assert len(set(reps)) == len(reps) == k


@given(n_parts=st.integers(min_value=1, max_value=4096), h=st.integers(min_value=0, max_value=RING_SIZE - 1))
def test_partition_of_hash_in_range(n_parts, h):
    p = ConsistentHashRing.partition_of_hash(h, n_parts)
    assert 0 <= p < n_parts
    # The partition's start point is at or before the hash.
    assert ConsistentHashRing.partition_point(p, n_parts) <= h


@given(key=st.text(min_size=0, max_size=100))
def test_key_hash_range(key):
    assert 0 <= key_hash(key) < RING_SIZE
