"""Property test: incremental planning equals from-scratch planning under
random membership churn (the DESIGN.md §5i cache-coherence contract).

Hypothesis drives a random sequence of replica-set transitions —
crash (mark_failed), handoff appointment, rejoin phase 1 and phase 2 —
against the controller, optionally interleaving the metadata service's
``sync_partition`` calls.  After every sequence the cached desired state
of every switch must be identical to a from-scratch recomputation.
"""

from hypothesis import given, settings, strategies as st

from repro.core import ClusterConfig, NiceCluster

N_NODES = 8
N_PARTITIONS = 8

#: One churn step: (action, partition, node index, resync-after?).
steps = st.lists(
    st.tuples(
        st.sampled_from(["fail", "handoff", "begin_rejoin", "complete_rejoin"]),
        st.integers(min_value=0, max_value=N_PARTITIONS - 1),
        st.integers(min_value=0, max_value=N_NODES - 1),
        st.booleans(),
    ),
    min_size=1,
    max_size=12,
)


def desired_snapshot(controller):
    snap = {}
    for switch in controller.channel.switches:
        rules, groups = controller.desired_state(switch)
        snap[switch.name] = (
            {
                cookie: sorted(
                    (r.priority, str(r.match), str(r.actions)) for r in rs
                )
                for cookie, rs in rules.items()
            },
            {gid: str(g.buckets) for gid, g in groups.items()},
        )
    return snap


def apply_step(controller, action, partition, node_idx):
    """Apply one transition if its preconditions hold; False when skipped."""
    rs = controller.partition_map.get(partition)
    node = f"n{node_idx}"
    if action == "fail":
        if not rs.is_member(node) or len(rs.get_targets()) <= 1:
            return False
        rs.mark_failed(node)
    elif action == "handoff":
        if rs.is_member(node):
            return False
        rs.add_handoff(node)
    elif action == "begin_rejoin":
        if node not in rs.members or node not in rs.absent:
            return False
        rs.begin_rejoin(node)
    else:  # complete_rejoin
        if node not in rs.joining:
            return False
        rs.complete_rejoin(node)
    return True


@given(seq=steps)
@settings(max_examples=25, deadline=None)
def test_incremental_planning_equals_scratch_under_churn(seq):
    cluster = NiceCluster(
        ClusterConfig(
            n_storage_nodes=N_NODES, n_clients=2, n_partitions=N_PARTITIONS
        )
    )
    cluster.warm_up()
    ctrl = cluster.controller
    desired_snapshot(ctrl)  # populate the plan cache
    for action, partition, node_idx, resync in seq:
        if apply_step(ctrl, action, partition, node_idx) and resync:
            # The metadata service's path: explicit dirty-partition resync.
            ctrl.sync_partition(partition)
    incremental = desired_snapshot(ctrl)
    ctrl.invalidate_plans()
    scratch = desired_snapshot(ctrl)
    assert incremental == scratch


@given(seq=steps)
@settings(max_examples=10, deadline=None)
def test_reconcile_after_churn_matches_scratch_sync(seq):
    """After churn + resync, reconcile() must leave the tables exactly as
    a from-scratch sync_all would."""
    cluster = NiceCluster(
        ClusterConfig(
            n_storage_nodes=N_NODES, n_clients=2, n_partitions=N_PARTITIONS
        )
    )
    cluster.warm_up()
    ctrl = cluster.controller
    sim = cluster.sim
    for action, partition, node_idx, _ in seq:
        if apply_step(ctrl, action, partition, node_idx):
            ctrl.sync_partition(partition)
    sim.run(until=sim.now + 0.05)

    def table_snapshot():
        snap = {}
        for switch in ctrl.channel.switches:
            snap[switch.name] = (
                sorted(
                    (r.cookie, r.priority, str(r.match), str(r.actions))
                    for r in switch.table.iter_rules()
                ),
                sorted(
                    (gid, str(g.buckets)) for gid, g in switch.groups.items()
                ),
            )
        return snap

    ctrl.reconcile()
    sim.run(until=sim.now + 0.05)
    reconciled = table_snapshot()
    ctrl.invalidate_plans()
    ctrl.sync_all()
    sim.run(until=sim.now + 0.05)
    assert table_snapshot() == reconciled
