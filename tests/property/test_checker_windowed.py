"""Stress tests for the checker's commit-point windowed decomposition.

Long read-heavy histories (the chaos suite records tens of thousands of
gets per hot key) used to be handed to the exact W&G search whole; the
memo table then carries history-length bitmasks and the search can blow
up in memory long before ``max_states`` trips.  These tests pin the fix:

* subhistories past ``window_ops`` are decomposed and checked window by
  window — accepted histories stay accepted and cheap;
* violations buried deep in a long history are still found, and the
  minimal core stays small;
* ambiguous (unacked) puts suppress later cuts, and a stale read that is
  only explicable through the ambiguous put is still rejected;
* a history whose truly-overlapping burst exceeds ``window_ops`` fails
  *loudly* with :class:`CheckLimitExceeded` — never a silent skip.
"""

import pytest

from repro.check import Operation, check_linearizable
from repro.check.linearizability import CheckLimitExceeded


def _op(i, kind, inv, ret, value=None, ok=True, status="ok", client="c0", key="k"):
    return Operation(
        op_index=i,
        client=client,
        kind=kind,
        key=key,
        invoke_ts=inv,
        return_ts=ret,
        value=value,
        ok=ok,
        status=status,
    )


def read_heavy_history(n_rounds, readers=4, stale_at=None):
    """``n_rounds`` of put(v_i) followed by a burst of overlapping reads.

    Each round is separated from the next by a commit point (everything
    returns before the next round invokes).  With ``stale_at=(round,
    value)`` one read in that round returns the given wrong value.
    """
    ops, i, t = [], 0, 0.0
    for r in range(n_rounds):
        v = f"v{r}"
        ops.append(_op(i, "put", t, t + 1.0, v)); i += 1
        t += 2.0
        for c in range(readers):
            # Readers overlap each other inside the round but not across
            # rounds: the round boundary is a commit point.
            rv = v
            if stale_at is not None and stale_at[0] == r and c == readers - 1:
                rv = stale_at[1]
            ops.append(_op(i, "get", t + 0.1 * c, t + 1.0 + 0.1 * c, rv,
                           client=f"c{c}"))
            i += 1
        t += 3.0
    return ops


def test_long_read_heavy_history_accepted():
    # 600 rounds x (1 put + 4 reads) = 3000 ops on one key — far past
    # window_ops, decomposed into per-round windows.
    history = read_heavy_history(600)
    result = check_linearizable(history)
    assert result.ok
    # The search stayed linear-ish: nothing close to the exponential
    # whole-history state space.
    assert result.states < 40 * len(history)


def test_deep_stale_read_still_caught_and_minimized():
    history = read_heavy_history(400, stale_at=(390, "v2"))
    result = check_linearizable(history)
    assert not result.ok
    assert result.key == "k"
    assert "commit-point window" in result.reason
    # The minimal core is human-sized and itself violating.
    assert len(result.violation) <= 6
    assert not check_linearizable(result.violation).ok


def test_ambiguous_put_blocks_cuts_but_keeps_verdicts():
    # An early unacked put never returns: every later cut is suppressed,
    # so the tail forms one window.  A read of the ambiguous value is
    # fine (the put may have taken effect) ...
    history = [
        _op(0, "put", 0.0, 1.0, "a"),
        _op(1, "put", 2.0, None, "b", ok=None, status="pending"),
        _op(2, "get", 4.0, 5.0, "b"),
        _op(3, "get", 6.0, 7.0, "b"),
    ]
    assert check_linearizable(history, window_ops=3).ok
    # ... but reading the old value *after* the ambiguous value was
    # observed is a stale read, even across the suppressed cuts.
    history.append(_op(4, "get", 8.0, 9.0, "a"))
    result = check_linearizable(history, window_ops=4)
    assert not result.ok
    assert not check_linearizable(result.violation).ok


def test_violating_window_with_non_initial_boundary():
    # The violation is only visible given the register value carried in
    # from the previous window: window 2 reads "old" although "new"
    # was committed in window 1 before a commit point.
    history = [
        _op(0, "put", 0.0, 1.0, "old"),
        _op(1, "put", 2.0, 3.0, "new"),
    ]
    # Pad with enough same-window reads of "new" to cross window_ops
    # using the default, then the stale read far later.
    t = 4.0
    for i in range(300):
        history.append(_op(2 + i, "get", t, t + 0.5, "new", client=f"c{i % 5}"))
        t += 1.0
    history.append(_op(302, "get", t + 1.0, t + 2.0, "old"))
    result = check_linearizable(history)
    assert not result.ok
    assert not check_linearizable(result.violation).ok
    # The core must carry a write explaining the register state the stale
    # read conflicts with — here the synthetic boundary write of "new"
    # (the real put lives in an earlier window) — never a dangling read.
    values_written = {op.value for op in result.violation if op.kind == "put"}
    assert "new" in values_written
    assert any(op.kind == "get" and op.value == "old" for op in result.violation)


def test_overwide_window_fails_loudly():
    # 300 mutually-overlapping reads: no cut anywhere, one 301-op window.
    history = [_op(0, "put", 0.0, 1000.0, "v")]
    history += [
        _op(1 + i, "get", 0.1 + 1e-6 * i, 999.0, None, ok=False,
            status="miss", client=f"c{i}")
        for i in range(300)
    ]
    with pytest.raises(CheckLimitExceeded, match="commit-point window"):
        check_linearizable(history)
    # An explicit larger bound forces the attempt (and a larger state
    # budget would let it finish; the default budget still guards cost).
    assert check_linearizable(history, window_ops=400).ok
