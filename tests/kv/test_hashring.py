"""Unit tests for consistent hashing."""

import pytest

from repro.kv import ConsistentHashRing, RING_SIZE, key_hash


def make_ring(n=5, points=1):
    ring = ConsistentHashRing(points_per_node=points)
    for i in range(n):
        ring.add_node(f"n{i}")
    return ring


def test_key_hash_deterministic_and_in_range():
    assert key_hash("obj1") == key_hash("obj1")
    assert 0 <= key_hash("obj1") < RING_SIZE
    assert key_hash("obj1") != key_hash("obj2")


def test_add_remove_nodes():
    ring = make_ring(3)
    assert len(ring) == 3
    assert "n1" in ring
    ring.remove_node("n1")
    assert len(ring) == 2
    assert "n1" not in ring


def test_duplicate_add_rejected():
    ring = make_ring(2)
    with pytest.raises(ValueError):
        ring.add_node("n0")


def test_remove_missing_rejected():
    ring = make_ring(1)
    with pytest.raises(KeyError):
        ring.remove_node("ghost")


def test_empty_ring_lookup_rejected():
    ring = ConsistentHashRing()
    with pytest.raises(LookupError):
        ring.successor(0)


def test_successor_wraps_around():
    ring = make_ring(3)
    # Successor of the max point wraps to the first point.
    owner = ring.successor(RING_SIZE - 1)
    assert owner in ring.nodes


def test_successors_distinct_replica_set():
    ring = make_ring(5, points=4)
    reps = ring.successors(12345, 3)
    assert len(reps) == 3
    assert len(set(reps)) == 3


def test_successors_k_validation():
    ring = make_ring(3)
    with pytest.raises(ValueError):
        ring.successors(0, 0)
    with pytest.raises(ValueError):
        ring.successors(0, 4)


def test_replicas_for_key_primary_is_node_for_key():
    ring = make_ring(6)
    reps = ring.replicas_for_key("object-7", 3)
    assert reps[0] == ring.node_for_key("object-7")


def test_removal_only_moves_affected_keys():
    """Consistent hashing's core property: removing a node only remaps the
    keys it owned."""
    ring = make_ring(8)
    keys = [f"key{i}" for i in range(500)]
    before = {k: ring.node_for_key(k) for k in keys}
    ring.remove_node("n3")
    for k in keys:
        after = ring.node_for_key(k)
        if before[k] != "n3":
            assert after == before[k]
        else:
            assert after != "n3"


def test_points_per_node_smooths_arcs():
    bumpy = make_ring(8, points=1)
    smooth = make_ring(8, points=64)

    def spread(ring):
        sizes = list(ring.arc_sizes().values())
        return max(sizes) / max(min(sizes), 1)

    assert spread(smooth) < spread(bumpy)


def test_arc_sizes_sum_to_ring():
    ring = make_ring(5, points=3)
    assert sum(ring.arc_sizes().values()) == RING_SIZE
    assert ConsistentHashRing().arc_sizes() == {}


def test_partition_point_and_lookup_roundtrip():
    n = 16
    for p in range(n):
        point = ConsistentHashRing.partition_point(p, n)
        assert ConsistentHashRing.partition_of_hash(point, n) == p


def test_partition_point_validation():
    with pytest.raises(ValueError):
        ConsistentHashRing.partition_point(16, 16)
    with pytest.raises(ValueError):
        ConsistentHashRing.partition_point(-1, 16)


def test_points_per_node_validation():
    with pytest.raises(ValueError):
        ConsistentHashRing(points_per_node=0)
