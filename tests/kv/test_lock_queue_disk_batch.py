"""Tests for FIFO lock queues and disk group-commit flushing."""

import pytest

from repro.kv import Disk, LockTable
from repro.sim import Simulator


# ------------------------------------------------------------ FIFO locks ----


def test_request_grants_immediately_when_free():
    sim = Simulator()
    lt = LockTable()
    ev = lt.request(sim, "k", ("op", 1))
    assert ev.triggered
    assert lt.holder("k") == ("op", 1)


def test_request_queues_fifo():
    sim = Simulator()
    lt = LockTable()
    order = []

    def worker(sim, op, hold):
        yield lt.request(sim, "k", op)
        order.append((sim.now, op))
        yield sim.timeout(hold)
        lt.release("k", op)

    sim.process(worker(sim, ("op", 1), 1.0))
    sim.process(worker(sim, ("op", 2), 1.0))
    sim.process(worker(sim, ("op", 3), 1.0))
    sim.run()
    assert [op for _, op in order] == [("op", 1), ("op", 2), ("op", 3)]
    assert [t for t, _ in order] == pytest.approx([0.0, 1.0, 2.0])
    assert not lt.is_locked("k")


def test_request_reentrant_same_op():
    sim = Simulator()
    lt = LockTable()
    lt.request(sim, "k", ("op", 1))
    again = lt.request(sim, "k", ("op", 1))
    assert again.triggered


def test_cancel_queued_request():
    sim = Simulator()
    lt = LockTable()
    lt.request(sim, "k", ("op", 1))
    ev2 = lt.request(sim, "k", ("op", 2))
    lt.cancel("k", ("op", 2))
    lt.release("k", ("op", 1))
    sim.run()
    assert not ev2.triggered
    assert not lt.is_locked("k")


def test_force_release_grants_next():
    sim = Simulator()
    lt = LockTable()
    lt.request(sim, "k", ("op", 1))
    ev2 = lt.request(sim, "k", ("op", 2))
    lt.force_release("k")
    assert ev2.triggered
    assert lt.holder("k") == ("op", 2)


def test_clear_drops_queues():
    sim = Simulator()
    lt = LockTable()
    lt.request(sim, "k", ("op", 1))
    lt.request(sim, "k", ("op", 2))
    assert lt.queued("k") == 1
    lt.clear()
    assert lt.queued("k") == 0
    assert not lt.is_locked("k")


def test_queue_grant_order_is_arrival_order_not_poll_order():
    """The property that prevents cross-replica deadlock: grants follow
    request order exactly."""
    sim = Simulator()
    lt = LockTable()
    grants = []

    def holder(sim):
        yield lt.request(sim, "k", ("h", 0))
        yield sim.timeout(5.0)
        lt.release("k", ("h", 0))

    def waiter(sim, i, delay):
        yield sim.timeout(delay)
        yield lt.request(sim, "k", ("w", i))
        grants.append(i)
        lt.release("k", ("w", i))

    sim.process(holder(sim))
    # Requests arrive in order 2, 0, 1.
    sim.process(waiter(sim, 2, 1.0))
    sim.process(waiter(sim, 0, 2.0))
    sim.process(waiter(sim, 1, 3.0))
    sim.run()
    assert grants == [2, 0, 1]


# --------------------------------------------------------- group commit ----


def test_single_forced_write_pays_full_flush():
    sim = Simulator()
    disk = Disk(sim, base_latency_s=0.0, flush_latency_s=0.010)
    done = []

    def w(sim):
        yield disk.write(0, forced=True)
        done.append(sim.now)

    sim.process(w(sim))
    sim.run()
    assert done[0] >= 0.010
    assert disk.flushes.value == 1


def test_concurrent_forced_writes_share_flush_cycles():
    """100 concurrent forced writes need O(1) flushes, not 100."""
    sim = Simulator()
    disk = Disk(sim, base_latency_s=0.0, flush_latency_s=0.010)
    done = []

    def w(sim):
        yield disk.write(0, forced=True)
        done.append(sim.now)

    for _ in range(100):
        sim.process(w(sim))
    sim.run()
    assert len(done) == 100
    assert disk.flushes.value <= 3
    assert max(done) <= 0.030  # a couple of cycles, not 1 s


def test_flush_covers_only_completed_transfers():
    sim = Simulator()
    disk = Disk(
        sim, write_bandwidth_bps=8e6, base_latency_s=0.0, flush_latency_s=0.010
    )
    done = {}

    def w(sim, tag, nbytes):
        yield disk.write(nbytes, forced=True)
        done[tag] = sim.now

    sim.process(w(sim, "big", 1_000_000))  # 1 s transfer
    sim.process(w(sim, "small", 1000))     # queued behind it
    sim.run()
    assert done["big"] >= 1.010
    assert done["small"] > done["big"]  # device FIFO then its own flush wait


def test_unforced_writes_never_flush():
    sim = Simulator()
    disk = Disk(sim)

    def w(sim):
        yield disk.write(100, forced=False)

    sim.process(w(sim))
    sim.run()
    assert disk.flushes.value == 0
