"""Unit tests for the object store, WAL, locks, disk and timestamps."""

import pytest

from repro.kv import (
    Disk,
    LockTable,
    LogRecord,
    ObjectStore,
    PutStamp,
    StoredObject,
    WriteAheadLog,
)
from repro.sim import Simulator


def stamp(pts, cts=1.0, primary="10.0.0.2", client="10.0.1.1"):
    return PutStamp(primary, pts, client, cts)


def obj(name="k", value="v", size=100, s=None):
    return StoredObject(name, value, size, s)


# ------------------------------------------------------------- store ----


def test_store_put_get():
    st = ObjectStore()
    st.put(obj(s=stamp(1.0)))
    assert st.get("k").value == "v"
    assert "k" in st
    assert len(st) == 1


def test_store_newer_version_wins():
    st = ObjectStore()
    st.put(obj(value="old", s=stamp(1.0)))
    st.put(obj(value="new", s=stamp(2.0)))
    assert st.get("k").value == "new"


def test_store_stale_version_ignored():
    st = ObjectStore()
    st.put(obj(value="new", s=stamp(2.0)))
    st.put(obj(value="old", s=stamp(1.0)))
    assert st.get("k").value == "new"


def test_store_unstamped_object_does_not_replace_stamped():
    st = ObjectStore()
    st.put(obj(value="committed", s=stamp(1.0)))
    st.put(obj(value="raw", s=None))
    assert st.get("k").value == "committed"


def test_store_handoff_namespace_is_separate():
    st = ObjectStore()
    st.put_handoff(obj(name="h1", s=stamp(1.0)))
    assert st.get("h1") is None
    assert st.get_handoff("h1").name == "h1"
    assert st.handoff_count() == 1
    assert [o.name for o in st.handoff_objects()] == ["h1"]
    st.clear_handoff()
    assert st.handoff_count() == 0


def test_store_total_bytes_and_drop():
    st = ObjectStore()
    st.put(obj(name="a", size=10, s=stamp(1.0)))
    st.put(obj(name="b", size=20, s=stamp(1.0)))
    assert st.total_bytes() == 30
    st.drop("a")
    assert st.names() == ["b"]


# ------------------------------------------------------------- stamps ----


def test_stamp_ordering_by_primary_ts():
    assert stamp(1.0) < stamp(2.0)
    assert stamp(2.0) > stamp(1.0)
    assert stamp(1.0) <= stamp(1.0)
    assert stamp(1.0) >= stamp(1.0)


def test_stamp_orders_same_ts_by_addresses():
    a = PutStamp("10.0.0.2", 1.0, "c1", 5.0)
    b = PutStamp("10.0.0.3", 1.0, "c1", 5.0)
    assert a < b


def test_stamp_retry_detection():
    first = PutStamp("p1", 1.0, "c1", 5.0)
    retry = PutStamp("p2", 2.0, "c1", 5.0)
    other = PutStamp("p1", 1.0, "c1", 6.0)
    assert first.same_client_attempt(retry)
    assert not first.same_client_attempt(other)


# --------------------------------------------------------------- WAL ----


def test_wal_append_is_forced_write():
    sim = Simulator()
    disk = Disk(sim)
    wal = WriteAheadLog(disk)
    done = []

    def writer(sim):
        yield wal.append(LogRecord(("c", 1), "k", 100, "c", 1.0))
        done.append(sim.now)

    sim.process(writer(sim))
    sim.run()
    assert len(wal) == 1
    assert disk.flushes.value == 1
    assert done[0] >= disk.flush_latency_s


def test_wal_commit_and_remove():
    sim = Simulator()
    wal = WriteAheadLog(Disk(sim))
    rec = LogRecord(("c", 1), "k", 100, "c", 1.0)

    def writer(sim):
        yield wal.append(rec)

    sim.process(writer(sim))
    sim.run()
    assert wal.pending() == [rec]
    wal.mark_committed(("c", 1), stamp(1.0))
    assert wal.pending() == []
    assert wal.get(("c", 1)).committed
    wal.remove(("c", 1))
    assert len(wal) == 0
    assert wal.removed == 1


def test_wal_replay_returns_all_records():
    sim = Simulator()
    wal = WriteAheadLog(Disk(sim))

    def writer(sim):
        yield wal.append(LogRecord(("c", 1), "a", 1, "c", 1.0))
        yield wal.append(LogRecord(("c", 2), "b", 1, "c", 2.0))

    sim.process(writer(sim))
    sim.run()
    assert [r.key for r in wal.replay()] == ["a", "b"]


def test_wal_remove_missing_is_noop():
    sim = Simulator()
    wal = WriteAheadLog(Disk(sim))
    wal.remove(("ghost", 0))
    assert wal.removed == 0


# -------------------------------------------------------------- locks ----


def test_lock_acquire_release():
    lt = LockTable()
    assert lt.acquire("k", ("c", 1))
    assert lt.is_locked("k")
    assert lt.holder("k") == ("c", 1)
    assert lt.release("k", ("c", 1))
    assert not lt.is_locked("k")


def test_lock_conflict():
    lt = LockTable()
    assert lt.acquire("k", ("c", 1))
    assert not lt.acquire("k", ("c", 2))
    assert not lt.release("k", ("c", 2))
    assert lt.is_locked("k")


def test_lock_reentrant_same_op():
    lt = LockTable()
    assert lt.acquire("k", ("c", 1))
    assert lt.acquire("k", ("c", 1))  # retried multicast


def test_lock_enumeration_and_clear():
    lt = LockTable()
    lt.acquire("a", ("c", 1))
    lt.acquire("b", ("c", 2))
    assert sorted(lt.locked_keys()) == ["a", "b"]
    assert len(lt) == 2
    lt.force_release("a")
    assert lt.locked_keys() == ["b"]
    lt.clear()
    assert len(lt) == 0


# --------------------------------------------------------------- disk ----


def test_disk_serializes_io():
    sim = Simulator()
    disk = Disk(sim, write_bandwidth_bps=8e6, base_latency_s=0.0, flush_latency_s=0.0)
    finish = []

    def writer(sim, nbytes):
        yield disk.write(nbytes)
        finish.append(sim.now)

    sim.process(writer(sim, 1_000_000))  # 1 s at 1 MB/s
    sim.process(writer(sim, 1_000_000))
    sim.run()
    assert finish == pytest.approx([1.0, 2.0])
    assert disk.bytes_written.value == 2_000_000
    assert disk.writes.value == 2


def test_disk_read_write_counters_and_validation():
    sim = Simulator()
    disk = Disk(sim)

    def io(sim):
        yield disk.write(100, forced=True)
        yield disk.read(50)

    sim.process(io(sim))
    sim.run()
    assert disk.bytes_written.value == 100
    assert disk.bytes_read.value == 50
    assert disk.flushes.value == 1
    with pytest.raises(ValueError):
        disk.write(-1)
    with pytest.raises(ValueError):
        disk.read(-1)
    with pytest.raises(ValueError):
        Disk(sim, write_bandwidth_bps=0)
