"""Unit tests for the §5k crash-consistency layer: the disk's volatile
write cache and durability barrier, WAL journaling / torn-tail recovery,
and object-store checksums."""

import pytest

from repro.kv import (
    Disk,
    LogRecord,
    ObjectStore,
    PutStamp,
    StoredObject,
    WriteAheadLog,
    object_checksum,
)
from repro.sim import Simulator


def stamp(pts, cts=1.0, primary="10.0.0.2", client="10.0.1.1"):
    return PutStamp(primary, pts, client, cts)


def run_io(sim, gen):
    sim.process(gen)
    sim.run()


def rec(n, key=None, committed=False):
    return LogRecord(
        ("c", n), key or f"k{n}", 100, "10.0.1.1", float(n), value=f"v{n}",
        committed=committed,
    )


# ------------------------------------------------------- disk barrier ----


def test_unforced_write_stays_volatile():
    sim = Simulator()
    disk = Disk(sim)

    def io():
        yield disk.write(1000)

    run_io(sim, io())
    seq = disk.issued_seq
    assert disk.dirty_bytes == 1000
    assert not disk.is_durable(seq)
    assert disk.durable_seq == 0


def test_forced_write_advances_barrier_and_drains_dirty():
    sim = Simulator()
    disk = Disk(sim)

    def io():
        yield disk.write(1000)          # unforced, but issued earlier
        yield disk.write(100, forced=True)

    run_io(sim, io())
    # The flush covers everything whose transfer completed before the
    # cycle started — both writes.
    assert disk.durable_seq == disk.issued_seq == 2
    assert disk.dirty_bytes == 0
    assert disk.is_durable(1) and disk.is_durable(2)


def test_crash_discards_unflushed_keeps_durable():
    sim = Simulator()
    disk = Disk(sim)

    def io():
        yield disk.write(100, forced=True)
        yield disk.write(5000)  # volatile

    run_io(sim, io())
    assert disk.dirty_bytes == 5000
    barrier = disk.crash()
    assert barrier == 1
    assert disk.durable_seq == 1
    assert disk.dirty_bytes == 0
    assert not disk.is_durable(2)
    assert disk.power_losses.value == 1


def test_inflight_io_across_crash_does_not_advance_new_epoch():
    sim = Simulator()
    disk = Disk(sim)

    def writer():
        yield disk.write(4000)

    sim.process(writer())
    # Crash while the transfer is still in flight: the IO completes on
    # its original timeline but must not dirty the post-crash epoch.
    sim.run(until=disk.base_latency_s / 2)
    disk.crash()
    sim.run()
    assert disk.dirty_bytes == 0
    assert disk.durable_seq == 0


def test_degraded_disk_scales_service_and_reports_ratio():
    sim = Simulator()
    disk = Disk(sim)
    disk.set_degraded(8.0)
    t0 = []

    def io():
        start = sim.now
        yield disk.write(1000)
        t0.append(sim.now - start)

    run_io(sim, io())
    nominal = 60e-6 + 1000 * 8.0 / (400e6 * 8)
    assert t0[0] == pytest.approx(8.0 * nominal)
    assert disk.consume_service_ratio() == pytest.approx(8.0)
    assert disk.consume_service_ratio() is None  # window reset
    disk.set_degraded(1.0)

    def io2():
        yield disk.write(1000)

    run_io(sim, io2())
    assert disk.consume_service_ratio() == pytest.approx(1.0)


# --------------------------------------------------------- WAL replay ----


def test_replay_preserves_append_order():
    sim = Simulator()
    wal = WriteAheadLog(Disk(sim))

    def io():
        for n in (1, 2, 3):
            yield wal.append(rec(n))

    run_io(sim, io())
    assert [r.op_id for r in wal.replay()] == [("c", 1), ("c", 2), ("c", 3)]


def test_replay_after_partial_removals():
    sim = Simulator()
    wal = WriteAheadLog(Disk(sim))

    def io():
        for n in (1, 2, 3, 4):
            yield wal.append(rec(n))

    run_io(sim, io())
    wal.mark_committed(("c", 2), stamp(2.0))
    wal.remove(("c", 2))
    wal.remove(("c", 4))
    assert [r.op_id for r in wal.replay()] == [("c", 1), ("c", 3)]
    assert [r.op_id for r in wal.pending()] == [("c", 1), ("c", 3)]
    assert wal.removed == 2


def test_mark_committed_then_remove_interplay():
    sim = Simulator()
    wal = WriteAheadLog(Disk(sim))

    def io():
        yield wal.append(rec(1))

    run_io(sim, io())
    wal.mark_committed(("c", 1), stamp(1.0))
    assert wal.get(("c", 1)).committed
    assert wal.pending() == []
    wal.remove(("c", 1))
    assert wal.get(("c", 1)) is None
    wal.mark_committed(("c", 1), stamp(1.0))  # after removal: no-op
    assert len(wal) == 0


# ----------------------------------------------------- WAL power loss ----


def test_power_loss_tears_unflushed_append():
    sim = Simulator()
    disk = Disk(sim)
    wal = WriteAheadLog(disk)

    def io():
        yield wal.append(rec(1))

    sim.process(io())
    # Crash after the transfer but before the flush covers it.
    sim.run(until=disk.base_latency_s * 2)
    assert wal.unflushed_appends() == 1
    disk.crash()
    torn = wal.power_loss()
    assert torn
    assert wal.torn_records == 1
    assert len(wal) == 0  # the torn frame must not replay


def test_power_loss_keeps_flushed_appends_and_commit_bit():
    sim = Simulator()
    disk = Disk(sim)
    wal = WriteAheadLog(disk)

    def io():
        yield wal.append(rec(1))
        yield wal.append(rec(2))

    run_io(sim, io())
    wal.mark_committed(("c", 1), stamp(1.0))
    disk.crash()
    assert not wal.power_loss()
    replayed = {r.op_id: r for r in wal.replay()}
    assert set(replayed) == {("c", 1), ("c", 2)}
    assert replayed[("c", 1)].committed
    assert replayed[("c", 1)].stamp == stamp(1.0)
    assert not replayed[("c", 2)].committed


def test_power_loss_resurrects_unflushed_removal():
    sim = Simulator()
    disk = Disk(sim)
    wal = WriteAheadLog(disk)

    def io():
        yield wal.append(rec(1))

    run_io(sim, io())
    # −L is not forced: no flush covers the removal before the crash.
    wal.remove(("c", 1))
    assert len(wal) == 0
    disk.crash()
    wal.power_loss()
    assert [r.op_id for r in wal.replay()] == [("c", 1)]
    assert wal.resurrected_records == 1


def test_power_loss_honors_durable_removal():
    sim = Simulator()
    disk = Disk(sim)
    wal = WriteAheadLog(disk)

    def io():
        yield wal.append(rec(1))

    run_io(sim, io())
    wal.remove(("c", 1))

    def later():
        yield disk.write(10, forced=True)  # flush covers the removal

    run_io(sim, later())
    disk.crash()
    wal.power_loss()
    assert wal.replay() == []
    assert wal.resurrected_records == 0


def test_unforced_wal_loses_appends_on_power_loss():
    sim = Simulator()
    disk = Disk(sim)
    wal = WriteAheadLog(disk, forced=False)

    def io():
        for n in (1, 2, 3):
            yield wal.append(rec(n))

    run_io(sim, io())
    assert disk.flushes.value == 0  # acks never waited for a flush
    disk.crash()
    wal.power_loss()
    # Oldest append torn, the rest wholly gone: nothing replays.
    assert wal.replay() == []
    assert wal.torn_records == 1
    assert wal.lost_records == 2


# ------------------------------------------------------- store checks ----


def test_store_checksum_round_trip():
    st = ObjectStore()
    o = StoredObject("k", "v", 100, stamp(1.0))
    assert o.checksum == object_checksum("k", "v")
    st.put(o)
    assert st.verify(st.get("k"))


def test_store_corrupt_and_repair():
    st = ObjectStore()
    st.put(StoredObject("k", "v", 100, stamp(1.0)))
    assert st.corrupt("k")
    assert not st.verify(st.get("k"))
    assert st.corruptions == 1
    # Repair installs a verified copy even at the same stamp.
    st.repair(StoredObject("k", "v", 100, stamp(1.0)))
    assert st.verify(st.get("k"))
    assert st.get("k").value == "v"


def test_corrupt_missing_key_is_noop():
    st = ObjectStore()
    assert not st.corrupt("ghost")
    assert st.corruptions == 0
