"""Tests for zipf, YCSB and synthetic workload generators."""

import numpy as np
import pytest

from repro.core import ClusterConfig, NiceCluster
from repro.kv import ConsistentHashRing, key_hash
from repro.workloads import (
    OBJECT_SIZES,
    ScrambledZipfianGenerator,
    UniformGenerator,
    WORKLOADS,
    YcsbRunner,
    YcsbWorkload,
    ZipfianGenerator,
    closed_loop_gets,
    closed_loop_puts,
    hot_object_clients,
    keys_in_partition,
)


def test_zipf_range_and_determinism():
    g1 = ZipfianGenerator(100, rng=np.random.default_rng(1))
    g2 = ZipfianGenerator(100, rng=np.random.default_rng(1))
    s1, s2 = g1.sample(200), g2.sample(200)
    assert (s1 == s2).all()
    assert s1.min() >= 0 and s1.max() < 100


def test_zipf_is_skewed():
    g = ZipfianGenerator(1000, rng=np.random.default_rng(2))
    s = g.sample(5000)
    top10 = np.mean(s < 10)
    assert top10 > 0.3  # zipf 0.99: top-1% of items get >30% of requests


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfianGenerator(0)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, theta=1.5)


def test_scrambled_zipf_spreads_hot_items():
    g = ScrambledZipfianGenerator(1000, rng=np.random.default_rng(3))
    s = g.sample(5000)
    # Still skewed (few items dominate) but the hottest is not item 0.
    values, counts = np.unique(s, return_counts=True)
    assert counts.max() > 100
    assert values[np.argmax(counts)] != 0


def test_uniform_generator():
    g = UniformGenerator(50, rng=np.random.default_rng(4))
    s = g.sample(5000)
    assert s.min() >= 0 and s.max() < 50
    _, counts = np.unique(s, return_counts=True)
    assert counts.max() < 300  # no spike
    with pytest.raises(ValueError):
        UniformGenerator(0)


def test_standard_workload_mixes():
    assert WORKLOADS["C"].read == 1.0
    assert WORKLOADS["F"].rmw == 0.5
    assert WORKLOADS["A"].update == 0.5
    with pytest.raises(ValueError):
        YcsbWorkload("bad", read=0.5, update=0.0, insert=0.0, rmw=0.0)


def test_keys_in_partition():
    keys = keys_in_partition(3, 16, 20)
    assert len(keys) == 20
    for k in keys:
        assert ConsistentHashRing.partition_of_hash(key_hash(k), 16) == 3


def test_object_sizes_axis():
    assert OBJECT_SIZES[0] == 4
    assert OBJECT_SIZES[-1] == 1 << 20


def make_cluster():
    cluster = NiceCluster(ClusterConfig(n_storage_nodes=5, n_clients=4, replication_level=3))
    cluster.warm_up()
    return cluster


def test_closed_loop_puts_and_gets():
    cluster = make_cluster()
    client = cluster.clients[0]
    out = {}

    def driver(sim):
        tally = yield closed_loop_puts(client, sim, 10, 1000)
        out["puts"] = tally
        keys = [f"obj{i}" for i in range(10)]
        tally = yield closed_loop_gets(client, sim, 10, keys)
        out["gets"] = tally

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=60.0)
    assert out["puts"].count == 10
    assert out["gets"].count == 10
    assert out["puts"].mean > 0


def test_hot_object_weak_scaling_driver():
    cluster = make_cluster()
    out = {}

    def driver(sim):
        res = yield hot_object_clients(
            cluster.clients[0], cluster.clients[1:3], sim, "hot", 1000, 5
        )
        out.update(res)

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=60.0)
    assert out["put"].count == 5
    assert out["get"].count == 10
    assert out["elapsed_s"] > 0


def test_ycsb_runner_on_nice():
    cluster = make_cluster()
    runner = YcsbRunner(WORKLOADS["F"], n_records=20, object_bytes=500,
                        rng=np.random.default_rng(9))
    out = {}

    def driver(sim):
        res = yield runner.run(cluster.clients[:3], sim, n_ops_per_client=10)
        out.update(res)

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=120.0)
    assert out["ops"] == 30
    assert out["errors"] == 0
    assert out["throughput_ops_s"] > 0
    assert runner.write_latency.count > 0  # F has 50% RMW
    assert runner.read_latency.count > 0


def test_ycsb_runner_read_only_workload_c():
    cluster = make_cluster()
    runner = YcsbRunner(WORKLOADS["C"], n_records=20, object_bytes=500,
                        rng=np.random.default_rng(10))
    out = {}

    def driver(sim):
        res = yield runner.run(cluster.clients[:2], sim, n_ops_per_client=10)
        out.update(res)

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=120.0)
    assert out["errors"] == 0
    assert runner.write_latency.count == 0
    assert runner.read_latency.count == 20


def test_ycsb_workload_d_latest_distribution():
    """Workload D: 95% reads skewed to the latest inserts, 5% inserts."""
    cluster = make_cluster()
    runner = YcsbRunner(WORKLOADS["D"], n_records=20, object_bytes=300,
                        rng=np.random.default_rng(11))
    out = {}

    def driver(sim):
        res = yield runner.run(cluster.clients[:2], sim, n_ops_per_client=20)
        out.update(res)

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=120.0)
    assert out["errors"] == 0
    assert runner._insert_cursor > 20  # inserts happened
    assert runner.keychooser.n_items == runner._insert_cursor
