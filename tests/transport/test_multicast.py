"""Unit tests for the reliable (any-k) multicast transport."""

import pytest

from repro.net import IPv4Address, IPv4Network, MTU_BYTES
from repro.sim import RngRegistry
from repro.transport import MulticastEndpoint, MulticastSender
from tests.helpers import Star

VGROUP = IPv4Network("10.11.1.0/24")
VADDR = IPv4Address("10.11.1.7")
PORT = 7001


def make_mc_star(n_receivers=3, loss=0.0, **star_kw):
    star = Star(n_hosts=n_receivers + 1, **star_kw)
    sender_stack = star.stacks[0]
    receivers = star.hosts[1:]
    star.add_multicast_group(1, VGROUP, receivers)
    rng = RngRegistry(11)
    endpoints = [
        MulticastEndpoint(
            stack, PORT, chunk_loss_rate=loss, rng=rng.stream(f"loss:{i}") if loss else None
        )
        for i, stack in enumerate(star.stacks[1:])
    ]
    return star, MulticastSender(sender_stack), endpoints


def test_all_receivers_get_message_and_sender_completes():
    star, sender, endpoints = make_mc_star(3)
    results = {}

    def send(sim):
        acks = yield sender.send(VADDR, PORT, {"obj": "v"}, 5000, n_receivers=3)
        results["acks"] = acks
        results["t"] = sim.now

    star.sim.process(send(star.sim))
    star.sim.run(until=10.0)
    assert len(results["acks"]) == 3
    for ep in endpoints:
        assert len(ep.messages) == 1
        msg = ep.messages.items[0]
        assert msg.payload == {"obj": "v"}
        assert msg.payload_bytes == 5000
        assert msg.virtual_dst == VADDR
        assert msg.src_ip == star.hosts[0].ip


def test_quorum_returns_before_slow_receivers():
    """Fig 8 mechanism: any-k returns when k fast receivers finish."""
    star, sender, endpoints = make_mc_star(3, latency_s=0.0)
    # Make receiver 3's link 20x slower (50 Mbps vs 1 Gbps).
    star.link_of(star.hosts[3]).set_bandwidth(50e6)
    results = {}
    size = 1 << 20

    def send(sim):
        acks = yield sender.send(VADDR, PORT, "blob", size, n_receivers=3, quorum=2)
        results["t"] = sim.now
        results["n"] = len(acks)

    star.sim.process(send(star.sim))
    star.sim.run(until=60.0)
    assert results["n"] == 2
    # Completion is near the fast-path time (~2 hops at 1 Gbps ≈ 17 ms),
    # far below the slow receiver's ~170 ms leg.
    assert results["t"] < 0.1
    # The straggler still completes eventually (served post-return).
    assert len(endpoints[2].messages) == 1


def test_loss_triggers_nack_repair_and_delivery():
    star, sender, endpoints = make_mc_star(2, loss=0.3)
    size = 50 * MTU_BYTES  # 50 chunks: loss virtually certain
    done = {}

    def send(sim):
        acks = yield sender.send(VADDR, PORT, "lossy", size, n_receivers=2)
        done["acks"] = len(acks)

    star.sim.process(send(star.sim))
    star.sim.run(until=30.0)
    assert done["acks"] == 2
    assert sum(ep.nacks_sent for ep in endpoints) > 0
    assert sum(ep.repairs_received for ep in endpoints) > 0
    for ep in endpoints:
        assert len(ep.messages) == 1


def test_lossless_sends_no_nacks():
    star, sender, endpoints = make_mc_star(3)

    def send(sim):
        yield sender.send(VADDR, PORT, "x", 100, n_receivers=3)

    star.sim.process(send(star.sim))
    star.sim.run(until=5.0)
    assert all(ep.nacks_sent == 0 for ep in endpoints)


def test_multicast_network_load_is_one_copy_per_leg():
    """The NICE replication-optimality claim at transport level (Fig 6)."""
    star, sender, endpoints = make_mc_star(3)
    size = 100_000

    def send(sim):
        yield sender.send(VADDR, PORT, "x", size, n_receivers=3)

    star.sim.process(send(star.sim))
    star.sim.run(until=5.0)
    total = star.net.total_link_bytes()
    from repro.net import wire_size

    data_legs = 4 * wire_size(size)  # 1 uplink + 3 downlinks
    acks = 3 * 2 * wire_size(0)  # 3 acks, 2 hops each
    assert total == data_legs + acks


def test_sender_validates_arguments():
    star, sender, _ = make_mc_star(2)
    with pytest.raises(ValueError):
        sender.send(VADDR, PORT, "x", 10, n_receivers=0)
    with pytest.raises(ValueError):
        sender.send(VADDR, PORT, "x", 10, n_receivers=3, quorum=4)
    with pytest.raises(ValueError):
        sender.send(VADDR, PORT, "x", 10, n_receivers=3, quorum=0)


def test_endpoint_validates_loss_config():
    star = Star(n_hosts=2)
    with pytest.raises(ValueError):
        MulticastEndpoint(star.stacks[1], PORT, chunk_loss_rate=0.5, rng=None)
    with pytest.raises(ValueError):
        MulticastEndpoint(
            star.stacks[1], PORT, chunk_loss_rate=1.5, rng=RngRegistry(1).stream("x")
        )


def test_two_concurrent_sends_demux_by_op():
    star, sender, endpoints = make_mc_star(2)
    done = []

    def send(sim, tag):
        yield sender.send(VADDR, PORT, tag, 1000, n_receivers=2)
        done.append(tag)

    star.sim.process(send(star.sim, "a"))
    star.sim.process(send(star.sim, "b"))
    star.sim.run(until=5.0)
    assert sorted(done) == ["a", "b"]
    for ep in endpoints:
        payloads = sorted(m.payload for m in ep.messages.items)
        assert payloads == ["a", "b"]


def test_failed_receiver_does_not_block_quorum():
    star, sender, endpoints = make_mc_star(3)
    star.hosts[3].fail()
    result = {}

    def send(sim):
        acks = yield sender.send(VADDR, PORT, "x", 1000, n_receivers=3, quorum=2)
        result["n"] = len(acks)

    star.sim.process(send(star.sim))
    star.sim.run(until=10.0)
    assert result["n"] == 2
