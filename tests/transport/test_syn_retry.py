"""SYN retransmission: a handshake toward a down host must not wedge
future connects once the host recovers."""

import pytest

from repro.sim import AnyOf
from tests.helpers import Star


def test_connect_succeeds_after_peer_recovers():
    star = Star()
    client, server = star.stacks[0], star.stacks[1]
    server.tcp.listen(6000)
    server.host.fail()
    out = {}

    def connector(sim):
        conn = yield client.tcp.connect(server.ip, 6000)
        out["t"] = sim.now
        out["conn"] = conn

    star.sim.process(connector(star.sim))
    star.sim.call_in(3.0, server.host.recover)
    star.sim.run(until=30.0)
    # A retried SYN (0.5 s schedule) lands after the 3 s recovery.
    assert "t" in out
    assert out["t"] > 3.0
    assert out["conn"].established


def test_fresh_connect_after_handshake_gave_up():
    star = Star()
    client, server = star.stacks[0], star.stacks[1]
    server.tcp.listen(6000)
    server.host.fail()

    def first(sim):
        got = yield AnyOf(sim, [client.tcp.connect(server.ip, 6000), sim.timeout(1.0)])

    star.sim.process(first(star.sim))
    # Run long enough for SYN retries to exhaust and tear down state.
    star.sim.run(until=120.0)
    assert (server.ip, 6000) not in client.tcp._connecting
    server.host.recover()
    out = {}

    def second(sim):
        conn = yield client.tcp.connect(server.ip, 6000)
        out["conn"] = conn

    star.sim.process(second(star.sim))
    star.sim.run(until=cluster_time(star) + 10.0)
    assert out["conn"].established


def cluster_time(star):
    return star.sim.now


def test_messages_queued_behind_dead_handshake_flow_after_recovery():
    """The regression that broke node rejoin: sends piling onto a wedged
    handshake must drain once the peer is back."""
    star = Star()
    client, server = star.stacks[0], star.stacks[1]
    listener = server.tcp.listen(6000)
    server.host.fail()
    received = []

    def server_proc(sim):
        while True:
            msg = yield listener.get()
            received.append(msg.payload)

    star.sim.process(server_proc(star.sim))
    for i in range(3):
        client.tcp.send_message(server.ip, 6000, f"m{i}", 10)
    star.sim.call_in(2.0, server.host.recover)
    star.sim.run(until=30.0)
    assert sorted(received) == ["m0", "m1", "m2"]
