"""Unit tests for UDP sockets and the TCP message layer."""

import pytest

from repro.sim import AnyOf
from tests.helpers import Star


# ---------------------------------------------------------------- UDP ----


def test_udp_send_receive():
    star = Star()
    a, b = star.stacks[0], star.stacks[1]
    inbox = b.udp_bind(4000)
    got = []

    def recv(sim):
        dgram = yield inbox.get()
        got.append(dgram)

    star.sim.process(recv(star.sim))
    a.udp_send(b.ip, 4000, {"hello": 1}, 100, sport=5)
    star.sim.run()
    assert len(got) == 1
    d = got[0]
    assert d.src_ip == a.ip and d.sport == 5
    assert d.dport == 4000
    assert d.payload == {"hello": 1}
    assert d.payload_bytes == 100
    assert d.virtual_dst is None


def test_udp_unbound_port_drops():
    star = Star()
    a, b = star.stacks[0], star.stacks[1]
    a.udp_send(b.ip, 9999, "x", 10)
    star.sim.run()  # no error, nothing delivered


def test_udp_double_bind_rejected():
    star = Star()
    star.stacks[0].udp_bind(4000)
    with pytest.raises(ValueError):
        star.stacks[0].udp_bind(4000)


def test_udp_unbind_then_rebind():
    star = Star()
    s = star.stacks[0]
    s.udp_bind(4000)
    s.udp_unbind(4000)
    s.udp_bind(4000)


def test_ephemeral_ports_unique():
    star = Star()
    s = star.stacks[0]
    assert s.ephemeral_port() != s.ephemeral_port()


# ---------------------------------------------------------------- TCP ----


def test_tcp_message_roundtrip():
    star = Star()
    client, server = star.stacks[0], star.stacks[1]
    listener = server.tcp.listen(6000)
    log = []

    def server_proc(sim):
        msg = yield listener.get()
        log.append(("server", sim.now, msg.payload))
        yield msg.conn.send({"reply": True}, 50)

    def client_proc(sim):
        conn = yield client.tcp.send_message(server.ip, 6000, {"req": 1}, 200)
        reply = yield conn.inbox.get()
        log.append(("client", sim.now, reply.payload))

    star.sim.process(server_proc(star.sim))
    star.sim.process(client_proc(star.sim))
    star.sim.run()
    assert [e[0] for e in log] == ["server", "client"]
    assert log[0][2] == {"req": 1}
    assert log[1][2] == {"reply": True}


def test_tcp_handshake_happens_once_per_peer():
    star = Star()
    client, server = star.stacks[0], star.stacks[1]
    listener = server.tcp.listen(6000)

    def server_proc(sim):
        while True:
            msg = yield listener.get()
            yield msg.conn.send("ok", 10)

    def client_proc(sim):
        for _ in range(3):
            conn = yield client.tcp.send_message(server.ip, 6000, "req", 10)
            yield conn.inbox.get()

    star.sim.process(server_proc(star.sim))
    star.sim.process(client_proc(star.sim))
    star.sim.run(until=10.0)
    assert client.tcp.handshakes == 1


def test_tcp_handshake_costs_latency():
    """First message pays ~1.5 RTT handshake; cached sends don't."""
    star = Star(latency_s=1e-3)
    client, server = star.stacks[0], star.stacks[1]
    listener = server.tcp.listen(6000)
    times = []

    def server_proc(sim):
        while True:
            msg = yield listener.get()
            yield msg.conn.send("ok", 0)

    def client_proc(sim):
        for _ in range(2):
            t0 = sim.now
            conn = yield client.tcp.send_message(server.ip, 6000, "req", 0)
            yield conn.inbox.get()
            times.append(sim.now - t0)

    star.sim.process(server_proc(star.sim))
    star.sim.process(client_proc(star.sim))
    star.sim.run(until=10.0)
    assert len(times) == 2
    # The handshake adds SYN + SYNACK = one host-to-host RTT (2 hops each
    # way at 1 ms/link = 4 ms); the cached second op skips it.
    assert times[0] > times[1]
    assert times[0] - times[1] == pytest.approx(4e-3, rel=0.1)


def test_tcp_concurrent_connects_share_handshake():
    star = Star()
    client, server = star.stacks[0], star.stacks[1]
    listener = server.tcp.listen(6000)
    conns = []

    def server_proc(sim):
        while True:
            msg = yield listener.get()

    def connector(sim):
        conn = yield client.tcp.connect(server.ip, 6000)
        conns.append(conn)

    star.sim.process(server_proc(star.sim))
    star.sim.process(connector(star.sim))
    star.sim.process(connector(star.sim))
    star.sim.run(until=5.0)
    assert len(conns) == 2
    assert conns[0] is conns[1]
    assert client.tcp.handshakes == 1


def test_tcp_connect_to_non_listener_never_completes():
    star = Star()
    client, server = star.stacks[0], star.stacks[1]
    outcome = []

    def connector(sim):
        got = yield AnyOf(sim, [client.tcp.connect(server.ip, 1234), sim.timeout(1.0)])
        outcome.append(len(got))

    star.sim.process(connector(star.sim))
    star.sim.run()
    assert outcome == [1]  # only the timeout fired


def test_tcp_send_to_down_host_times_out():
    star = Star()
    client, server = star.stacks[0], star.stacks[1]
    server.tcp.listen(6000)
    server.host.fail()
    outcome = []

    def client_proc(sim):
        send = client.tcp.send_message(server.ip, 6000, "req", 10)
        got = yield AnyOf(sim, [send, sim.timeout(2.0)])
        outcome.append(send in got)

    star.sim.process(client_proc(star.sim))
    star.sim.run(until=5.0)
    assert outcome == [False]


def test_tcp_reset_peer_forces_new_handshake():
    star = Star()
    client, server = star.stacks[0], star.stacks[1]
    listener = server.tcp.listen(6000)

    def server_proc(sim):
        while True:
            msg = yield listener.get()
            yield msg.conn.send("ok", 0)

    def client_proc(sim):
        conn = yield client.tcp.send_message(server.ip, 6000, "a", 0)
        yield conn.inbox.get()
        assert client.tcp.reset_peer(server.ip) >= 1
        conn2 = yield client.tcp.send_message(server.ip, 6000, "b", 0)
        yield conn2.inbox.get()
        assert conn2 is not conn

    star.sim.process(server_proc(star.sim))
    p = star.sim.process(client_proc(star.sim))
    star.sim.run(until=10.0)
    assert p.ok
    assert client.tcp.handshakes == 2


def test_tcp_double_listen_rejected():
    star = Star()
    star.stacks[0].tcp.listen(6000)
    with pytest.raises(ValueError):
        star.stacks[0].tcp.listen(6000)


def test_tcp_large_transfer_occupies_link():
    """A 1 MB message over a 1 Gbps access link takes >= ~8 ms per hop."""
    star = Star(latency_s=0.0)
    client, server = star.stacks[0], star.stacks[1]
    listener = server.tcp.listen(6000)
    arrival = []

    def server_proc(sim):
        yield listener.get()
        arrival.append(sim.now)

    def client_proc(sim):
        yield client.tcp.send_message(server.ip, 6000, "blob", 1 << 20)

    star.sim.process(server_proc(star.sim))
    star.sim.process(client_proc(star.sim))
    star.sim.run(until=10.0)
    assert len(arrival) == 1
    # Two store-and-forward hops (client->switch, switch->server).
    assert arrival[0] >= 2 * (1 << 20) * 8 / 1e9


def test_tcp_interleaved_messages_one_connection():
    star = Star()
    client, server = star.stacks[0], star.stacks[1]
    listener = server.tcp.listen(6000)
    seen = []

    def server_proc(sim):
        while True:
            msg = yield listener.get()
            seen.append(msg.payload)

    def sender(sim, tag):
        yield client.tcp.send_message(server.ip, 6000, tag, 100)

    star.sim.process(server_proc(star.sim))
    for tag in ["m1", "m2", "m3"]:
        star.sim.process(sender(star.sim, tag))
    star.sim.run(until=5.0)
    assert sorted(seen) == ["m1", "m2", "m3"]
