"""Tests for the unreliable multicast control channel (2PC timestamps)."""

from repro.net import IPv4Address, IPv4Network
from repro.sim import RngRegistry
from repro.transport import MulticastEndpoint, MulticastSender
from tests.helpers import Star

VGROUP = IPv4Network("10.11.1.0/24")
VADDR = IPv4Address("10.11.1.9")
PORT = 7001


def setup(loss=0.0):
    star = Star(n_hosts=4)
    receivers = star.hosts[1:]
    star.add_multicast_group(1, VGROUP, receivers)
    rng = RngRegistry(3)
    endpoints = [
        MulticastEndpoint(
            s, PORT, chunk_loss_rate=loss, rng=rng.stream(f"l{i}") if loss else None
        )
        for i, s in enumerate(star.stacks[1:])
    ]
    return star, MulticastSender(star.stacks[0]), endpoints


def test_ctrl_message_delivered_to_all_without_acks():
    star, sender, endpoints = setup()
    sender.send_ctrl(VADDR, PORT, {"type": "commit", "op": 7}, 128)
    star.sim.run(until=2.0)
    for ep in endpoints:
        assert len(ep.messages) == 1
        msg = ep.messages.items[0]
        assert msg.payload == {"type": "commit", "op": 7}
        assert msg.ack_port == 0
    # No transport acks were generated (only the 4 data legs on the wire).
    from repro.net import wire_size

    assert star.net.total_link_bytes() == 4 * wire_size(128)


def test_ctrl_message_lost_is_silent():
    star, sender, endpoints = setup(loss=0.999999)
    sender.send_ctrl(VADDR, PORT, "ts", 64)
    star.sim.run(until=2.0)
    assert all(len(ep.messages) == 0 for ep in endpoints)
    assert all(ep.nacks_sent == 0 for ep in endpoints)
