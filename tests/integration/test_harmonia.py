"""Harmonia protocol mode (DESIGN.md §5j): switch dirty-set, any-replica
conflict-free reads, and the directed rack-isolation-mid-put battery.

The mid-put recipe drives the race the dirty-set exists for: a put is cut
off by a rack isolation *between* the primary's local commit and the
commit multicast reaching a stranded secondary.  The secondary then holds
the old value while the primary holds the new one — a correct dirty-set
must keep every switch off the stale replica (the key was marked on the
put's data transit and is pinned by the failed put_reply), while the
deliberately weakened variant ("harmonia-weak": dirty entry cleared on
the *commit's* transit, before replicas apply) leaks a stale conflict-free
read that the Wing–Gong checker must catch.
"""

import pytest

from repro.check import HistoryRecorder, check_linearizable
from repro.core import ClusterConfig, NiceCluster


def build(mode, **kw):
    # heartbeat_miss_limit is huge so the stranded rack is never declared
    # failed: the replica set keeps the stale secondary as a live target —
    # the configuration the dirty-set has to defend.
    defaults = dict(
        n_storage_nodes=8, n_clients=2, replication_level=3, n_racks=2,
        protocol_mode=mode, heartbeat_miss_limit=10_000,
    )
    defaults.update(kw)
    cluster = NiceCluster(ClusterConfig(**defaults))
    cluster.warm_up()
    return cluster


def pick_split_key(cluster):
    """A key whose primary lives in rack 0 with a secondary in rack 1."""
    for i in range(500):
        key = f"hk{i}"
        part = cluster.uni_vring.subgroup_of_key(key)
        rs = cluster.partition_map.get(part)
        prim = rs.primary
        if cluster.rack_of[prim] != 0:
            continue
        strays = [m for m in rs.get_targets()
                  if m != prim and cluster.rack_of[m] == 1]
        if strays:
            return key, prim, strays[0]
    raise AssertionError("no rack-split replica set found")


def isolate_mid_put(cluster, key, primary, secondary):
    """Cut rack 1's uplinks after the primary commits but before the
    commit multicast reaches the rack-1 secondary (>= 4 link hops away:
    the poll interval sits far inside that window)."""
    sim = cluster.sim
    p_node = cluster.nodes[primary]
    s_node = cluster.nodes[secondary]
    while True:
        prepared = any(p.key == key and p.value == "v2"
                       for p in s_node._pending.values())
        obj = p_node.store.get(key)
        if prepared and obj is not None and obj.value == "v2":
            break
        yield sim.timeout(10e-6)
    assert not any(p.key == key and p.value == "v2"
                   for p in p_node._pending.values())
    for link in cluster.fabric.uplinks_of(1):
        link.set_down(True)


def run_mid_put_scenario(mode):
    cluster = build(mode)
    sim = cluster.sim
    c0, c1 = cluster.clients  # round-robin placement: rack 0, rack 1
    recorder = HistoryRecorder()
    for c in cluster.clients:
        c.recorder = recorder
    key, primary, secondary = pick_split_key(cluster)
    out = {}

    def driver():
        r = yield c0.put(key, "v1", 1000)
        assert r.ok
        sim.process(isolate_mid_put(cluster, key, primary, secondary))
        r2 = yield c0.put(key, "v2", 1000, max_retries=0)
        out["put2"] = r2
        # Rack-0 reads first: they can reach the committed primary and
        # force the ambiguous put's effect into the history ...
        g0 = yield c0.get(key, max_retries=1)
        out["rack0_get"] = g0
        # ... then rack-1 reads: any switch that serves the stale rack-1
        # secondary "conflict-free" now creates the stale-read pattern.
        gets1 = []
        for _ in range(4):
            g1 = yield c1.get(key, max_retries=0)
            gets1.append(g1)
        out["rack1_gets"] = gets1

    proc = sim.process(driver())
    sim.run(until=60.0)
    assert proc.triggered, "scenario driver did not finish"
    out["cluster"] = cluster
    out["key"] = key
    out["secondary"] = secondary
    out["check"] = check_linearizable(recorder.ops)
    return out


def test_rack_isolate_mid_put_harmonia_serves_no_stale_read():
    out = run_mid_put_scenario("harmonia")
    cluster, key = out["cluster"], out["key"]
    # The interrupted put failed at the client (ambiguous effect).
    assert not out["put2"].ok
    # Rack-0 read: dirty/pinned key falls back to the primary — new value.
    assert out["rack0_get"].ok and out["rack0_get"].value == "v2"
    # No switch served the stranded secondary's stale copy: every rack-1
    # read either reached the primary's value or failed — never "v1".
    for g in out["rack1_gets"]:
        assert g.value != "v1", "stale conflict-free read of a dirty key"
    assert cluster.nodes[out["secondary"]].gets_served.value == 0
    # The dirty mark was converted to a pin by the failed put_reply and
    # every read since went through the primary fallback.
    stats = cluster.harmonia.stats()
    assert stats["pinned"] >= 1
    assert stats["fallback_reads"] >= 1
    assert out["check"].ok, out["check"].describe()


def test_rack_isolate_mid_put_weakened_variant_is_caught():
    out = run_mid_put_scenario("harmonia-weak")
    # The weakened dirty-set cleared the key on the commit's *transit*, so
    # rack-1's leaf was free to serve the stranded secondary rack-locally.
    stale = [g for g in out["rack1_gets"] if g.ok and g.value == "v1"]
    assert stale, "weak variant never leaked the stale read it exists to model"
    result = out["check"]
    assert not result.ok, "checker missed the weakened-harmonia violation"
    # The counterexample is the classic stale-read core on this key.
    assert result.key == out["key"]
    assert not check_linearizable(result.violation).ok


def test_harmonia_balances_clean_reads_and_falls_back_when_dirty():
    cluster = build("harmonia")
    sim = cluster.sim
    c0, c1 = cluster.clients
    key, primary, secondary = pick_split_key(cluster)
    served = {}

    def driver():
        r = yield c0.put(key, "v0", 1000)
        assert r.ok
        for i in range(30):
            g = yield (c0 if i % 2 else c1).get(key)
            assert g.ok and g.value == "v0"

    proc = sim.process(driver())
    sim.run(until=120.0)
    assert proc.triggered
    stats = cluster.harmonia.stats()
    # Clean-key reads round-robin over every consistent replica ...
    assert stats["balanced_reads"] == 30
    part = cluster.uni_vring.subgroup_of_key(key)
    rs = cluster.partition_map.get(part)
    served = {m: cluster.nodes[m].gets_served.value for m in rs.get_targets()}
    assert all(n > 0 for n in served.values()), served
    # ... and the registry drained: nothing left dirty or pinned.
    assert stats["inflight"] == 0 and stats["pinned"] == 0
    assert cluster.harmonia.dirty_keys() == set()
