"""Acked-durability regression tests (DESIGN.md §5k).

The contract the durability chaos cells enforce at scale, pinned here as
directed single-node scenarios: once a put has been acknowledged to the
client, a power loss on any replica must not lose the value — the node
rebuilds it on restart from the durable image plus WAL replay.
"""

from repro.core import ClusterConfig, NiceCluster


def make_cluster(**kw):
    defaults = dict(n_storage_nodes=6, n_clients=1, replication_level=3)
    defaults.update(kw)
    cluster = NiceCluster(ClusterConfig(**defaults))
    cluster.warm_up()
    return cluster


def replica_set_of(cluster, key):
    part = cluster.uni_vring.subgroup_of_key(key)
    return cluster.partition_map.get(part)


def test_acked_put_survives_replica_power_loss():
    """Power-fail every replica the instant the client ack lands; the
    committed value must survive the cold restarts.  This is the put-path
    audit: the ack implies the log record was forced on R replicas, so
    replay re-commits it even though the object writes and the −L were
    still volatile."""
    cluster = make_cluster()
    client = cluster.clients[0]
    key = "precious"
    rs = replica_set_of(cluster, key)
    members = list(rs.members)
    out = {}

    def driver(sim):
        r = yield client.put(key, "v-acked", 100, max_retries=0)
        out["put"] = r
        # The instant the ack returns: power loss on the whole replica
        # set, before any background flush can widen the durable image.
        for name in members:
            cluster.nodes[name].crash(power_loss=True)
        yield sim.timeout(3.0)  # metadata notices the outage
        for proc in [cluster.nodes[n].restart() for n in members]:
            yield proc
        yield sim.timeout(2.0)  # reconciliation + catch-up settle
        g = yield client.get(key)
        out["get"] = g

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=60.0)

    assert out["put"].ok
    assert out["get"].ok and out["get"].value == "v-acked"
    restored = [n for n in members if cluster.nodes[n].store.get(key)]
    assert restored, "no replica rebuilt the acked value"
    for name in restored:
        node = cluster.nodes[name]
        assert node.store.get(key).value == "v-acked"
        assert node.cold_restarts.value == 1
    # At least one replica had to recover the value from its log (the
    # object write/−L were volatile when the power died).
    assert any(cluster.nodes[n].replayed_commits.value > 0 for n in members)


def test_acked_put_survives_single_secondary_power_loss():
    """One secondary loses power right after the ack; after restart it
    holds the value again (log replay or primary catch-up)."""
    cluster = make_cluster()
    client = cluster.clients[0]
    key = "solo-victim"
    rs = replica_set_of(cluster, key)
    victim = next(n for n in rs.members if n != rs.primary)
    out = {}

    def driver(sim):
        r = yield client.put(key, "v1", 100, max_retries=0)
        out["put"] = r
        cluster.nodes[victim].crash(power_loss=True)
        yield sim.timeout(3.0)
        yield cluster.nodes[victim].restart()
        yield sim.timeout(2.0)
        out["get"] = yield client.get(key)

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=60.0)

    assert out["put"].ok
    assert out["get"].ok and out["get"].value == "v1"
    obj = cluster.nodes[victim].store.get(key)
    assert obj is not None and obj.value == "v1"


def test_unacked_put_may_vanish_but_cluster_stays_consistent():
    """The converse scenario: power dies mid-put (before the ack).  The
    op may commit or abort — either is legal — but after restart all live
    replicas must agree and the client must see a coherent result."""
    cluster = make_cluster()
    client = cluster.clients[0]
    key = "limbo-power"
    rs = replica_set_of(cluster, key)
    members = list(rs.members)
    primary = cluster.nodes[rs.primary]
    out = {}

    # Kill the power on the whole replica set at the timestamp multicast
    # — the client can never have been acked.
    orig_send_ctrl = primary.mc_sender.send_ctrl

    def blackout(*args, **kwargs):
        for name in members:
            cluster.nodes[name].crash(power_loss=True)

    primary.mc_sender.send_ctrl = blackout

    def driver(sim):
        r = yield client.put(key, "maybe", 100, max_retries=0)
        out["put"] = r
        yield sim.timeout(3.0)
        primary.mc_sender.send_ctrl = orig_send_ctrl
        for proc in [cluster.nodes[n].restart() for n in members]:
            yield proc
        yield sim.timeout(2.0)
        out["get"] = yield client.get(key)

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=60.0)

    assert not out["put"].ok  # the ack never reached the client
    values = {
        cluster.nodes[n].store.get(key).value
        for n in members
        if cluster.nodes[n].store.get(key) is not None
    }
    assert len(values) <= 1, f"replicas diverge after restart: {values}"
    if out["get"].ok and out["get"].value is not None:
        assert out["get"].value == "maybe"
