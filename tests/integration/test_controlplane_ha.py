"""Integration: control-plane fault tolerance end to end.

The chaos scenarios drive the full stack — metadata leader crash with a
live workload, standby promotion, epoch-fenced zombie leader, diff-based
switch reconciliation — and the Wing–Gong checker decides whether the
consistency claim survived.  Plus the handoff-exhaustion corner: a
cluster with no spare nodes must still hide a failed node correctly.
"""

import numpy as np

from repro.bench.chaos import chaos_cell
from repro.bench.harness import build_nice
from repro.check import HistoryRecorder, check_linearizable
from repro.core.metadata import DOWN
from repro.workloads.synthetic import keys_in_partition


# -- metadata leader crash under live load -----------------------------------


def test_metadata_failover_chaos_cell():
    """Leader crash at t=2, zombie recovery at t=5.5, workload throughout:
    history linearizable, exactly one promotion + one demotion, the
    returning zombie's flow-mods fenced, and the reconciled tables
    bit-identical to a from-scratch sync."""
    row = chaos_cell("nice", "metadata_failover", duration=8.0, seed=1, standbys=1)
    assert row["linearizable"], row["reason"]
    assert row["family"] == "controlplane"
    cp = row["controlplane"]
    assert cp["promotions"] == 1
    assert cp["demotions"] == 1
    assert cp["epoch_final"] == 2
    # The deposed leader woke up and tried to act: every one of its
    # epoch-1 messages must have been fenced.
    assert cp["fenced_flow_mods"] > 0
    assert cp["membership_fenced"] > 0
    # Takeover reconciliation repaired only differences, and a settled
    # cluster needs nothing.
    assert cp["steady_reconcile"]["installed"] == 0
    assert cp["steady_reconcile"]["deleted"] == 0
    assert cp["reconcile_matches_scratch"]


def test_controller_outage_defers_rejoin_until_reconnect():
    """Controller channel severed while a node rejoins: the leader defers
    the rejoin (visibility flow-mods would be dropped), then completes it
    after reconnect + reconciliation — and the history stays clean."""
    row = chaos_cell("nice", "controller_outage", duration=8.0, seed=1, standbys=1)
    assert row["linearizable"], row["reason"]
    labels = [label for _, label in row["chaos_events"]]
    assert any("controller channel down" in l for l in labels)
    assert any("reconciled" in l for l in labels)
    assert any("consistent" in l for l in labels)  # rejoin did complete
    assert row["controlplane"]["reconcile_matches_scratch"]


# -- satellite: handoff exhaustion -------------------------------------------


def test_handoff_exhaustion_hides_node_and_stays_linearizable():
    """n_storage_nodes == replication_level: every live node already
    serves every partition, so a failure finds zero eligible handoffs.
    The node must still be hidden, a surviving member promoted, and gets
    must stay linearizable on the reduced replica set."""
    cluster = build_nice(n_storage_nodes=3, n_clients=2, replication_level=3)
    sim = cluster.sim
    keys = keys_in_partition(0, cluster.config.n_partitions, 3)
    recorder = HistoryRecorder()
    for client in cluster.clients:
        recorder.attach(client)
    writer, reader = cluster.clients

    def write_loop(stream):
        seq = 0
        while sim.now < 6.0:
            yield sim.timeout(stream.exponential(0.03))
            seq += 1
            yield writer.put(keys[seq % len(keys)], f"w:{seq}", 1000, max_retries=1)

    def read_loop(stream):
        while sim.now < 6.0:
            yield sim.timeout(stream.exponential(0.03))
            yield reader.get(keys[int(stream.integers(len(keys)))], max_retries=1)

    victim = cluster.partition_map.get(0).primary
    sim.process(write_loop(np.random.default_rng(11)))
    sim.process(read_loop(np.random.default_rng(22)))
    sim.call_in(2.0, cluster.nodes[victim].crash)
    sim.run(until=6.0)

    assert cluster.metadata.status[victim] == DOWN
    for rs in cluster.partition_map.partitions_of(victim):
        assert victim in rs.absent          # hidden despite no handoff
        assert rs.handoffs == []            # nothing eligible to install
        assert rs.primary != victim         # surviving member promoted
        assert cluster.metadata.status[rs.primary] == "up"
        targets = rs.get_targets()
        assert victim not in targets
        assert len(targets) == 2            # the two survivors, no more
    result = check_linearizable(recorder.ops)
    assert result.ok, result.reason
    assert sum(1 for op in recorder.ops if op.ok) > 100
