"""Integration: a whole rack isolated mid-workload on the leaf–spine fabric.

The fabric-scale Jepsen loop (DESIGN.md §5h): `rack_isolate` cuts every
uplink of one leaf, stranding its hosts — including any handoffs living
there — mid-2PC.  After heal + rejoin the recorded history must still be
linearizable (uncovered partitions are repaired by full fetch, see
ReplicaSet.uncovered), and diff-based switch reconciliation must converge
to exactly the tables a from-scratch sync would install.
"""

from repro.bench.figures import scale_chaos_cell
from repro.chaos import FaultSchedule


def test_rack_isolate_stays_linearizable_and_reconciles():
    row = scale_chaos_cell(
        racks=4, hosts_per_rack=4, n_clients=4, budget=1024,
        duration=8.0, seed=11,
    )["rows"][0]
    assert row["linearizable"], row["reason"]
    assert row["ok_ops"] > 50
    # Diff-based reconcile after heal == from-scratch sync, on every switch.
    assert row["reconcile_matches_scratch"]
    # Steady state after heal + rejoin settled: the diff pass repairs
    # whatever the outage left behind, but never deletes live state twice.
    steady = row["steady_reconcile"]
    assert set(steady) >= {"installed", "deleted", "matched"}
    assert steady["matched"] > 0
    # Rule budgets held throughout.
    assert row["budget_ok"], (row["max_switch_rules"], row["rule_budget"])
    labels = [label for _, label in row["chaos_events"]]
    assert any("isolat" in l for l in labels), labels
    assert any("heal" in l for l in labels), labels


def test_rack_isolate_schedule_names_leaf_uplinks():
    sched = FaultSchedule.rack_outage(rack=1, start=2.0, heal_at=5.0)
    kinds = [e.kind for e in sched.events]
    assert kinds == ["rack_isolate", "rack_heal"]
    for event in sched.events:
        assert event.target == "rack:1"
