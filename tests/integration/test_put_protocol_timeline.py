"""Integration: the NICE-2PC put follows Figure 3's message sequence.

We instrument one replica set and assert the ordering:
multicast data → (+L, W, ack1) on each replica → timestamp multicast →
(−L, ack2) → client ack; locks held exactly between data and timestamp.
"""

from repro.core import ClusterConfig, NiceCluster


def test_put_protocol_message_sequence():
    cluster = NiceCluster(ClusterConfig(n_storage_nodes=5, n_clients=1, replication_level=3))
    cluster.warm_up()
    client = cluster.clients[0]
    key = "fig3"
    partition = cluster.mc_vring.subgroup_of_key(key)
    replicas = cluster.replica_nodes(key)
    primary = cluster.node_of_partition(partition)
    secondaries = [n for n in replicas if n is not primary]

    events = []

    # Instrument multicast endpoints (data + commit receptions).
    for node in replicas:
        orig_put = node.mc_endpoint.messages.put

        def tap(msg, node=node, orig=orig_put):
            body = getattr(msg, "payload", None) or {}
            if body.get("type") == "put":
                events.append((node.sim.now, node.name, "mc_data"))
            elif body.get("type") == "commit":
                events.append((node.sim.now, node.name, "commit"))
            orig(msg)

        node.mc_endpoint.messages.put = tap

    # Instrument WAL appends/removals (+L / −L).
    for node in replicas:
        orig_append = node.wal.append
        orig_remove = node.wal.remove

        def tapped_append(rec, node=node, orig=orig_append):
            events.append((node.sim.now, node.name, "+L"))
            return orig(rec)

        def tapped_remove(op, node=node, orig=orig_remove):
            events.append((node.sim.now, node.name, "-L"))
            return orig(op)

        node.wal.append = tapped_append
        node.wal.remove = tapped_remove

    done = {}

    def driver(sim):
        done["result"] = yield client.put(key, "v", 1000)
        events.append((sim.now, "client", "acked"))

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=10.0)

    assert done["result"].ok
    by_kind = {}
    for t, who, kind in events:
        by_kind.setdefault(kind, []).append((t, who))

    # Every replica received the data exactly once, via one multicast.
    assert len(by_kind["mc_data"]) == 3
    assert {w for _, w in by_kind["mc_data"]} == {n.name for n in replicas}

    # +L on all replicas strictly after data arrival, before any commit.
    assert len(by_kind["+L"]) == 3
    first_commit = min(t for t, _ in by_kind["commit"])
    assert max(t for t, _ in by_kind["+L"]) <= first_commit

    # Commit (timestamp multicast) reached the secondaries.
    commit_receivers = {w for _, w in by_kind["commit"]}
    for s in secondaries:
        assert s.name in commit_receivers

    # −L after the *local* commit: the primary unlogs when it sends the
    # timestamp; each secondary unlogs after receiving it.
    assert len(by_kind["-L"]) == 3
    commit_at = {w: t for t, w in by_kind["commit"]}
    for t, who in by_kind["-L"]:
        if who != primary.name:
            assert t >= commit_at[who]
    client_ack = by_kind["acked"][0][0]
    assert client_ack >= max(t for t, _ in by_kind["-L"]) - 1e-9


def test_locks_held_exactly_between_data_and_commit():
    cluster = NiceCluster(ClusterConfig(n_storage_nodes=5, n_clients=1, replication_level=3))
    cluster.warm_up()
    client = cluster.clients[0]
    key = "locked"
    replicas = cluster.replica_nodes(key)
    samples = []

    def sampler(sim):
        while True:
            samples.append((sim.now, [len(n.locks) for n in replicas]))
            yield sim.timeout(0.0002)

    cluster.sim.process(sampler(cluster.sim))
    done = {}

    def driver(sim):
        done["r"] = yield client.put(key, "v", 500_000)

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=5.0)
    assert done["r"].ok
    # Locks were observed held at some point, and all released at the end.
    assert any(any(c > 0 for c in counts) for _, counts in samples)
    assert all(len(n.locks) == 0 for n in replicas)
