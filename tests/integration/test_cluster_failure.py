"""§4.4 complete-cluster-failure recovery: "In case of a complete cluster
failure, in which all in-memory locks are lost, the persistent logs on the
nodes will identify the latest put operations. The new primary will check
them all using the rules above."
"""

import pytest

from repro.core import ClusterConfig, NiceCluster
from repro.kv import PutStamp, StoredObject


def make_cluster(**kw):
    defaults = dict(n_storage_nodes=6, n_clients=2, replication_level=3)
    defaults.update(kw)
    cluster = NiceCluster(ClusterConfig(**defaults))
    cluster.warm_up()
    return cluster


def crash_all(cluster, names):
    for n in names:
        cluster.nodes[n].crash()


def restart_all(cluster, names):
    return [cluster.nodes[n].restart() for n in names]


def test_uncommitted_logged_op_aborted_after_full_restart():
    """Data multicast landed (logged everywhere) but the timestamp never
    went out — after a whole-replica-set crash and restart, the log-driven
    reconciliation aborts the op and clears every log."""
    cluster = make_cluster()
    client = cluster.clients[0]
    key = "limbo"
    part = cluster.uni_vring.subgroup_of_key(key)
    rs = cluster.partition_map.get(part)
    primary_name = rs.primary  # snapshot: failure handling repoints rs.primary
    primary = cluster.nodes[primary_name]
    members = list(rs.members)

    # Make the primary crash the instant it would multicast the timestamp.
    orig_send_ctrl = primary.mc_sender.send_ctrl

    def crash_instead(*args, **kwargs):
        primary.crash()

    primary.mc_sender.send_ctrl = crash_instead
    out = {}

    def driver(sim):
        r = yield client.put(key, "v", 100, max_retries=0)
        out["first_put"] = r
        # Secondaries hold locks + logs now; crash them too (complete
        # failure of the replica set).
        crash_all(cluster, [m for m in members if m != primary_name])
        yield sim.timeout(3.0)  # metadata notices everyone is gone
        primary.mc_sender.send_ctrl = orig_send_ctrl
        for proc in restart_all(cluster, members):
            yield proc
        yield sim.timeout(2.0)  # reconciliation runs on the restored primary

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=60.0)
    assert not out["first_put"].ok  # the interrupted put failed at the client
    for name in members:
        node = cluster.nodes[name]
        assert len(node.wal) == 0, f"{name} still holds log records"
        assert len(node.locks) == 0
        assert node.store.get(key) is None  # aborted, never visible


def test_committed_somewhere_commits_everywhere_after_full_restart():
    """If any replica's store holds the committed version, the §4.4 rule
    commits the logged op on every replica after restart."""
    cluster = make_cluster()
    key = "evident"
    part = cluster.uni_vring.subgroup_of_key(key)
    rs = cluster.partition_map.get(part)
    members = list(rs.members)
    nodes = [cluster.nodes[n] for n in members]
    primary, secondaries = nodes[0] if members[0] == rs.primary else None, None
    primary = cluster.nodes[rs.primary]
    secondaries = [n for n in nodes if n is not primary]

    # Hand-craft the crash state: the op is logged on all replicas, and one
    # secondary already committed (it received the timestamp; the others
    # and the primary crashed first).
    from repro.kv import LogRecord

    op_id = ("10.20.0.0", 999)
    stamp = PutStamp(str(primary.ip), 1.0, "10.20.0.0", 0.5)

    def stage(sim):
        for node in nodes:
            yield node.wal.append(
                LogRecord(
                    op_id, key, 100, "10.20.0.0", 0.5,
                    value="v-committed", client_port=7300, partition=part,
                )
            )
        witness = secondaries[0]
        witness.store.put(StoredObject(key, "v-committed", 100, stamp))
        witness.wal.remove(op_id)

    cluster.sim.process(stage(cluster.sim))
    cluster.sim.run(until=cluster.sim.now + 1.0)

    def scenario(sim):
        crash_all(cluster, members)
        yield sim.timeout(3.0)
        # Secondaries (including the commit witness) come back first; the
        # primary rejoins last, so its §4.4 reconciliation can actually
        # reach the evidence.  (Reconciling while the witness is down is
        # 2PC's classic blocking dilemma — the paper hides failed nodes, it
        # does not solve that.)
        secondaries_first = [m for m in members if m != primary.name] + [primary.name]
        for name in secondaries_first:
            yield cluster.nodes[name].restart()
        yield sim.timeout(2.0)

    cluster.sim.process(scenario(cluster.sim))
    cluster.sim.run(until=60.0)

    for node in nodes:
        obj = node.store.get(key)
        assert obj is not None, f"{node.name} missing the committed object"
        assert obj.value == "v-committed"
        assert len(node.wal) == 0
        assert len(node.locks) == 0

    # And the system still serves the key.
    out = {}

    def reader(sim):
        out["get"] = yield cluster.clients[0].get(key)

    cluster.sim.process(reader(cluster.sim))
    cluster.sim.run(until=cluster.sim.now + 10.0)
    assert out["get"].ok and out["get"].value == "v-committed"


def test_system_operational_after_complete_cluster_restart():
    cluster = make_cluster()
    client = cluster.clients[0]
    all_nodes = list(cluster.nodes)
    out = {}

    def driver(sim):
        yield client.put("before", "v1", 100)
        crash_all(cluster, all_nodes)
        yield sim.timeout(3.0)
        for proc in restart_all(cluster, all_nodes):
            yield proc
        yield sim.timeout(2.0)
        out["get"] = yield client.get("before")
        out["put"] = yield client.put("after", "v2", 100)

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=120.0)
    assert out["get"].ok and out["get"].value == "v1"
    assert out["put"].ok
