"""Integration: chaos schedules + history checking on real clusters.

The Jepsen-style closing of the loop: every scenario runs a live cluster
under fault injection with the op history recorded, then the checkers
decide whether the consistency claim held.  NICE and honestly configured
NOOB must verify; the weak NOOB configuration must be *caught*.
"""

import numpy as np
import pytest

from repro.bench.chaos import run_case
from repro.bench.harness import build_nice, build_noob, run_to_completion
from repro.chaos import ChaosEngine, FaultSchedule
from repro.check import HistoryRecorder, check_linearizable, check_monotonic
from repro.workloads.synthetic import keys_in_partition


# -- the Fig-11 scenario, now *verified* rather than just plotted ------------------


def test_fig11_timeline_history_is_linearizable():
    """Secondary crash + two-stage rejoin (the Fig 11 fault scenario):
    the recorded history must be linearizable and the engine must log the
    crash → restart → consistent progression in order."""
    row = run_case("nice", FaultSchedule.crash_rejoin("k0", 2.0, 5.0), seed=7, duration=8.0)
    assert row["linearizable"], row["reason"]
    assert row["monotonic_ok"]
    labels = [label for _, label in row["chaos_events"]]
    assert any("crashes" in l for l in labels)
    assert any("restarts" in l for l in labels)
    assert any("consistent" in l for l in labels)
    # Two-stage rejoin: "consistent" strictly after "restarts".
    times = dict((label.split()[-1], t) for t, label in row["chaos_events"])
    assert times["consistent"] >= times["restarts"]
    assert row["ok_ops"] > 100


# -- crash during the 2PC prepare window -------------------------------------------


def _crash_mid_put(cluster, keys, victim_name, n_background=40):
    """Issue a put and crash ``victim_name`` 300 µs later — inside the
    prepare/ack window — then keep traffic flowing and rejoin the node."""
    sim = cluster.sim
    recorder = HistoryRecorder()
    client = cluster.clients[0]
    reader = cluster.clients[1 % len(cluster.clients)]
    recorder.attach(client, reader)
    victim = cluster.nodes[victim_name]

    def driver():
        r = yield client.put(keys[0], "w:0", 1000)
        assert r.ok
        # The straddling put: crash fires while its 2PC is in flight.
        sim.call_in(300e-6, victim.crash)
        yield client.put(keys[0], "w:1", 1000, max_retries=2)
        for i in range(n_background):
            yield sim.timeout(0.02)
            if i % 3 == 0:
                yield client.put(keys[0], f"w:{i + 2}", 1000, max_retries=1)
            else:
                yield reader.get(keys[0], max_retries=1)
        proc = victim.restart()
        if proc is not None:
            yield proc
        for i in range(10):
            yield sim.timeout(0.02)
            yield reader.get(keys[0], max_retries=1)

    run_to_completion(cluster, sim.process(driver()), horizon_s=300.0)
    return recorder


def test_nice_crash_during_2pc_prepare():
    cluster = build_nice(n_storage_nodes=6, n_clients=2, seed=11)
    keys = keys_in_partition(0, cluster.config.n_partitions, 1)
    rs = cluster.partition_map.get(0)
    victim = [m for m in rs.members if m != rs.primary][0]
    recorder = _crash_mid_put(cluster, keys, victim)
    result = check_linearizable(recorder.ops)
    assert result.ok, result.describe()
    assert check_monotonic(recorder.ops).ok


def test_noob_quorum_crash_during_put():
    cluster = build_noob(
        n_storage_nodes=6, n_clients=2, seed=11, access="rac", consistency="quorum"
    )
    keys = keys_in_partition(0, cluster.config.n_partitions, 1)
    rs = cluster.partition_map.get(0)
    victim = [m for m in rs.members if m != rs.primary][0]
    # Quorum reads probe the (dead) first peer with a 2 s timeout each, so
    # keep the degraded window short to bound sim time.
    recorder = _crash_mid_put(cluster, keys, victim, n_background=12)
    result = check_linearizable(recorder.ops)
    assert result.ok, result.describe()


# -- partition then rejoin ----------------------------------------------------------


@pytest.mark.parametrize("mode", ["nice", "rac-quorum"])
def test_partition_then_rejoin_verifies(mode):
    row = run_case(mode, FaultSchedule.partition_rejoin("k0", 2.0, 5.0), seed=3, duration=8.0)
    assert row["linearizable"], row["reason"]
    labels = [label for _, label in row["chaos_events"]]
    assert any("partitioned" in l for l in labels)
    assert any("healed" in l for l in labels)


# -- the weak configuration must be caught ------------------------------------------


def test_noob_primary_round_robin_under_partition_is_caught():
    """Primary-only replication + round-robin reads: during an asymmetric
    partition the stale secondary keeps serving clients — the checker must
    find the violation and shrink it to a small counterexample."""
    row = run_case(
        "rac-weak", FaultSchedule.partition_rejoin("k0", 2.0, 5.0), seed=1, duration=8.0
    )
    assert not row["linearizable"]
    assert not row["monotonic_ok"]  # even the cheap screen sees it
    # Minimal counterexample: a handful of ops, at least one stale get.
    assert 2 <= len(row["violation"]) <= 6
    assert any("get(" in v for v in row["violation"])
    assert any("put(" in v for v in row["violation"])


# -- NICE across schedules × seeds (the headline acceptance matrix) -----------------


@pytest.mark.parametrize(
    "schedule",
    ["crash_rejoin", "primary_crash", "partition_rejoin"],
)
@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_nice_matrix_linearizable(schedule, seed):
    builders = {
        "crash_rejoin": FaultSchedule.crash_rejoin,
        "primary_crash": FaultSchedule.primary_crash,
        "partition_rejoin": FaultSchedule.partition_rejoin,
    }
    row = run_case("nice", builders[schedule]("k0", 2.0, 5.0), seed=seed, duration=8.0)
    assert row["linearizable"], f"{schedule}/seed{seed}: {row['reason']}"
    assert not row["inconclusive"]
    assert row["n_ops"] > 200


def test_released_handoff_forwards_instead_of_miss():
    """Regression for a bug this suite caught: when a node is released
    from handoff duty its membership slice updates before the switch's LB
    flow-mods re-sync, and a get routed there in that window used to be
    answered as an authoritative miss from the wrong store.  The node must
    forward to the primary instead (§4.3: only consistent replicas
    answer).  seed 3 deterministically lands a get in the window."""
    row = run_case("nice", FaultSchedule.crash_rejoin("k0"), seed=3, duration=10.0)
    assert row["linearizable"], row["reason"]
    assert row["monotonic_ok"]


# -- determinism of a whole chaos case ---------------------------------------------


def test_chaos_case_reproducible():
    """(seed, schedule) fully determines a case, histories included."""
    a = run_case("nice", FaultSchedule.partition_rejoin("k0"), seed=9, duration=6.0)
    b = run_case("nice", FaultSchedule.partition_rejoin("k0"), seed=9, duration=6.0)
    assert a["chaos_events"] == b["chaos_events"]
    assert a["n_ops"] == b["n_ops"]
    assert a["states"] == b["states"]


def test_engine_resolves_targets_at_fire_time():
    """After the primary crashes, a later 'primary:<key>' event must hit
    the *promoted* primary, not the dead one — and paired recovery events
    must reuse the binding of the outage they heal."""
    cluster = build_nice(n_storage_nodes=6, n_clients=1, seed=5)
    keys = keys_in_partition(0, cluster.config.n_partitions, 1)
    rs = cluster.partition_map.get(0)
    old_primary = rs.primary
    schedule = FaultSchedule(
        "two-crashes",
        (
            # crash the primary; detection promotes a replica
            FaultSchedule.primary_crash(keys[0], 1.0, 4.0).events[0],
            # crash the (new) primary as well
            FaultSchedule.primary_crash(keys[0], 3.0, 5.0).events[0],
            # both rejoin
            FaultSchedule.primary_crash(keys[0], 1.0, 4.0).events[1],
            FaultSchedule.primary_crash(keys[0], 3.0, 5.0).events[1],
        ),
    )
    engine = ChaosEngine(cluster, schedule, seed=0)
    engine.start()
    cluster.sim.run(until=6.0)
    crashed = [l.split()[0] for _, l in engine.events if "crashes" in l]
    restarted = [l.split()[0] for _, l in engine.events if "restarts" in l]
    assert len(crashed) == 2
    assert crashed[0] == old_primary
    assert crashed[1] != old_primary  # fire-time resolution saw the promotion
    assert sorted(restarted) == sorted(crashed)  # bindings paired correctly
