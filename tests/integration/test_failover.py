"""Integration: primary failure, promotion, lock reconciliation, recovery."""

from repro.core import ClusterConfig, NiceCluster


def make_cluster(**kw):
    defaults = dict(n_storage_nodes=6, n_clients=2, replication_level=3)
    defaults.update(kw)
    cluster = NiceCluster(ClusterConfig(**defaults))
    cluster.warm_up()
    return cluster


def test_primary_failure_promotes_secondary_and_system_recovers():
    cluster = make_cluster()
    client = cluster.clients[0]
    key = "promote-me"
    part = cluster.uni_vring.subgroup_of_key(key)
    out = {}

    def driver(sim):
        yield client.put(key, "v1", 100)
        rs = cluster.partition_map.get(part)
        old_primary = rs.primary
        out["old_primary"] = old_primary
        cluster.nodes[old_primary].crash()
        yield sim.timeout(2.5)  # heartbeat detection
        rs = cluster.partition_map.get(part)
        out["new_primary"] = rs.primary
        # System keeps serving puts and gets under the new primary.
        out["put2"] = yield client.put(key, "v2", 100)
        out["get"] = yield client.get(key)

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=30.0)
    assert out["new_primary"] != out["old_primary"]
    assert out["put2"].ok
    assert out["get"].ok and out["get"].value == "v2"


def test_failed_primary_rejoins_and_resumes_role():
    cluster = make_cluster()
    client = cluster.clients[0]
    key = "resume-role"
    part = cluster.uni_vring.subgroup_of_key(key)
    out = {}

    def driver(sim):
        yield client.put(key, "v1", 100)
        rs = cluster.partition_map.get(part)
        original = rs.primary
        out["original"] = original
        node = cluster.nodes[original]
        node.crash()
        yield sim.timeout(2.5)
        out["put_during"] = yield client.put(key, "v2", 100)
        yield node.restart()
        yield sim.timeout(1.0)
        rs = cluster.partition_map.get(part)
        out["final_primary"] = rs.primary
        # The recovered node must have the version written while it was down.
        out["recovered_value"] = node.store.get(key)

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=60.0)
    assert out["put_during"].ok
    assert out["final_primary"] == out["original"]
    assert out["recovered_value"] is not None
    assert out["recovered_value"].value == "v2"


def test_reconciliation_aborts_ops_locked_everywhere():
    """Primary dies after data multicast but before the timestamp: the
    object is locked on all secondaries with no commit evidence ⇒ the new
    primary aborts it (§4.4)."""
    cluster = make_cluster()
    client = cluster.clients[0]
    key = "abort-me"
    part = cluster.uni_vring.subgroup_of_key(key)
    rs = cluster.partition_map.get(part)
    primary = cluster.nodes[rs.primary]

    # Make the primary crash the moment it would coordinate: drop its
    # multicast deliveries so it never sees the put, then crash it.
    primary.crash()
    out = {}

    def driver(sim):
        # Client put: data reaches the two live secondaries, which lock and
        # wait for a commit that never comes.
        out["put"] = yield client.put(key, "v", 100, max_retries=6)

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=40.0)
    # Eventually the failure was detected, a new primary promoted, locks
    # reconciled, and the retried put succeeded.
    assert out["put"].ok
    rs = cluster.partition_map.get(part)
    for name in rs.get_targets():
        node = cluster.nodes[name]
        assert len(node.locks) == 0
        obj = node.store.get(key) or node.store.get_handoff(key)
        assert obj is not None and obj.value == "v"


def test_multiple_failures_tolerated_with_original_survivor():
    """§4.4: the system handles multiple failures as long as one original
    member of the region survives."""
    cluster = make_cluster(n_storage_nodes=8)
    client = cluster.clients[0]
    key = "multi-fail"
    part = cluster.uni_vring.subgroup_of_key(key)
    out = {}

    def driver(sim):
        yield client.put(key, "v1", 100)
        rs = cluster.partition_map.get(part)
        victims = rs.members[1:]  # keep the original primary only
        for v in victims:
            cluster.nodes[v].crash()
        yield sim.timeout(3.0)
        out["put"] = yield client.put(key, "v2", 100)
        out["get"] = yield client.get(key)

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=60.0)
    assert out["put"].ok
    assert out["get"].ok and out["get"].value == "v2"
