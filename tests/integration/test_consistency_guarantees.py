"""Sequential-consistency observations under concurrency and load
balancing: once any client reads version N of a key, no later read (by any
client) may return an older version — the guarantee NICE's 2PC + LB
routing must jointly provide (§3.3, §4.5)."""

import pytest

from repro.core import ClusterConfig, NiceCluster


def run_monotonic_reads_check(cluster, key, n_versions=20, readers=4):
    """One writer bumps the version; readers verify monotonicity."""
    sim = cluster.sim
    violations = []
    latest_read = {"v": -1}
    done = {"writer": False}

    def writer(client):
        for v in range(n_versions):
            r = yield client.put(key, v, 512)
            assert r.ok, f"put of version {v} failed"
        done["writer"] = True

    def reader(client):
        last = -1
        while not done["writer"]:
            r = yield client.get(key)
            if r.ok:
                v = r.value
                if v < last:
                    violations.append((client.host.name, last, v))
                last = max(last, v)
                if v > latest_read["v"]:
                    latest_read["v"] = v

    sim.process(writer(cluster.clients[0]))
    for c in cluster.clients[1 : readers + 1]:
        sim.process(reader(c))
    sim.run(until=60.0)
    return violations, latest_read["v"]


def test_reads_are_monotonic_per_reader_under_lb():
    cluster = NiceCluster(
        ClusterConfig(n_storage_nodes=8, n_clients=6, replication_level=3)
    )
    cluster.warm_up()
    violations, latest = run_monotonic_reads_check(cluster, "versioned")
    assert violations == [], f"stale reads observed: {violations}"
    assert latest >= 0  # readers actually observed data


def test_reads_are_monotonic_across_secondary_failure():
    cluster = NiceCluster(
        ClusterConfig(n_storage_nodes=8, n_clients=6, replication_level=3)
    )
    cluster.warm_up()
    key = "versioned-ft"
    part = cluster.uni_vring.subgroup_of_key(key)
    rs = cluster.partition_map.get(part)
    victim = [m for m in rs.members if m != rs.primary][0]
    cluster.sim.call_in(0.05, cluster.nodes[victim].crash)
    violations, latest = run_monotonic_reads_check(cluster, key, n_versions=30)
    assert violations == [], f"stale reads across failure: {violations}"


def test_all_replicas_converge_to_writer_order():
    """After a burst of concurrent writers, every replica holds the same
    final version (the commit stamps impose one order, §4.3)."""
    cluster = NiceCluster(
        ClusterConfig(n_storage_nodes=8, n_clients=4, replication_level=3)
    )
    cluster.warm_up()
    key = "contested"

    def writer(client, tag):
        for i in range(10):
            yield client.put(key, f"{tag}-{i}", 256)

    procs = [
        cluster.sim.process(writer(c, c.host.name)) for c in cluster.clients
    ]
    cluster.sim.run(until=60.0)
    values = {n.name: n.store.get(key).value for n in cluster.replica_nodes(key)}
    assert len(set(values.values())) == 1, f"diverged: {values}"
    stamps = {n.store.get(key).stamp for n in cluster.replica_nodes(key)}
    assert len(stamps) == 1
