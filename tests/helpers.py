"""Shared test fixtures: a star topology with static L3 forwarding."""

from repro.net import (
    Bucket,
    Group,
    Host,
    IPv4Address,
    MacAddress,
    Match,
    Network,
    OpenFlowSwitch,
    Output,
    Rule,
    SetEthDst,
    SetIpDst,
)
from repro.sim import Simulator
from repro.transport import ProtocolStack


class Star:
    """N hosts on one switch, exact-match L3 rules pre-installed."""

    def __init__(self, n_hosts=4, bandwidth_bps=1e9, latency_s=50e-6, sim=None):
        self.sim = sim or Simulator()
        self.net = Network(self.sim)
        self.switch = OpenFlowSwitch(self.sim, "sw")
        self.net.register(self.switch)
        self.hosts = []
        self.stacks = []
        for i in range(n_hosts):
            host = Host(
                self.sim,
                f"h{i}",
                IPv4Address(f"10.0.0.{i + 1}"),
                MacAddress(0x020000000001 + i),
            )
            self.net.register(host)
            self.net.connect(self.switch, host, bandwidth_bps, latency_s)
            self.hosts.append(host)
            self.stacks.append(ProtocolStack(self.sim, host))
        for host in self.hosts:
            self.switch.install_rule(
                Rule(Match(ip_dst=host.ip), [Output(self.port_of(host))], priority=10)
            )

    def port_of(self, host):
        link = self.net.link_between(self.switch, host)
        return (link.a if link.a.device is self.switch else link.b).number

    def add_multicast_group(self, group_id, vprefix, receivers):
        """Map a virtual prefix to a switch multicast group over receivers."""
        buckets = [
            Bucket(actions=(SetIpDst(h.ip), SetEthDst(h.mac)), port=self.port_of(h))
            for h in receivers
        ]
        self.switch.install_group(Group(group_id, buckets))
        from repro.net import OutputGroup

        self.switch.install_rule(
            Rule(Match(ip_dst=vprefix), [OutputGroup(group_id)], priority=50)
        )

    def link_of(self, host):
        return self.net.link_between(self.switch, host)
