"""Exporter tests: Chrome trace validity and JSONL round-tripping."""

import json

from repro.obs import Tracer, chrome_trace, install, jsonl_lines, write_chrome_trace, write_jsonl
from repro.sim import Simulator


def sample_tracer(label="run"):
    sim = Simulator()
    tracer = install(sim, label=label)
    op = ("10.0.0.9", 1)
    span = tracer.begin("put", "op", node="c0", op=op, key="k")
    sim._now = 0.001
    tracer.instant("rule_hit", "switch", node="sw", op=op, cookie="uni:0")
    sim._now = 0.002
    tracer.instant("node down", "fault", node="chaos")
    sim._now = 0.003
    tracer.begin("idle", "proc", node="n1").end()  # uncorrelated duration
    sim._now = 0.004
    span.end(status="ok")
    return tracer


def test_chrome_trace_structure():
    doc = chrome_trace([sample_tracer()])
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    # Metadata rows: process name/sort + thread name/sort per component.
    meta = [e for e in events if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    assert names == {"run"}
    threads = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert threads == {"c0", "sw", "chaos", "n1"}
    # Op-correlated spans are async pairs sharing the stringified op id.
    b = next(e for e in events if e["ph"] == "b")
    e_ = next(e for e in events if e["ph"] == "e")
    assert b["id"] == e_["id"] == "10.0.0.9/1"
    assert b["ts"] == 0.0 and e_["ts"] == 4000.0  # microseconds of sim time
    # Fault instants are global-scope, others thread-scope.
    instants = {e["name"]: e["s"] for e in events if e["ph"] == "i"}
    assert instants == {"rule_hit": "t", "node down": "g"}
    # Uncorrelated spans stay plain duration events.
    assert [e["name"] for e in events if e["ph"] in ("B", "E")] == ["idle", "idle"]


def test_chrome_trace_balanced_and_multi_run_pids():
    t1, t2 = sample_tracer("a"), sample_tracer("b")
    events = chrome_trace([t1, t2])["traceEvents"]
    assert {e["pid"] for e in events} == {1, 2}
    for ph_open, ph_close in (("b", "e"), ("B", "E")):
        opens = [e for e in events if e["ph"] == ph_open]
        closes = [e for e in events if e["ph"] == ph_close]
        assert len(opens) == len(closes) > 0


def test_write_chrome_trace_is_strict_json(tmp_path):
    path = tmp_path / "out.trace.json"
    n = write_chrome_trace(str(path), [sample_tracer()])
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == n
    required = {"name", "ph", "pid", "tid", "ts"}
    for event in doc["traceEvents"]:
        if event["ph"] != "M":
            assert required <= set(event)


def test_jsonl_round_trip(tmp_path):
    tracer = sample_tracer("jr")
    path = tmp_path / "out.jsonl"
    n = write_jsonl(str(path), [tracer])
    lines = path.read_text().splitlines()
    assert len(lines) == n == len(tracer.events)
    rows = [json.loads(line) for line in lines]
    assert all(row["run"] == "jr" for row in rows)
    assert rows[0]["name"] == "put" and rows[0]["ph"] == "B"
    assert rows[0]["op"] == ["10.0.0.9", 1]
    assert rows[-1]["args"] == {"status": "ok"}


def test_export_is_deterministic():
    """Two identically-driven tracers must export byte-identical JSON."""
    a = json.dumps(chrome_trace([sample_tracer()]), sort_keys=True)
    b = json.dumps(chrome_trace([sample_tracer()]), sort_keys=True)
    assert a == b
    assert list(jsonl_lines([sample_tracer()])) == list(jsonl_lines([sample_tracer()]))


def test_chaos_faults_export_as_global_instants():
    """A chaos-injected fault must surface in the Chrome export as a
    global-scope instant, visible across the whole timeline."""
    from repro.chaos import ChaosEngine, FaultEvent, FaultSchedule
    from repro.core import ClusterConfig, NiceCluster

    cluster = NiceCluster(ClusterConfig(n_storage_nodes=6, n_clients=1))
    cluster.warm_up()
    tracer = install(cluster.sim, label="chaos-run")
    schedule = FaultSchedule(
        "crash_one",
        (FaultEvent.make(0.05, "crash", "node:n0"),),
    )
    ChaosEngine(cluster, schedule, seed=7).start()
    cluster.sim.run(until=0.2)

    faults = [ev for ev in tracer.events if ev.cat == "fault"]
    assert faults and faults[0].ph == "i"
    events = chrome_trace([tracer])["traceEvents"]
    exported = [
        e for e in events if e["ph"] == "i" and e.get("cat") == "fault"
    ]
    assert exported, "fault marker missing from Chrome export"
    assert all(e["s"] == "g" for e in exported)
