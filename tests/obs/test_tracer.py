"""Tracer unit tests: the determinism contract, spans, op correlation."""

import pytest

from repro.obs import Span, Tracer, install, packet_op, uninstall
from repro.sim import Simulator


def make_tracer():
    sim = Simulator()
    return sim, install(sim, label="t")


def test_install_and_uninstall():
    sim = Simulator()
    assert sim.tracer is None  # null tracer by default: hooks are no-ops
    tracer = install(sim, label="x")
    assert sim.tracer is tracer
    assert uninstall(sim) is tracer
    assert sim.tracer is None


def test_instant_records_sim_time():
    sim, tracer = make_tracer()

    def proc():
        yield sim.timeout(1.5)
        sim.tracer.instant("tick", "test", node="n1", op=("c", 1), depth=3)

    sim.process(proc())
    sim.run()
    # The kernel itself contributes spawn/wake instants (cat "proc").
    assert all(ev.cat == "proc" for ev in tracer.events if ev.cat != "test")
    (ev,) = [ev for ev in tracer.events if ev.cat == "test"]
    assert (ev.ts, ev.ph, ev.name, ev.cat, ev.node) == (1.5, "i", "tick", "test", "n1")
    assert ev.op == ("c", 1)
    assert ev.args == {"depth": 3}


def test_span_end_is_idempotent():
    """Protocol coroutines have many exit paths; a double end() must
    record exactly one E event."""
    sim, tracer = make_tracer()
    span = tracer.begin("op", "test", node="n1", op=("c", 1))
    span.end(status="ok")
    span.end(status="late-duplicate")
    phases = [ev.ph for ev in tracer.events]
    assert phases == ["B", "E"]
    assert tracer.events[1].args == {"status": "ok"}


def test_span_context_manager_closes_on_exception():
    sim, tracer = make_tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("risky", "test", node="n1"):
            raise RuntimeError("boom")
    assert [ev.ph for ev in tracer.events] == ["B", "E"]


def test_spans_pair_nested_same_key_lifo():
    sim, tracer = make_tracer()
    outer = tracer.begin("put", "op", node="c0", op=("c", 1))
    sim._now = 1.0  # advance sim time directly; unit test, no processes
    inner = tracer.begin("put", "op", node="c0", op=("c", 1))
    sim._now = 2.0
    inner.end()
    sim._now = 3.0
    outer.end()
    pairs = tracer.spans("put")
    assert [(b.ts, e.ts) for b, e in pairs] == [(0.0, 3.0), (1.0, 2.0)]


def test_spans_omit_unclosed_and_filter_by_name():
    sim, tracer = make_tracer()
    tracer.begin("orphan", "op", node="c0")
    with tracer.span("kept", "op", node="c0"):
        pass
    assert tracer.spans("orphan") == []
    assert len(tracer.spans("kept")) == 1
    assert len(tracer.spans()) == 1


def test_by_op_collects_cross_component_events():
    sim, tracer = make_tracer()
    op = ("10.0.0.1", 7)
    tracer.begin("put", "op", node="c0", op=op).end()
    tracer.instant("rule_hit", "switch", node="sw", op=op)
    tracer.instant("unrelated", "switch", node="sw", op=("10.0.0.1", 8))
    events = tracer.by_op(op)
    assert [(ev.ph, ev.name) for ev in events] == [
        ("B", "put"), ("E", "put"), ("i", "rule_hit"),
    ]


def test_packet_op_top_level_and_nested():
    assert packet_op({"op_id": ["10.0.0.1", 3]}) == ("10.0.0.1", 3)
    # Reliable-multicast tuple envelopes carry the application dict inside.
    assert packet_op(("mc_data", ("c", 9), 7400, {"op_id": ("c", 1)})) == ("c", 1)
    assert packet_op(("mc_ctrl", {"op_id": ("c", 2)})) == ("c", 2)
    assert packet_op(("mc_ack", ("c", 9))) is None
    assert packet_op({"type": "heartbeat"}) is None
    assert packet_op(b"raw-bytes") is None
    assert packet_op(None) is None


def test_null_tracer_runs_are_bit_identical_to_traced_runs():
    """The determinism contract: installing a tracer must not change a
    single timestamp of the simulation."""

    def workload(sim):
        log = []

        def pinger():
            for i in range(20):
                yield sim.timeout(0.1 + (i % 3) * 0.01)
                tr = sim.tracer
                if tr is not None:
                    tr.instant("ping", "test", node="p")
                log.append(sim.now)

        sim.process(pinger())
        sim.run()
        return log

    plain = workload(Simulator())
    traced_sim = Simulator()
    tracer = install(traced_sim)
    traced = workload(traced_sim)
    assert plain == traced
    assert sum(1 for ev in tracer.events if ev.cat == "test") == 20
