"""TraceSession tests: the module-level --trace wiring."""

import json

from repro.obs import runtime
from repro.sim import Simulator


def teardown_function(_fn):
    runtime.stop()  # never leak a session into other tests


def test_attach_is_noop_without_session():
    sim = Simulator()
    assert runtime.current() is None
    assert runtime.attach(sim, label="x") is None
    assert sim.tracer is None


def test_session_attaches_and_labels_runs():
    session = runtime.start("unused.json")
    a, b = Simulator(), Simulator()
    ta = runtime.attach(a, label="NICE r=3")
    tb = runtime.attach(b)  # default label
    assert a.tracer is ta and b.tracer is tb
    assert [t.label for t in session.tracers] == ["1: NICE r=3", "2: run 2"]
    # Idempotent: a second attach returns the existing tracer.
    assert runtime.attach(a, label="other") is ta
    assert len(session.tracers) == 2
    assert runtime.stop() is session
    assert runtime.current() is None


def test_session_export_formats(tmp_path):
    session = runtime.start(str(tmp_path / "t.trace.json"))
    sim = Simulator()
    tracer = runtime.attach(sim, label="x")
    tracer.instant("mark", "test", node="n")
    assert session.total_events == 1
    summary = session.export()
    assert summary["format"] == "chrome"
    assert summary["runs"] == 1 and summary["events"] == 1
    doc = json.loads((tmp_path / "t.trace.json").read_text())
    assert summary["exported_events"] == len(doc["traceEvents"])
    # Same session, explicit .jsonl path -> raw lines.
    summary = session.export(str(tmp_path / "t.jsonl"))
    assert summary["format"] == "jsonl"
    assert summary["exported_events"] == 1
    runtime.stop()
