"""MetricsRegistry tests: naming, live references, cluster collection."""

import json

import pytest

from repro.core import ClusterConfig, NiceCluster
from repro.obs import MetricsRegistry
from repro.sim import Counter, RateSeries, Tally


def test_register_query_and_contains():
    reg = MetricsRegistry()
    c = reg.register("node.n0.aborts", Counter("aborts"))
    reg.register("node.n0.put_latency", Tally("put"))
    reg.register("client.c0.ops", RateSeries(name="ops"))
    reg.gauge("switch.sw.rules", lambda: 42)
    assert len(reg) == 4
    assert "node.n0.aborts" in reg
    assert reg.get("node.n0.aborts") is c
    assert reg.names("node") == ["node.n0.aborts", "node.n0.put_latency"]
    assert reg.names("node.n0") == ["node.n0.aborts", "node.n0.put_latency"]
    assert list(reg.query("switch")) == ["switch.sw.rules"]
    # The registry holds references: mutations show up in later snapshots.
    c.add(3)
    assert reg.snapshot()["node"]["n0"]["aborts"]["value"] == 3


def test_duplicate_and_empty_names_rejected():
    reg = MetricsRegistry()
    reg.register("a.b", Counter())
    with pytest.raises(KeyError):
        reg.register("a.b", Counter())
    with pytest.raises(KeyError):
        reg.gauge("a.b", lambda: 0)
    with pytest.raises(ValueError):
        reg.register("", Counter())


def test_leaf_subtree_collisions_raise():
    reg = MetricsRegistry()
    reg.register("a.b", Counter())
    reg.register("a.b.c", Counter())  # registering is fine ...
    with pytest.raises(ValueError):
        reg.snapshot()  # ... but the tree can't represent both


def test_snapshot_is_strict_deterministic_json():
    def build():
        reg = MetricsRegistry()
        reg.register("z.tally", Tally("t"))  # empty: nan -> null
        reg.register("a.count", Counter("c"))
        reg.gauge("m.gauge", lambda: 7)
        return reg

    a, b = build().to_json(), build().to_json()
    assert a == b
    doc = json.loads(a)  # strict JSON: would fail on bare NaN
    assert doc["z"]["tally"]["mean"] is None
    assert doc["m"]["gauge"] == {"type": "gauge", "value": 7}
    assert list(doc) == ["a", "m", "z"]  # sorted at every level


def test_from_cluster_collects_all_layers():
    cluster = NiceCluster(ClusterConfig(n_storage_nodes=4, n_clients=1))
    cluster.warm_up()
    reg = MetricsRegistry.from_cluster(cluster, prefix="nice")
    names = reg.names()
    assert any(n.startswith("nice.client.") and n.endswith(".put_latency")
               for n in names)
    assert any(n.startswith("nice.node.") for n in names)
    assert "nice.switch.sw.flowtable.rules" in names or any(
        ".flowtable.rules" in n for n in names
    )
    assert any(n.startswith("nice.link.") for n in names)
    # Gauges sample live state: the warm-up installed the vring rules.
    rules_name = next(n for n in names if n.endswith(".flowtable.rules"))
    assert reg.get(rules_name)() > 0
    # The whole tree must export as strict JSON.
    json.loads(reg.to_json())


def test_from_cluster_snapshot_reflects_traffic():
    cluster = NiceCluster(ClusterConfig(n_storage_nodes=4, n_clients=1))
    cluster.warm_up()
    reg = MetricsRegistry.from_cluster(cluster)
    client = cluster.clients[0]

    def driver():
        result = yield client.put("k", "v", 512)
        assert result.ok
        result = yield client.get("k")
        assert result.ok

    cluster.sim.process(driver())
    cluster.sim.run(until=10.0)
    snap = reg.snapshot()
    cname = client.host.name
    assert snap["client"][cname]["put_latency"]["count"] == 1
    assert snap["client"][cname]["get_latency"]["count"] == 1
    assert snap["client"][cname]["failures"]["value"] == 0
