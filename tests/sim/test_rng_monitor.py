"""Unit tests for RNG streams and monitors."""

import math

import pytest

from repro.sim import Counter, RateSeries, RngRegistry, Tally, summary_stats


def test_rng_same_seed_same_stream():
    a = RngRegistry(7).stream("workload")
    b = RngRegistry(7).stream("workload")
    assert a.integers(0, 1_000_000, 10).tolist() == b.integers(0, 1_000_000, 10).tolist()


def test_rng_streams_independent_of_creation_order():
    r1 = RngRegistry(7)
    _ = r1.stream("x")
    s1 = r1.stream("workload").integers(0, 1_000_000, 10).tolist()
    r2 = RngRegistry(7)
    s2 = r2.stream("workload").integers(0, 1_000_000, 10).tolist()
    assert s1 == s2


def test_rng_distinct_names_distinct_streams():
    r = RngRegistry(7)
    a = r.stream("a").integers(0, 1_000_000, 10).tolist()
    b = r.stream("b").integers(0, 1_000_000, 10).tolist()
    assert a != b


def test_rng_stream_cached():
    r = RngRegistry(1)
    assert r.stream("x") is r.stream("x")


def test_rng_spawn_children_deterministic():
    a = RngRegistry(3).spawn("node1").stream("s").integers(0, 100, 5).tolist()
    b = RngRegistry(3).spawn("node1").stream("s").integers(0, 100, 5).tolist()
    c = RngRegistry(3).spawn("node2").stream("s").integers(0, 100, 5).tolist()
    assert a == b
    assert a != c


def test_rng_seed_type_checked():
    with pytest.raises(TypeError):
        RngRegistry("seed")  # type: ignore[arg-type]


def test_counter_add_and_reset():
    c = Counter("bytes")
    c.add(10)
    c.add()
    assert c.value == 11
    assert c.reset() == 11
    assert c.value == 0


def test_counter_rejects_negative():
    c = Counter()
    with pytest.raises(ValueError):
        c.add(-1)


def test_tally_moments():
    t = Tally()
    for v in [1.0, 2.0, 3.0, 4.0]:
        t.observe(v)
    assert t.count == 4
    assert t.mean == pytest.approx(2.5)
    assert t.stdev == pytest.approx(1.2909944, rel=1e-6)
    assert t.minimum == 1.0
    assert t.maximum == 4.0


def test_tally_percentile():
    t = Tally()
    for v in range(1, 101):
        t.observe(float(v))
    assert t.percentile(50) == pytest.approx(50.5)
    assert t.percentile(0) == 1.0
    assert t.percentile(100) == 100.0


def test_tally_empty():
    # Empty stats are nan across the board — a 0.0 stdev next to nan
    # mean/min/max was the PR-4 inconsistency.
    t = Tally()
    assert math.isnan(t.mean)
    assert math.isnan(t.stdev)
    assert math.isnan(t.minimum)
    assert math.isnan(t.maximum)
    assert math.isnan(t.percentile(50))


def test_tally_singleton():
    t = Tally()
    t.observe(7.0)
    assert t.mean == 7.0
    assert t.stdev == 0.0  # one sample: zero spread, not nan
    assert t.minimum == 7.0
    assert t.maximum == 7.0
    assert t.percentile(50) == 7.0


def test_summary_stats_empty_is_all_nan():
    s = summary_stats([])
    assert s["count"] == 0
    for field in ("mean", "stdev", "min", "max"):
        assert math.isnan(s[field]), field


def test_rate_series_includes_bins_after_t_end():
    rs = RateSeries(bin_width=1.0)
    rs.record(0.5)
    rs.record(5.5, count=2)  # recorded after the nominal window
    series = dict(rs.series(t_end=2.0))
    assert series[0.0] == 1.0
    assert series[5.0] == 2.0  # used to be silently dropped
    assert series[3.0] == 0.0  # still dense in between


def test_metric_snapshots_json_safe():
    import json

    c = Counter("c")
    c.add(3)
    assert c.snapshot() == {"type": "counter", "value": 3}
    t = Tally()
    snap = t.snapshot()
    assert snap["count"] == 0 and snap["mean"] is None and snap["stdev"] is None
    t.observe(1.0)
    assert t.snapshot()["mean"] == 1.0
    rs = RateSeries(bin_width=2.0)
    rs.record(3.0)
    rsnap = rs.snapshot()
    assert rsnap == {"type": "rate", "bin_width": 2.0, "total": 1, "bins": {"1": 1}}
    json.dumps([c.snapshot(), t.snapshot(), rsnap], allow_nan=False)


def test_tally_without_samples_rejects_percentile():
    t = Tally(keep_samples=False)
    t.observe(1.0)
    with pytest.raises(ValueError):
        t.percentile(50)


def test_rate_series_binning():
    rs = RateSeries(bin_width=1.0)
    rs.record(0.1)
    rs.record(0.9)
    rs.record(2.5, count=3)
    series = dict(rs.series(t_end=3.0))
    assert series[0.0] == 2.0
    assert series[1.0] == 0.0
    assert series[2.0] == 3.0
    assert rs.total() == 5


def test_rate_series_invalid_width():
    with pytest.raises(ValueError):
        RateSeries(bin_width=0.0)


def test_summary_stats():
    s = summary_stats([2.0, 4.0])
    assert s["mean"] == 3.0
    assert s["count"] == 2
