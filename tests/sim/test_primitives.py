"""Unit tests for Store and Resource."""

import pytest

from repro.sim import Resource, SimulationError, Simulator, Store


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append((sim.now, item))

    store.put("x")
    sim.process(consumer(sim, store))
    sim.run()
    assert got == [(0.0, "x")]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append((sim.now, item))

    sim.process(consumer(sim, store))
    sim.call_in(3.0, store.put, "late")
    sim.run()
    assert got == [(3.0, "late")]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        while True:
            item = yield store.get()
            got.append(item)
            if item == "stop":
                return

    for item in ["a", "b", "c", "stop"]:
        store.put(item)
    sim.process(consumer(sim, store))
    sim.run()
    assert got == ["a", "b", "c", "stop"]


def test_store_filter_selective_receive():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get(lambda i: i % 2 == 0)
        got.append(item)

    sim.process(consumer(sim, store))
    store.put(1)
    store.put(3)
    store.put(4)
    sim.run()
    assert got == [4]
    assert list(store.items) == [1, 3]


def test_store_waiter_filter_matching_on_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, store, want):
        item = yield store.get(lambda i: i == want)
        got.append(item)

    sim.process(consumer(sim, store, "b"))
    sim.process(consumer(sim, store, "a"))
    sim.call_in(1.0, store.put, "a")
    sim.call_in(2.0, store.put, "b")
    sim.run()
    assert got == ["a", "b"]


def test_store_cancel_get():
    sim = Simulator()
    store = Store(sim)
    ev = store.get()
    store.cancel(ev)
    store.put("x")
    sim.run()
    assert not ev.triggered
    assert list(store.items) == ["x"]


def test_store_clear():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert store.clear() == 2
    assert len(store) == 0


def test_resource_mutual_exclusion():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    trace = []

    def worker(sim, res, tag, hold):
        req = res.request()
        yield req
        trace.append((sim.now, tag, "acquired"))
        yield sim.timeout(hold)
        req.release()
        trace.append((sim.now, tag, "released"))

    sim.process(worker(sim, res, "a", 2.0))
    sim.process(worker(sim, res, "b", 1.0))
    sim.run()
    assert trace == [
        (0.0, "a", "acquired"),
        (2.0, "a", "released"),
        (2.0, "b", "acquired"),
        (3.0, "b", "released"),
    ]


def test_resource_capacity_two():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    acquired_at = []

    def worker(sim, res, hold):
        req = res.request()
        yield req
        acquired_at.append(sim.now)
        yield sim.timeout(hold)
        req.release()

    for _ in range(3):
        sim.process(worker(sim, res, 5.0))
    sim.run()
    assert acquired_at == [0.0, 0.0, 5.0]


def test_resource_release_queued_request_cancels():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()
    assert first.triggered
    second = res.request()
    assert not second.triggered
    second.release()  # cancel while queued
    first.release()
    third = res.request()
    assert third.triggered
    assert not second.triggered


def test_resource_counters():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    a = res.request()
    b = res.request()
    assert res.in_use == 1
    assert res.queued == 1
    a.release()
    assert res.in_use == 1  # b promoted
    assert res.queued == 0
    b.release()
    assert res.in_use == 0


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)
