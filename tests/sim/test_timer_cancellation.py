"""Property test: tombstone timer cancellation vs a naive reference heap.

The kernel cancels timers by tombstoning their pooled heap record in O(1)
(DESIGN.md §5g) instead of removing it; tombstones are swept and recycled
at pop time.  This test drives randomized schedule/cancel interleavings
through the simulator and checks the surviving timers fire in exactly the
order a naive model — a sorted list pruned on cancel — predicts.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import Simulator

# Fire times are integers, cancel times sit on the half-grid, so a cancel
# never ties with a firing and the reference model needs no tie-break rule.
_TIMERS = st.lists(
    st.tuples(st.integers(1, 40), st.one_of(st.none(), st.integers(0, 90))),
    min_size=1,
    max_size=60,
)


def _cancel_time(slot: int) -> float:
    return slot * 0.5 + 0.25


@given(timers=_TIMERS)
@settings(max_examples=80, deadline=None)
def test_cancellation_matches_reference_heap(timers):
    sim = Simulator()
    fired = []
    for seq, (delay, cancel_slot) in enumerate(timers):
        ev = sim.timeout(float(delay), seq)
        ev.add_callback(lambda e, s=sim: fired.append((s.now, e.value)))
        if cancel_slot is not None:
            # May land before the fire time (a real cancellation) or after
            # it (a no-op on an already-processed event) — both legal.
            sim.call_in(_cancel_time(cancel_slot), sim.cancel_timer, ev)
    sim.run()

    reference = sorted(
        (float(delay), seq)
        for seq, (delay, cancel_slot) in enumerate(timers)
        if cancel_slot is None or _cancel_time(cancel_slot) > float(delay)
    )
    assert fired == reference
    # Every tombstone was swept and recycled: nothing pending, and the
    # bookkeeping that backs ``pending_events`` returned to zero.
    assert sim.pending_events == 0
    assert sim._cancelled == 0


@given(timers=_TIMERS)
@settings(max_examples=40, deadline=None)
def test_double_cancel_is_idempotent(timers):
    sim = Simulator()
    events = []
    for seq, (delay, _) in enumerate(timers):
        events.append(sim.timeout(float(delay), seq))
    for ev in events:
        sim.cancel_timer(ev)
        sim.cancel_timer(ev)  # second cancel must be a no-op
    assert sim.pending_events == 0
    sim.run()
    assert sim.now == 0.0  # nothing fired, clock never moved


def test_cancelled_timer_revives_on_new_waiter():
    """A cancelled timer a process later yields on still fires (at its
    original time, or immediately if that time already passed)."""
    sim = Simulator()
    t_future = sim.timeout(5.0, "future")
    t_past = sim.timeout(1.0, "past")
    sim.cancel_timer(t_future)
    sim.cancel_timer(t_past)
    sim.run()  # drains to empty; clock stays at 0 (both cancelled)
    assert sim.now == 0.0

    sim.call_in(2.0, lambda: None)
    sim.run()  # move the clock past t_past's original fire time
    assert sim.now == 2.0

    fired = []
    t_future.add_callback(lambda e: fired.append((sim.now, e.value)))
    t_past.add_callback(lambda e: fired.append((sim.now, e.value)))
    sim.run()
    # t_past's time already passed: fires "now"; t_future at its own time.
    assert fired == [(2.0, "past"), (5.0, "future")]
