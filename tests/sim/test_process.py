"""Unit tests for Process semantics: joining, interrupts, failures."""

import pytest

from repro.sim import Event, Interrupt, SimulationError, Simulator


def test_process_return_value_via_join():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(1.0)
        return "payload"

    def parent(sim):
        value = yield sim.process(child(sim))
        results.append((sim.now, value))

    sim.process(parent(sim))
    sim.run()
    assert results == [(1.0, "payload")]


def test_join_finished_process():
    sim = Simulator()
    results = []

    def child(sim):
        return "done"
        yield  # pragma: no cover

    def parent(sim, proc):
        yield sim.timeout(5.0)
        value = yield proc
        results.append(value)

    proc = sim.process(child(sim))
    sim.process(parent(sim, proc))
    sim.run()
    assert results == ["done"]


def test_process_exception_propagates_to_joiner():
    sim = Simulator()
    caught = []

    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("child died")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(parent(sim))
    sim.run()
    assert caught == ["child died"]


def test_unjoined_process_exception_aborts_run():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("unhandled")

    sim.process(child(sim))
    with pytest.raises(ValueError, match="unhandled"):
        sim.run()


def test_interrupt_wakes_waiting_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            log.append("slept full")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))
            yield sim.timeout(1.0)
            log.append(("resumed", sim.now))

    proc = sim.process(sleeper(sim))
    sim.call_in(2.0, proc.interrupt, "failure detected")
    sim.run()
    assert log == [("interrupted", 2.0, "failure detected"), ("resumed", 3.0)]


def test_interrupt_does_not_leave_stale_wakeup():
    """After an interrupt, the original timeout firing must not resume the
    process a second time."""
    sim = Simulator()
    wakeups = []

    def sleeper(sim):
        try:
            yield sim.timeout(5.0)
        except Interrupt:
            pass
        wakeups.append(sim.now)
        yield sim.timeout(100.0)

    proc = sim.process(sleeper(sim))
    sim.call_in(1.0, proc.interrupt)
    sim.run(until=50.0)
    assert wakeups == [1.0]


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    proc = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_yielding_non_event_raises_into_process():
    sim = Simulator()
    caught = []

    def bad(sim):
        try:
            yield 42
        except SimulationError as exc:
            caught.append("caught")

    sim.process(bad(sim))
    sim.run()
    assert caught == ["caught"]


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_is_alive_and_target():
    sim = Simulator()

    def sleeper(sim):
        yield sim.timeout(10.0)

    proc = sim.process(sleeper(sim))
    assert proc.is_alive
    sim.run(until=5.0)
    assert proc.is_alive
    assert proc.target is not None
    sim.run()
    assert not proc.is_alive


def test_two_processes_can_join_same_process():
    sim = Simulator()
    got = []

    def child(sim):
        yield sim.timeout(2.0)
        return "x"

    def parent(sim, proc, tag):
        value = yield proc
        got.append((tag, value))

    proc = sim.process(child(sim))
    sim.process(parent(sim, proc, "a"))
    sim.process(parent(sim, proc, "b"))
    sim.run()
    assert sorted(got) == [("a", "x"), ("b", "x")]


def test_immediate_chain_of_settled_events_runs_synchronously():
    sim = Simulator()
    trace = []

    def proc(sim):
        for i in range(3):
            ev = Event(sim)
            ev.succeed(i)
            sim.run_noop = None  # force no scheduling dependency
            value = yield sim.timeout(0.0, i)
            trace.append((sim.now, value))

    sim.process(proc(sim))
    sim.run()
    assert trace == [(0.0, 0), (0.0, 1), (0.0, 2)]
