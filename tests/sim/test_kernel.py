"""Unit tests for the event loop and event primitives."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    ConditionValue,
    Event,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(1.5)
        seen.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_run_until_stops_clock_between_events():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10.0)

    sim.process(proc(sim))
    end = sim.run(until=3.0)
    assert end == 3.0
    assert sim.now == 3.0
    # remaining event still fires after resuming
    sim.run()
    assert sim.now == 10.0


def test_run_until_past_last_event_advances_to_until():
    sim = Simulator()
    sim.process(iter([]).__next__ and (x for x in []))  # no-op empty generator
    sim.run(until=5.0)
    assert sim.now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def waiter(sim, delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(waiter(sim, 3.0, "c"))
    sim.process(waiter(sim, 1.0, "a"))
    sim.process(waiter(sim, 2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_creation_order():
    sim = Simulator()
    order = []

    def waiter(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in "abcde":
        sim.process(waiter(sim, tag))
    sim.run()
    assert order == list("abcde")


def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter(sim, ev):
        value = yield ev
        got.append(value)

    sim.process(waiter(sim, ev))
    sim.call_in(2.0, ev.succeed, 42)
    sim.run()
    assert got == [42]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter(sim, ev):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim, ev))
    sim.call_in(1.0, ev.fail, ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_event_failure_aborts_simulation():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("nobody listening"))
    with pytest.raises(RuntimeError, match="nobody listening"):
        sim.run()


def test_defused_failure_does_not_abort():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("handled elsewhere")).defuse()
    sim.run()  # must not raise


def test_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)
    with pytest.raises(SimulationError):
        ev.fail(ValueError())


def test_value_before_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Timeout(sim, -1.0)


def test_callback_on_processed_event_still_runs():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("late")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["late"]


def test_any_of_returns_first():
    sim = Simulator()
    results = []

    def proc(sim):
        t1 = sim.timeout(5.0, "slow")
        t2 = sim.timeout(1.0, "fast")
        got = yield AnyOf(sim, [t1, t2])
        results.append((sim.now, list(got.values())))

    sim.process(proc(sim))
    sim.run()
    assert results == [(1.0, ["fast"])]


def test_all_of_waits_for_all():
    sim = Simulator()
    results = []

    def proc(sim):
        t1 = sim.timeout(5.0, "slow")
        t2 = sim.timeout(1.0, "fast")
        got = yield AllOf(sim, [t1, t2])
        results.append((sim.now, sorted(got.values())))

    sim.process(proc(sim))
    sim.run()
    assert results == [(5.0, ["fast", "slow"])]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    done = []

    def proc(sim):
        got = yield AllOf(sim, [])
        done.append((sim.now, got))

    sim.process(proc(sim))
    sim.run()
    assert done == [(0.0, {})]


def test_condition_propagates_failure():
    sim = Simulator()
    caught = []

    def proc(sim):
        ev = sim.event()
        sim.call_in(1.0, ev.fail, KeyError("k"))
        try:
            yield AllOf(sim, [ev, sim.timeout(10.0)])
        except KeyError:
            caught.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert caught == [1.0]


def test_call_at_and_call_in():
    sim = Simulator()
    marks = []
    sim.call_at(4.0, marks.append, "at4")
    sim.call_in(2.0, marks.append, "in2")
    sim.run()
    assert marks == ["in2", "at4"]


def test_call_at_past_rejected():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5.0)
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    p = sim.process(proc(sim))
    sim.run()
    assert p.ok


def test_stop_simulation_from_process():
    sim = Simulator()
    seen = []

    def stopper(sim):
        yield sim.timeout(2.0)
        seen.append("stop")
        raise StopSimulation()

    def later(sim):
        yield sim.timeout(5.0)
        seen.append("late")

    sim.process(stopper(sim))
    sim.process(later(sim))
    sim.run()  # StopSimulation halts the run cleanly
    assert seen == ["stop"]
    assert sim.now == 2.0


def test_simulator_stop_via_event_callback():
    sim = Simulator()
    seen = []
    sim.call_in(2.0, seen.append, "a")

    def stop(_):
        raise StopSimulation()

    ev = sim.event()
    ev.add_callback(stop)
    sim.call_in(3.0, ev.succeed)
    sim.call_in(4.0, seen.append, "b")
    sim.run()
    assert seen == ["a"]
    assert sim.now == 3.0


def test_step_processes_one_event():
    sim = Simulator()
    marks = []
    sim.call_in(1.0, marks.append, 1)
    sim.call_in(2.0, marks.append, 2)
    assert sim.step()
    assert marks == [1]
    assert sim.step()
    assert marks == [1, 2]
    assert not sim.step()


def test_pending_events_counts_heap():
    sim = Simulator()
    assert sim.pending_events == 0
    sim.timeout(1.0)
    sim.timeout(2.0)
    assert sim.pending_events == 2


# ---------------------------------------------------------------- run_until
def test_run_until_stops_exactly_at_event():
    sim = Simulator()
    late = []
    sim.call_in(5.0, late.append, "later")
    target = sim.timeout(2.0, "hit")
    end = sim.run_until(target)
    assert end == 2.0
    assert sim.now == 2.0
    assert target.processed
    assert late == []  # the 5.0s event did not run
    assert sim.pending_events == 1


def test_run_until_does_not_drain_unrelated_same_time_events():
    sim = Simulator()
    seen = []
    target = sim.timeout(1.0)
    sim.call_in(1.0, seen.append, "same-time-after")  # scheduled after target
    sim.run_until(target)
    assert target.processed
    assert seen == []


def test_run_until_already_processed_returns_immediately():
    sim = Simulator()
    target = sim.timeout(1.0)
    sim.run()
    assert target.processed
    sim.call_in(9.0, lambda: None)
    assert sim.run_until(target) == 1.0
    assert sim.pending_events == 1  # nothing was processed


def test_run_until_respects_until_cap():
    sim = Simulator()
    target = sim.timeout(10.0)
    end = sim.run_until(target, until=3.0)
    assert end == 3.0
    assert not target.processed
    sim.run_until(target)
    assert target.processed
    assert sim.now == 10.0


def test_run_until_drained_heap_stops():
    sim = Simulator()
    target = sim.event()  # never triggered
    sim.call_in(1.0, lambda: None)
    end = sim.run_until(target)
    assert end == 1.0
    assert not target.triggered
    assert sim.pending_events == 0


def test_run_until_rejects_foreign_event():
    sim, other = Simulator(), Simulator()
    with pytest.raises(SimulationError):
        sim.run_until(other.event())


def test_run_until_process_value_available():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.0)
        return "done"

    p = sim.process(proc(sim))
    sim.run_until(p)
    assert p.processed
    assert p.value == "done"


# --------------------------------------------------- small-condition values
def test_small_condition_value_is_mapping_compatible():
    sim = Simulator()
    results = []

    def proc(sim):
        t1 = sim.timeout(1.0, "fast")
        t2 = sim.timeout(5.0, "slow")
        got = yield AnyOf(sim, [t1, t2])
        results.append((got, t1, t2))

    sim.process(proc(sim))
    sim.run()
    got, t1, t2 = results[0]
    assert isinstance(got, ConditionValue)
    assert t1 in got and t2 not in got
    assert got[t1] == "fast"
    assert got.get(t2) is None
    assert list(got.values()) == ["fast"]
    assert len(got) == 1
    assert got == {t1: "fast"}  # dict equality both ways
    assert {t1: "fast"} == got
    with pytest.raises(KeyError):
        got[t2]


def test_small_condition_membership_snapshot_at_trigger():
    """Same-time events processed *after* the condition triggered must not
    leak into its value (the eager-dict semantics the fast path replaces)."""
    sim = Simulator()
    results = []

    def proc(sim):
        t1 = sim.timeout(1.0, "a")
        t2 = sim.timeout(1.0, "b")  # same timestamp, scheduled after t1
        got = yield AnyOf(sim, [t1, t2])
        results.append((got, t1, t2))

    sim.process(proc(sim))
    sim.run()
    got, t1, t2 = results[0]
    assert t1 in got
    assert t2 not in got  # t2 processed after the condition triggered


def test_large_condition_still_returns_dict():
    sim = Simulator()
    results = []

    def proc(sim):
        ts = [sim.timeout(float(i + 1), i) for i in range(4)]
        got = yield AllOf(sim, ts)
        results.append(got)

    sim.process(proc(sim))
    sim.run()
    assert isinstance(results[0], dict)
    assert sorted(results[0].values()) == [0, 1, 2, 3]


# ------------------------------------------------------------- call pooling
def test_pooled_calls_recycle_without_crosstalk():
    sim = Simulator()
    seen = []
    # Chains of calls scheduling more calls exercise reuse of pooled slots.

    def chain(depth):
        seen.append(depth)
        if depth < 5:
            sim.call_in(0.5, chain, depth + 1)

    sim.call_in(0.0, chain, 0)
    sim.call_in(0.25, seen.append, "x")
    sim.run()
    assert seen == [0, "x", 1, 2, 3, 4, 5]


def test_call_args_do_not_leak_between_pool_reuses():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.call_in(float(i), seen.append, i)
    sim.run()
    for i in range(10, 20):
        sim.call_in(float(i), seen.append, i)
    sim.run()
    assert seen == list(range(20))
