"""Unit tests for IPv4/MAC addressing and prefix matching."""

import pytest

from repro.net import IPv4Address, IPv4Network, MULTICAST_NET, MacAddress


def test_parse_and_str_roundtrip():
    a = IPv4Address("10.10.1.5")
    assert str(a) == "10.10.1.5"
    assert IPv4Address(str(a)) == a


def test_int_construction():
    assert IPv4Address(0x0A0A0105) == IPv4Address("10.10.1.5")


def test_copy_construction():
    a = IPv4Address("1.2.3.4")
    assert IPv4Address(a) == a


@pytest.mark.parametrize("bad", ["10.10.1", "256.0.0.1", "a.b.c.d", "1.2.3.4.5"])
def test_malformed_addresses_rejected(bad):
    with pytest.raises(ValueError):
        IPv4Address(bad)


def test_out_of_range_int_rejected():
    with pytest.raises(ValueError):
        IPv4Address(1 << 32)


def test_bad_type_rejected():
    with pytest.raises(TypeError):
        IPv4Address(3.14)  # type: ignore[arg-type]


def test_ordering_and_arithmetic():
    a = IPv4Address("10.0.0.1")
    b = a + 5
    assert str(b) == "10.0.0.6"
    assert a < b
    assert b - a == 5


def test_hashable():
    assert len({IPv4Address("1.1.1.1"), IPv4Address("1.1.1.1")}) == 1


def test_multicast_detection():
    assert IPv4Address("224.0.0.1").is_multicast
    assert IPv4Address("239.255.255.255").is_multicast
    assert not IPv4Address("10.0.0.1").is_multicast
    assert IPv4Address("224.1.2.3") in MULTICAST_NET


def test_network_contains():
    net = IPv4Network("10.10.1.0/24")
    assert IPv4Address("10.10.1.0") in net
    assert IPv4Address("10.10.1.255") in net
    assert IPv4Address("10.10.2.0") not in net
    assert "10.10.1.7" in net


def test_network_normalizes_host_bits():
    net = IPv4Network("10.10.1.77/24")
    assert str(net) == "10.10.1.0/24"


def test_network_num_addresses():
    assert IPv4Network("10.0.0.0/30").num_addresses == 4
    assert IPv4Network("0.0.0.0/0").num_addresses == 1 << 32


def test_network_from_address_and_prefixlen():
    net = IPv4Network(IPv4Address("10.10.0.0"), 16)
    assert str(net) == "10.10.0.0/16"


def test_network_missing_prefix_rejected():
    with pytest.raises(ValueError):
        IPv4Network("10.0.0.0")


def test_network_invalid_prefixlen_rejected():
    with pytest.raises(ValueError):
        IPv4Network("10.0.0.0/33")


def test_subnets_split():
    net = IPv4Network("10.10.0.0/16")
    subs = list(net.subnets(18))
    assert len(subs) == 4
    assert str(subs[0]) == "10.10.0.0/18"
    assert str(subs[-1]) == "10.10.192.0/18"


def test_subnets_invalid_split_rejected():
    with pytest.raises(ValueError):
        list(IPv4Network("10.0.0.0/24").subnets(16))


def test_hosts_enumeration():
    hosts = list(IPv4Network("10.0.0.0/30").hosts())
    assert [str(h) for h in hosts] == ["10.0.0.0", "10.0.0.1", "10.0.0.2", "10.0.0.3"]


def test_overlaps():
    a = IPv4Network("10.10.0.0/16")
    b = IPv4Network("10.10.1.0/24")
    c = IPv4Network("10.11.0.0/16")
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c)


def test_network_equality_and_hash():
    assert IPv4Network("10.0.0.0/8") == IPv4Network("10.1.2.3/8")
    assert len({IPv4Network("10.0.0.0/8"), IPv4Network("10.0.0.0/8")}) == 1


def test_mac_parse_and_str():
    m = MacAddress("02:00:00:00:00:2a")
    assert m.value == 0x02000000002A
    assert str(m) == "02:00:00:00:00:2a"


def test_mac_broadcast():
    assert MacAddress.BROADCAST.is_broadcast
    assert not MacAddress(1).is_broadcast


def test_mac_malformed_rejected():
    with pytest.raises(ValueError):
        MacAddress("02:00:00:00:00")
    with pytest.raises(ValueError):
        MacAddress(1 << 48)


def test_mac_and_ip_hash_do_not_collide():
    # Distinct types with the same numeric value must remain distinct keys.
    d = {MacAddress(5): "mac", IPv4Address(5): "ip"}
    assert len(d) == 2
