"""Unit tests for the chaos-injection link controls (loss, jitter, down)."""

import numpy as np
import pytest

from repro.net import IPv4Address, Link, Packet, Proto
from repro.net.topology import Device
from repro.sim import Simulator


class Sink(Device):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def handle_packet(self, packet, in_port):
        self.received.append((self.sim.now, packet))


def make_link(sim, bandwidth=1e9, latency=50e-6):
    a, b = Sink(sim, "a"), Sink(sim, "b")
    return Link(sim, a.new_port(), b.new_port(), bandwidth, latency), a, b


def pkt(size=100):
    return Packet(
        src_ip=IPv4Address("10.0.0.1"),
        dst_ip=IPv4Address("10.0.0.2"),
        proto=Proto.UDP,
        payload_bytes=size,
    )


# -- loss-rate validation edge cases ------------------------------------------------


def test_loss_rate_one_rejected():
    """Total loss is modeled by set_down, not a loss rate of 1.0."""
    sim = Simulator()
    link, _, _ = make_link(sim)
    with pytest.raises(ValueError, match=r"\[0, 1\)"):
        link.ab.set_loss(1.0, np.random.default_rng(1))


def test_loss_rate_out_of_range_rejected():
    sim = Simulator()
    link, _, _ = make_link(sim)
    for bad in (-0.1, 1.5):
        with pytest.raises(ValueError):
            link.ab.set_loss(bad, np.random.default_rng(1))


def test_loss_needs_rng():
    sim = Simulator()
    link, _, _ = make_link(sim)
    with pytest.raises(ValueError, match="rng"):
        link.ab.set_loss(0.5)


def test_loss_zero_reenables_and_clears_rng():
    """rate=0.0 turns loss off again and may omit the rng."""
    sim = Simulator()
    link, _, b = make_link(sim)
    link.ab.set_loss(0.99, np.random.default_rng(1))
    for _ in range(20):
        link.ab.transmit(pkt())
    sim.run(until=1.0)
    dropped = link.ab.dropped_packets.value
    assert dropped > 0

    link.ab.set_loss(0.0)  # no rng needed
    assert link.ab.loss_rate == 0.0
    assert link.ab._loss_rng is None
    for _ in range(20):
        link.ab.transmit(pkt())
    sim.run(until=2.0)
    assert link.ab.dropped_packets.value == dropped  # no new drops
    assert len(b.received) == 20


# -- delay jitter -------------------------------------------------------------------


def test_jitter_negative_rejected():
    sim = Simulator()
    link, _, _ = make_link(sim)
    with pytest.raises(ValueError, match="non-negative"):
        link.ab.set_delay_jitter(-1e-6, np.random.default_rng(1))


def test_jitter_needs_rng():
    sim = Simulator()
    link, _, _ = make_link(sim)
    with pytest.raises(ValueError, match="rng"):
        link.ab.set_delay_jitter(1e-4)


def test_jitter_adds_bounded_delay_without_touching_latency():
    sim = Simulator()
    link, _, b = make_link(sim, latency=100e-6)
    base_latency = link.ab.latency_s
    jitter = 500e-6
    link.ab.set_delay_jitter(jitter, np.random.default_rng(7))
    for _ in range(30):
        link.ab.transmit(pkt(size=0))
    sim.run(until=1.0)
    assert link.ab.latency_s == base_latency  # no monkey-patching
    assert len(b.received) == 30
    arrivals = [t for t, _ in b.received]
    # Nothing arrives before the configured latency...
    assert min(arrivals) >= base_latency
    # ...and with 30 samples the added delay must actually vary.
    assert len({round(t, 9) for t in arrivals}) > 1


def test_jitter_zero_disables():
    sim = Simulator()
    link, _, _ = make_link(sim, latency=100e-6)
    link.ab.set_delay_jitter(300e-6, np.random.default_rng(7))
    link.ab.set_delay_jitter(0.0)  # no rng needed
    assert link.ab.delay_jitter_s == 0.0
    assert link.ab._jitter_rng is None


# -- link down (the partition primitive) --------------------------------------------


def test_set_down_blackholes_and_restores():
    sim = Simulator()
    link, _, b = make_link(sim)
    link.set_down(True)
    assert link.down
    link.ab.transmit(pkt())
    link.ba.transmit(pkt())
    sim.run(until=0.5)
    assert b.received == []
    assert link.ab.dropped_packets.value == 1
    # Bytes still count as transmitted (the wire was held), like real
    # counters on a port whose far end went dark.
    assert link.ab.tx_packets.value == 1

    link.set_down(False)
    assert not link.down
    link.ab.transmit(pkt())
    sim.run(until=1.0)
    assert len(b.received) == 1


def test_link_level_loss_applies_both_directions():
    sim = Simulator()
    link, _, _ = make_link(sim)
    link.set_loss(0.99, np.random.default_rng(3))
    for _ in range(15):
        link.ab.transmit(pkt())
        link.ba.transmit(pkt())
    sim.run(until=1.0)
    assert link.ab.dropped_packets.value > 0
    assert link.ba.dropped_packets.value > 0
    link.set_loss(0.0)
    assert link.ab.loss_rate == link.ba.loss_rate == 0.0
