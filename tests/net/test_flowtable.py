"""Unit tests for flow-table matching semantics."""

import pytest

from repro.net import (
    Bucket,
    Drop,
    FlowTable,
    Group,
    IPv4Address,
    IPv4Network,
    MacAddress,
    Match,
    Output,
    Packet,
    Proto,
    Rule,
    SetIpDst,
)


def pkt(src="10.0.0.1", dst="10.10.1.5", proto=Proto.UDP, dport=4000, dst_mac=None):
    return Packet(
        src_ip=IPv4Address(src),
        dst_ip=IPv4Address(dst),
        proto=proto,
        dport=dport,
        payload_bytes=10,
        dst_mac=dst_mac,
    )


def test_wildcard_match_matches_everything():
    assert Match().matches(pkt(), in_port=7)


def test_prefix_match_on_dst():
    m = Match(ip_dst=IPv4Network("10.10.1.0/24"))
    assert m.matches(pkt(dst="10.10.1.200"))
    assert not m.matches(pkt(dst="10.10.2.1"))


def test_prefix_match_on_src():
    m = Match(ip_src=IPv4Network("192.168.0.0/30"))
    assert m.matches(pkt(src="192.168.0.3"))
    assert not m.matches(pkt(src="192.168.0.4"))


def test_exact_ip_match_accepts_address_and_string():
    assert Match(ip_dst=IPv4Address("10.10.1.5")).matches(pkt())
    assert Match(ip_dst="10.10.1.5").matches(pkt())
    assert not Match(ip_dst="10.10.1.6").matches(pkt())


def test_proto_and_port_match():
    m = Match(proto=Proto.UDP, dport=4000)
    assert m.matches(pkt())
    assert not m.matches(pkt(proto=Proto.TCP))
    assert not m.matches(pkt(dport=4001))


def test_in_port_match():
    m = Match(in_port=3)
    assert m.matches(pkt(), in_port=3)
    assert not m.matches(pkt(), in_port=4)


def test_eth_dst_match():
    mac = MacAddress(42)
    assert Match(eth_dst=mac).matches(pkt(dst_mac=mac))
    assert not Match(eth_dst=mac).matches(pkt(dst_mac=MacAddress(43)))


def test_lookup_honors_priority():
    table = FlowTable()
    low = table.add(Rule(Match(), [Drop()], priority=1))
    high = table.add(
        Rule(Match(ip_dst=IPv4Network("10.10.0.0/16")), [Output(1)], priority=10)
    )
    assert table.lookup(pkt()) is high
    assert table.lookup(pkt(dst="1.1.1.1")) is low


def test_lookup_ties_break_on_insertion_order():
    table = FlowTable()
    first = table.add(Rule(Match(), [Output(1)], priority=5))
    table.add(Rule(Match(), [Output(2)], priority=5))
    assert table.lookup(pkt()) is first


def test_lookup_miss_returns_none():
    table = FlowTable()
    table.add(Rule(Match(ip_dst="1.2.3.4"), [Output(1)]))
    assert table.lookup(pkt()) is None


def test_capacity_enforced():
    table = FlowTable(capacity=2)
    table.add(Rule(Match(), [Drop()]))
    table.add(Rule(Match(), [Drop()]))
    with pytest.raises(OverflowError):
        table.add(Rule(Match(), [Drop()]))


def test_remove_by_cookie():
    table = FlowTable()
    table.add(Rule(Match(), [Drop()], cookie="vring:n1"))
    table.add(Rule(Match(), [Drop()], cookie="vring:n1"))
    keep = table.add(Rule(Match(), [Drop()], cookie="vring:n2"))
    assert table.remove_by_cookie("vring:n1") == 2
    assert table.rules == (keep,)


def test_rule_counters_touch():
    r = Rule(Match(), [Drop()])
    p = pkt()
    r.touch(p, now=4.2)
    assert r.packets == 1
    assert r.bytes == p.size_bytes
    assert r.last_used == 4.2


def test_idle_expiry():
    table = FlowTable()
    r1 = table.add(Rule(Match(), [Drop()], idle_timeout=5.0))
    r2 = table.add(Rule(Match(), [Drop()]))  # no timeout: survives
    r1.last_used = 0.0
    assert table.expire_idle(now=10.0) == 1
    assert table.rules == (r2,)


def test_group_buckets():
    g = Group(7, [Bucket(actions=(SetIpDst(IPv4Address("10.0.0.9")),), port=3)])
    assert len(g) == 1
    assert g.buckets[0].port == 3


def test_match_rejects_garbage_ip():
    with pytest.raises(TypeError):
        Match(ip_dst=3.14)  # type: ignore[arg-type]
