"""Leaf–spine fabric battery (DESIGN.md §5h).

Covers the multi-switch topology end to end: wiring invariants, host-pair
reachability through the full put/get path, deterministic ECMP, forwarding
loop freedom (TTL-style bounds on packet traces), and exactly-once
multicast delivery to every put target.
"""

import pytest

from repro.bench.harness import build_nice, run_to_completion
from repro.core.config import GET_PORT, PUT_PORT
from repro.net import ecmp_index
from repro.net.host import Host
from repro.workloads.synthetic import keys_in_partition

FABRIC = dict(n_storage_nodes=16, n_clients=4, n_racks=4, n_spines=2)


def build_fabric_cluster(**overrides):
    params = dict(FABRIC)
    params.update(overrides)
    return build_nice(**params)


# -- wiring -----------------------------------------------------------------


def test_fabric_wiring_invariants():
    cluster = build_fabric_cluster()
    fab = cluster.fabric
    assert fab is not None
    assert [s.name for s in fab.leaves] == [f"leaf{r}" for r in range(4)]
    assert [s.name for s in fab.spines] == [f"spine{s}" for s in range(2)]
    assert [s.name for s in fab.switches] == (
        [s.name for s in fab.leaves] + [s.name for s in fab.spines]
    )
    # Full leaf <-> spine mesh, with both port directions registered.
    for leaf in fab.leaves:
        for spine in fab.spines:
            link = fab.uplinks[(leaf.name, spine.name)]
            assert {link.a.device, link.b.device} == {leaf, spine}
            up = fab.uplink_ports[(leaf.name, spine.name)]
            down = fab.uplink_ports[(spine.name, leaf.name)]
            assert leaf.ports[up].peer.device is spine
            assert spine.ports[down].peer.device is leaf
    for rack in range(4):
        assert len(fab.uplinks_of(rack)) == 2
    # Every storage host hangs off the leaf of its rack.
    for name, rack in cluster.rack_of.items():
        host = cluster.nodes[name].host
        assert fab.rack_of_host[host.name] == rack
        assert host.port.peer.device is fab.leaves[rack]
        assert cluster.controller.rack_of_node(name) == rack


def test_rack_aware_placement_spans_failure_domains():
    cluster = build_fabric_cluster()
    for rs in cluster.metadata.partition_map:
        racks = {cluster.rack_of[m] for m in rs.members}
        assert len(racks) >= 2, (
            f"p{rs.partition} members {rs.members} all in rack {racks}"
        )


# -- reachability -----------------------------------------------------------


def test_host_pair_reachability_across_racks():
    """Every client can reach a primary in every rack (put + read-back)."""
    cluster = build_fabric_cluster()
    n_parts = len(cluster.metadata.partition_map)
    # One key per destination rack, chosen by its primary's rack.
    key_for_rack = {}
    for p in range(n_parts):
        rs = cluster.metadata.partition_map.get(p)
        rack = cluster.rack_of[rs.primary]
        if rack not in key_for_rack:
            key_for_rack[rack] = keys_in_partition(p, n_parts, 1)[0]
    assert set(key_for_rack) == set(range(4))

    failures = []

    def driver():
        for ci, client in enumerate(cluster.clients):
            for rack, key in sorted(key_for_rack.items()):
                val = f"v{ci}-{rack}"
                res = yield client.put(key, val, 64)
                if not res.ok:
                    failures.append(("put", ci, rack, res.status))
                    continue
                got = yield client.get(key)
                if not got.ok or got.value != val:
                    failures.append(("get", ci, rack, got.status, got.value))

    run_to_completion(cluster, cluster.sim.process(driver()))
    assert not failures


# -- ECMP determinism -------------------------------------------------------


def test_ecmp_index_deterministic_and_in_range():
    for n in (1, 2, 3, 8):
        for keys in (("leaf0", 3, 0), ("mc", 11, 7), ("a", "b")):
            i = ecmp_index(n, *keys)
            assert 0 <= i < n
            assert i == ecmp_index(n, *keys)
    # Distinct flow keys actually spread (not a constant function).
    picks = {ecmp_index(4, "leaf0", rack, 0) for rack in range(16)}
    assert len(picks) > 1


def test_ecmp_choice_is_function_of_src_dst_seed():
    a = build_fabric_cluster()
    b = build_fabric_cluster()
    for leaf in (f"leaf{r}" for r in range(4)):
        for rack in range(4):
            assert a.controller._spine_toward(leaf, rack) == \
                b.controller._spine_toward(leaf, rack)
    for p in range(len(a.metadata.partition_map)):
        assert a.controller._mc_spine(p) == b.controller._mc_spine(p)
    # The whole installed rule plan is identical across rebuilds.
    assert a.controller.rule_counts_by_switch() == \
        b.controller.rule_counts_by_switch()


def test_ecmp_seed_participates_in_choice():
    # crc32 is linear, so with n=2 a seed bump can flip every choice's
    # parity at once (or none); n=4 exposes the seed's real contribution.
    def vec(seed):
        return [ecmp_index(4, f"leaf{r}", d, seed)
                for r in range(4) for d in range(4)]

    assert vec(0) != vec(1)


# -- loop freedom + multicast delivery --------------------------------------


def _spy_deliveries(monkeypatch):
    """Record every packet any host delivers (after its trace is final)."""
    seen = []
    orig = Host.handle_packet

    def spy(self, packet, in_port):
        orig(self, packet, in_port)
        seen.append((self.name, packet))

    monkeypatch.setattr(Host, "handle_packet", spy)
    return seen


def test_no_forwarding_loops_trace_bounded(monkeypatch):
    """TTL-style probe: a forwarding loop would grow packet traces without
    bound; in a 2-tier fabric no delivered packet ever revisits a device."""
    cluster = build_fabric_cluster()
    seen = _spy_deliveries(monkeypatch)

    def driver():
        for i in range(12):
            yield cluster.clients[i % 4].put(f"loopprobe{i}", "x", 128)
            yield cluster.clients[i % 4].get(f"loopprobe{i}")

    run_to_completion(cluster, cluster.sim.process(driver()))
    checked = 0
    for host_name, packet in seen:
        if packet.dport not in (PUT_PORT, GET_PORT):
            continue
        checked += 1
        trace = packet.trace
        # client -> leaf -> spine -> leaf -> host is the longest legal path
        # (the ingress leaf legally repeats when same-rack multicast bounces
        # off the tree's spine root; anything longer is a loop).
        assert len(trace) <= 5, f"overlong path to {host_name}: {trace}"
        for dev in trace:
            crossings = trace.count(dev)
            # The ingress leaf repeats on same-rack mc bounces, and the
            # origin host repeats when a primary multicasts to a group
            # containing itself; spines and transit devices never repeat.
            limit = 2 if dev.startswith("leaf") or dev == trace[0] else 1
            assert crossings <= limit, f"loop in path: {trace}"
    assert checked > 0


def test_multicast_exactly_once_per_put_target(monkeypatch):
    cluster = build_fabric_cluster()
    seen = _spy_deliveries(monkeypatch)
    n_parts = len(cluster.metadata.partition_map)
    keys = [keys_in_partition(p, n_parts, 1)[0] for p in range(0, n_parts, 3)]

    results = []

    def driver():
        for key in keys:
            res = yield cluster.clients[0].put(key, "x", 256)
            results.append(res)

    run_to_completion(cluster, cluster.sim.process(driver()))
    assert all(r.ok and r.retries == 0 for r in results)

    per_op = {}
    for host_name, packet in seen:
        payload = packet.payload
        # Multicast data legs arrive as ('mc_data', op_id, size, body).
        if packet.dport != PUT_PORT or not isinstance(payload, tuple):
            continue
        if payload[0] != "mc_data" or payload[3].get("type") != "put":
            continue
        body = payload[3]
        op = tuple(body["op_id"])
        per_op.setdefault(op, []).append((host_name, body["key"]))
    assert len(per_op) == len(keys)
    for op, deliveries in per_op.items():
        key = deliveries[0][1]
        p = cluster.uni_vring.subgroup_of_key(key)
        targets = set(cluster.metadata.partition_map.get(p).put_targets())
        hosts = [h for h, _ in deliveries]
        assert sorted(hosts) == sorted(targets), (
            f"op {op} key {key}: delivered to {sorted(hosts)}, "
            f"put targets {sorted(targets)}"
        )
