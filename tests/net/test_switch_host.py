"""Integration-ish unit tests: switch forwarding, multicast groups,
packet-in buffering, host ARP and failure injection."""

import pytest

from repro.net import (
    Bucket,
    ControlPlane,
    ControllerApp,
    FLOOD,
    Group,
    Host,
    IPv4Address,
    IPv4Network,
    MacAddress,
    Match,
    Network,
    OpenFlowSwitch,
    Output,
    OutputGroup,
    Packet,
    Proto,
    Rule,
    SetEthDst,
    SetIpDst,
    make_arp_request,
)
from repro.sim import Simulator


class RecordingStack:
    """Minimal protocol stack capturing delivered packets."""

    def __init__(self, sim):
        self.sim = sim
        self.delivered = []

    def deliver(self, packet):
        self.delivered.append((self.sim.now, packet))


def build_star(n_hosts=3, **switch_kw):
    sim = Simulator()
    net = Network(sim)
    sw = OpenFlowSwitch(sim, "sw1", **switch_kw)
    net.register(sw)
    hosts = []
    for i in range(n_hosts):
        h = Host(sim, f"h{i}", IPv4Address(f"10.0.0.{i + 1}"), MacAddress(0x020000000001 + i))
        h.stack = RecordingStack(sim)
        net.register(h)
        net.connect(sw, h)
        hosts.append(h)
    return sim, net, sw, hosts


def host_port_on_switch(net, sw, host):
    link = net.link_between(sw, host)
    return (link.a if link.a.device is sw else link.b).number


def udp_pkt(src, dst_ip, size=100, dport=4000):
    return Packet(
        src_ip=src.ip,
        dst_ip=IPv4Address(dst_ip),
        proto=Proto.UDP,
        dport=dport,
        payload={"x": 1},
        payload_bytes=size,
    )


def test_switch_forwards_on_rule():
    sim, net, sw, hosts = build_star()
    p1 = host_port_on_switch(net, sw, hosts[1])
    sw.install_rule(Rule(Match(ip_dst=hosts[1].ip), [Output(p1)]))
    hosts[0].send(udp_pkt(hosts[0], "10.0.0.2"))
    sim.run()
    assert len(hosts[1].stack.delivered) == 1
    _, pkt = hosts[1].stack.delivered[0]
    assert pkt.trace[0] == "h0" and "sw1" in pkt.trace and pkt.trace[-1] == "h1"
    assert sw.forwarded.value == 1


def test_switch_rewrites_dst_and_records_virtual():
    """The NICE mapping: vnode address rewritten to the physical node."""
    sim, net, sw, hosts = build_star()
    p1 = host_port_on_switch(net, sw, hosts[1])
    vnet = IPv4Network("10.10.1.0/24")
    sw.install_rule(
        Rule(
            Match(ip_dst=vnet),
            [SetIpDst(hosts[1].ip), SetEthDst(hosts[1].mac), Output(p1)],
        )
    )
    hosts[0].send(udp_pkt(hosts[0], "10.10.1.77"))
    sim.run()
    _, pkt = hosts[1].stack.delivered[0]
    assert pkt.dst_ip == hosts[1].ip
    assert pkt.virtual_dst == IPv4Address("10.10.1.77")
    assert pkt.dst_mac == hosts[1].mac


def test_switch_group_multicast_clones_to_all_buckets():
    sim, net, sw, hosts = build_star(n_hosts=4)
    replicas = hosts[1:]
    buckets = [
        Bucket(
            actions=(SetIpDst(h.ip), SetEthDst(h.mac)),
            port=host_port_on_switch(net, sw, h),
        )
        for h in replicas
    ]
    sw.install_group(Group(1, buckets))
    sw.install_rule(Rule(Match(ip_dst=IPv4Network("10.11.0.0/16")), [OutputGroup(1)]))
    hosts[0].send(udp_pkt(hosts[0], "10.11.0.9", size=5000))
    sim.run()
    for h in replicas:
        assert len(h.stack.delivered) == 1
        _, pkt = h.stack.delivered[0]
        assert pkt.dst_ip == h.ip
        assert pkt.payload_bytes == 5000
    # Each replica got an independent clone.
    uids = {h.stack.delivered[0][1].uid for h in replicas}
    assert len(uids) == 3
    assert sw.groups[1].packets == 1


def test_multicast_network_load_counts_each_egress_once():
    """NICE's claim: multicast sends the bytes once per egress link only."""
    sim, net, sw, hosts = build_star(n_hosts=4)
    replicas = hosts[1:]
    buckets = [
        Bucket(actions=(SetIpDst(h.ip),), port=host_port_on_switch(net, sw, h))
        for h in replicas
    ]
    sw.install_group(Group(1, buckets))
    sw.install_rule(Rule(Match(ip_dst=IPv4Network("10.11.0.0/16")), [OutputGroup(1)]))
    pkt = udp_pkt(hosts[0], "10.11.0.9", size=10_000)
    wire = pkt.size_bytes
    hosts[0].send(pkt)
    sim.run()
    # 1 client uplink + 3 replica downlinks = 4 traversals.
    assert net.total_link_bytes() == 4 * wire


def test_missing_group_drops():
    sim, net, sw, hosts = build_star()
    sw.install_rule(Rule(Match(), [OutputGroup(99)]))
    hosts[0].send(udp_pkt(hosts[0], "10.0.0.2"))
    sim.run()
    assert sw.dropped.value == 1


def test_flood_reaches_all_but_ingress():
    sim, net, sw, hosts = build_star(n_hosts=3)
    sw.install_rule(Rule(Match(), [Output(FLOOD)]))
    hosts[0].send(udp_pkt(hosts[0], "10.0.0.99"))
    sim.run()
    assert len(hosts[0].stack.delivered) == 0
    assert len(hosts[1].stack.delivered) == 1
    assert len(hosts[2].stack.delivered) == 1


def test_table_miss_without_controller_drops():
    sim, net, sw, hosts = build_star()
    hosts[0].send(udp_pkt(hosts[0], "10.0.0.2"))
    sim.run()
    assert sw.table_misses.value == 1
    assert sw.dropped.value == 1


class InstallOnMiss(ControllerApp):
    """Installs a unicast rule on first miss, then releases the buffer."""

    def __init__(self, net, target_host):
        super().__init__()
        self.net = net
        self.target = target_host
        self.packet_ins = []

    def on_packet_in(self, switch, packet, in_port_no, buffer_id):
        self.packet_ins.append((packet, in_port_no))
        port = host_port_on_switch(self.net, switch, self.target)
        rule = Rule(Match(ip_dst=self.target.ip), [Output(port)])
        self.channel.flow_mod(switch, rule)
        self.channel.release_buffered(switch, buffer_id)


def test_packet_in_buffering_and_release():
    sim, net, sw, hosts = build_star()
    ctrl = InstallOnMiss(net, hosts[1])
    plane = ControlPlane(sim, ctrl, latency_s=0.001)
    plane.attach(sw)
    hosts[0].send(udp_pkt(hosts[0], "10.0.0.2"))
    sim.run()
    # First packet triggers a miss, gets buffered, and is forwarded after
    # the controller round-trip.
    assert len(ctrl.packet_ins) == 1
    assert len(hosts[1].stack.delivered) == 1
    when, _ = hosts[1].stack.delivered[0]
    assert when > 0.002  # at least two control-latency crossings
    assert sw.buffered_count == 0
    # Second packet hits the installed rule: no new packet-in.
    hosts[0].send(udp_pkt(hosts[0], "10.0.0.2"))
    sim.run()
    assert len(ctrl.packet_ins) == 1
    assert len(hosts[1].stack.delivered) == 2


def test_drop_buffered():
    sim, net, sw, hosts = build_star()

    class Dropper(ControllerApp):
        def on_packet_in(self, switch, packet, in_port_no, buffer_id):
            self.channel.drop_buffered(switch, buffer_id)

    plane = ControlPlane(sim, Dropper(), latency_s=0.001)
    plane.attach(sw)
    hosts[0].send(udp_pkt(hosts[0], "10.0.0.2"))
    sim.run()
    assert sw.dropped.value == 1
    assert sw.buffered_count == 0


def test_control_plane_message_counters():
    sim, net, sw, hosts = build_star()
    ctrl = InstallOnMiss(net, hosts[1])
    plane = ControlPlane(sim, ctrl, latency_s=0.001)
    plane.attach(sw)
    hosts[0].send(udp_pkt(hosts[0], "10.0.0.2"))
    sim.run()
    assert plane.messages_to_controller.value == 1
    assert plane.messages_to_switch.value == 2  # flow_mod + release


def test_host_answers_arp_request():
    sim, net, sw, hosts = build_star()
    sw.install_rule(Rule(Match(proto=Proto.ARP), [Output(FLOOD)]))
    req = make_arp_request(hosts[0].ip, hosts[0].mac, hosts[1].ip)
    hosts[0].send(req)
    sim.run()
    # hosts[1] answers; the reply floods back to hosts[0]'s stack.
    replies = [p for _, p in hosts[0].stack.delivered if p.proto == Proto.ARP]
    assert len(replies) == 1
    assert replies[0].payload["sender_mac"] == hosts[1].mac
    # hosts[2] must not answer someone else's ARP.
    assert all(
        p.payload.get("op") != "reply" or p.payload["sender_ip"] == hosts[1].ip
        for _, p in hosts[0].stack.delivered
    )


def test_failed_host_black_holes_traffic():
    sim, net, sw, hosts = build_star()
    p1 = host_port_on_switch(net, sw, hosts[1])
    sw.install_rule(Rule(Match(ip_dst=hosts[1].ip), [Output(p1)]))
    hosts[1].fail()
    hosts[0].send(udp_pkt(hosts[0], "10.0.0.2"))
    sim.run()
    assert hosts[1].stack.delivered == []
    hosts[1].recover()
    hosts[0].send(udp_pkt(hosts[0], "10.0.0.2"))
    sim.run()
    assert len(hosts[1].stack.delivered) == 1


def test_failed_host_cannot_send():
    sim, net, sw, hosts = build_star()
    hosts[0].fail()
    hosts[0].send(udp_pkt(hosts[0], "10.0.0.2"))
    sim.run()
    assert net.total_link_bytes() == 0


def test_host_io_bytes_counts_both_directions():
    sim, net, sw, hosts = build_star()
    p1 = host_port_on_switch(net, sw, hosts[1])
    p0 = host_port_on_switch(net, sw, hosts[0])
    sw.install_rule(Rule(Match(ip_dst=hosts[1].ip), [Output(p1)]))
    sw.install_rule(Rule(Match(ip_dst=hosts[0].ip), [Output(p0)]))
    out = udp_pkt(hosts[0], "10.0.0.2", size=1000)
    hosts[0].send(out)
    sim.run()
    assert net.host_io_bytes(hosts[0]) == out.size_bytes
    assert net.host_io_bytes(hosts[1]) == out.size_bytes


def test_duplicate_device_name_rejected():
    sim = Simulator()
    net = Network(sim)
    net.register(OpenFlowSwitch(sim, "sw"))
    with pytest.raises(ValueError):
        net.register(OpenFlowSwitch(sim, "sw"))


def test_software_rewrite_penalty_delays_forwarding():
    sim, net, sw, hosts = build_star(rewrite_penalty_s=0.5)
    p1 = host_port_on_switch(net, sw, hosts[1])
    sw.install_rule(
        Rule(Match(ip_dst="10.10.0.0/16"), [SetIpDst(hosts[1].ip), Output(p1)])
    )
    sw.install_rule(Rule(Match(ip_dst=hosts[1].ip), [Output(p1)], priority=200))
    hosts[0].send(udp_pkt(hosts[0], "10.10.0.5"))
    sim.run()
    when, _ = hosts[1].stack.delivered[0]
    assert when > 0.5  # software rewrite path dominates
