"""Coverage for control-plane operations not exercised elsewhere:
group deletion, rule deletion callbacks, packet-out, idle expiry wiring."""

from repro.net import (
    Bucket,
    ControlPlane,
    ControllerApp,
    Drop,
    FLOOD,
    Group,
    IPv4Address,
    Match,
    Output,
    Packet,
    Proto,
    Rule,
)
from tests.helpers import Star


class Nop(ControllerApp):
    def on_packet_in(self, switch, packet, in_port_no, buffer_id):
        self.channel.drop_buffered(switch, buffer_id)


def make_plane():
    star = Star(n_hosts=2)
    plane = ControlPlane(star.sim, Nop(), latency_s=0.001)
    plane.attach(star.switch)
    return star, plane


def test_group_delete_removes_group():
    star, plane = make_plane()
    plane.group_mod(star.switch, Group(5, [Bucket(actions=(), port=1)]))
    star.sim.run(until=1.0)
    assert 5 in star.switch.groups
    plane.group_delete(star.switch, 5)
    star.sim.run(until=2.0)
    assert 5 not in star.switch.groups


def test_flow_delete_with_done_callback():
    star, plane = make_plane()
    marks = []
    rule = Rule(Match(), [Drop()], cookie="x")
    plane.flow_mod(star.switch, rule, done=lambda: marks.append("mod"))
    star.sim.run(until=1.0)
    assert marks == ["mod"]
    plane.flow_delete(star.switch, "x", done=lambda: marks.append("del"))
    star.sim.run(until=2.0)
    assert marks == ["mod", "del"]
    assert all(r.cookie != "x" for r in star.switch.table.rules)


def test_packet_out_floods():
    star, plane = make_plane()

    class Sink:
        def __init__(self):
            self.got = []

        def deliver(self, packet):
            self.got.append(packet)

    sinks = []
    for host in star.hosts:
        sink = Sink()
        host.stack = sink
        sinks.append(sink)
    pkt = Packet(
        src_ip=IPv4Address("0.0.0.0"),
        dst_ip=IPv4Address("255.255.255.255"),
        proto=Proto.UDP,
        payload_bytes=10,
    )
    plane.packet_out(star.switch, pkt, [Output(FLOOD)])
    star.sim.run(until=1.0)
    assert all(len(s.got) == 1 for s in sinks)


def test_negative_control_latency_rejected():
    star = Star(n_hosts=2)
    import pytest

    with pytest.raises(ValueError):
        ControlPlane(star.sim, Nop(), latency_s=-1.0)


def test_idle_expiry_evicts_unused_vring_rule():
    star, plane = make_plane()
    rule = Rule(Match(ip_dst="10.10.1.0/24"), [Drop()], idle_timeout=1.0, cookie="i")
    plane.flow_mod(star.switch, rule)
    star.sim.run(until=0.5)
    assert len([r for r in star.switch.table.rules if r.cookie == "i"]) == 1
    # No traffic touches it: expire sweep at t=10 evicts it.
    star.sim.call_in(10.0, star.switch.table.expire_idle, 10.0)
    star.sim.run(until=11.0)
    assert len([r for r in star.switch.table.rules if r.cookie == "i"]) == 0
