"""Unit tests for packets, wire sizing and link transmission."""

import pytest

from repro.net import (
    GBPS,
    HEADER_BYTES,
    IPv4Address,
    Link,
    MTU_BYTES,
    Packet,
    Proto,
    wire_size,
)
from repro.net.topology import Device
from repro.sim import RngRegistry, Simulator


class Sink(Device):
    """Test device recording received packets and arrival times."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def handle_packet(self, packet, in_port):
        self.received.append((self.sim.now, packet))


def make_packet(size=100, **kw):
    defaults = dict(
        src_ip=IPv4Address("10.0.0.1"),
        dst_ip=IPv4Address("10.0.0.2"),
        proto=Proto.UDP,
        payload_bytes=size,
    )
    defaults.update(kw)
    return Packet(**defaults)


def test_wire_size_single_chunk():
    assert wire_size(100) == 100 + HEADER_BYTES
    assert wire_size(0) == HEADER_BYTES
    assert wire_size(MTU_BYTES) == MTU_BYTES + HEADER_BYTES


def test_wire_size_multi_chunk():
    assert wire_size(MTU_BYTES + 1) == MTU_BYTES + 1 + 2 * HEADER_BYTES
    one_mb = 1 << 20
    chunks = -(-one_mb // MTU_BYTES)
    assert wire_size(one_mb) == one_mb + chunks * HEADER_BYTES


def test_wire_size_negative_rejected():
    with pytest.raises(ValueError):
        wire_size(-1)
    with pytest.raises(ValueError):
        make_packet(size=-5)


def test_packet_copy_is_independent():
    p = make_packet()
    p.trace.append("x")
    q = p.copy()
    q.trace.append("y")
    q.dst_ip = IPv4Address("9.9.9.9")
    assert p.trace == ["x"]
    assert q.trace == ["x", "y"]
    assert p.dst_ip == IPv4Address("10.0.0.2")
    assert p.uid != q.uid


def test_link_delivers_after_serialization_plus_latency():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = Link(sim, a.new_port(), b.new_port(), bandwidth_bps=1e6, latency_s=0.01)
    pkt = make_packet(size=1000 - HEADER_BYTES)  # exactly 1000 B on the wire
    link.ab.transmit(pkt)
    sim.run()
    assert len(b.received) == 1
    when, got = b.received[0]
    assert when == pytest.approx(1000 * 8 / 1e6 + 0.01)
    assert got is pkt


def test_link_fifo_contention():
    """Two packets queued on one channel serialize back-to-back."""
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = Link(sim, a.new_port(), b.new_port(), bandwidth_bps=1e6, latency_s=0.0)
    size = 1000 - HEADER_BYTES
    link.ab.transmit(make_packet(size=size))
    link.ab.transmit(make_packet(size=size))
    sim.run()
    times = [t for t, _ in b.received]
    assert times == pytest.approx([0.008, 0.016])


def test_link_directions_independent():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = Link(sim, a.new_port(), b.new_port(), bandwidth_bps=1e6, latency_s=0.0)
    size = 1000 - HEADER_BYTES
    link.ab.transmit(make_packet(size=size))
    link.ba.transmit(make_packet(size=size))
    sim.run()
    assert a.received[0][0] == pytest.approx(0.008)
    assert b.received[0][0] == pytest.approx(0.008)


def test_link_byte_counters():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = Link(sim, a.new_port(), b.new_port())
    pkt = make_packet(size=500)
    link.ab.transmit(pkt)
    sim.run()
    assert link.ab.tx_bytes.value == pkt.size_bytes
    assert link.ba.tx_bytes.value == 0
    assert link.total_bytes == pkt.size_bytes
    link.reset_counters()
    assert link.total_bytes == 0


def test_link_loss_drops_packets():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = Link(sim, a.new_port(), b.new_port())
    link.ab.set_loss(1.0 - 1e-12, RngRegistry(1).stream("loss"))
    for _ in range(20):
        link.ab.transmit(make_packet())
    sim.run()
    assert len(b.received) == 0
    assert link.ab.dropped_packets.value == 20
    # Bytes still hit the wire before the drop point.
    assert link.ab.tx_bytes.value > 0


def test_link_set_bandwidth():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = Link(sim, a.new_port(), b.new_port(), bandwidth_bps=GBPS, latency_s=0.0)
    link.set_bandwidth(1e6)
    size = 1000 - HEADER_BYTES
    link.ab.transmit(make_packet(size=size))
    sim.run()
    assert b.received[0][0] == pytest.approx(0.008)


def test_invalid_link_parameters():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    with pytest.raises(ValueError):
        Link(sim, a.new_port(), b.new_port(), bandwidth_bps=0)
    link = Link(sim, a.new_port(), b.new_port())
    with pytest.raises(ValueError):
        link.set_bandwidth(-1)
    with pytest.raises(ValueError):
        link.ab.set_loss(1.5, RngRegistry(1).stream("x"))


def test_port_cannot_be_double_linked():
    sim = Simulator()
    a, b, c = Sink(sim, "a"), Sink(sim, "b"), Sink(sim, "c")
    pa = a.new_port()
    Link(sim, pa, b.new_port())
    with pytest.raises(RuntimeError):
        Link(sim, pa, c.new_port())


def test_unplugged_port_send_raises():
    sim = Simulator()
    a = Sink(sim, "a")
    with pytest.raises(RuntimeError):
        a.new_port().send(make_packet())


def test_port_peer():
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    pa, pb = a.new_port(), b.new_port()
    link = Link(sim, pa, pb)
    assert pa.peer is pb
    assert pb.peer is pa
