"""Per-family rule census audit (DESIGN.md §4.6 budget accounting).

``rule_counts_by_switch`` is the number the budget verdicts are computed
from, so its accounting rules are pinned here: chaos-engine rules (cookie
``chaos:*``) are fault machinery and must never inflate the census, the
harmonia read family (``hread:*``) must be counted like any planned rule,
and the itemized ``rule_census_by_switch`` must re-add to exactly the
same totals.
"""

from repro.core import ClusterConfig, NiceCluster
from repro.net import Drop, Match, Rule


def build(mode):
    cluster = NiceCluster(ClusterConfig(
        n_storage_nodes=8, n_clients=2, replication_level=3, n_racks=2,
        protocol_mode=mode,
    ))
    cluster.warm_up()
    return cluster


def test_census_counts_hread_family_and_matches_totals():
    cluster = build("harmonia")
    controller = cluster.controller
    counts = controller.rule_counts_by_switch()
    census = controller.rule_census_by_switch()
    assert set(counts) == set(census)
    for name, families in census.items():
        assert sum(families.values()) == counts[name], (name, families)
    # The dirty-set read rule family is planned state and is counted; the
    # rewriting hop in the ovs deployment is the client edge, and in
    # harmonia mode it carries one hread entry per partition it covers.
    assert any("hread" in fam for fam in census.values()), census
    total_hread = sum(fam.get("hread", 0) for fam in census.values())
    assert total_hread > 0
    # hread replaces the per-division LB entries on the same switches:
    # wherever hread rules live, no LB division family sits beside them
    # for the same partition (the uni family there is the PRIO_VRING
    # default only — at most one per partition).
    n_parts = cluster.config.n_partitions
    for name, fam in census.items():
        if fam.get("hread"):
            assert fam["hread"] <= n_parts
            assert fam.get("uni", 0) <= n_parts


def test_census_excludes_chaos_cookies():
    cluster = build("harmonia")
    controller = cluster.controller
    switch = cluster.switch
    before_counts = controller.rule_counts_by_switch()
    before_census = controller.rule_census_by_switch()
    raw_before = len(list(switch.table.iter_rules()))
    switch.install_rule(
        Rule(Match(), [Drop()], 10_000, cookie="chaos:partition:test")
    )
    assert len(list(switch.table.iter_rules())) == raw_before + 1
    # The census is blind to the injected fault rule ...
    assert controller.rule_counts_by_switch() == before_counts
    assert controller.rule_census_by_switch() == before_census
    # ... and recovers nothing extra once it is removed again.
    assert switch.remove_cookie("chaos:partition:test") == 1
    assert controller.rule_counts_by_switch() == before_counts


def test_nice_mode_census_has_no_hread_family():
    cluster = build("nice")
    census = cluster.controller.rule_census_by_switch()
    assert all("hread" not in fam for fam in census.values()), census


def test_budget_compliance_at_thousand_node_approx_rung():
    """The 1000-node scale rung (20 racks x 50 hosts, approx mode) must
    hold the 8192-rule switch budget with the harmonia family planned in
    — the hread entries replace the LB divisions, they don't stack on
    top of them."""
    cluster = NiceCluster(ClusterConfig(
        n_storage_nodes=20 * 50, n_clients=12, n_racks=20,
        switch_rule_budget=8192, sim_mode="approx",
        protocol_mode="harmonia",
    ))
    cluster.warm_up()
    controller = cluster.controller
    counts = controller.rule_counts_by_switch()
    census = controller.rule_census_by_switch()
    assert max(counts.values()) <= cluster.config.switch_rule_budget, (
        sorted(counts.items(), key=lambda kv: -kv[1])[:3]
    )
    for name, families in census.items():
        assert sum(families.values()) == counts[name]
    # Every rewriting hop carries the read family for its partitions.
    assert sum(f.get("hread", 0) for f in census.values()) > 0
