"""Unit tests for replica sets and the partition map."""

import pytest

from repro.core import PartitionMap, ReplicaSet


def rs(members=("n0", "n1", "n2"), **kw):
    return ReplicaSet(partition=0, members=list(members), **kw)


def test_primary_defaults_to_first_member():
    r = rs()
    assert r.primary == "n0"
    assert r.secondaries() == ["n1", "n2"]


def test_empty_replica_set_rejected():
    with pytest.raises(ValueError):
        ReplicaSet(partition=0, members=[])


def test_mark_failed_secondary():
    r = rs()
    r.mark_failed("n1")
    assert "n1" in r.absent
    assert r.primary == "n0"
    assert r.get_targets() == ["n0", "n2"]
    assert r.put_targets() == ["n0", "n2"]


def test_mark_failed_primary_promotes_live_member():
    r = rs()
    r.mark_failed("n0")
    assert r.primary == "n1"
    assert r.secondaries() == ["n2"]


def test_mark_failed_handoff_just_removes_it():
    r = rs()
    r.add_handoff("h1")
    r.mark_failed("h1")
    assert r.handoffs == []
    assert r.absent == set()


def test_add_handoff_rejects_existing_member():
    r = rs()
    with pytest.raises(ValueError):
        r.add_handoff("n1")
    r.add_handoff("h1")
    with pytest.raises(ValueError):
        r.add_handoff("h1")


def test_handoff_serves_puts_and_gets():
    r = rs()
    r.mark_failed("n2")
    r.add_handoff("h1")
    assert r.put_targets() == ["n0", "n1", "h1"]
    assert r.get_targets() == ["n0", "n1", "h1"]


def test_rejoin_two_phases():
    r = rs()
    r.mark_failed("n2")
    r.add_handoff("h1")
    r.begin_rejoin("n2")
    # Phase 1: put-visible, not get-visible.
    assert "n2" in r.put_targets()
    assert "n2" not in r.get_targets()
    released = r.complete_rejoin("n2")
    assert released == ["h1"]
    assert r.put_targets() == ["n0", "n1", "n2"]
    assert r.get_targets() == ["n0", "n1", "n2"]
    assert r.absent == set()


def test_rejoining_original_primary_resumes_role():
    r = rs()
    r.mark_failed("n0")
    assert r.primary == "n1"
    r.begin_rejoin("n0")
    assert r.primary == "n1"  # still acting primary during phase 1
    r.complete_rejoin("n0")
    assert r.primary == "n0"


def test_rejoin_guards():
    r = rs()
    with pytest.raises(ValueError):
        r.begin_rejoin("ghost")
    with pytest.raises(ValueError):
        r.complete_rejoin("n1")  # never began


def test_wire_roundtrip():
    r = rs()
    r.mark_failed("n1")
    r.add_handoff("h1")
    r.begin_rejoin("n1")
    back = ReplicaSet.from_wire(r.to_wire())
    assert back.members == r.members
    assert back.primary == r.primary
    assert back.absent == r.absent
    assert back.joining == r.joining
    assert back.handoffs == r.handoffs


def test_partition_map_build_shapes():
    names = [f"n{i}" for i in range(8)]
    pm = PartitionMap.build(names, n_partitions=16, replication_level=3)
    assert len(pm) == 16
    for p in range(16):
        replicas = pm.get(p)
        assert len(replicas.members) == 3
        assert len(set(replicas.members)) == 3
        assert all(m in names for m in replicas.members)


def test_partition_map_every_node_serves_something():
    names = [f"n{i}" for i in range(8)]
    pm = PartitionMap.build(names, 16, 3)
    for n in names:
        assert pm.partitions_of(n), f"{n} serves nothing"


def test_partition_map_o_r_property():
    """Nodes participate in a bounded number of partitions — the O(R)
    membership-knowledge claim (§4.1) needs partition spread, not blowup."""
    names = [f"n{i}" for i in range(16)]
    pm = PartitionMap.build(names, 16, 3)
    counts = [len(pm.partitions_of(n)) for n in names]
    assert sum(counts) == 16 * 3


def test_eligible_handoffs_excludes_replica_set():
    names = [f"n{i}" for i in range(6)]
    pm = PartitionMap.build(names, 8, 3)
    rs0 = pm.get(0)
    eligible = pm.eligible_handoffs(0, names)
    assert set(eligible) == set(names) - set(rs0.members)


def test_partition_map_unknown_partition():
    pm = PartitionMap.build(["a", "b", "c"], 4, 2)
    with pytest.raises(KeyError):
        pm.get(99)


def test_partitions_where_member_excludes_handoffs():
    pm = PartitionMap.build(["a", "b", "c", "d"], 4, 2)
    rs0 = pm.get(0)
    outsider = next(n for n in ["a", "b", "c", "d"] if n not in rs0.members)
    rs0.mark_failed(rs0.members[1])
    rs0.add_handoff(outsider)
    assert rs0 in pm.partitions_of(outsider)
    assert rs0 not in pm.partitions_where_member(outsider)
