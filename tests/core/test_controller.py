"""Unit tests for the NICE controller: rule synthesis, §4.6 budget,
reactive packet-in path, failure hiding."""

import pytest

from repro.core import ClusterConfig, NiceCluster
from repro.net import IPv4Address, Packet, Proto


def make_cluster(**kw):
    defaults = dict(n_storage_nodes=5, n_clients=3, replication_level=3)
    defaults.update(kw)
    cluster = NiceCluster(ClusterConfig(**defaults))
    cluster.warm_up()
    return cluster


def test_rule_budget_without_load_balancing():
    """§4.6 counts 2N vring entries without load balancing; this
    implementation adds one IP-multicast-group match per partition (the
    target of node-originated 2PC timestamps), hence 3N."""
    cluster = make_cluster(load_balancing=False, n_partitions=8)
    n = cluster.config.n_partitions
    assert cluster.controller.rule_count() == 3 * n


def test_rule_budget_with_load_balancing():
    """§4.6's (R+1)N with LB; here R division rules + 1 default unicast +
    2 multicast entries per partition ⇒ (R+3)N."""
    cluster = make_cluster(load_balancing=True, n_partitions=8)
    n = cluster.config.n_partitions
    r = cluster.config.replication_level
    assert cluster.controller.rule_count() == (r + 3) * n


def test_multicast_groups_have_r_buckets():
    cluster = make_cluster()
    for p in range(cluster.config.n_partitions):
        group = cluster.switch.groups[p]
        assert len(group.buckets) == cluster.config.replication_level


def test_client_divisions_are_power_of_two_blocks():
    cluster = make_cluster()
    divisions = cluster.controller._client_divisions(3)
    assert len(divisions) == 3
    assert all(d.prefixlen == 26 for d in divisions)  # /24 split into 4
    assert divisions[0].address == cluster.config.client_space.address


def test_hide_host_removes_node_from_all_mappings():
    cluster = make_cluster()
    victim = "n1"
    victim_ip = cluster.directory[victim]
    cluster.metadata.declare_failed(victim)
    cluster.sim.run(until=cluster.sim.now + 0.1)
    # No vring rule rewrites to the victim's IP any more.
    for rule in cluster.switch.table.rules:
        for action in rule.actions:
            ip = getattr(action, "ip", None)
            assert ip != victim_ip, f"rule {rule.cookie} still routes to {victim}"
    # No multicast bucket targets the victim.
    for group in cluster.switch.groups.values():
        for bucket in group.buckets:
            for action in bucket.actions:
                assert getattr(action, "ip", None) != victim_ip


def test_failed_node_partitions_get_handoff_buckets():
    cluster = make_cluster()
    victim = "n1"
    affected = [rs.partition for rs in cluster.partition_map.partitions_of(victim)]
    cluster.metadata.declare_failed(victim)
    cluster.sim.run(until=cluster.sim.now + 0.1)
    for p in affected:
        rs = cluster.partition_map.get(p)
        assert rs.handoffs, f"partition {p} got no handoff"
        group = cluster.switch.groups[p]
        bucket_ips = {
            a.ip for b in group.buckets for a in b.actions if hasattr(a, "ip")
        }
        assert cluster.directory[rs.handoffs[0]] in bucket_ips


def test_reactive_vring_resolution_via_packet_in():
    """A cold switch resolves vring traffic through packet-in (§5)."""
    cfg = ClusterConfig(n_storage_nodes=4, n_clients=1, replication_level=2)
    cluster = NiceCluster(cfg)
    cluster.warm_up()
    # Empty the vring rules (post-bootstrap) to force the reactive path.
    for p in range(cfg.n_partitions):
        cluster.switch.remove_cookie(f"uni:{p}")
        cluster.switch.remove_cookie(f"mc:{p}")
    client = cluster.clients[0]
    results = {}

    def driver(sim):
        r = yield client.put("coldkey", "v", 100)
        results["put"] = r
        g = yield client.get("coldkey")
        results["get"] = g

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=30.0)
    assert results["put"].ok
    assert results["get"].ok
    assert cluster.switch.table_misses.value >= 1


def test_learning_switch_arps_unknown_physical_dst():
    cfg = ClusterConfig(n_storage_nodes=3, n_clients=1, replication_level=2)
    cluster = NiceCluster(cfg)
    cluster.warm_up()
    # Forget one host's location and L3 rule: force ARP discovery.
    target = cluster.nodes["n2"].host
    cluster.controller.arp.forget(target.ip)
    cluster.switch.remove_cookie(f"l3:{target.ip}")
    inbox = cluster.nodes["n2"].stack.udp_bind(9999)
    got = []

    def receiver(sim):
        d = yield inbox.get()
        got.append(d)

    cluster.sim.process(receiver(cluster.sim))
    cluster.clients[0].stack.udp_send(target.ip, 9999, "ping", 10)
    cluster.sim.run(until=5.0)
    assert len(got) == 1
    assert cluster.controller.arp.lookup(target.ip) is not None


def test_single_hop_routing_trace():
    """§3.2: the client request reaches the storage node through the switch
    in a single hop (client → switch → node), rewritten in-network."""
    cluster = make_cluster()
    client = cluster.clients[0]
    key = "trace-me"
    partition = cluster.uni_vring.subgroup_of_key(key)
    primary = cluster.node_of_partition(partition)
    captured = []
    orig = primary.stack.deliver

    def capture(packet):
        captured.append(packet)
        orig(packet)

    primary.stack.deliver = capture
    vaddr = cluster.uni_vring.vnode_for_key(key)
    client.stack.udp_send(vaddr, 9999, {"type": "noop"}, 10)
    cluster.sim.run(until=2.0)
    assert len(captured) == 1
    pkt = captured[0]
    assert pkt.trace == [client.host.name, "sw0", primary.host.name]
    assert pkt.dst_ip == primary.ip
    assert pkt.virtual_dst == vaddr


def test_rule_resync_is_idempotent():
    cluster = make_cluster()
    before = cluster.controller.rule_count()
    cluster.controller.sync_partition(0)
    cluster.sim.run(until=cluster.sim.now + 0.1)
    assert cluster.controller.rule_count() == before
