"""Races around phase-1 rejoin: best-effort joiners, early commits, and
repeated failure cycles must never leave locks or logs stuck."""

import pytest

from repro.core import ClusterConfig, NiceCluster
from repro.workloads import keys_in_partition


def make_cluster(**kw):
    defaults = dict(n_storage_nodes=8, n_clients=3, replication_level=3)
    defaults.update(kw)
    cluster = NiceCluster(ClusterConfig(**defaults))
    cluster.warm_up()
    return cluster


def test_puts_succeed_while_node_is_rejoining():
    """The primary must not require a phase-1 joiner's acks (§4.4: it only
    'receives and participates in' puts while catching up)."""
    cluster = make_cluster()
    client = cluster.clients[0]
    key = "during-rejoin"
    part = cluster.uni_vring.subgroup_of_key(key)
    rs = cluster.partition_map.get(part)
    victim = [m for m in rs.members if m != rs.primary][0]
    out = {"puts": []}

    def driver(sim):
        yield client.put(key, "v0", 1000)
        cluster.nodes[victim].crash()
        yield sim.timeout(2.5)
        proc = cluster.nodes[victim].restart()
        # Hammer puts exactly through the rejoin window.
        for i in range(20):
            r = yield client.put(key, f"v{i}", 1000, max_retries=0)
            out["puts"].append(r.ok)
        yield proc

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=60.0)
    assert all(out["puts"]), f"puts failed during rejoin: {out['puts']}"
    # No stuck protocol state anywhere in the replica set.
    cluster.sim.run(until=cluster.sim.now + 5.0)
    for m in cluster.partition_map.get(part).members:
        node = cluster.nodes[m]
        assert len(node.locks) == 0
        assert len(node.wal) == 0


def test_repeated_fail_rejoin_cycles_stay_clean():
    cluster = make_cluster()
    client = cluster.clients[0]
    keys = keys_in_partition(0, cluster.config.n_partitions, 8)
    rs = cluster.partition_map.get(0)
    victim = [m for m in rs.members if m != rs.primary][0]
    out = {"ok": 0, "total": 0}

    def driver(sim):
        for cycle in range(3):
            for k in keys[:3]:
                r = yield client.put(k, f"c{cycle}", 500)
                out["total"] += 1
                out["ok"] += int(r.ok)
            cluster.nodes[victim].crash()
            yield sim.timeout(2.5)
            yield cluster.nodes[victim].restart()
            yield sim.timeout(1.0)

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=120.0)
    assert out["ok"] == out["total"] == 9
    rs = cluster.partition_map.get(0)
    assert victim in rs.members and victim not in rs.absent
    for m in rs.members:
        node = cluster.nodes[m]
        assert len(node.locks) == 0
        assert len(node.wal) == 0


def test_joiner_converges_via_handoff_even_if_it_misses_window_puts():
    """Objects written in the detection/handoff window end up on the
    rejoined node (fetched from the handoff)."""
    cluster = make_cluster()
    client = cluster.clients[0]
    keys = keys_in_partition(0, cluster.config.n_partitions, 6, prefix="w")
    rs = cluster.partition_map.get(0)
    victim = [m for m in rs.members if m != rs.primary][0]

    def driver(sim):
        cluster.nodes[victim].crash()
        yield sim.timeout(2.5)
        for k in keys:
            r = yield client.put(k, "window", 500)
            assert r.ok
        yield cluster.nodes[victim].restart()
        yield sim.timeout(2.0)

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=60.0)
    node = cluster.nodes[victim]
    for k in keys:
        obj = node.store.get(k)
        assert obj is not None and obj.value == "window", f"{k} missing on {victim}"
