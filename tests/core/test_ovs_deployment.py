"""Tests for the §5.1 deployed configuration: client-side Open vSwitches
do the virtual→physical rewrites; the hardware switch only forwards and
multicasts (it cannot modify destination addresses)."""

import pytest

from repro.core import ClusterConfig, NiceCluster
from repro.core.vring import mc_group_address
from repro.net import IPv4Address, SetIpDst


def make_cluster(**kw):
    defaults = dict(
        n_storage_nodes=6, n_clients=3, replication_level=3, deployment="ovs"
    )
    defaults.update(kw)
    cluster = NiceCluster(ClusterConfig(**defaults))
    cluster.warm_up()
    return cluster


def run_ops(cluster, gen, until=30.0):
    out = {}
    cluster.sim.process(gen(cluster.sim, out))
    cluster.sim.run(until=until)
    return out


def test_deployment_validation():
    with pytest.raises(ValueError):
        ClusterConfig(deployment="bogus")


def test_topology_has_one_ovs_per_client():
    cluster = make_cluster()
    assert len(cluster.edge_switches) == 3
    names = {s.name for s in cluster.edge_switches}
    assert names == {"ovs0", "ovs1", "ovs2"}


def test_core_switch_has_no_rewrite_rules_or_buckets():
    """The CloudLab hardware switch cannot modify destination addresses."""
    cluster = make_cluster()
    for rule in cluster.switch.table.rules:
        assert not any(isinstance(a, SetIpDst) for a in rule.actions), rule.cookie
    for group in cluster.switch.groups.values():
        for bucket in group.buckets:
            assert not any(isinstance(a, SetIpDst) for a in bucket.actions)


def test_put_and_get_work_end_to_end():
    cluster = make_cluster()
    client = cluster.clients[0]

    def driver(sim, out):
        out["put"] = yield client.put("k", "v", 4096)
        out["get"] = yield client.get("k")

    out = run_ops(cluster, driver)
    assert out["put"].ok
    assert out["get"].ok and out["get"].value == "v"
    for node in cluster.replica_nodes("k"):
        assert node.store.get("k") is not None


def test_rewrite_happens_at_the_edge():
    """A get's trace shows client → its OVS (rewrite) → hw switch → node."""
    cluster = make_cluster()
    client = cluster.clients[0]
    key = "traced"
    partition = cluster.uni_vring.subgroup_of_key(key)
    # LB may send client 0's gets to any get target: capture on all.
    captured = []
    for node in cluster.replica_nodes(key):
        orig = node.stack.deliver

        def capture(packet, orig=orig):
            captured.append(packet)
            orig(packet)

        node.stack.deliver = capture
    vaddr = cluster.uni_vring.vnode_for_key(key)
    client.stack.udp_send(vaddr, 9999, {"type": "noop"}, 10)
    cluster.sim.run(until=2.0)
    assert len(captured) == 1
    pkt = captured[0]
    assert pkt.trace[0] == client.host.name
    assert pkt.trace[1] == "ovs0"
    assert pkt.trace[2] == "sw0"
    assert pkt.virtual_dst == vaddr
    assert pkt.dst_ip != vaddr  # rewritten at the edge


def test_put_multicast_uses_group_address_on_core():
    cluster = make_cluster()
    client = cluster.clients[0]
    key = "grouped"
    partition = cluster.mc_vring.subgroup_of_key(key)
    received = []
    for node in cluster.replica_nodes(key):
        orig = node.stack.deliver

        def capture(packet, orig=orig, node=node):
            if packet.dport == 7001:
                received.append((node.name, packet))
            orig(packet)

        node.stack.deliver = capture

    def driver(sim, out):
        out["put"] = yield client.put(key, "v", 1000)

    out = run_ops(cluster, driver)
    assert out["put"].ok
    data_packets = [
        p
        for _, p in received
        if type(p.payload) is tuple and p.payload and p.payload[0] == "mc_data"
    ]
    assert len(data_packets) == 3
    for pkt in data_packets:
        assert pkt.dst_ip == mc_group_address(partition)  # no per-replica rewrite
        assert pkt.virtual_dst is not None and pkt.virtual_dst in cluster.mc_vring.prefix


def test_failure_handling_works_in_ovs_mode():
    cluster = make_cluster()
    client = cluster.clients[0]
    key = "ft"
    part = cluster.uni_vring.subgroup_of_key(key)

    def driver(sim, out):
        yield client.put(key, "v1", 100)
        rs = cluster.partition_map.get(part)
        victim = [m for m in rs.members if m != rs.primary][0]
        cluster.nodes[victim].crash()
        yield sim.timeout(2.5)
        out["put"] = yield client.put(key, "v2", 100)
        out["get"] = yield client.get(key)

    out = run_ops(cluster, driver, until=60.0)
    assert out["put"].ok
    assert out["get"].ok and out["get"].value == "v2"


def test_ovs_overhead_is_small():
    """§5.1: 'our new deployment leads to less than 4% performance loss of
    the switching speed' — end-to-end op latency stays close to the
    idealized hardware deployment."""
    lat = {}
    for deployment in ("hw", "ovs"):
        cluster = make_cluster(deployment=deployment, seed=5)
        client = cluster.clients[0]

        def driver(sim, out):
            yield client.put("probe", "v", 1024)
            total = 0.0
            n = 20
            for _ in range(n):
                r = yield client.get("probe")
                total += r.latency
            out["avg"] = total / n

        out = run_ops(cluster, driver, until=60.0)
        lat[deployment] = out["avg"]
    # One extra software-switch hop: small, bounded overhead.
    assert lat["ovs"] >= lat["hw"]
    assert lat["ovs"] / lat["hw"] < 1.5


def test_gets_load_balanced_per_client_division_in_ovs_mode():
    cluster = make_cluster(n_clients=6)
    key = "hot"

    def driver(sim, out):
        yield cluster.clients[0].put(key, "v", 100)
        for c in cluster.clients:
            r = yield c.get(key)
            assert r.ok

    run_ops(cluster, driver, until=60.0)
    served = [n.gets_served.value for n in cluster.replica_nodes(key)]
    assert sum(served) == 6
    assert sum(1 for s in served if s > 0) >= 2
