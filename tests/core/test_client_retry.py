"""Client retry semantics: fixed back-off, bounded any-k, authoritative miss.

Pins the PR-4 bugfix sweep:

* ``_put``/``_get`` honor the documented fixed back-off after a rejection
  (previously a non-ok reply re-sent immediately — a zero-sim-time retry
  storm against a rejecting replica set);
* ``_put_anyk`` is bounded by ``client_retry_timeout_s`` instead of
  hanging forever (and reporting ok) when the quorum is unreachable;
* an authoritative get "miss" returns immediately — it is an answer,
  not a failure to reach the store.
"""

import pytest

from repro.chaos import ChaosEngine, FaultEvent, FaultSchedule
from repro.core import ClusterConfig, NiceCluster
from repro.obs import install as install_tracer


def make_cluster(**kw):
    # heartbeat_miss_limit is huge so a crashed replica is never declared
    # failed: the replica set stays degraded and every 2PC put against it
    # aborts after peer_timeout_s — the rejection path under test.
    defaults = dict(
        n_storage_nodes=6, n_clients=1, replication_level=3,
        heartbeat_miss_limit=10_000,
    )
    defaults.update(kw)
    cluster = NiceCluster(ClusterConfig(**defaults))
    cluster.warm_up()
    return cluster


def crash_one_secondary(cluster, key):
    part = cluster.uni_vring.subgroup_of_key(key)
    rs = cluster.partition_map.get(part)
    victim = next(m for m in rs.members if m != rs.primary)
    cluster.nodes[victim].crash()
    return victim


def run_driver(cluster, gen, until=60.0):
    proc = cluster.sim.process(gen)
    cluster.sim.run(until=until)
    assert proc.triggered, "driver did not finish"
    return proc.value


def test_put_retry_attempts_are_spaced_by_fixed_backoff():
    """A rejecting replica set must see retries ``client_retry_timeout_s``
    apart, not a same-instant storm (the attempt spans prove the spacing)."""
    cluster = make_cluster()
    tracer = install_tracer(cluster.sim, label="test")
    client = cluster.clients[0]
    key = "stormy"
    crash_one_secondary(cluster, key)
    cfg = cluster.config

    def driver():
        result = yield client.put(key, "v", 1000, max_retries=2)
        return result

    result = run_driver(cluster, driver())
    # Two aborts (peer timeout on the crashed secondary), then the §4.4
    # two-strikes failure report repairs the replica set and the third
    # attempt commits.
    assert result.ok
    assert result.retries == 2
    assert client.retries.value == 2
    assert client.failures.value == 0

    attempts = tracer.spans("put")
    assert len(attempts) == 3
    # The rejected attempts ended with the coordinator's "fail" reply, not
    # a timeout: the back-off (not the 2 s op timeout) made the spacing.
    assert [e.args["status"] for _, e in attempts] == ["fail", "fail", "ok"]
    starts = [b.ts for b, _ in attempts]
    gaps = [b - a for a, b in zip(starts, starts[1:])]
    for gap in gaps:
        assert gap >= cfg.client_retry_timeout_s
        # ... but not a full op timeout: the reply arrived early (at the
        # 0.5 s peer timeout) and only the back-off was waited out.
        assert gap < cfg.client_retry_timeout_s + 2 * cfg.peer_timeout_s
    # Total: 2 aborts at ~peer_timeout plus 2 back-offs plus a fast commit.
    expected = 2 * cfg.peer_timeout_s + 2 * cfg.client_retry_timeout_s
    assert result.latency == pytest.approx(expected, rel=0.2)


def test_put_anyk_times_out_when_quorum_unreachable():
    """Chaos-crashed replica + quorum == replication level: the any-k
    multicast can never complete, so the op must return ``status ==
    "timeout"`` at the retry timeout instead of hanging (and must not
    report ok)."""
    cluster = make_cluster()
    client = cluster.clients[0]
    key = "anyk-k"
    schedule = FaultSchedule(
        "crash_secondary",
        (FaultEvent.make(0.1, "crash", f"secondary:{key}"),),
    )
    ChaosEngine(cluster, schedule, seed=1).start()
    cfg = cluster.config
    out = {}

    def driver(sim):
        yield sim.timeout(0.2)  # after the crash fires
        t0 = sim.now
        result = yield client.put_anyk(key, "v", 1000, quorum=cfg.replication_level)
        out["elapsed"] = sim.now - t0
        return result

    result = run_driver(cluster, driver(cluster.sim))
    assert not result.ok
    assert result.status == "timeout"
    assert out["elapsed"] == pytest.approx(cfg.client_retry_timeout_s, rel=0.01)
    assert client.failures.value == 1


def test_put_anyk_still_completes_with_reachable_quorum():
    """Same degraded cluster, but quorum == 2 of 3 replicas: the two live
    replicas satisfy it, so the timeout bound must not fire."""
    cluster = make_cluster()
    client = cluster.clients[0]
    key = "anyk-k"
    crash_one_secondary(cluster, key)

    def driver():
        result = yield client.put_anyk(key, "v", 1000, quorum=2)
        return result

    result = run_driver(cluster, driver())
    assert result.ok
    assert result.value == 2  # exactly the quorum acks
    assert result.latency < cluster.config.client_retry_timeout_s


def test_get_miss_returns_immediately_without_retry():
    cluster = make_cluster()
    client = cluster.clients[0]

    def driver():
        result = yield client.get("never-written", max_retries=3)
        return result

    result = run_driver(cluster, driver())
    assert not result.ok
    assert result.status == "miss"
    assert result.retries == 0  # answered on the first attempt
    assert client.retries.value == 0
    assert result.latency < cluster.config.client_retry_timeout_s


def test_get_error_reply_backs_off_before_retrying():
    """An early non-ok, non-miss reply must still honor the fixed back-off
    (mirror of the put fix).  No node emits such a status today, so the
    reply is injected straight into the client's waiter."""
    cluster = make_cluster()
    tracer = install_tracer(cluster.sim, label="test")
    client = cluster.clients[0]
    cfg = cluster.config

    def inject_error(sim):
        # Fail the first in-flight get attempt with a synthetic error.
        yield sim.timeout(1e-4)
        (op_id, waiter), = list(client._waiters.items())
        waiter.succeed({"op_id": list(op_id), "status": "error"})

    def driver(sim):
        sim.process(inject_error(sim))
        result = yield client.get("never-written", max_retries=1)
        return result

    result = run_driver(cluster, driver(cluster.sim))
    # Attempt 0 saw the injected error; attempt 1 reached the store and
    # got the authoritative miss.
    assert result.status == "miss"
    assert result.retries == 1
    attempts = tracer.spans("get")
    assert [e.args["status"] for _, e in attempts] == ["error", "miss"]
    gap = attempts[1][0].ts - attempts[0][0].ts
    assert gap >= cfg.client_retry_timeout_s
    assert gap < cfg.client_retry_timeout_s + 0.1


def resolved_routes(tracer, key):
    """The per-attempt get routes a client traced for ``key``."""
    return [
        ev.args["vnode"]
        for ev in tracer.events
        if ev.ph == "i" and ev.name == "vnode_resolve"
        and ev.args.get("kind") == "get" and ev.args.get("key") == key
    ]


def test_get_retries_reresolve_the_route():
    """Each get retry must re-resolve routing and present a *fresh* flow
    identity within the key's subgroup — not re-send the byte-identical
    header tuple its failed predecessor used (which any per-flow state
    keyed on the old route would keep answering stale)."""
    cluster = make_cluster()
    tracer = install_tracer(cluster.sim, label="test")
    client = cluster.clients[0]
    key = "re-resolve-me"

    def swallow_attempts(sim, n):
        # Eat the first n in-flight attempts so the client times out and
        # walks the whole retry ladder.
        for _ in range(n):
            yield sim.timeout(1e-4)
            (op_id, waiter), = list(client._waiters.items())
            waiter.succeed({"op_id": list(op_id), "status": "error"})
            yield sim.timeout(cluster.config.client_retry_timeout_s)

    def driver(sim):
        sim.process(swallow_attempts(sim, 3))
        result = yield client.get(key, max_retries=3)
        return result

    result = run_driver(cluster, driver(cluster.sim), until=120.0)
    assert result.retries == 3
    routes = resolved_routes(tracer, key)
    # One resolution per attempt — and every attempt got its own address.
    assert len(routes) == 4
    assert len(set(routes)) == 4, f"retries reused a route: {routes}"
    # The rotation never leaves the key's subgroup: partition and rule
    # coverage are unchanged, only the flow identity moves.
    vring = cluster.uni_vring
    subgroup = vring.subgroup_of_key(key)
    for route in routes:
        from repro.net import IPv4Address
        assert vring.subgroup_of_address(IPv4Address(route)) == subgroup


def test_get_succeeds_across_rule_flap():
    """Rule-flap chaos: the partition's flow rules are ripped out while a
    get is in flight.  The attempt that lands in the down window stalls,
    and the retry — re-resolved against the re-synced tables — must
    complete with the committed value."""
    cluster = make_cluster()
    tracer = install_tracer(cluster.sim, label="test")
    client = cluster.clients[0]
    key = "flappy"
    # One long flap (down > retry timeout) so at least one retry is forced
    # to route against freshly re-synced tables.
    schedule = FaultSchedule.rule_flap(
        key=key, at=1.0, down_s=2.5 * cluster.config.client_retry_timeout_s,
        times=1,
    )

    def driver(sim):
        r = yield client.put(key, "v-flap", 1000)
        assert r.ok
        yield sim.timeout(1.2 - sim.now)  # inside the down window
        result = yield client.get(key, max_retries=3)
        return result

    ChaosEngine(cluster, schedule, seed=7).start()
    result = run_driver(cluster, driver(cluster.sim), until=120.0)
    assert result.ok
    assert result.value == "v-flap"
    routes = resolved_routes(tracer, key)
    # Every attempt re-resolved; no two attempts shared a flow identity.
    assert len(routes) == result.retries + 1
    assert len(set(routes)) == len(routes)
