"""Unit tests for virtual rings (§3.2)."""

import pytest

from repro.core import VirtualRing
from repro.kv import RING_SIZE, key_hash
from repro.net import IPv4Address, IPv4Network


def ring(prefix="10.10.0.0/16", n=16):
    return VirtualRing(IPv4Network(prefix), n)


def test_subgroup_count_must_be_power_of_two():
    with pytest.raises(ValueError):
        ring(n=12)
    with pytest.raises(ValueError):
        ring(n=0)


def test_subgroups_must_fit_prefix():
    with pytest.raises(ValueError):
        VirtualRing(IPv4Network("10.10.1.0/30"), 8)


def test_subgroup_prefixes_partition_the_vring():
    r = ring(n=16)
    subs = [r.subgroup_prefix(i) for i in range(16)]
    assert str(subs[0]) == "10.10.0.0/20"
    assert str(subs[1]) == "10.10.16.0/20"
    # Disjoint and covering.
    total = sum(s.num_addresses for s in subs)
    assert total == IPv4Network("10.10.0.0/16").num_addresses
    for a, b in zip(subs, subs[1:]):
        assert not a.overlaps(b)


def test_subgroup_prefix_range_checked():
    r = ring(n=4)
    with pytest.raises(ValueError):
        r.subgroup_prefix(4)
    with pytest.raises(ValueError):
        r.subgroup_prefix(-1)


def test_vnode_for_hash_lands_in_matching_subgroup():
    r = ring(n=16)
    for h in [0, 123456, RING_SIZE // 3, RING_SIZE - 1]:
        vaddr = r.vnode_for_hash(h)
        sg = r.subgroup_of_hash(h)
        assert vaddr in r.subgroup_prefix(sg)
        assert r.subgroup_of_address(vaddr) == sg


def test_vnode_for_key_deterministic():
    r = ring()
    assert r.vnode_for_key("obj") == r.vnode_for_key("obj")
    assert r.subgroup_of_key("obj") == r.subgroup_of_hash(key_hash("obj"))


def test_two_vrings_same_key_same_subgroup():
    """Unicast and multicast rings must agree on the partition (§4.2)."""
    uni = VirtualRing(IPv4Network("10.10.0.0/16"), 16)
    mc = VirtualRing(IPv4Network("10.11.0.0/16"), 16)
    for key in ["a", "b", "hot-object", "xyz123"]:
        assert uni.subgroup_of_key(key) == mc.subgroup_of_key(key)
        assert uni.vnode_for_key(key) in uni.prefix
        assert mc.vnode_for_key(key) in mc.prefix


def test_subgroup_of_address_rejects_foreign_ip():
    r = ring()
    with pytest.raises(ValueError):
        r.subgroup_of_address(IPv4Address("192.168.1.1"))


def test_contains():
    r = ring()
    assert IPv4Address("10.10.200.9") in r
    assert IPv4Address("10.12.0.1") not in r


def test_single_subgroup_ring():
    r = ring(n=1)
    assert r.subgroup_of_key("anything") == 0
    assert str(r.subgroup_prefix(0)) == "10.10.0.0/16"
