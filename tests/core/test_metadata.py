"""Unit tests for the metadata service: detection, handoff, rejoin staging."""

import pytest

from repro.core import ClusterConfig, NiceCluster


def make_cluster(**kw):
    defaults = dict(n_storage_nodes=6, n_clients=2, replication_level=3)
    defaults.update(kw)
    cluster = NiceCluster(ClusterConfig(**defaults))
    cluster.warm_up()
    return cluster


def test_heartbeat_miss_detection():
    cluster = make_cluster()
    cfg = cluster.config
    victim = cluster.nodes["n2"]
    victim.host.fail()  # NIC only: heartbeats stop silently
    deadline = cfg.heartbeat_interval_s * (cfg.heartbeat_miss_limit + 2)
    cluster.sim.run(until=cluster.sim.now + deadline)
    assert cluster.metadata.status["n2"] == "down"
    assert cluster.metadata.failures_declared.value == 1


def test_live_node_not_declared_failed():
    cluster = make_cluster()
    cluster.sim.run(until=10.0)
    assert all(s == "up" for s in cluster.metadata.status.values())
    assert cluster.metadata.failures_declared.value == 0


def test_peer_report_triggers_immediate_failure():
    cluster = make_cluster()
    cluster.nodes["n3"].host.fail()
    reporter = cluster.nodes["n0"]
    done = []

    def report(sim):
        yield from reporter._strike("n3")
        yield from reporter._strike("n3")
        done.append(sim.now)

    cluster.sim.process(report(cluster.sim))
    cluster.sim.run(until=cluster.sim.now + 0.3)
    # Report path is much faster than 3 heartbeat misses (1.5 s).
    assert cluster.metadata.status["n3"] == "down"


def test_handoff_selected_outside_replica_set():
    cluster = make_cluster()
    victim = "n1"
    cluster.metadata.declare_failed(victim)
    for rs in cluster.partition_map.partitions_where_member(victim):
        for handoff in rs.handoffs:
            assert handoff not in rs.members
            assert cluster.metadata.status[handoff] == "up"


def test_declare_failed_idempotent():
    cluster = make_cluster()
    cluster.metadata.declare_failed("n1")
    count = cluster.metadata.failures_declared.value
    cluster.metadata.declare_failed("n1")
    assert cluster.metadata.failures_declared.value == count


def test_membership_slices_pushed_to_affected_replicas():
    cluster = make_cluster()
    victim = "n1"
    affected = cluster.partition_map.partitions_where_member(victim)
    cluster.metadata.declare_failed(victim)
    cluster.sim.run(until=cluster.sim.now + 0.5)
    for rs in affected:
        for name in rs.put_targets():
            node = cluster.nodes[name]
            local = node.replica_sets[rs.partition]
            assert victim in local.absent or victim not in local.members


def test_rejoin_phases_via_messages():
    cluster = make_cluster()
    victim = cluster.nodes["n1"]
    victim.crash()
    cluster.sim.run(until=cluster.sim.now + 2.5)  # detection
    assert cluster.metadata.status["n1"] == "down"
    victim.restart()
    cluster.sim.run(until=cluster.sim.now + 5.0)
    assert cluster.metadata.status["n1"] == "up"
    assert cluster.metadata.rejoins_completed.value == 1
    for rs in cluster.partition_map.partitions_where_member("n1"):
        assert "n1" not in rs.absent
        assert not rs.handoffs


def test_heartbeats_ignored_while_down():
    cluster = make_cluster()
    cluster.metadata.declare_failed("n1")
    # A stray heartbeat must not resurrect the node without rejoin.
    cluster.nodes["n1"]._heartbeat_loop  # loop still runs; host is up here
    cluster.sim.run(until=cluster.sim.now + 2.0)
    assert cluster.metadata.status["n1"] == "down"


def test_admin_remove_erases_membership():
    cluster = make_cluster()
    cluster.metadata.admin_remove("n1")
    cluster.sim.run(until=cluster.sim.now + 0.5)
    assert "n1" not in cluster.metadata.status
    for rs in cluster.partition_map:
        assert "n1" not in rs.members
        assert "n1" not in rs.handoffs


def test_client_stats_collected_from_heartbeats():
    cluster = make_cluster()
    client = cluster.clients[0]

    def driver(sim):
        yield client.put("statkey", "v", 100)

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=2.0)  # a few heartbeat rounds
    all_clients = set()
    for clients in cluster.metadata.client_stats.values():
        all_clients.update(clients)
    assert str(client.ip) in all_clients


def test_failure_while_no_eligible_handoff():
    """With N == R every node is in the replica set: no handoff exists,
    but the failure must still be hidden without crashing."""
    cluster = make_cluster(n_storage_nodes=3, replication_level=3)
    cluster.metadata.declare_failed("n1")
    cluster.sim.run(until=cluster.sim.now + 0.5)
    for rs in cluster.partition_map.partitions_where_member("n1"):
        assert "n1" in rs.absent
        assert rs.handoffs == []
