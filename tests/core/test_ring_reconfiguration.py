"""§4.4 Ring Re-Configuration: administratively adding a node to a replica
set (put-visible first, catch up from the primary, then get-visible) and
permanently removing one."""

import pytest

from repro.core import ClusterConfig, NiceCluster


def make_cluster(**kw):
    defaults = dict(n_storage_nodes=6, n_clients=3, replication_level=2)
    defaults.update(kw)
    cluster = NiceCluster(ClusterConfig(**defaults))
    cluster.warm_up()
    return cluster


def test_admin_add_node_to_replica_set():
    cluster = make_cluster()
    client = cluster.clients[0]
    key = "expand-me"
    part = cluster.uni_vring.subgroup_of_key(key)
    rs = cluster.partition_map.get(part)
    newcomer = next(n for n in cluster.nodes if not rs.is_member(n))
    out = {}

    def driver(sim):
        # Existing data the newcomer must catch up on.
        yield client.put(key, "old-data", 2048)
        cluster.metadata.admin_add_to_replica_set(newcomer, part)
        yield sim.timeout(2.0)  # membership push + catch-up + consistent
        out["rs"] = cluster.partition_map.get(part)
        # New puts replicate to the grown set.
        out["put"] = yield client.put(key, "new-data", 2048)

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=30.0)
    rs = out["rs"]
    assert newcomer in rs.members
    assert newcomer not in rs.absent
    assert newcomer not in rs.joining
    node = cluster.nodes[newcomer]
    # Caught up on the pre-existing object and received the new one.
    assert node.store.get(key) is not None
    assert out["put"].ok
    cluster.sim.run(until=cluster.sim.now + 2.0)
    assert node.store.get(key).value == "new-data"


def test_admin_add_validation():
    cluster = make_cluster()
    part = 0
    rs = cluster.partition_map.get(part)
    with pytest.raises(ValueError):
        cluster.metadata.admin_add_to_replica_set(rs.members[0], part)
    with pytest.raises(ValueError):
        cluster.metadata.admin_add_to_replica_set("ghost", part)


def test_new_member_not_get_visible_until_consistent():
    cluster = make_cluster()
    part = 3
    rs = cluster.partition_map.get(part)
    newcomer = next(n for n in cluster.nodes if not rs.is_member(n))
    cluster.metadata.admin_add_to_replica_set(newcomer, part)
    # Immediately after the call (before catch-up) the node is put-visible
    # but absent from get targets.
    rs = cluster.partition_map.get(part)
    assert newcomer in rs.put_targets()
    assert newcomer not in rs.get_targets()
    cluster.sim.run(until=cluster.sim.now + 2.0)
    rs = cluster.partition_map.get(part)
    assert newcomer in rs.get_targets()


def test_admin_add_via_control_message_roundtrip():
    """The whole §4.4 sequence driven end-to-end, then reads hit the new
    replica via LB."""
    cluster = make_cluster(n_clients=8)
    client = cluster.clients[0]
    key = "expand-lb"
    part = cluster.uni_vring.subgroup_of_key(key)
    rs0 = cluster.partition_map.get(part)
    newcomer = next(n for n in cluster.nodes if not rs0.is_member(n))
    out = {"served": 0}

    def driver(sim):
        yield client.put(key, "v", 100)
        cluster.metadata.admin_add_to_replica_set(newcomer, part)
        yield sim.timeout(2.0)
        before = cluster.nodes[newcomer].gets_served.value
        for c in cluster.clients:
            r = yield c.get(key)
            assert r.ok
        out["served"] = cluster.nodes[newcomer].gets_served.value - before

    cluster.sim.process(driver(cluster.sim))
    cluster.sim.run(until=30.0)
    # The repartitioned LB divisions route some clients to the new replica
    # (§4.5: "the metadata server repartitions the client address space to
    # utilize the new replica for get requests").
    assert out["served"] >= 1
