"""Unit tests for control-plane HA: membership log replay, epoch fencing,
standby promotion, reconciliation diffs, and the detection edge cases the
HA work hardened (dead-at-registration nodes, racing failure reports)."""

import dataclasses

from repro.core import ClusterConfig, NiceCluster, replay_log
from repro.core.metadata import DOWN, JOINING, UP


def make_cluster(**kw):
    defaults = dict(n_storage_nodes=6, n_clients=2, replication_level=3)
    defaults.update(kw)
    cluster = NiceCluster(ClusterConfig(**defaults))
    cluster.warm_up()
    return cluster


def make_ha_cluster(**kw):
    kw.setdefault("metadata_standbys", 1)
    return make_cluster(**kw)


# -- satellite: liveness clock seeded at registration ------------------------

def test_node_dead_at_registration_is_declared():
    """A node that crashes before sending its first heartbeat must still
    be declared within the miss limit (the liveness clock is seeded at
    ``register_node`` time, not at first beat)."""
    cluster = NiceCluster(ClusterConfig(n_storage_nodes=6, n_clients=1))
    cfg = cluster.config
    cluster.nodes["n4"].host.fail()  # dead at t=0: zero beats ever sent
    assert "n4" in cluster.metadata.last_heartbeat
    deadline = cfg.heartbeat_interval_s * (cfg.heartbeat_miss_limit + 2)
    cluster.sim.run(until=deadline)
    assert cluster.metadata.status["n4"] == DOWN


# -- satellite: idempotent failure declaration under races -------------------

def test_redeclare_during_rejoin_does_not_stack_handoffs():
    """report_failure racing a rejoin: the re-declaration restarts the
    node at phase 1 but must not install a second handoff on a replica
    set that already holds a replacement."""
    cluster = make_cluster()
    meta = cluster.metadata
    victim = "n1"
    meta.declare_failed(victim)
    rs = next(iter(cluster.partition_map.partitions_of(victim)))
    assert victim in rs.absent
    assert len(rs.handoffs) == 1

    meta.begin_rejoin(victim)           # phase 1: node is JOINING
    assert meta.status[victim] == JOINING
    meta.declare_failed(victim)         # racing peer report lands now
    assert meta.status[victim] == DOWN
    assert len(rs.handoffs) == 1        # replacement kept, not stacked

    meta.declare_failed(victim)         # duplicate report: pure no-op
    assert len(rs.handoffs) == 1
    assert meta.failures_declared.value == 2  # UP->DOWN, JOINING->DOWN


# -- membership log replay ---------------------------------------------------

def test_replay_log_reconstructs_map_and_status():
    cluster = make_ha_cluster()
    meta = cluster.metadata
    meta.declare_failed("n2")
    meta.begin_rejoin("n5")  # leave one node mid-rejoin in the log

    pm, status = replay_log(meta.log.records())
    assert status["n2"] == DOWN
    assert status["n5"] == JOINING  # mid-rejoin replays as JOINING
    assert {n for n, s in status.items() if s == UP} == {"n0", "n1", "n3", "n4"}
    live = {rs.partition: rs.to_wire() for rs in cluster.partition_map}
    replayed = {rs.partition: rs.to_wire() for rs in pm}
    assert replayed == live


# -- promotion ---------------------------------------------------------------

def test_standby_promotes_and_mints_next_epoch():
    cluster = make_ha_cluster()
    ha = cluster.metadata_ha
    cfg = cluster.config
    assert ha.leader.host.name == "meta"
    ha.replica_named("meta").crash()
    lease = cfg.heartbeat_miss_limit * cfg.heartbeat_interval_s
    cluster.sim.run(until=cluster.sim.now + 3 * lease)
    assert ha.promotions.value == 1
    leader = ha.leader
    assert leader.host.name == "meta1"
    assert leader.service.epoch == 2
    # The reactive packet-in path stamps with controller.epoch: it must
    # track the acting leader or switches would fence the controller.
    assert cluster.controller.epoch == 2


def test_returning_old_leader_demotes_and_resyncs_log():
    cluster = make_ha_cluster()
    ha = cluster.metadata_ha
    cfg = cluster.config
    old = ha.replica_named("meta")
    old.crash()
    lease = cfg.heartbeat_miss_limit * cfg.heartbeat_interval_s
    cluster.sim.run(until=cluster.sim.now + 3 * lease)
    assert ha.leader.host.name == "meta1"
    old.recover()
    cluster.sim.run(until=cluster.sim.now + 3 * lease)
    assert ha.demotions.value == 1
    assert old.role == "standby"
    assert ha.leader.host.name == "meta1"
    # Post-demotion log sync: both replicas hold the same history.
    assert old.log.records() == ha.leader.log.records()


# -- epoch fencing -----------------------------------------------------------

def test_switch_fences_stale_epochs_only():
    cluster = make_cluster()
    sw = cluster.switch
    fenced0 = sw.fenced_mods.value
    assert sw.accept_epoch(None)      # legacy unstamped path: never fenced
    assert sw.accept_epoch(2)
    assert not sw.accept_epoch(1)     # stale leader
    assert sw.accept_epoch(2)         # current epoch stays valid
    assert sw.accept_epoch(3)
    assert sw.fenced_mods.value == fenced0 + 1
    assert sw.control_epoch == 3


def test_node_fences_stale_membership_epoch():
    cluster = make_ha_cluster()
    node = cluster.nodes["n0"]
    node.meta_epoch = 2
    assert node._fence_meta(1)        # stale: fenced
    assert not node._fence_meta(2)    # current: accepted
    assert not node._fence_meta(None)  # unstamped legacy path: accepted
    assert not node._fence_meta(3)    # newer: adopted
    assert node.meta_epoch == 3
    assert node.membership_fenced.value == 1


# -- reconciliation ----------------------------------------------------------

def test_reconcile_settled_cluster_is_noop():
    cluster = make_cluster()
    stats = cluster.controller.reconcile()
    assert stats["installed"] == 0
    assert stats["deleted"] == 0
    assert stats["matched"] > 0


def test_reconcile_repairs_only_the_diff():
    cluster = make_cluster()
    sw = cluster.switch
    # Keep an untouched rule's identity to prove matching rules survive
    # reconciliation in place (flow caches stay warm).
    survivor = next(r for r in sw.table.iter_rules() if r.cookie == "arp")
    # Damage the table: drop one legitimate rule, add one stray.
    victim_cookie = next(
        r.cookie for r in sw.table.iter_rules() if r.cookie.startswith("uni:")
    )
    sw.remove_cookie(victim_cookie)
    stray = dataclasses.replace(survivor, cookie="stray:test")
    sw.install_rule(stray)

    stats = cluster.controller.reconcile()
    cluster.sim.run(until=cluster.sim.now + 0.01)  # let flow-mods land

    assert stats["installed"] >= 1
    assert stats["deleted"] == 1
    cookies = {r.cookie for r in sw.table.iter_rules()}
    assert victim_cookie in cookies
    assert "stray:test" not in cookies
    assert survivor in list(sw.table.iter_rules())  # same object, untouched


# -- satellite: failover while a heartbeat/control exchange is in flight -----

def test_promotion_completes_with_control_exchange_in_flight():
    """Crash the metadata primary while a node's failure report is in
    flight toward it: the standby must still promote, the node must fail
    over (resetting cached TCP state toward the dead primary), and the
    striker's report must land at the new leader."""
    cluster = make_ha_cluster()
    ha = cluster.metadata_ha
    cfg = cluster.config
    reporter = cluster.nodes["n0"]
    resets = []
    orig_reset = reporter.stack.tcp.reset_peer
    reporter.stack.tcp.reset_peer = lambda ip: (resets.append(ip), orig_reset(ip))

    old_ip = ha.replica_named("meta").host.ip

    def strikes():
        yield from reporter._strike("n3")
        yield from reporter._strike("n3")

    def driver(sim):
        cluster.nodes["n3"].host.fail()
        yield sim.timeout(0.01)
        sim.process(strikes())
        yield sim.timeout(0.001)  # report now in flight toward the primary
        ha.replica_named("meta").crash()

    cluster.sim.process(driver(cluster.sim))
    lease = cfg.heartbeat_miss_limit * cfg.heartbeat_interval_s
    cluster.sim.run(until=cluster.sim.now + 6 * lease)

    assert ha.promotions.value == 1
    leader = ha.leader
    assert leader.host.name == "meta1"
    # The striker rotated to the standby and dropped TCP state toward the
    # dead primary.
    assert reporter.metadata_ip == leader.host.ip
    assert old_ip in resets
    assert reporter.meta_failovers.value >= 1
    # The in-flight report was not lost: the new leader knows n3 is down.
    assert leader.service.status["n3"] == DOWN
