"""Incremental rule planning (DESIGN.md §5i).

The controller caches each (switch, partition) plan keyed on membership
and topology version counters.  The contracts under test:

* a settled cluster reconciles as a table no-op with **zero** plan
  recomputes — every partition served from the plan cache;
* ``sync_partition`` always replans (the caller is declaring the
  partition dirty) and refreshes the cache for the reconcile that follows;
* membership churn through the metadata service yields the same desired
  state whether planned incrementally or from scratch;
* every invalidation edge (map rebind, ARP relearn, explicit
  ``invalidate_plans``) forces recomputation instead of serving stale
  plans.
"""

import pytest

from repro.core import ClusterConfig, NiceCluster, PartitionMap
from repro.obs import MetricsRegistry


def make_cluster(**kw):
    defaults = dict(n_storage_nodes=6, n_clients=3, n_partitions=8)
    defaults.update(kw)
    cluster = NiceCluster(ClusterConfig(**defaults))
    cluster.warm_up()
    return cluster


def desired_snapshot(controller):
    """Comparable form of every switch's desired state (Rule objects have
    identity semantics; compare by content)."""
    snap = {}
    for switch in controller.channel.switches:
        rules, groups = controller.desired_state(switch)
        snap[switch.name] = (
            {
                cookie: sorted(
                    (r.priority, str(r.match), str(r.actions)) for r in rs
                )
                for cookie, rs in rules.items()
            },
            {gid: str(g.buckets) for gid, g in groups.items()},
        )
    return snap


def reset_counters(controller):
    controller.plan_recomputes.reset()
    controller.plan_cache_hits.reset()


def test_settled_reconcile_is_noop_with_zero_recomputes():
    cluster = make_cluster()
    ctrl = cluster.controller
    reset_counters(ctrl)
    stats = ctrl.reconcile()
    cluster.warm_up()
    assert stats["installed"] == 0 and stats["deleted"] == 0
    assert ctrl.plan_recomputes.value == 0
    assert ctrl.plan_cache_hits.value > 0


def test_settled_reconcile_is_noop_on_fabric():
    cluster = make_cluster(
        n_storage_nodes=12, n_racks=3, n_clients=3, switch_rule_budget=1024
    )
    ctrl = cluster.controller
    reset_counters(ctrl)
    stats = ctrl.reconcile()
    cluster.warm_up()
    assert stats["installed"] == 0 and stats["deleted"] == 0
    assert ctrl.plan_recomputes.value == 0


def test_sync_partition_always_replans():
    cluster = make_cluster()
    ctrl = cluster.controller
    n_switches = len(ctrl.channel.switches)
    reset_counters(ctrl)
    ctrl.sync_partition(0)
    assert ctrl.plan_recomputes.value == n_switches
    # Even with nothing changed: the caller saying "dirty" wins over the cache.
    ctrl.sync_partition(0)
    assert ctrl.plan_recomputes.value == 2 * n_switches


def test_incremental_equals_scratch_after_service_churn():
    cluster = make_cluster()
    ctrl = cluster.controller
    cluster.metadata.declare_failed("n1")
    cluster.sim.run(until=cluster.sim.now + 0.2)
    incremental = desired_snapshot(ctrl)
    ctrl.invalidate_plans()
    scratch = desired_snapshot(ctrl)
    assert incremental == scratch


def test_direct_transition_bumps_rev_and_invalidates_plan():
    cluster = make_cluster()
    ctrl = cluster.controller
    desired_snapshot(ctrl)  # populate the cache
    rs = ctrl.partition_map.get(0)
    reset_counters(ctrl)
    rs.mark_failed(rs.members[0])
    after = desired_snapshot(ctrl)
    # Partition 0 replanned on every switch; the rest served from cache.
    assert ctrl.plan_recomputes.value == len(ctrl.channel.switches)
    ctrl.invalidate_plans()
    assert desired_snapshot(ctrl) == after


def test_partition_map_rebind_invalidates_every_plan():
    cluster = make_cluster()
    ctrl = cluster.controller
    desired_snapshot(ctrl)
    rebuilt = PartitionMap.build(
        [f"n{i}" for i in range(6)], 8, cluster.config.replication_level
    )
    reset_counters(ctrl)
    ctrl.partition_map = rebuilt
    desired_snapshot(ctrl)
    assert ctrl.plan_cache_hits.value == 0
    assert ctrl.plan_recomputes.value == len(ctrl.channel.switches) * 8


def test_map_install_invalidates_that_partition():
    cluster = make_cluster()
    ctrl = cluster.controller
    desired_snapshot(ctrl)
    from repro.core import ReplicaSet

    rs = ctrl.partition_map.get(0)
    ctrl.partition_map.install(ReplicaSet.from_wire(rs.to_wire()))
    reset_counters(ctrl)
    desired_snapshot(ctrl)
    # The generation bump keys every partition's entry stale (coarse but
    # correct: install happens only on HA log replay).
    assert ctrl.plan_recomputes.value == len(ctrl.channel.switches) * 8


def test_arp_relearn_invalidates_location_dependent_plans():
    cluster = make_cluster()
    ctrl = cluster.controller
    desired_snapshot(ctrl)
    rec = ctrl.hosts["n0"]
    loc = ctrl.arp.lookup(rec.ip)
    reset_counters(ctrl)
    ctrl.arp.learn(rec.ip, rec.mac, loc.switch_name, loc.port_no)
    desired_snapshot(ctrl)
    assert ctrl.plan_recomputes.value > 0


def test_plan_gauges_surface_in_metrics_registry():
    cluster = make_cluster()
    reg = MetricsRegistry.from_cluster(cluster)
    plan = reg.snapshot()["controlplane"]["plan"]
    assert plan["sync_ms"]["value"] >= 0
    assert plan["partitions_recomputed"]["value"] > 0
    cluster.controller.reconcile()
    plan2 = reg.snapshot()["controlplane"]["plan"]
    assert plan2["cache_hits"]["value"] > 0


def test_reconcile_after_chaos_rule_removal_repairs_and_matches():
    """A cookie yanked behind the controller's back must be reinstalled
    from the *cached* plan, and the repaired table must equal scratch."""
    cluster = make_cluster()
    ctrl = cluster.controller
    switch = cluster.switch
    victim = next(
        r.cookie for r in switch.table.iter_rules() if r.cookie.startswith("uni:")
    )
    switch.remove_cookie(victim)
    reset_counters(ctrl)
    stats = ctrl.reconcile()
    cluster.warm_up()
    assert stats["installed"] > 0
    assert ctrl.plan_recomputes.value == 0  # repair used cached plans
    assert any(
        r.cookie == victim for r in switch.table.iter_rules()
    ), "reconcile did not reinstall the removed cookie"
