"""Unit tests for the NICE storage node: 2PC mechanics, idempotence,
handoff behaviour, any-k puts."""

import pytest

from repro.core import ClusterConfig, NiceCluster


def make_cluster(**kw):
    defaults = dict(n_storage_nodes=5, n_clients=2, replication_level=3)
    defaults.update(kw)
    cluster = NiceCluster(ClusterConfig(**defaults))
    cluster.warm_up()
    return cluster


def run_ops(cluster, gen_func, until=30.0):
    results = {}
    cluster.sim.process(gen_func(cluster.sim, results))
    cluster.sim.run(until=until)
    return results


def test_put_replicates_to_all_replicas_with_same_stamp():
    cluster = make_cluster()
    client = cluster.clients[0]

    def driver(sim, out):
        out["put"] = yield client.put("obj", "v1", 2048)

    out = run_ops(cluster, driver)
    assert out["put"].ok
    replicas = cluster.replica_nodes("obj")
    assert len(replicas) == 3
    stamps = []
    for node in replicas:
        obj = node.store.get("obj")
        assert obj is not None, f"{node.name} missing the object"
        assert obj.value == "v1"
        stamps.append(obj.stamp)
    assert len({s for s in stamps}) == 1  # identical commit stamp everywhere


def test_put_cleans_up_locks_and_wal():
    cluster = make_cluster()
    client = cluster.clients[0]

    def driver(sim, out):
        out["put"] = yield client.put("obj", "v1", 100)

    run_ops(cluster, driver)
    for node in cluster.replica_nodes("obj"):
        assert len(node.locks) == 0
        assert len(node.wal) == 0
        assert not node._pending


def test_sequential_puts_last_writer_wins():
    cluster = make_cluster()
    client = cluster.clients[0]

    def driver(sim, out):
        yield client.put("k", "v1", 100)
        yield client.put("k", "v2", 100)
        out["get"] = yield client.get("k")

    out = run_ops(cluster, driver)
    assert out["get"].value == "v2"
    for node in cluster.replica_nodes("k"):
        assert node.store.get("k").value == "v2"


def test_concurrent_puts_same_key_serialize_via_locks():
    cluster = make_cluster()
    c0, c1 = cluster.clients[0], cluster.clients[1]

    def driver(sim, out):
        p0 = c0.put("contended", "from-c0", 4096)
        p1 = c1.put("contended", "from-c1", 4096)
        out["r0"] = yield p0
        out["r1"] = yield p1

    out = run_ops(cluster, driver)
    assert out["r0"].ok and out["r1"].ok
    values = {n.store.get("contended").value for n in cluster.replica_nodes("contended")}
    assert len(values) == 1  # all replicas agree on one winner
    assert values.pop() in {"from-c0", "from-c1"}


def test_gets_from_different_sources_hit_lb_replicas():
    """§4.5: source-prefix divisions spread gets over the replica set."""
    cluster = make_cluster(n_clients=8)

    def driver(sim, out):
        yield cluster.clients[0].put("popular", "v", 100)
        for c in cluster.clients:
            r = yield c.get("popular")
            assert r.ok

    run_ops(cluster, driver)
    served = {n.name: n.gets_served.value for n in cluster.replica_nodes("popular")}
    assert sum(served.values()) == 8
    assert sum(1 for v in served.values() if v > 0) >= 2, f"no spread: {served}"


def test_gets_all_go_to_primary_without_lb():
    cluster = make_cluster(n_clients=8, load_balancing=False)

    def driver(sim, out):
        yield cluster.clients[0].put("popular", "v", 100)
        for c in cluster.clients:
            r = yield c.get("popular")
            assert r.ok

    run_ops(cluster, driver)
    replicas = cluster.replica_nodes("popular")
    primary = cluster.node_of_partition(cluster.uni_vring.subgroup_of_key("popular"))
    assert primary.gets_served.value == 8
    for node in replicas:
        if node is not primary:
            assert node.gets_served.value == 0


def test_get_miss_returns_miss_status():
    cluster = make_cluster()

    def driver(sim, out):
        out["get"] = yield cluster.clients[0].get("never-stored", max_retries=0)

    out = run_ops(cluster, driver)
    assert not out["get"].ok
    assert out["get"].status == "miss"


def test_handoff_stores_new_puts_separately_and_forwards_misses():
    cluster = make_cluster()
    client = cluster.clients[0]
    key_old, key_new = "old-obj", "new-obj"
    # Same partition trick: derive keys in one partition.
    part = cluster.uni_vring.subgroup_of_key(key_old)
    i = 0
    while cluster.uni_vring.subgroup_of_key(f"new-{i}") != part:
        i += 1
    key_new = f"new-{i}"
    out = {}

    def driver(sim, o):
        yield client.put(key_old, "before", 100)
        rs = cluster.partition_map.get(part)
        victim = [m for m in rs.members if m != rs.primary][0]
        o["victim"] = victim
        cluster.nodes[victim].crash()
        yield sim.timeout(2.5)  # detection + handoff
        yield client.put(key_new, "after", 100)
        o["rs"] = cluster.partition_map.get(part)

    run_ops(cluster, lambda sim, o: driver(sim, out))
    rs = out["rs"]
    assert rs.handoffs
    handoff = cluster.nodes[rs.handoffs[0]]
    # New object landed in the handoff namespace, not the primary namespace.
    assert handoff.store.get_handoff(key_new) is not None
    assert handoff.store.get(key_new) is None
    # And the old object is NOT on the handoff (it never received it).
    assert handoff.store.get_handoff(key_old) is None


def test_handoff_forwards_get_for_old_object_to_primary():
    cluster = make_cluster(n_clients=8)
    client = cluster.clients[0]
    key = "forward-me"
    part = cluster.uni_vring.subgroup_of_key(key)
    out = {}

    def driver(sim, o):
        yield client.put(key, "v", 100)
        rs = cluster.partition_map.get(part)
        victim = [m for m in rs.members if m != rs.primary][0]
        cluster.nodes[victim].crash()
        yield sim.timeout(2.5)
        rs = cluster.partition_map.get(part)
        handoff = cluster.nodes[rs.handoffs[0]]
        before = handoff.gets_forwarded.value
        # Ask every client so at least one get lands on the handoff via LB.
        for c in cluster.clients:
            r = yield c.get(key)
            o.setdefault("gets", []).append(r)
        o["forwarded"] = handoff.gets_forwarded.value - before

    run_ops(cluster, lambda sim, o: driver(sim, out))
    assert all(r.ok and r.value == "v" for r in out["gets"])
    assert out["forwarded"] >= 1


def test_anyk_put_stores_on_replicas_without_2pc():
    cluster = make_cluster()
    client = cluster.clients[0]

    def driver(sim, out):
        out["put"] = yield client.put_anyk("qobj", "v", 100_000, quorum=2)

    out = run_ops(cluster, driver)
    assert out["put"].ok
    assert out["put"].value == 2  # quorum acks
    cluster.sim.run(until=cluster.sim.now + 5.0)
    stored = sum(1 for n in cluster.replica_nodes("qobj") if n.store.get("qobj"))
    assert stored == 3  # stragglers complete in the background


def test_retried_put_is_idempotent():
    """A retry reusing the client timestamp must not double-commit or
    deadlock on its own lock."""
    cluster = make_cluster()
    client = cluster.clients[0]
    # Shorten the retry timeout so a retry actually happens after we delay
    # the first reply by crashing a secondary mid-operation.
    cluster.config.client_retry_timeout_s = 0.2
    key = "retry-me"
    part = cluster.uni_vring.subgroup_of_key(key)
    out = {}

    def driver(sim, o):
        rs = cluster.partition_map.get(part)
        victim = [m for m in rs.members if m != rs.primary][0]
        cluster.nodes[victim].crash()  # undetected yet: first put will abort
        o["put"] = yield client.put(key, "v", 100, max_retries=20)

    run_ops(cluster, lambda sim, o: driver(sim, out), until=60.0)
    assert out["put"].ok
    assert out["put"].retries >= 1
    for node in cluster.replica_nodes(key):
        obj = node.store.get(key)
        assert obj is not None and obj.value == "v"
        assert len(node.locks) == 0


def test_node_crash_clears_volatile_state_keeps_disk():
    cluster = make_cluster()
    client = cluster.clients[0]

    def driver(sim, out):
        yield client.put("persist", "v", 100)

    run_ops(cluster, driver)
    node = cluster.replica_nodes("persist")[0]
    node.locks.acquire("x", ("op", 1))
    node.crash()
    assert len(node.locks) == 0
    assert node.store.get("persist") is not None  # disk survives
