"""Fig 5 — Replication Performance (put time vs object size).

Paper: NICE up to 4.3x vs ROG, 3.4x vs RAG, 2.6x vs RAC, consistent across
sizes (transfer-dominated at the top end).
"""

import pytest

from repro.bench import fig5_6_7_replication

SIZES = (4, 65536, 1 << 20)


@pytest.fixture(scope="module")
def results(bench_ops):
    return fig5_6_7_replication(n_ops=bench_ops, sizes=SIZES)


def series(result, system, metric):
    return {
        row["size_bytes"]: row[metric]
        for row in result.rows
        if row["system"] == system
    }


def test_bench_fig5(benchmark):
    benchmark(lambda: fig5_6_7_replication(n_ops=5, sizes=(1024,)))


def test_nice_wins_at_1mb_with_paper_ordering(results):
    fig5 = results["fig5"]
    one_mb = 1 << 20
    nice = series(fig5, "NICE", "put_ms")[one_mb]
    rac = series(fig5, "NOOB+RAC", "put_ms")[one_mb]
    rag = series(fig5, "NOOB+RAG", "put_ms")[one_mb]
    rog = series(fig5, "NOOB+ROG", "put_ms")[one_mb]
    # Ordering: NICE < RAC < RAG < ROG, with roughly the paper's factors.
    assert nice < rac < rag < rog
    assert 1.8 < rac / nice < 3.5   # paper: up to 2.6x
    assert 2.3 < rag / nice < 4.5   # paper: up to 3.4x
    assert 3.0 < rog / nice < 5.5   # paper: up to 4.3x


def test_nice_never_loses_badly_at_small_sizes(results):
    fig5 = results["fig5"]
    nice = series(fig5, "NICE", "put_ms")[4]
    rac = series(fig5, "NOOB+RAC", "put_ms")[4]
    # NICE-2PC vs primary-only fan-out at 4B: comparable (Fig 9a's claim).
    assert nice / rac < 1.6
