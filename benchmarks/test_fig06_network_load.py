"""Fig 6 — Network Link Load of the put operation.

Paper: NICE generates 1.7x–3.5x less link load than the NOOB systems.
In this model the data-plane cost is exact: NICE moves the object over
(1 + R) links; NOOB+RAC over 2 + 2(R−1); gateways add 2 more.
"""

import pytest

from repro.bench import fig5_6_7_replication
from repro.net import wire_size

SIZES = (1024, 1 << 20)


@pytest.fixture(scope="module")
def fig6(bench_ops):
    return fig5_6_7_replication(n_ops=bench_ops, sizes=SIZES)["fig6"]


def per_object(fig6, system, size):
    rows = [r for r in fig6.rows if r["system"] == system and r["size_bytes"] == size]
    return rows[0]["x_object_size"]


def test_bench_fig6(benchmark):
    benchmark(lambda: fig5_6_7_replication(n_ops=5, sizes=(1024,))["fig6"])


def test_nice_link_load_is_one_plus_r_copies(fig6):
    # 1 client uplink + R=3 replica downlinks = 4 object traversals.
    assert per_object(fig6, "NICE", 1 << 20) == pytest.approx(4.0, rel=0.02)


def test_noob_rac_link_load_is_2_plus_2r_minus_2(fig6):
    # client->primary (2 links) + 2 unicast copies x 2 links = 6.
    assert per_object(fig6, "NOOB+RAC", 1 << 20) == pytest.approx(6.0, rel=0.02)


def test_gateways_add_two_more_traversals(fig6):
    assert per_object(fig6, "NOOB+RAG", 1 << 20) == pytest.approx(8.0, rel=0.02)
    # ROG: gateway + random node + primary: ~10 on average (9.5-10.5).
    assert per_object(fig6, "NOOB+ROG", 1 << 20) == pytest.approx(10.0, rel=0.08)


def test_reduction_factors_match_paper_band(fig6):
    one_mb = 1 << 20
    nice = per_object(fig6, "NICE", one_mb)
    for system, lo in [("NOOB+RAC", 1.4), ("NOOB+RAG", 1.9), ("NOOB+ROG", 2.3)]:
        ratio = per_object(fig6, system, one_mb) / nice
        assert ratio > lo  # paper band: 1.7x-3.5x overall
