"""Fig 12 — Yahoo benchmark (YCSB C read-only and F read-modify-write).

Paper: NICE beats primary-only by 1.6x (C) / 2.3x (F) and 2PC by 1.25x
(C) / 1.5x (F); the primary-only gap comes from its lack of get load
balancing under zipf skew, the 2PC gap from LB latency + protocol cost.
"""

import pytest

from repro.bench import fig12_ycsb

N_CLIENTS = 10
OPS = 200  # per client; paper uses 20000 (python -m repro.bench fig12 --full)


@pytest.fixture(scope="module")
def result():
    return fig12_ycsb(n_ops_per_client=OPS, n_clients=N_CLIENTS, n_records=1000)


def tput(result, workload, system):
    return [
        r["throughput_ops_s"] for r in result.rows
        if r["workload"] == workload and r["system"] == system
    ][0]


def test_bench_fig12(benchmark):
    benchmark(lambda: fig12_ycsb(n_ops_per_client=10, n_clients=3, n_records=50))


def test_no_errors(result):
    assert all(r["errors"] == 0 for r in result.rows)


def test_nice_fastest_on_both_workloads(result):
    for wl in ("C", "F"):
        nice = tput(result, wl, "NICE")
        assert nice > tput(result, wl, "NOOB primary-only")
        assert nice > tput(result, wl, "NOOB 2PC")


def test_primary_only_gap_larger_on_write_heavy_f(result):
    """Paper: 1.6x on C vs 2.3x on F — consistency and replication costs
    show up once puts enter the mix."""
    gap_c = tput(result, "C", "NICE") / tput(result, "C", "NOOB primary-only")
    gap_f = tput(result, "F", "NICE") / tput(result, "F", "NOOB primary-only")
    assert gap_f > 1.0
    assert gap_c > 1.0
