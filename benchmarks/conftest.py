"""Benchmark-suite configuration.

Each benchmark module regenerates one of the paper's figures at reduced
operation counts (the simulator is deterministic, so means converge with
far fewer samples than the paper's 1000 ops/point).  Paper-scale runs:
``python -m repro.bench <figure> --full``.
"""

import pytest

#: Reduced op count shared by the figure benchmarks.
BENCH_OPS = 20


@pytest.fixture(scope="session")
def bench_ops():
    return BENCH_OPS
