"""Fig 11 — Fault Tolerance timeline.

Paper: secondary fails at 30 s → puts unavailable for <2 s, then the
handoff absorbs the load; the node rejoins at 90 s, fetches missed
objects, and is get-visible again within a few seconds.

The benchmark runs a compressed timeline (fail @6 s, rejoin @18 s, 30 s
total) — the mechanisms are identical, only the quiet periods shrink.
"""

import pytest

from repro.bench import fig11_fault_tolerance

FAIL_AT, RECOVER_AT, DURATION = 6.0, 18.0, 30.0


@pytest.fixture(scope="module")
def result():
    return fig11_fault_tolerance(
        duration=DURATION, fail_at=FAIL_AT, recover_at=RECOVER_AT
    )


def rates(result, col):
    return {row["t_s"]: row[col] for row in result.rows}


def test_bench_fig11(benchmark):
    benchmark(
        lambda: fig11_fault_tolerance(duration=8.0, fail_at=3.0, recover_at=6.0)
    )


def test_service_continues_through_failure(result):
    gets = rates(result, "gets_per_s")
    # Gets keep flowing in every phase (before / during / after failure).
    for t in [2.0, 10.0, 25.0]:
        assert gets[t] > 0, f"no gets served at t={t}"


def test_put_unavailability_under_two_seconds(result):
    """Paper: 'makes the partition unavailable for put for less than 2
    seconds'."""
    fails = rates(result, "failed_puts_per_s")
    fail_window = [t for t, v in fails.items() if v > 0]
    assert all(FAIL_AT <= t <= FAIL_AT + 2.5 for t in fail_window), fail_window


def test_puts_resume_after_handoff(result):
    puts = rates(result, "puts_per_s")
    post_handoff = [puts[t] for t in puts if FAIL_AT + 3 <= t < RECOVER_AT]
    assert sum(post_handoff) > 0


def test_recovery_event_sequence(result):
    labels = [n for n in result.notes if n.startswith("t=")]
    assert any("fails" in l for l in labels)
    assert any("rejoins" in l for l in labels)
    assert any("consistent" in l for l in labels)
    # Consistency is reached within a few seconds of rejoin (paper: ~5 s).
    consistent_t = [
        float(l.split("=")[1].split("s")[0]) for l in labels if "consistent" in l
    ][0]
    assert consistent_t < RECOVER_AT + 5.0
