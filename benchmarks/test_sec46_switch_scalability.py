"""§4.6 — Switch Scalability (forwarding-table usage).

Paper: 2N entries without load balancing, (R+1)N with; a 128K-entry table
supports 64K nodes without LB and 32K with (R=3).  The measured rows come
from real controller rule counts; the analytic rows apply the paper's
formula at data-center scale.
"""

import pytest

from repro.bench import sec46_switch_scalability


@pytest.fixture(scope="module")
def result():
    return sec46_switch_scalability(measured_nodes=(8, 16))


def rows(result, **where):
    return [
        r for r in result.rows if all(r[k] == v for k, v in where.items())
    ]


def test_bench_sec46(benchmark):
    benchmark(lambda: sec46_switch_scalability(measured_nodes=(8,), analytic_nodes=()))


def test_measured_entries_without_lb_scale_linearly(result):
    # Paper: 2N.  Implementation: +1 group-address match per partition
    # (node-originated 2PC timestamp multicasts) ⇒ 3N.  Still O(N).
    for r in rows(result, source="measured", load_balancing=False):
        assert r["entries"] == 3 * r["nodes"]


def test_measured_entries_with_lb_scale_linearly(result):
    # Paper: (R+1)N.  Implementation: R divisions + default unicast +
    # 2 multicast matches ⇒ (R+3)N.  Still O(RN).
    for r in rows(result, source="measured", load_balancing=True):
        assert r["entries"] == 6 * r["nodes"]


def test_paper_scale_ceilings(result):
    """Paper: 64K nodes fit without LB, 32K with LB at R=3 (128K table)."""
    no_lb_64k = rows(result, source="analytic", load_balancing=False, nodes=65536)
    assert no_lb_64k and no_lb_64k[0]["fits_128k_table"]
    lb_32k = rows(result, source="analytic", load_balancing=True, nodes=32768)
    assert lb_32k and lb_32k[0]["fits_128k_table"]
    assert lb_32k[0]["entries"] == 4 * 32768  # (R+1)N, exactly 128K
