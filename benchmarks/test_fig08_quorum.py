"""Fig 8 — Quorum-based Replication with slow replicas.

Paper: R=7, three replicas throttled to 50 Mbps.  NICE's any-k multicast
is up to 5.6x faster at quorum sizes 1 and 3; both systems suffer at 5
and 7 (slow nodes unavoidable).
"""

import pytest

from repro.bench import fig8_quorum


@pytest.fixture(scope="module")
def result():
    return fig8_quorum(n_ops=5)


def put_ms(result, system, quorum):
    return [
        r["put_ms"] for r in result.rows
        if r["system"] == system and r["quorum"] == quorum
    ][0]


def test_bench_fig8(benchmark):
    benchmark(lambda: fig8_quorum(n_ops=2, quorums=(1, 7)))


def test_nice_wins_big_at_small_quorums(result):
    for k in (1, 3):
        ratio = put_ms(result, "NOOB", k) / put_ms(result, "NICE", k)
        assert ratio > 2.0  # paper: up to 5.6x


def test_both_suffer_at_large_quorums(result):
    # Slow replicas dominate both systems at k>=5.
    for system in ("NICE", "NOOB"):
        assert put_ms(result, system, 7) > 3 * put_ms(result, "NICE", 1)


def test_gap_narrows_at_large_quorums(result):
    gap_small = put_ms(result, "NOOB", 1) / put_ms(result, "NICE", 1)
    gap_large = put_ms(result, "NOOB", 7) / put_ms(result, "NICE", 7)
    assert gap_large < gap_small


def test_bandwidth_is_inverse_of_time(result):
    for row in result.rows:
        assert row["bandwidth_MBps"] == pytest.approx(
            (1 << 20) / (row["put_ms"] / 1e3) / 1e6, rel=1e-6
        )
