"""Fig 10 — Load Balancing (hot-object weak scaling).

Paper: NICE up to 7.5x better than primary-only and 5.5x than 2PC; NOOB
is not weakly scalable (primary-only degrades 3.5x at 1 MB / 10x at 4 B,
2PC 2.6x) while NICE degrades only ~20% (1 MB) / 80% (4 B).  Markers show
the get-only workload: NICE and 2PC spread gets, primary-only cannot.
"""

import pytest

from repro.bench import fig10_load_balancing

LEVELS = (1, 3, 9)


@pytest.fixture(scope="module")
def result(bench_ops):
    return fig10_load_balancing(n_ops=bench_ops, levels=LEVELS)


def cell(result, system, r, size, metric="op_ms"):
    return [
        row[metric] for row in result.rows
        if row["system"] == system and row["replication"] == r
        and row["size_bytes"] == size
    ][0]


def test_bench_fig10(benchmark):
    benchmark(lambda: fig10_load_balancing(n_ops=5, levels=(3,), sizes=(4,)))


def test_noob_primary_only_is_not_weakly_scalable(result):
    one_mb = 1 << 20
    deg = cell(result, "NOOB primary-only", 9, one_mb) / cell(
        result, "NOOB primary-only", 1, one_mb
    )
    assert deg > 2.5  # paper: 3.5x at 1 MB


def test_nice_scales_weakly(result):
    one_mb = 1 << 20
    deg = cell(result, "NICE", 9, one_mb) / cell(result, "NICE", 1, one_mb)
    assert deg < 1.4  # paper: ~20%


def test_nice_beats_noob_at_scale(result):
    one_mb = 1 << 20
    assert cell(result, "NOOB primary-only", 9, one_mb) / cell(result, "NICE", 9, one_mb) > 3
    assert cell(result, "NOOB 2PC", 9, one_mb) / cell(result, "NICE", 9, one_mb) > 1.3


def test_get_only_markers_show_lb_effect(result):
    """NICE and 2PC load-balance gets; primary-only funnels them."""
    nice = cell(result, "NICE", 9, 4, "get_only_ms")
    prim = cell(result, "NOOB primary-only", 9, 4, "get_only_ms")
    assert prim > nice


def test_marker_below_full_workload_for_2pc(result):
    """The marker-to-bar gap is the 2PC consistency overhead (paper: 'the
    significant overhead added by 2PC')."""
    full = cell(result, "NOOB 2PC", 9, 1 << 20)
    marker = cell(result, "NOOB 2PC", 9, 1 << 20, "get_only_ms")
    assert marker < full
