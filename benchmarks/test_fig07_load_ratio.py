"""Fig 7 — Storage Load Ratio (primary IO / secondary IO during puts).

Paper: all NOOB configurations load the primary R× more than a secondary
(3x at R=3); NICE is balanced by design (ratio 1).
"""

import pytest

from repro.bench import fig5_6_7_replication

SIZES = (1 << 20,)


@pytest.fixture(scope="module")
def fig7(bench_ops):
    return fig5_6_7_replication(n_ops=bench_ops, sizes=SIZES)["fig7"]


def ratio(fig7, system):
    return [r["load_ratio"] for r in fig7.rows if r["system"] == system][0]


def test_bench_fig7(benchmark):
    benchmark(lambda: fig5_6_7_replication(n_ops=5, sizes=(65536,))["fig7"])


def test_noob_ratio_is_replication_level(fig7):
    for system in ("NOOB+RAC", "NOOB+RAG"):
        assert ratio(fig7, system) == pytest.approx(3.0, rel=0.05)
    # ROG's random first hop occasionally lands on a secondary (which then
    # relays the object), inflating secondary IO a little.
    assert 2.0 < ratio(fig7, "NOOB+ROG") < 3.3


def test_nice_is_balanced(fig7):
    assert ratio(fig7, "NICE") == pytest.approx(1.0, abs=0.1)
