"""Fig 9 — Consistency Mechanism Performance (put vs replication level).

Paper: (a) 4 B — NICE ≈ primary-only despite the extra phase, up to 1.3x
better than NOOB-2PC; all degrade slightly with R.  (b) 1 MB — NICE up to
5.5x better; NOOB degrades ~7x from R=1→9, NICE only ~17%.
"""

import pytest

from repro.bench import fig9_consistency

LEVELS = (1, 3, 9)


@pytest.fixture(scope="module")
def result(bench_ops):
    return fig9_consistency(n_ops=bench_ops, levels=LEVELS)


def put_ms(result, system, r, size):
    return [
        row["put_ms"] for row in result.rows
        if row["system"] == system and row["replication"] == r
        and row["size_bytes"] == size
    ][0]


def test_bench_fig9(benchmark):
    benchmark(lambda: fig9_consistency(n_ops=5, levels=(3,), sizes=(4,)))


def test_small_objects_nice_comparable_to_primary_only(result):
    for r in LEVELS:
        nice = put_ms(result, "NICE", r, 4)
        prim = put_ms(result, "NOOB primary-only", r, 4)
        assert nice / prim < 1.5  # "comparable" despite the extra phase


def test_small_objects_nice_beats_2pc(result):
    for r in (3, 9):
        nice = put_ms(result, "NICE", r, 4)
        twopc = put_ms(result, "NOOB 2PC", r, 4)
        assert twopc / nice > 1.2  # paper: up to 1.3x


def test_large_objects_nice_wins_up_to_5x(result):
    one_mb = 1 << 20
    ratio = put_ms(result, "NOOB 2PC", 9, one_mb) / put_ms(result, "NICE", 9, one_mb)
    assert ratio > 3.5  # paper: up to 5.5x


def test_large_objects_noob_degrades_nice_flat(result):
    one_mb = 1 << 20
    noob_deg = put_ms(result, "NOOB primary-only", 9, one_mb) / put_ms(
        result, "NOOB primary-only", 1, one_mb
    )
    nice_deg = put_ms(result, "NICE", 9, one_mb) / put_ms(result, "NICE", 1, one_mb)
    assert noob_deg > 3.5       # paper: 7x
    assert nice_deg < 1.25      # paper: 17%


def test_primary_only_beats_2pc_on_small_objects(result):
    for r in (3, 9):
        assert put_ms(result, "NOOB primary-only", r, 4) < put_ms(result, "NOOB 2PC", r, 4)
