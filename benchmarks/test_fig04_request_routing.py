"""Fig 4 — Request Routing Performance.

Regenerates the get-latency-vs-size series for NICE / RAC / RAG / ROG and
asserts the paper's shape: NICE ≈ RAC; NICE beats ROG by ~2x and RAG by
~1.5x at small sizes; the systems converge at 1 MB.
"""

import pytest

from repro.bench import fig4_request_routing


@pytest.fixture(scope="module")
def result(bench_ops):
    return fig4_request_routing(n_ops=bench_ops, sizes=(4, 1024, 65536, 1 << 20))


def series(result, system):
    return {
        row["size_bytes"]: row["get_ms"]
        for row in result.rows
        if row["system"] == system
    }


def test_bench_fig4(benchmark, bench_ops):
    benchmark(lambda: fig4_request_routing(n_ops=5, sizes=(4, 1024)))


def test_nice_matches_rac(result):
    nice, rac = series(result, "NICE"), series(result, "NOOB+RAC")
    for size in nice:
        assert nice[size] == pytest.approx(rac[size], rel=0.1)


def test_nice_beats_rog_about_2x_small(result):
    nice, rog = series(result, "NICE"), series(result, "NOOB+ROG")
    assert rog[4] / nice[4] > 1.5


def test_nice_beats_rag_about_1_5x_small(result):
    nice, rag = series(result, "NICE"), series(result, "NOOB+RAG")
    assert 1.2 < rag[4] / nice[4] < 2.0


def test_systems_converge_at_1mb(result):
    one_mb = 1 << 20
    values = [row["get_ms"] for row in result.rows if row["size_bytes"] == one_mb]
    assert max(values) / min(values) < 1.15
