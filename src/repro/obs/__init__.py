"""Observability: sim-time tracing, metrics registry, trace exporters.

See DESIGN.md §5e.  The package is dependency-light by design — ``sim``
must not import it (hooks live behind ``Simulator.tracer``, installed
from outside), and everything here is deterministic: no wall clock, no
randomness, no simulator objects.
"""

from .export import chrome_trace, jsonl_lines, write_chrome_trace, write_jsonl
from .registry import MetricsRegistry
from .tracer import Span, TraceEvent, Tracer, install, packet_op, uninstall
from . import runtime

__all__ = [
    "Tracer",
    "TraceEvent",
    "Span",
    "install",
    "uninstall",
    "packet_op",
    "MetricsRegistry",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_lines",
    "write_jsonl",
    "runtime",
]
