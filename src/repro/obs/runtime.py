"""Process-wide trace session for CLI wiring.

``python -m repro.bench … --trace out.trace.json`` needs every cluster
built anywhere under the run (the figure cells build dozens) to get a
tracer, without threading a handle through every call site.  The session
is module-level state: the CLI opens it, the bench harness's builders
call :func:`attach` on each new simulator, and the CLI exports the merged
trace at the end.

When no session is open, :func:`attach` is a no-op — the builders stay
zero-overhead for normal runs and the simulators keep their null tracer.
"""

from __future__ import annotations

from typing import List, Optional

from .export import write_chrome_trace, write_jsonl
from .tracer import Tracer

__all__ = ["TraceSession", "start", "stop", "current", "attach"]

_session: Optional["TraceSession"] = None


class TraceSession:
    """One ``--trace`` invocation: a growing list of per-run tracers."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.tracers: List[Tracer] = []

    def attach(self, sim, label: str = "") -> Tracer:
        """Install a tracer on ``sim`` (idempotent) and track it."""
        if getattr(sim, "tracer", None) is not None:
            return sim.tracer
        label = label or f"run {len(self.tracers) + 1}"
        tracer = Tracer(sim, label=f"{len(self.tracers) + 1}: {label}")
        sim.tracer = tracer
        self.tracers.append(tracer)
        return tracer

    @property
    def total_events(self) -> int:
        return sum(len(t) for t in self.tracers)

    def export(self, path: Optional[str] = None) -> dict:
        """Write the merged trace; returns a provenance-ready summary.

        ``*.jsonl`` paths get the raw JSONL dump, anything else the Chrome
        trace JSON.
        """
        out = path or self.path
        if not out:
            raise ValueError("trace session has no output path")
        if out.endswith(".jsonl"):
            n = write_jsonl(out, self.tracers)
            fmt = "jsonl"
        else:
            n = write_chrome_trace(out, self.tracers)
            fmt = "chrome"
        return {
            "path": out,
            "format": fmt,
            "runs": len(self.tracers),
            "events": self.total_events,
            "exported_events": n,
        }


def start(path: Optional[str] = None) -> TraceSession:
    """Open a session (replacing any prior one) and return it."""
    global _session
    _session = TraceSession(path)
    return _session


def stop() -> Optional[TraceSession]:
    """Close and return the active session (None if none was open)."""
    global _session
    session, _session = _session, None
    return session


def current() -> Optional[TraceSession]:
    return _session


def attach(sim, label: str = "") -> Optional[Tracer]:
    """Attach the active session's tracer to ``sim``; no-op when closed."""
    if _session is None:
        return None
    return _session.attach(sim, label)
