"""Sim-time structured tracing.

A :class:`Tracer` records a flat, append-only list of
:class:`TraceEvent` records stamped with *simulated* time.  Events are
either instants (``ph == "i"``) or span begin/end pairs (``"B"``/``"E"``)
correlated by an *op id* — the same ``op_id`` tuple the protocols already
carry in every message payload, so one client operation's span encloses
its switch hops and per-replica 2PC phases with no protocol changes.

Determinism contract
--------------------
Tracing must never perturb the simulation:

* the tracer allocates no simulator objects (no events, no processes,
  no timeouts) and draws no randomness — it only appends to a Python
  list;
* every hook site guards with ``tr = self.sim.tracer`` / ``if tr is not
  None`` so the disabled path is a single attribute load plus a branch
  (the null-tracer pattern; same spirit as ``REPRO_DISABLE_FLOW_CACHE``);
* event timestamps are ``sim.now`` — identical runs produce identical
  traces, and traced runs produce identical *results* to untraced runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["TraceEvent", "Tracer", "install", "uninstall", "packet_op"]


class TraceEvent:
    """One trace record: ``(ts, ph, name, cat, node, op, args)``.

    ``ph`` is the phase: ``"B"``/``"E"`` bracket a span, ``"i"`` is an
    instant.  ``cat`` is a coarse category (``op``, ``switch``, ``link``,
    ``2pc``, ``fault``, ``proc``, …), ``node`` the emitting component's
    name (a lane in the exported timeline), ``op`` the correlation id
    (or ``None`` for uncorrelated events).
    """

    __slots__ = ("ts", "ph", "name", "cat", "node", "op", "args")

    def __init__(self, ts, ph, name, cat, node, op, args):
        self.ts = ts
        self.ph = ph
        self.name = name
        self.cat = cat
        self.node = node
        self.op = op
        self.args = args

    def to_dict(self) -> Dict[str, Any]:
        d = {
            "ts": self.ts,
            "ph": self.ph,
            "name": self.name,
            "cat": self.cat,
            "node": self.node,
        }
        if self.op is not None:
            d["op"] = list(self.op) if isinstance(self.op, tuple) else self.op
        if self.args:
            d["args"] = self.args
        return d

    def __repr__(self) -> str:  # pragma: no cover
        op = f" op={self.op}" if self.op is not None else ""
        return f"<{self.ph} {self.ts:.6f} {self.cat}/{self.name} @{self.node}{op}>"


class Span:
    """Handle returned by :meth:`Tracer.begin`; call :meth:`end` once.

    ``end`` is idempotent — protocol coroutines have many exit paths and
    a double-close must not corrupt the trace.
    """

    __slots__ = ("_tracer", "name", "cat", "node", "op", "_open")

    def __init__(self, tracer: "Tracer", name: str, cat: str, node: str, op):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.node = node
        self.op = op
        self._open = True

    def end(self, **args) -> None:
        if not self._open:
            return
        self._open = False
        t = self._tracer
        t.events.append(
            TraceEvent(t.sim.now, "E", self.name, self.cat, self.node, self.op, args)
        )


class Tracer:
    """Collects :class:`TraceEvent` records for one simulator.

    ``verbose=True`` additionally records per-wake kernel instants
    (``cat="proc"``, ``name="wake"`` — one per process resumption).
    They are invaluable when debugging a stuck coroutine but dominate
    the trace by volume (~3 wakes per protocol message), so the default
    keeps only protocol-level events plus process spawns; the
    `trace_overhead` perf budget is set against the default.
    """

    __slots__ = ("sim", "label", "events", "verbose")

    def __init__(self, sim, label: str = "", verbose: bool = False):
        self.sim = sim
        self.label = label
        self.verbose = verbose
        self.events: List[TraceEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def instant(self, name: str, cat: str, node: str = "", op=None, **args) -> None:
        self.events.append(TraceEvent(self.sim.now, "i", name, cat, node, op, args))

    def begin(self, name: str, cat: str, node: str = "", op=None, **args) -> Span:
        self.events.append(TraceEvent(self.sim.now, "B", name, cat, node, op, args))
        return Span(self, name, cat, node, op)

    @contextmanager
    def span(self, name: str, cat: str, node: str = "", op=None, **args):
        handle = self.begin(name, cat, node, op, **args)
        try:
            yield handle
        finally:
            handle.end()

    # -- queries (used by tests and exporters) ------------------------------
    def spans(self, name: Optional[str] = None) -> List[Tuple[TraceEvent, TraceEvent]]:
        """Matched ``(begin, end)`` pairs, oldest first.

        Pairs are matched per ``(name, cat, node, op)`` key in LIFO order,
        which is how nested same-key spans close.  Unclosed begins are
        omitted.
        """
        stacks: Dict[tuple, List[TraceEvent]] = {}
        out = []
        for ev in self.events:
            if ev.ph not in ("B", "E"):
                continue
            if name is not None and ev.name != name:
                continue
            key = (ev.name, ev.cat, ev.node, ev.op)
            if ev.ph == "B":
                stacks.setdefault(key, []).append(ev)
            else:
                stack = stacks.get(key)
                if stack:
                    out.append((stack.pop(), ev))
        out.sort(key=lambda pair: pair[0].ts)
        return out

    def by_op(self, op) -> List[TraceEvent]:
        """All events correlated with ``op``, in emission order."""
        return [ev for ev in self.events if ev.op == op]


def install(sim, label: str = "", verbose: bool = False) -> Tracer:
    """Create a tracer, set it as ``sim.tracer``, and return it."""
    tracer = Tracer(sim, label=label, verbose=verbose)
    sim.tracer = tracer
    return tracer


def uninstall(sim) -> Optional[Tracer]:
    """Detach and return ``sim.tracer`` (hooks go back to no-ops)."""
    tracer = sim.tracer
    sim.tracer = None
    return tracer


def packet_op(payload) -> Optional[tuple]:
    """Extract the op correlation id from a message payload, if any.

    Payloads carry ``op_id`` either at the top level (client requests,
    node control messages) or inside the reliable-multicast tuple framing
    (``("mc_data", op, ack_port, payload)`` / ``("mc_ctrl", payload)``,
    whose application payload is a dict).  Returns a tuple or ``None``.
    """
    t = type(payload)
    if t is dict:
        op = payload.get("op_id")
        if op is not None:
            return tuple(op)
        return None
    if t is tuple and payload:
        kind = payload[0]
        if kind == "mc_data":
            inner = payload[3]
        elif kind == "mc_ctrl":
            inner = payload[1]
        else:
            return None
        if type(inner) is dict:
            op = inner.get("op_id")
            if op is not None:
                return tuple(op)
    return None
