"""A unified, queryable tree of the simulation's metrics.

Clients, storage nodes, switches and links each grow their own ad-hoc
:class:`~repro.sim.Counter` / :class:`~repro.sim.Tally` /
:class:`~repro.sim.RateSeries` instances.  :class:`MetricsRegistry` binds
them into one dotted-name tree (``client.c0.put_latency``,
``node.n3.aborts``, ``link.sw0->n3.tx_bytes``, …) without copying — the
registry holds references, so a snapshot always reflects live state.

Plain-``int`` statistics (e.g. the flow-cache hit counters) register as
*gauges*: zero-argument callables sampled at snapshot time.

Snapshots are deterministic: same cluster state → byte-identical JSON
(names sorted, nan rendered as ``null`` by the metric ``snapshot()``
methods).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..sim.monitor import Counter, RateSeries, Tally

__all__ = ["MetricsRegistry"]

#: Metric classes picked up by the attribute scan in :meth:`collect_object`.
_METRIC_TYPES = (Counter, Tally, RateSeries)


class MetricsRegistry:
    """Named references to live metric objects, exported as one tree."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._gauges: Dict[str, Callable[[], Any]] = {}

    # -- registration -------------------------------------------------------
    def register(self, name: str, metric) -> Any:
        """Bind ``metric`` (Counter/Tally/RateSeries) under ``name``."""
        self._check_name(name)
        self._metrics[name] = metric
        return metric

    def gauge(self, name: str, fn: Callable[[], Any]) -> None:
        """Bind a zero-arg callable sampled at snapshot time."""
        self._check_name(name)
        self._gauges[name] = fn

    def _check_name(self, name: str) -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        if name in self._metrics or name in self._gauges:
            raise KeyError(f"metric name already registered: {name!r}")

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics) + len(self._gauges)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics or name in self._gauges

    def get(self, name: str):
        if name in self._metrics:
            return self._metrics[name]
        return self._gauges[name]

    def names(self, prefix: str = "") -> List[str]:
        """All registered names (sorted), optionally under a dotted prefix."""
        every = sorted([*self._metrics, *self._gauges])
        if not prefix:
            return every
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return [n for n in every if n == prefix or n.startswith(dotted)]

    def query(self, prefix: str = "") -> Dict[str, Any]:
        """Live metric objects under ``prefix`` (gauges appear as callables)."""
        return {n: self.get(n) for n in self.names(prefix)}

    # -- export -------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The metric tree as nested dicts of JSON-safe leaves."""
        tree: Dict[str, Any] = {}
        for name in self.names():
            if name in self._metrics:
                leaf = self._metrics[name].snapshot()
            else:
                leaf = {"type": "gauge", "value": self._gauges[name]()}
            node = tree
            parts = name.split(".")
            for part in parts[:-1]:
                nxt = node.setdefault(part, {})
                if not isinstance(nxt, dict) or "type" in nxt:
                    raise ValueError(f"metric name {name!r} collides with a leaf")
                node = nxt
            if parts[-1] in node:
                raise ValueError(f"metric name {name!r} collides with a subtree")
            node[parts[-1]] = leaf
        return tree

    def to_json(self, indent: Optional[int] = 2) -> str:
        # allow_nan=False: the snapshot contract is strict JSON (nan -> null
        # happens in the metric snapshot() methods, not here).
        return json.dumps(
            self.snapshot(), indent=indent, sort_keys=True, allow_nan=False
        )

    # -- collection walkers -------------------------------------------------
    def collect_object(self, obj, base: str) -> int:
        """Register every metric-typed attribute of ``obj`` under ``base``."""
        n = 0
        for attr, val in sorted(vars(obj).items()):
            if isinstance(val, _METRIC_TYPES):
                self.register(f"{base}.{attr}", val)
                n += 1
        return n

    @classmethod
    def from_cluster(cls, cluster, prefix: str = "") -> "MetricsRegistry":
        """Walk a NICE or NOOB cluster and register everything measurable.

        Duck-typed: any object with ``clients`` / ``nodes`` / ``switch`` /
        ``edge_switches`` / ``gateways`` / ``network`` attributes
        contributes whichever of those it has.
        """
        reg = cls()
        p = f"{prefix}." if prefix else ""
        for client in getattr(cluster, "clients", []):
            reg.collect_object(client, f"{p}client.{client.host.name}")
        nodes = getattr(cluster, "nodes", {})
        items = nodes.items() if isinstance(nodes, dict) else (
            (n.host.name, n) for n in nodes
        )
        for name, node in sorted(items):
            reg.collect_object(node, f"{p}node.{name}")
            # Disk health (DESIGN.md §5k): durability barrier, unflushed
            # window, degradation and WAL recovery counters — the obs feed
            # the fail-slow detector and the durability chaos cells read.
            disk = getattr(node, "disk", None)
            if disk is not None:
                base = f"{p}node.{name}.disk"
                reg.collect_object(disk, base)
                reg.gauge(f"{base}.dirty_bytes", lambda d=disk: d.dirty_bytes)
                reg.gauge(f"{base}.durable_seq", lambda d=disk: d.durable_seq)
                reg.gauge(
                    f"{base}.degraded_factor", lambda d=disk: d.degraded_factor
                )
            wal = getattr(node, "wal", None)
            if wal is not None:
                base = f"{p}node.{name}.wal"
                reg.gauge(f"{base}.appended", lambda w=wal: w.appended)
                reg.gauge(f"{base}.removed", lambda w=wal: w.removed)
                reg.gauge(f"{base}.torn_records", lambda w=wal: w.torn_records)
                reg.gauge(f"{base}.lost_records", lambda w=wal: w.lost_records)
                reg.gauge(
                    f"{base}.resurrected_records",
                    lambda w=wal: w.resurrected_records,
                )
            if hasattr(node, "failslow"):
                reg.gauge(
                    f"{p}node.{name}.failslow", lambda n=node: int(n.failslow)
                )
        switches = []
        core = getattr(cluster, "switch", None)
        if core is not None:
            switches.append(core)
        switches.extend(getattr(cluster, "edge_switches", []))
        for sw in switches:
            base = f"{p}switch.{sw.name}"
            reg.collect_object(sw, base)
            table = getattr(sw, "table", None)
            if table is not None:
                reg.gauge(f"{base}.flowtable.rules", lambda t=table: len(t))
                reg.gauge(f"{base}.flowtable.cache_hits",
                          lambda t=table: t.cache_hits)
                reg.gauge(f"{base}.flowtable.cache_misses",
                          lambda t=table: t.cache_misses)
        for gw in getattr(cluster, "gateways", []):
            reg.collect_object(gw, f"{p}gateway.{gw.host.name}")
        ctrl = getattr(cluster, "control_plane", None)
        if ctrl is not None:
            reg.collect_object(ctrl, f"{p}controlplane")
        controller = getattr(cluster, "controller", None)
        if controller is not None and hasattr(controller, "plan_cache_hits"):
            # Incremental-planner instrumentation (DESIGN.md §5i):
            # cumulative planning wall time plus recompute/cache-hit
            # counts.  sync_ms is host wall clock — trend data, never part
            # of a determinism comparison.
            reg.gauge(
                f"{p}controlplane.plan.sync_ms",
                lambda c=controller: round(c.plan_wall_s * 1e3, 3),
            )
            reg.gauge(
                f"{p}controlplane.plan.partitions_recomputed",
                lambda c=controller: c.plan_recomputes.value,
            )
            reg.gauge(
                f"{p}controlplane.plan.cache_hits",
                lambda c=controller: c.plan_cache_hits.value,
            )
        metadata = getattr(cluster, "metadata", None)
        if metadata is not None:
            reg.collect_object(metadata, f"{p}metadata")
            reg.gauge(
                f"{p}metadata.epoch",
                lambda c=cluster: getattr(
                    getattr(c, "metadata_active", None) or c.metadata, "epoch", 0
                ),
            )
        ha = getattr(cluster, "metadata_ha", None)
        if ha is not None:
            reg.collect_object(ha, f"{p}metadata.ha")
            reg.gauge(
                f"{p}metadata.ha.log_records",
                lambda h=ha: max(len(r.log) for r in h.replicas),
            )
        network = getattr(cluster, "network", None)
        for link in getattr(network, "links", []):
            for channel in link.channels:
                reg.collect_object(channel, f"{p}link.{channel.name}")
        sim = getattr(cluster, "sim", None)
        if sim is not None and hasattr(sim, "pool_stats"):
            # Kernel allocation health (DESIGN.md §5g): reuse rates near
            # 1.0 mean the hot path runs allocation-free.
            reg.gauge(
                f"{p}sim.call_pool.reuse_rate",
                lambda s=sim: s.pool_stats()["call_pool"]["reuse_rate"],
            )
            reg.gauge(
                f"{p}sim.entry_pool.reuse_rate",
                lambda s=sim: s.pool_stats()["entry_pool"]["reuse_rate"],
            )
        return reg
