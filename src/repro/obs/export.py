"""Trace exporters: JSONL and Chrome trace (catapult) JSON.

The Chrome format is the *JSON array* flavor understood by
``chrome://tracing`` and by Perfetto's legacy-trace importer: an object
with a ``traceEvents`` list.  Mapping from our model:

* one *process* (pid) per traced simulator run, named by the tracer
  label (``bench all`` builds many clusters; each becomes its own
  process row);
* one *thread* (tid) per emitting component (``node`` field) — client
  hosts, storage nodes, the switch, links — sorted by name so the
  export is deterministic;
* op-correlated spans become **async** events (``ph`` ``"b"``/``"e"``)
  sharing ``id = <op id>`` so a client op's span visually encloses its
  switch hops and 2PC phases even though they happen on different
  components;
* uncorrelated spans become duration events (``"B"``/``"E"``) on their
  component's thread;
* instants become ``"i"`` events — fault markers use global scope
  (``"s": "g"``) so injected faults draw a line across the whole
  timeline.

Timestamps are microseconds of *simulated* time (``sim.now * 1e6``).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from .tracer import Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_lines",
    "write_jsonl",
]


def _op_str(op) -> str:
    if isinstance(op, tuple):
        return "/".join(str(part) for part in op)
    return str(op)


def chrome_trace(tracers: Iterable[Tracer]) -> dict:
    """Render tracers as a Chrome trace dict (``{"traceEvents": [...]}``)."""
    trace_events: List[dict] = []
    for pid, tracer in enumerate(tracers, start=1):
        name = tracer.label or f"run {pid}"
        trace_events.append(
            {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
             "args": {"name": name}}
        )
        trace_events.append(
            {"ph": "M", "pid": pid, "tid": 0, "name": "process_sort_index",
             "args": {"sort_index": pid}}
        )
        nodes = sorted({ev.node for ev in tracer.events})
        tids = {node: i for i, node in enumerate(nodes, start=1)}
        for node, tid in tids.items():
            trace_events.append(
                {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                 "args": {"name": node or "(sim)"}}
            )
            trace_events.append(
                {"ph": "M", "pid": pid, "tid": tid, "name": "thread_sort_index",
                 "args": {"sort_index": tid}}
            )
        for ev in tracer.events:
            out = {
                "name": ev.name,
                "cat": ev.cat,
                "pid": pid,
                "tid": tids[ev.node],
                "ts": ev.ts * 1e6,
                "args": ev.args or {},
            }
            if ev.ph == "i":
                out["ph"] = "i"
                out["s"] = "g" if ev.cat == "fault" else "t"
                if ev.op is not None:
                    out["args"] = dict(out["args"], op=_op_str(ev.op))
            elif ev.op is not None:
                out["ph"] = "b" if ev.ph == "B" else "e"
                out["id"] = _op_str(ev.op)
            else:
                out["ph"] = ev.ph  # plain duration "B"/"E"
            trace_events.append(out)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, tracers: Iterable[Tracer]) -> int:
    """Write the Chrome trace JSON; returns the number of trace events."""
    doc = chrome_trace(tracers)
    with open(path, "w") as fh:
        # default=str: hot-path tracer sites store address objects raw (no
        # per-event str() cost); they stringify here, at export time.
        json.dump(doc, fh, indent=None, separators=(",", ":"), sort_keys=True,
                  default=str)
        fh.write("\n")
    return len(doc["traceEvents"])


def jsonl_lines(tracers: Iterable[Tracer]) -> Iterable[str]:
    """One compact JSON object per trace event, run label included."""
    for tracer in tracers:
        label = tracer.label
        for ev in tracer.events:
            d: Dict = {"run": label}
            d.update(ev.to_dict())
            yield json.dumps(d, separators=(",", ":"), sort_keys=True, default=str)


def write_jsonl(path: str, tracers: Iterable[Tracer]) -> int:
    """Write raw events as JSON Lines; returns the number of lines."""
    n = 0
    with open(path, "w") as fh:
        for line in jsonl_lines(tracers):
            fh.write(line)
            fh.write("\n")
            n += 1
    return n
