"""Experiment definitions regenerating every figure of the paper's §6.

Each ``figN_*`` function rebuilds the deployment of §6 (15 storage nodes +
1 metadata node, 1 Gbps links, R=3 unless the figure varies it), drives the
paper's workload, and returns an :class:`ExperimentResult` whose rows are
the figure's data points.  ``n_ops`` defaults to the paper's 1000
operations per point; the pytest benchmarks pass reduced counts (the
simulator is deterministic, so means converge with far fewer samples).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core import ClusterConfig, NiceCluster
from ..net import MBPS, wire_size
from ..sim import AllOf, Tally
from ..workloads import (
    OBJECT_SIZES,
    WORKLOADS,
    YcsbRunner,
    closed_loop_gets,
    closed_loop_puts,
    hot_object_clients,
    keys_in_partition,
    run_fault_timeline,
)
from .harness import ExperimentResult, build_nice, build_noob, run_to_completion

__all__ = [
    "fig4_request_routing",
    "fig5_6_7_replication",
    "fig8_quorum",
    "fig9_consistency",
    "fig10_load_balancing",
    "fig11_fault_tolerance",
    "fig12_ycsb",
    "sec46_switch_scalability",
]

#: The four systems of Figs 4–7.
ROUTING_SYSTEMS = ("NICE", "NOOB+RAC", "NOOB+RAG", "NOOB+ROG")


def _build(system: str, **overrides):
    if system == "NICE":
        return build_nice(**overrides)
    access = system.split("+")[1].lower()
    overrides.setdefault("consistency", "primary")
    return build_noob(access=access, **overrides)


# --------------------------------------------------------------------- Fig 4
def fig4_request_routing(
    n_ops: int = 1000, sizes: Sequence[int] = OBJECT_SIZES
) -> ExperimentResult:
    """Fig 4: average get time vs object size for NICE / RAC / RAG / ROG."""
    result = ExperimentResult(
        "fig4",
        "Request Routing Performance — average get() time (ms), log-size axis",
        ["system", "size_bytes", "get_ms", "stdev_ms"],
    )
    for system in ROUTING_SYSTEMS:
        cluster = _build(system, n_storage_nodes=15, n_clients=1)
        client = cluster.clients[0]

        def driver(sim):
            for size in sizes:
                key = f"routing-{size}"
                r = yield client.put(key, "x", size)
                assert r.ok, f"{system}: seed put failed"
                tally = yield closed_loop_gets(client, sim, n_ops, [key])
                result.add(
                    system=system,
                    size_bytes=size,
                    get_ms=tally.mean * 1e3,
                    stdev_ms=tally.stdev * 1e3,
                )

        run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
    result.note(f"{n_ops} gets per point; single client, R=3, 15 storage nodes")
    return result


# ----------------------------------------------------------------- Figs 5–7
def fig5_6_7_replication(
    n_ops: int = 1000, sizes: Sequence[int] = OBJECT_SIZES
) -> Dict[str, ExperimentResult]:
    """Figs 5, 6, 7: put time, total network link load, and
    primary:secondary storage-load ratio, per object size and system."""
    fig5 = ExperimentResult(
        "fig5", "Replication Performance — average put() time (ms)",
        ["system", "size_bytes", "put_ms", "stdev_ms"],
    )
    fig6 = ExperimentResult(
        "fig6", "Network Link Load — total bytes crossing links per put",
        ["system", "size_bytes", "link_bytes_per_op", "x_object_size"],
    )
    fig7 = ExperimentResult(
        "fig7", "Storage Load Ratio — primary IO bytes / mean secondary IO bytes",
        ["system", "size_bytes", "load_ratio"],
    )
    for system in ROUTING_SYSTEMS:
        cluster = _build(system, n_storage_nodes=15, n_clients=1)
        client = cluster.clients[0]

        def driver(sim):
            for size in sizes:
                key = f"repl-{size}"
                # Warm paths (connections, rules) outside the measurement.
                r = yield client.put(key, "x", size)
                assert r.ok
                cluster.reset_measurements()
                tally = yield closed_loop_puts(client, sim, n_ops, size, keys=[key])
                total_bytes = cluster.network.total_link_bytes()
                if system == "NICE":
                    replicas = cluster.replica_nodes(key)
                    primary, secondaries = replicas[0], replicas[1:]
                else:
                    replicas = cluster.replica_nodes(key)
                    primary, secondaries = replicas[0], replicas[1:]
                pio = cluster.network.host_io_bytes(primary.host)
                sio = [cluster.network.host_io_bytes(s.host) for s in secondaries]
                fig5.add(
                    system=system, size_bytes=size,
                    put_ms=tally.mean * 1e3, stdev_ms=tally.stdev * 1e3,
                )
                fig6.add(
                    system=system, size_bytes=size,
                    link_bytes_per_op=total_bytes / max(tally.count, 1),
                    x_object_size=total_bytes / max(tally.count, 1) / wire_size(size),
                )
                fig7.add(
                    system=system, size_bytes=size,
                    load_ratio=pio / max(float(np.mean(sio)), 1.0) if sio else 1.0,
                )

        run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
    for fig in (fig5, fig6, fig7):
        fig.note(f"{n_ops} puts per point; single client, R=3, 15 storage nodes")
    return {"fig5": fig5, "fig6": fig6, "fig7": fig7}


# --------------------------------------------------------------------- Fig 8
def fig8_quorum(
    n_ops: int = 1000,
    size: int = 1 << 20,
    replication: int = 7,
    quorums: Sequence[int] = (1, 3, 5, 7),
    n_slow: int = 3,
    slow_bps: float = 50 * MBPS,
) -> ExperimentResult:
    """Fig 8: quorum-based replication with 3 replicas throttled to 50 Mbps.

    NICE uses the reliable any-k multicast; NOOB's primary concurrently
    unicasts to every replica and acks at the write-set size.
    """
    result = ExperimentResult(
        "fig8",
        "Quorum-based Replication — put time (a) and achieved bandwidth (b)",
        ["system", "quorum", "put_ms", "bandwidth_MBps"],
    )
    key = "quorum-object"

    def throttle_slow_replicas(cluster, replicas):
        slow = replicas[-n_slow:]
        for node in slow:
            cluster.network.link_between(cluster.switch, node.host).set_bandwidth(slow_bps)
        return [n.name for n in slow]

    for k in quorums:
        # -- NICE ---------------------------------------------------------
        cluster = build_nice(
            n_storage_nodes=15, n_clients=1, replication_level=replication
        )
        replicas = cluster.replica_nodes(key)
        throttle_slow_replicas(cluster, replicas)
        client = cluster.clients[0]

        def nice_driver(sim, k=k):
            tally = Tally("nice")
            for i in range(n_ops):
                r = yield client.put_anyk(key, "x", size, quorum=k)
                tally.observe(r.latency)
            return tally

        tally = run_to_completion(cluster, cluster.sim.process(nice_driver(cluster.sim)))
        result.add(
            system="NICE", quorum=k, put_ms=tally.mean * 1e3,
            bandwidth_MBps=size / tally.mean / 1e6,
        )
        # -- NOOB ----------------------------------------------------------
        cluster = build_noob(
            n_storage_nodes=15, n_clients=1, replication_level=replication,
            consistency="quorum", quorum_k=k, access="rac",
        )
        replicas = cluster.replica_nodes(key)
        throttle_slow_replicas(cluster, replicas)
        client = cluster.clients[0]

        def noob_driver(sim):
            tally = Tally("noob")
            for i in range(n_ops):
                r = yield client.put(key, "x", size, max_retries=0)
                if r.ok:
                    tally.observe(r.latency)
            return tally

        tally = run_to_completion(cluster, cluster.sim.process(noob_driver(cluster.sim)))
        result.add(
            system="NOOB", quorum=k, put_ms=tally.mean * 1e3,
            bandwidth_MBps=size / tally.mean / 1e6,
        )
    result.note(
        f"{n_ops} x {size}B puts, R={replication}, {n_slow} replicas at "
        f"{slow_bps / MBPS:.0f} Mbps"
    )
    return result


# --------------------------------------------------------------------- Fig 9
def fig9_consistency(
    n_ops: int = 1000,
    levels: Sequence[int] = (1, 3, 5, 7, 9),
    sizes: Sequence[int] = (4, 1 << 20),
) -> ExperimentResult:
    """Fig 9: put time vs replication level (4 B and 1 MB objects) for NICE,
    NOOB primary-only and NOOB-2PC (RAC routing)."""
    result = ExperimentResult(
        "fig9",
        "Consistency Mechanism Performance — put time vs replication level",
        ["system", "replication", "size_bytes", "put_ms", "stdev_ms"],
    )
    systems = [
        ("NICE", lambda r: build_nice(n_storage_nodes=15, n_clients=1, replication_level=r)),
        (
            "NOOB primary-only",
            lambda r: build_noob(
                n_storage_nodes=15, n_clients=1, replication_level=r,
                access="rac", consistency="primary",
            ),
        ),
        (
            "NOOB 2PC",
            lambda r: build_noob(
                n_storage_nodes=15, n_clients=1, replication_level=r,
                access="rac", consistency="2pc",
            ),
        ),
    ]
    for system, builder in systems:
        for r in levels:
            cluster = builder(r)
            client = cluster.clients[0]

            def driver(sim):
                out = {}
                for size in sizes:
                    key = f"cons-{size}"
                    seed = yield client.put(key, "x", size)
                    assert seed.ok
                    tally = yield closed_loop_puts(client, sim, n_ops, size, keys=[key])
                    out[size] = tally
                return out

            tallies = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
            for size, tally in tallies.items():
                result.add(
                    system=system, replication=r, size_bytes=size,
                    put_ms=tally.mean * 1e3, stdev_ms=tally.stdev * 1e3,
                )
    result.note(f"{n_ops} puts per point; single client; NOOB uses RAC routing")
    return result


# -------------------------------------------------------------------- Fig 10
def fig10_load_balancing(
    n_ops: int = 1000,
    levels: Sequence[int] = (1, 3, 5, 7, 9),
    sizes: Sequence[int] = (4, 1 << 20),
) -> ExperimentResult:
    """Fig 10: hot-object weak scaling — 1 put client + (R−1) get clients on
    one object, clients grow with the replication level; bold markers are
    the get-only workload."""
    result = ExperimentResult(
        "fig10",
        "Load Balancing — weak scaling on a hot object (mean op time, ms)",
        [
            "system", "replication", "size_bytes", "clients",
            "op_ms", "stdev_ms", "get_only_ms",
        ],
    )
    systems = [
        ("NICE", lambda r, c: build_nice(
            n_storage_nodes=15, n_clients=c, replication_level=r)),
        ("NOOB primary-only", lambda r, c: build_noob(
            n_storage_nodes=15, n_clients=c, replication_level=r,
            access="rac", consistency="primary")),
        # The paper's 2PC configuration load-balances through a gateway —
        # its Fig 10 cost includes "the added load-balancing latency".
        ("NOOB 2PC", lambda r, c: build_noob(
            n_storage_nodes=15, n_clients=c, replication_level=r,
            access="rag", consistency="2pc")),
    ]
    for system, builder in systems:
        for r in levels:
            n_clients = max(r, 1)
            for size in sizes:
                key = "hot-object"
                # Full workload: 1 putter + (R-1) getters.
                cluster = builder(r, n_clients)

                def driver(sim, cluster=cluster):
                    res = yield hot_object_clients(
                        cluster.clients[0], cluster.clients[1:], sim, key, size, n_ops
                    )
                    return res

                res = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
                combined = Tally("combined")
                for t in (res["put"], res["get"]):
                    for s in t.samples:
                        combined.observe(s)
                # Marker: the same run without the put client.
                cluster2 = builder(r, n_clients)

                def marker_driver(sim, cluster=cluster2):
                    res = yield hot_object_clients(
                        cluster.clients[0], cluster.clients[1:], sim, key, size,
                        n_ops, include_put=False,
                    )
                    return res

                marker = run_to_completion(
                    cluster2, cluster2.sim.process(marker_driver(cluster2.sim))
                )
                result.add(
                    system=system, replication=r, size_bytes=size, clients=n_clients,
                    op_ms=combined.mean * 1e3, stdev_ms=combined.stdev * 1e3,
                    get_only_ms=marker["get"].mean * 1e3 if marker["get"].count else 0.0,
                )
    result.note(
        f"{n_ops} ops per client; clients scale with R (weak scaling); "
        "markers = get-only workload"
    )
    return result


# -------------------------------------------------------------------- Fig 11
def fig11_fault_tolerance(
    duration: float = 120.0, fail_at: float = 30.0, recover_at: float = 90.0
) -> ExperimentResult:
    """Fig 11: served put/get requests per second across a secondary
    failure (30 s) and recovery (90 s)."""
    cluster = build_nice(n_storage_nodes=15, n_clients=3)
    partition = 0
    keys = keys_in_partition(partition, cluster.config.n_partitions, 64)
    res = run_fault_timeline(
        cluster, keys, fail_at=fail_at, recover_at=recover_at, duration=duration
    )
    result = ExperimentResult(
        "fig11",
        "Fault Tolerance — served requests/s across failure and recovery",
        ["t_s", "puts_per_s", "gets_per_s", "failed_puts_per_s"],
    )
    puts = dict(res.put_rate.series(duration))
    gets = dict(res.get_rate.series(duration))
    fails = dict(res.failed_puts.series(duration))
    for t in sorted(set(puts) | set(gets) | set(fails)):
        result.add(
            t_s=t,
            puts_per_s=puts.get(t, 0.0),
            gets_per_s=gets.get(t, 0.0),
            failed_puts_per_s=fails.get(t, 0.0),
        )
    for when, label in res.events:
        result.note(f"t={when:.2f}s: {label}")
    result.note("3 clients, 20/80 put/get, 1 KB objects, one partition")
    return result


# -------------------------------------------------------------------- Fig 12
def fig12_ycsb(
    n_ops_per_client: int = 20000,
    n_clients: int = 10,
    n_records: int = 1000,
    workloads: Sequence[str] = ("C", "F"),
) -> ExperimentResult:
    """Fig 12: YCSB workloads C (read-only) and F (read-modify-write),
    zipfian popularity, 1 KB objects."""
    result = ExperimentResult(
        "fig12",
        "Yahoo Benchmark — throughput (ops/s) under YCSB C and F",
        ["workload", "system", "throughput_ops_s", "mean_op_ms", "stdev_ms", "errors"],
    )
    # Per-request server cost calibrated to the testbed regime (C++ on the
    # ARMv8 nodes): chosen so workload C reproduces the paper's 1.6x gap to
    # primary-only; the default 25us (used by the latency figures) models a
    # much faster request path and underplays hot-node saturation.
    cpu = 150e-6
    systems = [
        ("NICE", lambda: build_nice(
            n_storage_nodes=15, n_clients=n_clients, node_cpu_per_op_s=cpu)),
        ("NOOB primary-only", lambda: build_noob(
            n_storage_nodes=15, n_clients=n_clients,
            access="rac", consistency="primary", node_cpu_per_op_s=cpu)),
        # The paper's 2PC configuration load-balances via a gateway.
        ("NOOB 2PC", lambda: build_noob(
            n_storage_nodes=15, n_clients=n_clients,
            access="rag", consistency="2pc", node_cpu_per_op_s=cpu)),
    ]
    for wl_name in workloads:
        for system, builder in systems:
            cluster = builder()
            runner = YcsbRunner(
                WORKLOADS[wl_name],
                n_records=n_records,
                rng=np.random.default_rng(cluster.config.seed),
            )
            proc = runner.run(cluster.clients[:n_clients], cluster.sim, n_ops_per_client)
            stats = run_to_completion(cluster, proc)
            result.add(
                workload=wl_name,
                system=system,
                throughput_ops_s=stats["throughput_ops_s"],
                mean_op_ms=runner.op_latency.mean * 1e3,
                stdev_ms=runner.op_latency.stdev * 1e3,
                errors=stats["errors"],
            )
    result.note(
        f"{n_clients} clients x {n_ops_per_client} ops, {n_records} records, "
        "1 KB objects, zipfian"
    )
    return result


# ----------------------------------------------------------------------- §4.6
def sec46_switch_scalability(
    measured_nodes: Sequence[int] = (8, 16),
    analytic_nodes: Sequence[int] = (1024, 4096, 16384, 32768, 65536),
    table_capacity: int = 128 * 1024,
    replication: int = 3,
) -> ExperimentResult:
    """§4.6: forwarding-table usage — 2N entries without LB, (R+1)N with —
    measured on real controllers for small N, analytic for large N."""
    result = ExperimentResult(
        "sec46",
        "Switch Scalability — forwarding entries vs cluster size",
        ["nodes", "load_balancing", "entries", "source", "fits_128k_table"],
    )
    for n in measured_nodes:
        for lb in (False, True):
            cluster = build_nice(
                n_storage_nodes=n, n_clients=2, n_partitions=n, load_balancing=lb
            )
            entries = cluster.controller.rule_count()
            result.add(
                nodes=n, load_balancing=lb, entries=entries,
                source="measured", fits_128k_table=entries <= table_capacity,
            )
    for n in analytic_nodes:
        for lb in (False, True):
            entries = (replication + 1) * n if lb else 2 * n  # paper's formula
            result.add(
                nodes=n, load_balancing=lb, entries=entries,
                source="analytic", fits_128k_table=entries <= table_capacity,
            )
    result.note(
        "paper counts 2N / (R+1)N; this controller keeps one extra "
        "default-to-primary rule (§4.5 fallback) and one IP-multicast-group "
        "match per partition (2PC timestamp target), hence 3N / (R+3)N "
        "measured — same O(N) / O(RN) scaling"
    )
    return result
