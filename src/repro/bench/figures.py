"""Experiment definitions regenerating every figure of the paper's §6.

Each ``figN_*`` function rebuilds the deployment of §6 (15 storage nodes +
1 metadata node, 1 Gbps links, R=3 unless the figure varies it), drives the
paper's workload, and returns an :class:`ExperimentResult` whose rows are
the figure's data points.  ``n_ops`` defaults to the paper's 1000
operations per point; the pytest benchmarks pass reduced counts (the
simulator is deterministic, so means converge with far fewer samples).

Every sweep decomposes into declarative :class:`~repro.bench.parallel.Cell`
records — one per independent (system, replication, size, ...) leg, each
building its own cluster from an explicit seed — executed through
:func:`~repro.bench.parallel.run_cells`.  With ``--jobs 1`` (the library
default) cells run inline in sweep order; with ``--jobs N`` they fan
across worker processes and merge back in canonical cell order, so the
rows are bit-identical either way (pinned by tests/bench/test_parallel.py).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core import ClusterConfig, NiceCluster, get_default_sim_mode
from ..net import MBPS, wire_size
from ..sim import AllOf, Tally
from ..workloads import (
    OBJECT_SIZES,
    WORKLOADS,
    YcsbRunner,
    closed_loop_gets,
    closed_loop_puts,
    hot_object_clients,
    keys_in_partition,
    run_fault_timeline,
)
from .harness import ExperimentResult, build_nice, build_noob, run_to_completion
from .parallel import Cell, derive_seed, run_cells

__all__ = [
    "fig4_request_routing",
    "fig5_6_7_replication",
    "fig8_quorum",
    "fig9_consistency",
    "fig10_load_balancing",
    "fig11_fault_tolerance",
    "fig12_ycsb",
    "read_scaling",
    "sec46_switch_scalability",
]

#: The four systems of Figs 4–7.
ROUTING_SYSTEMS = ("NICE", "NOOB+RAC", "NOOB+RAG", "NOOB+ROG")

#: Base cluster seed shared by the figure sweeps (= ClusterConfig default).
#: Each cell receives it explicitly so a cell's execution is a pure
#: function of its (params, seed) record, independent of sweep order.
BASE_SEED: int = ClusterConfig.__dataclass_fields__["seed"].default


def _build(system: str, **overrides):
    if system == "NICE":
        return build_nice(**overrides)
    access = system.split("+")[1].lower()
    overrides.setdefault("consistency", "primary")
    return build_noob(access=access, **overrides)


# --------------------------------------------------------------------- Fig 4
def fig4_cell(system: str, n_ops: int, sizes: Sequence[int], seed: int) -> Dict:
    """One Fig 4 leg: get latency vs size for a single system."""
    cluster = _build(system, n_storage_nodes=15, n_clients=1, seed=seed)
    client = cluster.clients[0]
    rows: List[Dict] = []

    def driver(sim):
        for size in sizes:
            key = f"routing-{size}"
            r = yield client.put(key, "x", size)
            assert r.ok, f"{system}: seed put failed"
            tally = yield closed_loop_gets(client, sim, n_ops, [key])
            rows.append(
                dict(
                    system=system,
                    size_bytes=size,
                    get_ms=tally.mean * 1e3,
                    stdev_ms=tally.stdev * 1e3,
                )
            )

    run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
    return {"rows": rows}


def fig4_request_routing(
    n_ops: int = 1000, sizes: Sequence[int] = OBJECT_SIZES, seed: int = BASE_SEED
) -> ExperimentResult:
    """Fig 4: average get time vs object size for NICE / RAC / RAG / ROG."""
    result = ExperimentResult(
        "fig4",
        "Request Routing Performance — average get() time (ms), log-size axis",
        ["system", "size_bytes", "get_ms", "stdev_ms"],
    )
    cells = [
        Cell(fig4_cell, dict(system=s, n_ops=n_ops, sizes=list(sizes)), seed=seed)
        for s in ROUTING_SYSTEMS
    ]
    for payload in run_cells(cells):
        result.rows.extend(payload["rows"])
    result.note(f"{n_ops} gets per point; single client, R=3, 15 storage nodes")
    return result


# ----------------------------------------------------------------- Figs 5–7
def fig5_6_7_cell(system: str, n_ops: int, sizes: Sequence[int], seed: int) -> Dict:
    """One Figs 5–7 leg: put time / link load / storage-load ratio for a
    single system across object sizes."""
    cluster = _build(system, n_storage_nodes=15, n_clients=1, seed=seed)
    client = cluster.clients[0]
    rows5: List[Dict] = []
    rows6: List[Dict] = []
    rows7: List[Dict] = []

    def driver(sim):
        for size in sizes:
            key = f"repl-{size}"
            # Warm paths (connections, rules) outside the measurement.
            r = yield client.put(key, "x", size)
            assert r.ok
            cluster.reset_measurements()
            tally = yield closed_loop_puts(client, sim, n_ops, size, keys=[key])
            total_bytes = cluster.network.total_link_bytes()
            replicas = cluster.replica_nodes(key)
            primary, secondaries = replicas[0], replicas[1:]
            pio = cluster.network.host_io_bytes(primary.host)
            sio = [cluster.network.host_io_bytes(s.host) for s in secondaries]
            rows5.append(
                dict(
                    system=system, size_bytes=size,
                    put_ms=tally.mean * 1e3, stdev_ms=tally.stdev * 1e3,
                )
            )
            rows6.append(
                dict(
                    system=system, size_bytes=size,
                    link_bytes_per_op=total_bytes / max(tally.count, 1),
                    x_object_size=total_bytes / max(tally.count, 1) / wire_size(size),
                )
            )
            rows7.append(
                dict(
                    system=system, size_bytes=size,
                    load_ratio=pio / max(float(np.mean(sio)), 1.0) if sio else 1.0,
                )
            )

    run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
    return {"fig5": rows5, "fig6": rows6, "fig7": rows7}


def fig5_6_7_replication(
    n_ops: int = 1000, sizes: Sequence[int] = OBJECT_SIZES, seed: int = BASE_SEED
) -> Dict[str, ExperimentResult]:
    """Figs 5, 6, 7: put time, total network link load, and
    primary:secondary storage-load ratio, per object size and system."""
    fig5 = ExperimentResult(
        "fig5", "Replication Performance — average put() time (ms)",
        ["system", "size_bytes", "put_ms", "stdev_ms"],
    )
    fig6 = ExperimentResult(
        "fig6", "Network Link Load — total bytes crossing links per put",
        ["system", "size_bytes", "link_bytes_per_op", "x_object_size"],
    )
    fig7 = ExperimentResult(
        "fig7", "Storage Load Ratio — primary IO bytes / mean secondary IO bytes",
        ["system", "size_bytes", "load_ratio"],
    )
    cells = [
        Cell(fig5_6_7_cell, dict(system=s, n_ops=n_ops, sizes=list(sizes)), seed=seed)
        for s in ROUTING_SYSTEMS
    ]
    for payload in run_cells(cells):
        fig5.rows.extend(payload["fig5"])
        fig6.rows.extend(payload["fig6"])
        fig7.rows.extend(payload["fig7"])
    for fig in (fig5, fig6, fig7):
        fig.note(f"{n_ops} puts per point; single client, R=3, 15 storage nodes")
    return {"fig5": fig5, "fig6": fig6, "fig7": fig7}


# --------------------------------------------------------------------- Fig 8
def fig8_cell(
    system: str,
    quorum: int,
    n_ops: int,
    size: int,
    replication: int,
    n_slow: int,
    slow_bps: float,
    seed: int,
) -> Dict:
    """One Fig 8 leg: quorum-k puts with throttled replicas, one system."""
    key = "quorum-object"
    if system == "NICE":
        cluster = build_nice(
            n_storage_nodes=15, n_clients=1, replication_level=replication, seed=seed
        )
    else:
        cluster = build_noob(
            n_storage_nodes=15, n_clients=1, replication_level=replication,
            consistency="quorum", quorum_k=quorum, access="rac", seed=seed,
        )
    replicas = cluster.replica_nodes(key)
    for node in replicas[-n_slow:]:
        cluster.network.link_between(cluster.switch, node.host).set_bandwidth(slow_bps)
    client = cluster.clients[0]

    def nice_driver(sim):
        tally = Tally("nice")
        for i in range(n_ops):
            r = yield client.put_anyk(key, "x", size, quorum=quorum)
            tally.observe(r.latency)
        return tally

    def noob_driver(sim):
        tally = Tally("noob")
        for i in range(n_ops):
            r = yield client.put(key, "x", size, max_retries=0)
            if r.ok:
                tally.observe(r.latency)
        return tally

    driver = nice_driver if system == "NICE" else noob_driver
    tally = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
    return {
        "rows": [
            dict(
                system=system, quorum=quorum, put_ms=tally.mean * 1e3,
                bandwidth_MBps=size / tally.mean / 1e6,
            )
        ]
    }


def fig8_quorum(
    n_ops: int = 1000,
    size: int = 1 << 20,
    replication: int = 7,
    quorums: Sequence[int] = (1, 3, 5, 7),
    n_slow: int = 3,
    slow_bps: float = 50 * MBPS,
    seed: int = BASE_SEED,
) -> ExperimentResult:
    """Fig 8: quorum-based replication with 3 replicas throttled to 50 Mbps.

    NICE uses the reliable any-k multicast; NOOB's primary concurrently
    unicasts to every replica and acks at the write-set size.
    """
    result = ExperimentResult(
        "fig8",
        "Quorum-based Replication — put time (a) and achieved bandwidth (b)",
        ["system", "quorum", "put_ms", "bandwidth_MBps"],
    )
    cells = [
        Cell(
            fig8_cell,
            dict(
                system=system, quorum=k, n_ops=n_ops, size=size,
                replication=replication, n_slow=n_slow, slow_bps=slow_bps,
            ),
            seed=seed,
        )
        for k in quorums
        for system in ("NICE", "NOOB")
    ]
    for payload in run_cells(cells):
        result.rows.extend(payload["rows"])
    result.note(
        f"{n_ops} x {size}B puts, R={replication}, {n_slow} replicas at "
        f"{slow_bps / MBPS:.0f} Mbps"
    )
    return result


# --------------------------------------------------------------------- Fig 9
#: Fig 9 / Fig 10 / Fig 12 system legs: name -> (builder, config overrides).
_SYSTEM_BUILDS = {
    "NICE": ("nice", {}),
    "NOOB primary-only": ("noob", dict(access="rac", consistency="primary")),
    "NOOB 2PC": ("noob", dict(access="rac", consistency="2pc")),
    # The paper's 2PC configuration load-balances through a gateway —
    # its Fig 10/12 cost includes "the added load-balancing latency".
    "NOOB 2PC (gateway)": ("noob", dict(access="rag", consistency="2pc")),
}


def _build_leg(system: str, **overrides):
    kind, extra = _SYSTEM_BUILDS[system]
    kwargs = dict(extra, **overrides)
    if kind == "nice":
        return build_nice(**kwargs)
    return build_noob(**kwargs)


def fig9_cell(
    system: str, replication: int, n_ops: int, sizes: Sequence[int], seed: int
) -> Dict:
    """One Fig 9 leg: put latency at one (system, replication level)."""
    cluster = _build_leg(
        system, n_storage_nodes=15, n_clients=1, replication_level=replication,
        seed=seed,
    )
    client = cluster.clients[0]

    def driver(sim):
        out = {}
        for size in sizes:
            key = f"cons-{size}"
            seeded = yield client.put(key, "x", size)
            assert seeded.ok
            tally = yield closed_loop_puts(client, sim, n_ops, size, keys=[key])
            out[size] = tally
        return out

    tallies = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
    rows = [
        dict(
            system=system, replication=replication, size_bytes=size,
            put_ms=tally.mean * 1e3, stdev_ms=tally.stdev * 1e3,
        )
        for size, tally in tallies.items()
    ]
    return {"rows": rows}


def fig9_consistency(
    n_ops: int = 1000,
    levels: Sequence[int] = (1, 3, 5, 7, 9),
    sizes: Sequence[int] = (4, 1 << 20),
    seed: int = BASE_SEED,
) -> ExperimentResult:
    """Fig 9: put time vs replication level (4 B and 1 MB objects) for NICE,
    NOOB primary-only and NOOB-2PC (RAC routing)."""
    result = ExperimentResult(
        "fig9",
        "Consistency Mechanism Performance — put time vs replication level",
        ["system", "replication", "size_bytes", "put_ms", "stdev_ms"],
    )
    cells = [
        Cell(
            fig9_cell,
            dict(system=system, replication=r, n_ops=n_ops, sizes=list(sizes)),
            seed=seed,
        )
        for system in ("NICE", "NOOB primary-only", "NOOB 2PC")
        for r in levels
    ]
    for payload in run_cells(cells):
        result.rows.extend(payload["rows"])
    result.note(f"{n_ops} puts per point; single client; NOOB uses RAC routing")
    return result


# -------------------------------------------------------------------- Fig 10
def fig10_cell(
    system: str, replication: int, size: int, n_ops: int, seed: int
) -> Dict:
    """One Fig 10 leg: hot-object weak scaling at one (system, R, size)."""
    n_clients = max(replication, 1)
    key = "hot-object"
    build_system = "NOOB 2PC (gateway)" if system == "NOOB 2PC" else system
    # Full workload: 1 putter + (R-1) getters.
    cluster = _build_leg(
        build_system, n_storage_nodes=15, n_clients=n_clients,
        replication_level=replication, seed=seed,
    )

    def driver(sim, cluster=cluster):
        res = yield hot_object_clients(
            cluster.clients[0], cluster.clients[1:], sim, key, size, n_ops
        )
        return res

    res = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
    combined = Tally("combined")
    for t in (res["put"], res["get"]):
        for s in t.samples:
            combined.observe(s)
    # Marker: the same run without the put client.
    cluster2 = _build_leg(
        build_system, n_storage_nodes=15, n_clients=n_clients,
        replication_level=replication, seed=seed,
    )

    def marker_driver(sim, cluster=cluster2):
        res = yield hot_object_clients(
            cluster.clients[0], cluster.clients[1:], sim, key, size,
            n_ops, include_put=False,
        )
        return res

    marker = run_to_completion(
        cluster2, cluster2.sim.process(marker_driver(cluster2.sim))
    )
    return {
        "rows": [
            dict(
                system=system, replication=replication, size_bytes=size,
                clients=n_clients,
                op_ms=combined.mean * 1e3, stdev_ms=combined.stdev * 1e3,
                get_only_ms=marker["get"].mean * 1e3 if marker["get"].count else 0.0,
            )
        ]
    }


def fig10_load_balancing(
    n_ops: int = 1000,
    levels: Sequence[int] = (1, 3, 5, 7, 9),
    sizes: Sequence[int] = (4, 1 << 20),
    seed: int = BASE_SEED,
) -> ExperimentResult:
    """Fig 10: hot-object weak scaling — 1 put client + (R−1) get clients on
    one object, clients grow with the replication level; bold markers are
    the get-only workload."""
    result = ExperimentResult(
        "fig10",
        "Load Balancing — weak scaling on a hot object (mean op time, ms)",
        [
            "system", "replication", "size_bytes", "clients",
            "op_ms", "stdev_ms", "get_only_ms",
        ],
    )
    cells = [
        Cell(
            fig10_cell,
            dict(system=system, replication=r, size=size, n_ops=n_ops),
            seed=seed,
        )
        for system in ("NICE", "NOOB primary-only", "NOOB 2PC")
        for r in levels
        for size in sizes
    ]
    for payload in run_cells(cells):
        result.rows.extend(payload["rows"])
    result.note(
        f"{n_ops} ops per client; clients scale with R (weak scaling); "
        "markers = get-only workload"
    )
    return result


# -------------------------------------------------------------------- Fig 11
def fig11_cell(duration: float, fail_at: float, recover_at: float, seed: int) -> Dict:
    """The Fig 11 fault timeline (one cell: a single 120 s scenario)."""
    cluster = build_nice(n_storage_nodes=15, n_clients=3, seed=seed)
    partition = 0
    keys = keys_in_partition(partition, cluster.config.n_partitions, 64)
    res = run_fault_timeline(
        cluster, keys, fail_at=fail_at, recover_at=recover_at, duration=duration
    )
    puts = dict(res.put_rate.series(duration))
    gets = dict(res.get_rate.series(duration))
    fails = dict(res.failed_puts.series(duration))
    rows = [
        dict(
            t_s=t,
            puts_per_s=puts.get(t, 0.0),
            gets_per_s=gets.get(t, 0.0),
            failed_puts_per_s=fails.get(t, 0.0),
        )
        for t in sorted(set(puts) | set(gets) | set(fails))
    ]
    notes = [f"t={when:.2f}s: {label}" for when, label in res.events]
    return {"rows": rows, "notes": notes}


def fig11_fault_tolerance(
    duration: float = 120.0,
    fail_at: float = 30.0,
    recover_at: float = 90.0,
    seed: int = BASE_SEED,
) -> ExperimentResult:
    """Fig 11: served put/get requests per second across a secondary
    failure (30 s) and recovery (90 s)."""
    result = ExperimentResult(
        "fig11",
        "Fault Tolerance — served requests/s across failure and recovery",
        ["t_s", "puts_per_s", "gets_per_s", "failed_puts_per_s"],
    )
    cells = [
        Cell(
            fig11_cell,
            dict(duration=duration, fail_at=fail_at, recover_at=recover_at),
            seed=seed,
        )
    ]
    (payload,) = run_cells(cells)
    result.rows.extend(payload["rows"])
    for note in payload["notes"]:
        result.note(note)
    result.note("3 clients, 20/80 put/get, 1 KB objects, one partition")
    return result


# -------------------------------------------------------------------- Fig 12
def fig12_cell(
    workload: str,
    system: str,
    n_ops_per_client: int,
    n_clients: int,
    n_records: int,
    seed: int,
) -> Dict:
    """One Fig 12 leg: YCSB workload × system."""
    # Per-request server cost calibrated to the testbed regime (C++ on the
    # ARMv8 nodes): chosen so workload C reproduces the paper's 1.6x gap to
    # primary-only; the default 25us (used by the latency figures) models a
    # much faster request path and underplays hot-node saturation.
    cpu = 150e-6
    build_system = "NOOB 2PC (gateway)" if system == "NOOB 2PC" else system
    cluster = _build_leg(
        build_system, n_storage_nodes=15, n_clients=n_clients,
        node_cpu_per_op_s=cpu, seed=seed,
    )
    runner = YcsbRunner(
        WORKLOADS[workload],
        n_records=n_records,
        rng=np.random.default_rng(cluster.config.seed),
    )
    proc = runner.run(cluster.clients[:n_clients], cluster.sim, n_ops_per_client)
    stats = run_to_completion(cluster, proc)
    return {
        "rows": [
            dict(
                workload=workload,
                system=system,
                throughput_ops_s=stats["throughput_ops_s"],
                mean_op_ms=runner.op_latency.mean * 1e3,
                stdev_ms=runner.op_latency.stdev * 1e3,
                errors=stats["errors"],
            )
        ]
    }


def fig12_ycsb(
    n_ops_per_client: int = 20000,
    n_clients: int = 10,
    n_records: int = 1000,
    workloads: Sequence[str] = ("C", "F"),
    seed: int = BASE_SEED,
) -> ExperimentResult:
    """Fig 12: YCSB workloads C (read-only) and F (read-modify-write),
    zipfian popularity, 1 KB objects."""
    result = ExperimentResult(
        "fig12",
        "Yahoo Benchmark — throughput (ops/s) under YCSB C and F",
        ["workload", "system", "throughput_ops_s", "mean_op_ms", "stdev_ms", "errors"],
    )
    cells = [
        Cell(
            fig12_cell,
            dict(
                workload=wl, system=system, n_ops_per_client=n_ops_per_client,
                n_clients=n_clients, n_records=n_records,
            ),
            seed=seed,
        )
        for wl in workloads
        for system in ("NICE", "NOOB primary-only", "NOOB 2PC")
    ]
    for payload in run_cells(cells):
        result.rows.extend(payload["rows"])
    result.note(
        f"{n_clients} clients x {n_ops_per_client} ops, {n_records} records, "
        "1 KB objects, zipfian"
    )
    return result


# ----------------------------------------------------------- read scaling (§5j)
def read_scaling_cell(
    workload: str,
    system: str,
    replication: int,
    n_ops_per_client: int,
    n_clients: int,
    n_records: int,
    seed: int,
) -> Dict:
    """One read-scaling leg: YCSB workload x system x replication level on a
    keyspace pinned to a single partition, so every get lands on one replica
    set.  NICE-LB splits the client space across the targets statically;
    harmonia round-robins clean keys over every consistent replica, so its
    read throughput grows with R while LB's is capped by the division skew."""
    cpu = 150e-6  # same hot-node regime as fig12
    overrides = dict(
        n_storage_nodes=15, n_clients=n_clients, node_cpu_per_op_s=cpu,
        replication_level=replication, seed=seed,
    )
    if system == "NICE harmonia":
        overrides["protocol_mode"] = "harmonia"
    cluster = build_nice(**overrides)
    keys = keys_in_partition(0, cluster.config.n_partitions, n_records)
    runner = YcsbRunner(
        WORKLOADS[workload],
        n_records=n_records,
        rng=np.random.default_rng(cluster.config.seed),
        keys=keys,
    )
    proc = runner.run(cluster.clients[:n_clients], cluster.sim, n_ops_per_client)
    stats = run_to_completion(cluster, proc)
    return {
        "rows": [
            dict(
                workload=workload,
                system=system,
                replication=replication,
                throughput_ops_s=stats["throughput_ops_s"],
                mean_op_ms=runner.op_latency.mean * 1e3,
                stdev_ms=runner.op_latency.stdev * 1e3,
                errors=stats["errors"],
            )
        ]
    }


def read_scaling(
    n_ops_per_client: int = 2000,
    n_clients: int = 10,
    n_records: int = 200,
    workloads: Sequence[str] = ("B", "C"),
    replications: Sequence[int] = (1, 3, 5),
    seed: int = BASE_SEED,
) -> ExperimentResult:
    """Read scaling vs replication level — NICE-LB against harmonia mode
    (DESIGN.md §5j) on a single hot partition, YCSB B and C."""
    result = ExperimentResult(
        "read_scaling",
        "Read scaling — hot-partition throughput (ops/s) vs replication level",
        ["workload", "system", "replication", "throughput_ops_s",
         "mean_op_ms", "stdev_ms", "errors"],
    )
    cells = [
        Cell(
            read_scaling_cell,
            dict(
                workload=wl, system=system, replication=r,
                n_ops_per_client=n_ops_per_client, n_clients=n_clients,
                n_records=n_records,
            ),
            seed=seed,
        )
        for wl in workloads
        for r in replications
        for system in ("NICE", "NICE harmonia")
    ]
    for payload in run_cells(cells):
        result.rows.extend(payload["rows"])
    result.note(
        f"{n_clients} clients x {n_ops_per_client} ops on a single partition "
        f"({n_records} records, zipfian); R swept over {tuple(replications)}"
    )
    return result


# ----------------------------------------------------------------------- §4.6
def sec46_cell(
    measured_nodes: Sequence[int],
    analytic_nodes: Sequence[int],
    table_capacity: int,
    replication: int,
    seed: int,
) -> Dict:
    """§4.6 forwarding-table usage (one cell: the scalability table)."""
    rows: List[Dict] = []
    for n in measured_nodes:
        for lb in (False, True):
            cluster = build_nice(
                n_storage_nodes=n, n_clients=2, n_partitions=n, load_balancing=lb,
                seed=seed,
            )
            entries = cluster.controller.rule_count()
            rows.append(
                dict(
                    nodes=n, load_balancing=lb, entries=entries,
                    source="measured", fits_128k_table=entries <= table_capacity,
                )
            )
    for n in analytic_nodes:
        for lb in (False, True):
            entries = (replication + 1) * n if lb else 2 * n  # paper's formula
            rows.append(
                dict(
                    nodes=n, load_balancing=lb, entries=entries,
                    source="analytic", fits_128k_table=entries <= table_capacity,
                )
            )
    return {"rows": rows}


def sec46_switch_scalability(
    measured_nodes: Sequence[int] = (8, 16),
    analytic_nodes: Sequence[int] = (1024, 4096, 16384, 32768, 65536),
    table_capacity: int = 128 * 1024,
    replication: int = 3,
    seed: int = BASE_SEED,
) -> ExperimentResult:
    """§4.6: forwarding-table usage — 2N entries without LB, (R+1)N with —
    measured on real controllers for small N, analytic for large N."""
    result = ExperimentResult(
        "sec46",
        "Switch Scalability — forwarding entries vs cluster size",
        ["nodes", "load_balancing", "entries", "source", "fits_128k_table"],
    )
    cells = [
        Cell(
            sec46_cell,
            dict(
                measured_nodes=list(measured_nodes),
                analytic_nodes=list(analytic_nodes),
                table_capacity=table_capacity, replication=replication,
            ),
            seed=seed,
        )
    ]
    (payload,) = run_cells(cells)
    result.rows.extend(payload["rows"])
    result.note(
        "paper counts 2N / (R+1)N; this controller keeps one extra "
        "default-to-primary rule (§4.5 fallback) and one IP-multicast-group "
        "match per partition (2PC timestamp target), hence 3N / (R+3)N "
        "measured — same O(N) / O(RN) scaling"
    )
    return result


# -- scale: leaf-spine fabric (DESIGN.md §5h) -----------------------------------------


#: The racks x hosts ladder the scale figure sweeps.  ``budget`` is the
#: per-switch rule budget handed to every fabric switch (0 = unlimited,
#: used for the single-switch baseline cell).  The paper-scale rungs
#: (≥300 nodes) run in flow-approximation mode — an exact discrete run at
#: 1000 nodes is hours of wall time for the same rule census; ``sim_mode``
#: is carried on the :class:`Cell` (and its cache key), never as a cell-fn
#: parameter.
SCALE_CONFIGS: Tuple[Dict, ...] = (
    dict(racks=1, hosts_per_rack=30, n_clients=8, budget=0),
    dict(racks=4, hosts_per_rack=16, n_clients=8, budget=1024),
    dict(racks=10, hosts_per_rack=30, n_clients=10, budget=4096),
    dict(racks=15, hosts_per_rack=20, n_clients=10, budget=4096, sim_mode="approx"),
    dict(racks=20, hosts_per_rack=50, n_clients=12, budget=8192, sim_mode="approx"),
)

#: CI's shrunk ladder: one fabric rung, approx mode, small enough that a
#: cold ``--smoke`` run finishes in seconds and a warm one in milliseconds.
SCALE_SMOKE_CONFIGS: Tuple[Dict, ...] = (
    dict(racks=4, hosts_per_rack=16, n_clients=8, budget=1024, sim_mode="approx"),
)


def scale_cell(
    racks: int,
    hosts_per_rack: int,
    n_clients: int,
    budget: int,
    n_ops: int,
    seed: int,
) -> Dict:
    """One rung of the ladder: build the fabric, run a mixed closed-loop
    workload, report throughput plus the per-switch rule census."""
    n_nodes = racks * hosts_per_rack
    kwargs = dict(n_storage_nodes=n_nodes, n_clients=n_clients, seed=seed)
    if racks > 1:
        kwargs.update(n_racks=racks, switch_rule_budget=budget)
    cluster = build_nice(**kwargs)
    sim = cluster.sim
    keys = [f"scale-{i}" for i in range(2 * n_clients)]
    done = {"ops": 0, "elapsed": 0.0}

    def per_client(client, my_keys):
        puts = yield closed_loop_puts(client, sim, n_ops, 1024, keys=my_keys)
        gets = yield closed_loop_gets(client, sim, n_ops, my_keys)
        done["ops"] += puts.count + gets.count

    def driver(sim):
        seeder = cluster.clients[0]
        for key in keys:
            r = yield seeder.put(key, "seed", 1024)
            assert r.ok, f"seed put failed for {key}"
        start = sim.now
        procs = [
            sim.process(per_client(c, keys[2 * i : 2 * i + 2]))
            for i, c in enumerate(cluster.clients)
        ]
        yield AllOf(sim, procs)
        done["elapsed"] = sim.now - start

    run_to_completion(cluster, sim.process(driver(sim)))
    counts = cluster.controller.rule_counts_by_switch()
    row = dict(
        racks=racks,
        hosts_per_rack=hosts_per_rack,
        nodes=n_nodes,
        switches=len(counts),
        throughput_ops_s=(done["ops"] / done["elapsed"]) if done["elapsed"] else 0.0,
        ops=done["ops"],
        total_rules=sum(counts.values()),
        max_switch_rules=max(counts.values()),
        vring_rules=cluster.controller.rule_count(),
        rule_budget=budget,
        budget_ok=bool(budget <= 0 or max(counts.values()) <= budget),
        sim_mode=get_default_sim_mode(),
        # Incremental-planner counters (deterministic, unlike plan.sync_ms
        # which stays in the perf suite / obs registry): how many
        # (switch, partition) plans were computed vs served from cache.
        plan_recomputes=cluster.controller.plan_recomputes.value,
        plan_cache_hits=cluster.controller.plan_cache_hits.value,
    )
    return {"rows": [row]}


def scale_chaos_cell(
    racks: int,
    hosts_per_rack: int,
    n_clients: int,
    budget: int,
    duration: float,
    seed: int,
) -> Dict:
    """The fabric fault cell: a whole rack isolated mid-workload, healed,
    rejoined — the history must stay linearizable and reconcile-after-heal
    must match a from-scratch sync on every switch."""
    from ..chaos import ChaosEngine, FaultSchedule
    from ..check import HistoryRecorder, check_linearizable
    from .chaos import _table_snapshot, _workload

    cluster = build_nice(
        n_storage_nodes=racks * hosts_per_rack,
        n_clients=n_clients,
        n_racks=racks,
        switch_rule_budget=budget,
        seed=seed,
    )
    sim = cluster.sim
    keys = [f"k{i}" for i in range(6)]
    recorder = HistoryRecorder()
    _workload(cluster, recorder, keys, duration, seed)
    engine = ChaosEngine(
        cluster, FaultSchedule.rack_outage(rack=1, start=2.0, heal_at=5.0), seed=seed
    )
    engine.start()
    sim.run(until=duration)

    lin = check_linearizable(recorder.ops)
    service = cluster.metadata_active
    steady = service.reconcile_switches()
    sim.run(until=sim.now + 0.05)
    reconciled = _table_snapshot(cluster)
    cluster.controller.sync_all(epoch=service.epoch)
    sim.run(until=sim.now + 0.05)
    scratch = _table_snapshot(cluster)
    counts = cluster.controller.rule_counts_by_switch()
    row = dict(
        racks=racks,
        hosts_per_rack=hosts_per_rack,
        nodes=racks * hosts_per_rack,
        schedule="rack_outage",
        n_ops=len(recorder.ops),
        ok_ops=sum(1 for op in recorder.ops if op.ok),
        linearizable=bool(lin.ok),
        reason=lin.reason,
        chaos_events=[[t, label] for t, label in engine.events],
        steady_reconcile=steady,
        reconcile_matches_scratch=bool(reconciled == scratch),
        max_switch_rules=max(counts.values()),
        rule_budget=budget,
        budget_ok=bool(budget <= 0 or max(counts.values()) <= budget),
    )
    return {"rows": [row]}


def scale_fabric(
    n_ops: int = 20,
    configs: Optional[Sequence[Dict]] = None,
    chaos_duration: float = 8.0,
    seed: int = BASE_SEED,
) -> ExperimentResult:
    """Throughput and installed-rule count vs cluster size on the
    leaf-spine fabric, plus one rack-outage chaos cell on the first
    multi-rack *exact* rung.  A config's ``sim_mode`` entry (the ≥300-node
    rungs run approx) becomes the cell's mode, not a cell-fn parameter."""
    if configs is None:
        configs = SCALE_CONFIGS
    result = ExperimentResult(
        "scale",
        "Leaf-spine fabric - throughput and rule census vs cluster size",
        [
            "racks", "hosts_per_rack", "nodes", "switches",
            "throughput_ops_s", "total_rules", "max_switch_rules",
            "vring_rules", "rule_budget", "budget_ok",
            "sim_mode", "plan_recomputes", "plan_cache_hits",
        ],
    )
    cells = []
    for cfg in configs:
        cfg = dict(cfg)
        mode = cfg.pop("sim_mode", None)
        cells.append(
            Cell(
                scale_cell,
                dict(n_ops=n_ops, **cfg),
                seed=derive_seed(seed, "scale", cfg["racks"]),
                sim_mode=mode,
            )
        )
    chaos_cfg = next(
        (c for c in configs if c["racks"] > 1 and c.get("sim_mode") in (None, "exact")),
        None,
    )
    if chaos_cfg is None:
        # Smoke ladders may be approx-only: the chaos cell's
        # reconcile-vs-scratch table diff is mode-independent, so run it on
        # the first fabric rung in whatever mode that rung uses.
        chaos_cfg = next((c for c in configs if c["racks"] > 1), None)
    if chaos_cfg is not None:
        chaos_cfg = dict(chaos_cfg)
        chaos_mode = chaos_cfg.pop("sim_mode", None)
        cells.append(
            Cell(
                scale_chaos_cell,
                dict(duration=chaos_duration, **chaos_cfg),
                seed=derive_seed(seed, "scale-chaos", chaos_cfg["racks"]),
                sim_mode=chaos_mode,
            )
        )
    for payload in run_cells(cells):
        result.rows.extend(payload["rows"])
    over = [r for r in result.rows if not r.get("budget_ok", True)]
    result.note(
        "per-rack prefixes aggregate to 2 wildcards per rack at each spine; "
        "leaves carry the per-partition vring rules (the §4.6 budget)"
    )
    if over:
        result.note(f"BUDGET EXCEEDED in {len(over)} row(s)")
    return result
