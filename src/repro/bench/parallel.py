"""Parallel sweep orchestrator: fan independent experiment cells across cores.

Every figure sweep and the chaos acceptance matrix decompose into *cells*
— a :class:`Cell` names a module-level function, JSON-canonical params,
and a seed, and its execution is a pure function of that triple.  The
orchestrator (:func:`run_cells`) executes cells either inline (``jobs=1``,
zero behavior change) or in a :class:`~concurrent.futures.ProcessPoolExecutor`,
and always merges payloads back **in canonical cell order**, so parallel
output is bit-identical to sequential output.

Bit-identity holds because every payload — inline, pooled, or cached —
is round-tripped through canonical JSON before it is returned: Python's
``float`` → JSON → ``float`` conversion is exact (``repr`` round-trip),
so a cache hit or a worker result is indistinguishable from a fresh
inline run.

The content-addressed result cache (``.bench_cache/`` by default, enabled
only when the CLI asks for it) keys each cell on
``sha256(fn qualname + canonical params + seed + source fingerprint)``
where the source fingerprint hashes every ``.py`` file under
``src/repro/`` — any source edit invalidates the whole cache, any
param/seed change invalidates exactly that cell.

Per-cell wall time and cache-hit records accumulate in a session log that
the CLI folds into the ``BENCH_*.json`` reports for trend tracking.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Cell",
    "configure",
    "derive_seed",
    "drain_records",
    "provenance",
    "run_cells",
    "source_fingerprint",
    "DEFAULT_CACHE_DIR",
]

#: Default cache directory, relative to the working directory (gitignored).
DEFAULT_CACHE_DIR = ".bench_cache"

#: Bumped when the cache entry layout changes (invalidates old entries).
#: 2: ``sim_mode`` joined the cache key — exact and approx results of the
#: same cell are distinct entries and can never cross-contaminate.
CACHE_SCHEMA = 2

#: Sentinel distinguishing "not passed" from an explicit ``None``.
_UNSET = object()

#: Session-wide orchestration defaults, set by the CLI via :func:`configure`.
#: Library callers (tests, benchmarks) get inline execution and no cache,
#: i.e. exactly the pre-orchestrator behavior.
_config: Dict[str, Any] = {"jobs": 1, "cache_dir": None, "sim_mode": "exact"}

#: Per-cell execution records of this session (see :func:`drain_records`).
_records: List[Dict[str, Any]] = []


def configure(
    jobs: Any = _UNSET, cache_dir: Any = _UNSET, sim_mode: Any = _UNSET
) -> Dict[str, Any]:
    """Set session-wide orchestration defaults; returns the prior config.

    ``jobs`` is the worker count (1 = inline); ``cache_dir`` is the result
    cache directory or ``None`` to disable caching; ``sim_mode`` is the
    default simulation fidelity stamped on cells built after this call
    (``Cell(sim_mode=...)`` overrides per cell).
    """
    prior = dict(_config)
    if jobs is not _UNSET:
        _config["jobs"] = max(1, int(jobs))
    if cache_dir is not _UNSET:
        _config["cache_dir"] = cache_dir
    if sim_mode is not _UNSET:
        if sim_mode not in ("exact", "approx"):
            raise ValueError(f"sim_mode must be 'exact' or 'approx': {sim_mode!r}")
        _config["sim_mode"] = sim_mode
    return prior


def derive_seed(base: int, *parts: Any) -> int:
    """A deterministic 63-bit seed derived from ``base`` and any labels.

    Mirrors the sim's ``RngRegistry`` discipline (sha256 of root + name):
    adding or reordering *other* cells never perturbs a cell's seed.
    """
    material = ":".join([str(base), *(str(p) for p in parts)])
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _coerce(value: Any) -> Any:
    """JSON fallback for numpy scalars (exact float64 → float conversion)."""
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(f"cell payloads must be JSON-serializable, got {type(value)!r}")


def canonical(value: Any) -> Any:
    """Round-trip ``value`` through JSON so every execution path (inline,
    worker, cache hit) yields structurally identical payloads."""
    return json.loads(json.dumps(value, default=_coerce))


def _canonical_dumps(value: Any) -> str:
    return json.dumps(value, sort_keys=True, default=_coerce)


@dataclass(frozen=True)
class Cell:
    """One schedulable unit of an experiment sweep.

    ``fn`` must be a module-level callable (picklable by reference) taking
    ``(**params, seed=seed)`` and returning a JSON-serializable payload;
    its execution must be a pure function of ``(params, seed, sim_mode)``
    — no dependence on global mutable state, wall clock, or sweep order.

    ``sim_mode`` is the simulation fidelity the cell runs under (defaults
    to the session config).  It is part of the identity — and therefore
    the cache key — because the same ``(fn, params, seed)`` produces
    different payloads in exact and approx mode.
    """

    fn: Callable[..., Any]
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    sim_mode: Optional[str] = None

    def __post_init__(self) -> None:
        # Canonicalize params up front (tuples → lists, numpy → native) so
        # execution and cache keying see the same values.
        object.__setattr__(self, "params", canonical(dict(self.params)))
        if self.sim_mode is None:
            object.__setattr__(self, "sim_mode", _config["sim_mode"])
        if self.sim_mode not in ("exact", "approx"):
            raise ValueError(f"sim_mode must be 'exact' or 'approx': {self.sim_mode!r}")

    @property
    def fn_name(self) -> str:
        return f"{self.fn.__module__}.{self.fn.__qualname__}"

    @property
    def label(self) -> str:
        parts = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        mode = "" if self.sim_mode == "exact" else f"@{self.sim_mode}"
        return f"{self.fn.__qualname__}({parts})#s{self.seed}{mode}"

    def cache_key(self, fingerprint: str) -> str:
        material = _canonical_dumps(
            {
                "schema": CACHE_SCHEMA,
                "fn": self.fn_name,
                "params": self.params,
                "seed": self.seed,
                "sim_mode": self.sim_mode,
                "src": fingerprint,
            }
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def execute(self) -> Any:
        """Run the cell inline (no cache, no pool); canonical payload."""
        payload, _ = _execute_remote(self.fn, self.params, self.seed, self.sim_mode)
        return payload


# ------------------------------------------------------------- fingerprint
#: Memo: root path -> fingerprint (one tree walk per process).
_fingerprint_memo: Dict[str, str] = {}


def source_fingerprint(root: Optional[str] = None) -> str:
    """sha256 over every ``.py`` file under ``root`` (default: the
    ``repro`` package), path-sorted, so any source edit — to any layer the
    simulation could touch — invalidates cached results."""
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(root)
    memo = _fingerprint_memo.get(root)
    if memo is not None:
        return memo
    h = hashlib.sha256()
    entries = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in filenames:
            if name.endswith(".py"):
                path = os.path.join(dirpath, name)
                entries.append((os.path.relpath(path, root), path))
    for rel, path in sorted(entries):
        h.update(rel.encode())
        h.update(b"\0")
        with open(path, "rb") as fh:
            h.update(fh.read())
        h.update(b"\0")
    digest = h.hexdigest()
    _fingerprint_memo[root] = digest
    return digest


def invalidate_fingerprint_memo() -> None:
    """Drop the per-process fingerprint memo (tests; post-edit reruns)."""
    _fingerprint_memo.clear()


# ------------------------------------------------------------------ records
def drain_records() -> List[Dict[str, Any]]:
    """Return and clear the session's per-cell execution records."""
    out = list(_records)
    _records.clear()
    return out


def _record(cell: Cell, wall_s: float, cache_hit: bool, key: Optional[str]) -> Dict:
    rec = {
        "cell": cell.label,
        "fn": cell.fn_name,
        "seed": cell.seed,
        "sim_mode": cell.sim_mode,
        "wall_s": wall_s,
        "cache_hit": cache_hit,
        "key": key,
    }
    _records.append(rec)
    return rec


# -------------------------------------------------------------------- cache
def _cache_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, key[:2], key + ".json")


def _cache_load(cache_dir: str, key: str) -> Optional[Dict[str, Any]]:
    try:
        with open(_cache_path(cache_dir, key)) as fh:
            entry = json.load(fh)
    except (OSError, ValueError):
        return None
    if entry.get("schema") != CACHE_SCHEMA:
        return None
    return entry


def _cache_store(cache_dir: str, key: str, cell: Cell, payload: Any, wall_s: float) -> None:
    path = _cache_path(cache_dir, key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    entry = {
        "schema": CACHE_SCHEMA,
        "fn": cell.fn_name,
        "params": cell.params,
        "seed": cell.seed,
        "sim_mode": cell.sim_mode,
        "wall_s": wall_s,
        "created_unix": time.time(),
        "payload": payload,
    }
    tmp = path + f".tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(entry, fh)
    os.replace(tmp, path)  # atomic: concurrent runs never see partial entries


# ----------------------------------------------------------------- executor
def _execute_remote(fn: Callable, params: Dict[str, Any], seed: int, sim_mode: str = "exact"):
    """Cell execution under the cell's ``sim_mode``; returns
    ``(canonical payload, wall_s)``.  The process default is restored
    afterward — pool workers are reused across cells of either mode."""
    from ..core.config import set_default_sim_mode

    prior = set_default_sim_mode(sim_mode)
    t0 = time.perf_counter()
    try:
        payload = canonical(fn(seed=seed, **params))
    finally:
        set_default_sim_mode(prior)
    return payload, time.perf_counter() - t0


def run_cells(
    cells: List[Cell],
    jobs: Any = _UNSET,
    cache_dir: Any = _UNSET,
) -> List[Any]:
    """Execute ``cells`` and return their payloads **in input order**.

    ``jobs``/``cache_dir`` default to the session config (:func:`configure`);
    pass explicit values to override.  ``jobs=1`` runs every cell inline in
    the calling process — no pool, no pickling, no behavioral difference
    from a hand-written loop.  With ``jobs>1`` cache misses are fanned to a
    process pool; the merge is by cell index, so result order (and content
    — see module docstring) is independent of worker scheduling.
    """
    jobs = _config["jobs"] if jobs is _UNSET else max(1, int(jobs))
    cache_dir = _config["cache_dir"] if cache_dir is _UNSET else cache_dir

    results: List[Any] = [None] * len(cells)
    pending: List[int] = []
    keys: List[Optional[str]] = [None] * len(cells)

    if cache_dir:
        fingerprint = source_fingerprint()
        for i, cell in enumerate(cells):
            key = cell.cache_key(fingerprint)
            keys[i] = key
            entry = _cache_load(cache_dir, key)
            if entry is not None:
                results[i] = entry["payload"]
                _record(cell, entry.get("wall_s", 0.0), True, key)
            else:
                pending.append(i)
    else:
        pending = list(range(len(cells)))

    if pending:
        if jobs > 1 and len(pending) > 1:
            workers = min(jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    i: pool.submit(
                        _execute_remote,
                        cells[i].fn,
                        cells[i].params,
                        cells[i].seed,
                        cells[i].sim_mode,
                    )
                    for i in pending
                }
                outcomes = {i: futures[i].result() for i in pending}
        else:
            outcomes = {}
            for i in pending:
                t0 = time.perf_counter()
                payload = cells[i].execute()
                outcomes[i] = (payload, time.perf_counter() - t0)
        for i in pending:
            payload, wall_s = outcomes[i]
            results[i] = payload
            _record(cells[i], wall_s, False, keys[i])
            if cache_dir:
                _cache_store(cache_dir, keys[i], cells[i], payload, wall_s)
    return results


# --------------------------------------------------------------- provenance
def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def provenance(records: Optional[List[Dict[str, Any]]] = None, **extra: Any) -> Dict:
    """Provenance block stamped into every ``BENCH_*.json`` report: enough
    to interpret a perf trajectory across machines and source revisions.

    ``extra`` carries run parameters (``ops``, ``jobs``, ...); ``records``
    — per-cell execution records — contributes cache-hit counts.
    """
    block = {
        "git_sha": _git_sha(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "generated_unix": time.time(),
    }
    block.update(extra)
    if records is not None:
        block["cells"] = len(records)
        block["cache_hits"] = sum(1 for r in records if r["cache_hit"])
    return block
