"""Benchmark harness: one experiment per paper figure plus ablations.

Run ``python -m repro.bench all`` (or ``nice-bench``) to regenerate them.
"""

from .ablations import (
    ablation_chain_replication,
    ablation_deployment,
    ablation_lb_rules,
    ablation_membership_maintenance,
    ablation_software_rewrite,
)
from .figures import (
    fig4_request_routing,
    fig5_6_7_replication,
    fig8_quorum,
    fig9_consistency,
    fig10_load_balancing,
    fig11_fault_tolerance,
    fig12_ycsb,
    sec46_switch_scalability,
)
from .harness import ExperimentResult, build_nice, build_noob, run_to_completion
from .parallel import Cell, configure, derive_seed, run_cells, source_fingerprint
from .report import ascii_chart, format_result, format_table, ratio_summary

__all__ = [
    "Cell",
    "ExperimentResult",
    "configure",
    "derive_seed",
    "run_cells",
    "source_fingerprint",
    "ablation_chain_replication",
    "ablation_deployment",
    "ablation_lb_rules",
    "ablation_membership_maintenance",
    "ablation_software_rewrite",
    "ascii_chart",
    "build_nice",
    "build_noob",
    "fig10_load_balancing",
    "fig11_fault_tolerance",
    "fig12_ycsb",
    "fig4_request_routing",
    "fig5_6_7_replication",
    "fig8_quorum",
    "fig9_consistency",
    "format_result",
    "format_table",
    "ratio_summary",
    "run_to_completion",
    "sec46_switch_scalability",
]
