"""Ablation experiments beyond the paper's figures (DESIGN.md §6).

These isolate individual design choices: multicast vs unicast fan-out,
chain replication, the §4.5 load balancer, the §5.1 software-rewrite
penalty, and the §4.1 membership-maintenance message complexity.

Like the figure sweeps, each independent leg is a declarative
:class:`~repro.bench.parallel.Cell` executed through
:func:`~repro.bench.parallel.run_cells`, so ``bench all --jobs N``
parallelizes and caches the ablations too.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..sim import Tally
from ..workloads import closed_loop_gets, closed_loop_puts, hot_object_clients
from .figures import BASE_SEED
from .harness import ExperimentResult, build_nice, build_noob, run_to_completion
from .parallel import Cell, run_cells

__all__ = [
    "ablation_chain_replication",
    "ablation_deployment",
    "ablation_lb_rules",
    "ablation_membership_maintenance",
    "ablation_software_rewrite",
]


def ablation_deployment_cell(
    deployment: str, n_ops: int, sizes: Sequence[int], seed: int
) -> Dict:
    """One §5.1 deployment leg: hw (rewriting switch) or ovs split."""
    cluster = build_nice(
        n_storage_nodes=15, n_clients=1, deployment=deployment, seed=seed
    )
    client = cluster.clients[0]

    def driver(sim):
        out = {}
        for size in sizes:
            key = f"dep-{size}"
            seeded = yield client.put(key, "x", size)
            assert seeded.ok
            puts = yield closed_loop_puts(client, sim, n_ops, size, keys=[key])
            gets = yield closed_loop_gets(client, sim, n_ops, [key])
            out[size] = (gets, puts)
        return out

    tallies = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
    rows = [
        dict(
            deployment=deployment, size_bytes=size,
            get_ms=gets.mean * 1e3, put_ms=puts.mean * 1e3,
        )
        for size, (gets, puts) in tallies.items()
    ]
    return {"rows": rows}


def ablation_deployment(
    n_ops: int = 200,
    sizes: Sequence[int] = (4, 65536, 1 << 20),
    seed: int = BASE_SEED,
) -> ExperimentResult:
    """§5.1 deployment comparison: idealized rewriting hardware switch vs
    the deployed client-side-OVS split (paper: <4% switching-speed loss)."""
    result = ExperimentResult(
        "ablation-deployment",
        "hw (rewriting switch) vs ovs (client-side rewrite) — get/put ms",
        ["deployment", "size_bytes", "get_ms", "put_ms"],
    )
    cells = [
        Cell(
            ablation_deployment_cell,
            dict(deployment=d, n_ops=n_ops, sizes=list(sizes)),
            seed=seed,
        )
        for d in ("hw", "ovs")
    ]
    for payload in run_cells(cells):
        result.rows.extend(payload["rows"])
    result.note("paper §5.1: deployed split costs <4% of switching speed")
    return result


#: Chain-ablation systems: display name -> builder overrides (None = NICE).
_CHAIN_SYSTEMS = {
    "NICE": None,
    "NOOB primary fan-out": dict(access="rac", consistency="primary"),
    "NOOB chain": dict(access="rac", consistency="chain"),
}


def ablation_chain_cell(
    system: str, n_ops: int, sizes: Sequence[int], seed: int
) -> Dict:
    """One chain-replication leg: put latency for a single system."""
    overrides = _CHAIN_SYSTEMS[system]
    if overrides is None:
        cluster = build_nice(n_storage_nodes=15, n_clients=1, seed=seed)
    else:
        cluster = build_noob(n_storage_nodes=15, n_clients=1, seed=seed, **overrides)
    client = cluster.clients[0]

    def driver(sim):
        out = {}
        for size in sizes:
            key = f"chain-{size}"
            seeded = yield client.put(key, "x", size)
            assert seeded.ok
            tally = yield closed_loop_puts(client, sim, n_ops, size, keys=[key])
            out[size] = tally
        return out

    tallies = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
    rows = [
        dict(system=system, size_bytes=size, put_ms=tally.mean * 1e3)
        for size, tally in tallies.items()
    ]
    return {"rows": rows}


def ablation_chain_replication(
    n_ops: int = 200,
    sizes: Sequence[int] = (1024, 262144, 1 << 20),
    seed: int = BASE_SEED,
) -> ExperimentResult:
    """§4.2's related-work point: chain replication distributes load but
    latency grows with the chain; NICE multicast avoids both costs."""
    result = ExperimentResult(
        "ablation-chain",
        "Chain replication vs primary fan-out vs NICE multicast (put ms)",
        ["system", "size_bytes", "put_ms"],
    )
    cells = [
        Cell(
            ablation_chain_cell,
            dict(system=s, n_ops=n_ops, sizes=list(sizes)),
            seed=seed,
        )
        for s in _CHAIN_SYSTEMS
    ]
    for payload in run_cells(cells):
        result.rows.extend(payload["rows"])
    result.note("R=3; chain latency should sit above primary fan-out for small R")
    return result


def ablation_lb_cell(load_balancing: bool, n_ops: int, n_clients: int, seed: int) -> Dict:
    """One §4.5 leg: hot-object gets with the LB rules on or off."""
    cluster = build_nice(
        n_storage_nodes=15, n_clients=n_clients, load_balancing=load_balancing,
        seed=seed,
    )
    key = "lb-hot"

    def driver(sim):
        res = yield hot_object_clients(
            cluster.clients[0], cluster.clients[1:], sim, key, 1024, n_ops,
            include_put=False,
        )
        return res

    res = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
    replicas = cluster.replica_nodes(key)
    served = [n.gets_served.value for n in replicas]
    total = max(sum(served), 1)
    return {
        "rows": [
            dict(
                load_balancing=load_balancing,
                get_ms=res["get"].mean * 1e3,
                replicas_serving=sum(1 for s in served if s > 0),
                primary_share=served[0] / total,
            )
        ]
    }


def ablation_lb_rules(
    n_ops: int = 300, n_clients: int = 6, seed: int = BASE_SEED
) -> ExperimentResult:
    """§4.5 isolated: hot-object gets with and without the source-prefix
    load-balancing rules."""
    result = ExperimentResult(
        "ablation-lb",
        "In-network load balancing on/off — hot-object get latency and spread",
        ["load_balancing", "get_ms", "replicas_serving", "primary_share"],
    )
    cells = [
        Cell(
            ablation_lb_cell,
            dict(load_balancing=lb, n_ops=n_ops, n_clients=n_clients),
            seed=seed,
        )
        for lb in (True, False)
    ]
    for payload in run_cells(cells):
        result.rows.extend(payload["rows"])
    return result


def ablation_membership_cell(nodes: int, seed: int) -> Dict:
    """One §4.1 leg: membership-change message counts at one cluster size."""
    cluster = build_nice(n_storage_nodes=nodes, n_clients=1, n_partitions=nodes, seed=seed)
    base_switch = cluster.control_plane.messages_to_switch.value
    base_node = cluster.metadata.membership_messages.value
    cluster.metadata.declare_failed("n1")
    cluster.sim.run(until=cluster.sim.now + 0.5)
    nice_switch = cluster.control_plane.messages_to_switch.value - base_switch
    nice_node = cluster.metadata.membership_messages.value - base_node

    noob = build_noob(n_storage_nodes=nodes, n_clients=1, n_partitions=nodes, seed=seed)
    proc = noob.broadcast_membership_change()
    run_to_completion(noob, proc)
    return {
        "rows": [
            dict(
                nodes=nodes,
                nice_switch_msgs=nice_switch,
                nice_node_msgs=nice_node,
                noob_node_msgs=noob.membership_messages_sent,
            )
        ]
    }


def ablation_membership_maintenance(
    node_counts: Sequence[int] = (4, 8, 12), seed: int = BASE_SEED
) -> ExperimentResult:
    """§4.1's scalability claim: a NICE membership change costs O(S)+O(R)
    messages; NOOB full membership costs O(N)."""
    result = ExperimentResult(
        "ablation-membership",
        "Messages per membership change — NICE O(S)+O(R) vs NOOB O(N)",
        ["nodes", "nice_switch_msgs", "nice_node_msgs", "noob_node_msgs"],
    )
    cells = [
        Cell(ablation_membership_cell, dict(nodes=n), seed=seed)
        for n in node_counts
    ]
    for payload in run_cells(cells):
        result.rows.extend(payload["rows"])
    result.note(
        "NICE node messages stay O(R) per affected partition regardless of N; "
        "NOOB broadcasts to every node"
    )
    return result


def ablation_sw_rewrite_cell(penalty: float, n_ops: int, seed: int) -> Dict:
    """One §5.1 leg: gets through a given software-rewrite penalty."""
    cluster = build_nice(n_storage_nodes=15, n_clients=1, seed=seed)
    cluster.switch.rewrite_penalty_s = penalty
    client = cluster.clients[0]

    def driver(sim):
        seeded = yield client.put("swkey", "x", 1024)
        assert seeded.ok
        tally = yield closed_loop_gets(client, sim, n_ops, ["swkey"])
        return tally

    tally = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
    return {"rows": [dict(rewrite_penalty_s=penalty, get_ms=tally.mean * 1e3)]}


def ablation_software_rewrite(
    n_ops: int = 200,
    penalties: Sequence[float] = (0.0, 5e-3),
    seed: int = BASE_SEED,
) -> ExperimentResult:
    """§5.1 deployment experience: the one hardware switch that could
    rewrite headers did so in software, three orders of magnitude slower."""
    result = ExperimentResult(
        "ablation-sw-rewrite",
        "Header rewrite in hardware vs software path (get ms, 1 KB)",
        ["rewrite_penalty_s", "get_ms"],
    )
    cells = [
        Cell(ablation_sw_rewrite_cell, dict(penalty=p, n_ops=n_ops), seed=seed)
        for p in penalties
    ]
    for payload in run_cells(cells):
        result.rows.extend(payload["rows"])
    result.note("paper: software path was ~1000x slower switching")
    return result
