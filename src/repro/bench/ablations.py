"""Ablation experiments beyond the paper's figures (DESIGN.md §6).

These isolate individual design choices: multicast vs unicast fan-out,
chain replication, the §4.5 load balancer, the §5.1 software-rewrite
penalty, and the §4.1 membership-maintenance message complexity.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..sim import Tally
from ..workloads import closed_loop_puts, hot_object_clients
from .harness import ExperimentResult, build_nice, build_noob, run_to_completion

__all__ = [
    "ablation_chain_replication",
    "ablation_deployment",
    "ablation_lb_rules",
    "ablation_membership_maintenance",
    "ablation_software_rewrite",
]


def ablation_deployment(n_ops: int = 200, sizes: Sequence[int] = (4, 65536, 1 << 20)) -> ExperimentResult:
    """§5.1 deployment comparison: idealized rewriting hardware switch vs
    the deployed client-side-OVS split (paper: <4% switching-speed loss)."""
    result = ExperimentResult(
        "ablation-deployment",
        "hw (rewriting switch) vs ovs (client-side rewrite) — get/put ms",
        ["deployment", "size_bytes", "get_ms", "put_ms"],
    )
    for deployment in ("hw", "ovs"):
        cluster = build_nice(n_storage_nodes=15, n_clients=1, deployment=deployment)
        client = cluster.clients[0]

        def driver(sim):
            out = {}
            for size in sizes:
                key = f"dep-{size}"
                seed = yield client.put(key, "x", size)
                assert seed.ok
                puts = yield closed_loop_puts(client, sim, n_ops, size, keys=[key])
                from ..workloads import closed_loop_gets

                gets = yield closed_loop_gets(client, sim, n_ops, [key])
                out[size] = (gets, puts)
            return out

        tallies = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
        for size, (gets, puts) in tallies.items():
            result.add(
                deployment=deployment, size_bytes=size,
                get_ms=gets.mean * 1e3, put_ms=puts.mean * 1e3,
            )
    result.note("paper §5.1: deployed split costs <4% of switching speed")
    return result


def ablation_chain_replication(
    n_ops: int = 200, sizes: Sequence[int] = (1024, 262144, 1 << 20)
) -> ExperimentResult:
    """§4.2's related-work point: chain replication distributes load but
    latency grows with the chain; NICE multicast avoids both costs."""
    result = ExperimentResult(
        "ablation-chain",
        "Chain replication vs primary fan-out vs NICE multicast (put ms)",
        ["system", "size_bytes", "put_ms"],
    )
    systems = [
        ("NICE", lambda: build_nice(n_storage_nodes=15, n_clients=1)),
        ("NOOB primary fan-out", lambda: build_noob(
            n_storage_nodes=15, n_clients=1, access="rac", consistency="primary")),
        ("NOOB chain", lambda: build_noob(
            n_storage_nodes=15, n_clients=1, access="rac", consistency="chain")),
    ]
    for system, builder in systems:
        cluster = builder()
        client = cluster.clients[0]

        def driver(sim):
            out = {}
            for size in sizes:
                key = f"chain-{size}"
                seed = yield client.put(key, "x", size)
                assert seed.ok
                tally = yield closed_loop_puts(client, sim, n_ops, size, keys=[key])
                out[size] = tally
            return out

        tallies = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
        for size, tally in tallies.items():
            result.add(system=system, size_bytes=size, put_ms=tally.mean * 1e3)
    result.note("R=3; chain latency should sit above primary fan-out for small R")
    return result


def ablation_lb_rules(n_ops: int = 300, n_clients: int = 6) -> ExperimentResult:
    """§4.5 isolated: hot-object gets with and without the source-prefix
    load-balancing rules."""
    result = ExperimentResult(
        "ablation-lb",
        "In-network load balancing on/off — hot-object get latency and spread",
        ["load_balancing", "get_ms", "replicas_serving", "primary_share"],
    )
    for lb in (True, False):
        cluster = build_nice(n_storage_nodes=15, n_clients=n_clients, load_balancing=lb)
        key = "lb-hot"

        def driver(sim):
            res = yield hot_object_clients(
                cluster.clients[0], cluster.clients[1:], sim, key, 1024, n_ops,
                include_put=False,
            )
            return res

        res = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
        replicas = cluster.replica_nodes(key)
        served = [n.gets_served.value for n in replicas]
        total = max(sum(served), 1)
        result.add(
            load_balancing=lb,
            get_ms=res["get"].mean * 1e3,
            replicas_serving=sum(1 for s in served if s > 0),
            primary_share=served[0] / total,
        )
    return result


def ablation_membership_maintenance(
    node_counts: Sequence[int] = (4, 8, 12)
) -> ExperimentResult:
    """§4.1's scalability claim: a NICE membership change costs O(S)+O(R)
    messages; NOOB full membership costs O(N)."""
    result = ExperimentResult(
        "ablation-membership",
        "Messages per membership change — NICE O(S)+O(R) vs NOOB O(N)",
        ["nodes", "nice_switch_msgs", "nice_node_msgs", "noob_node_msgs"],
    )
    for n in node_counts:
        cluster = build_nice(n_storage_nodes=n, n_clients=1, n_partitions=n)
        base_switch = cluster.control_plane.messages_to_switch.value
        base_node = cluster.metadata.membership_messages.value
        cluster.metadata.declare_failed("n1")
        cluster.sim.run(until=cluster.sim.now + 0.5)
        nice_switch = cluster.control_plane.messages_to_switch.value - base_switch
        nice_node = cluster.metadata.membership_messages.value - base_node

        noob = build_noob(n_storage_nodes=n, n_clients=1, n_partitions=n)
        proc = noob.broadcast_membership_change()
        run_to_completion(noob, proc)
        result.add(
            nodes=n,
            nice_switch_msgs=nice_switch,
            nice_node_msgs=nice_node,
            noob_node_msgs=noob.membership_messages_sent,
        )
    result.note(
        "NICE node messages stay O(R) per affected partition regardless of N; "
        "NOOB broadcasts to every node"
    )
    return result


def ablation_software_rewrite(
    n_ops: int = 200, penalties: Sequence[float] = (0.0, 5e-3)
) -> ExperimentResult:
    """§5.1 deployment experience: the one hardware switch that could
    rewrite headers did so in software, three orders of magnitude slower."""
    result = ExperimentResult(
        "ablation-sw-rewrite",
        "Header rewrite in hardware vs software path (get ms, 1 KB)",
        ["rewrite_penalty_s", "get_ms"],
    )
    for penalty in penalties:
        cluster = build_nice(n_storage_nodes=15, n_clients=1)
        cluster.switch.rewrite_penalty_s = penalty
        client = cluster.clients[0]

        def driver(sim):
            seed = yield client.put("swkey", "x", 1024)
            assert seed.ok
            from ..workloads import closed_loop_gets

            tally = yield closed_loop_gets(client, sim, n_ops, ["swkey"])
            return tally

        tally = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
        result.add(rewrite_penalty_s=penalty, get_ms=tally.mean * 1e3)
    result.note("paper: software path was ~1000x slower switching")
    return result
