"""Rendering of experiment results: aligned tables and ratio summaries."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .harness import ExperimentResult

__all__ = ["format_table", "format_result", "ratio_summary", "ascii_chart"]


def ascii_chart(
    series: Dict[str, List[tuple]],
    width: int = 72,
    height: int = 14,
    title: str = "",
    markers: str = "*o+x#@",
) -> str:
    """Plot (x, y) series as a text chart — the CLI's stand-in for the
    paper's figures.

    ``series`` maps a label to its [(x, y), ...] points.  Points are
    binned onto a width×height grid; each series gets one marker.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (label, pts), mark in zip(series.items(), markers):
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = mark
    y_labels = [f"{y_hi:>10.3g} ", *([" " * 11] * (height - 2)), f"{y_lo:>10.3g} "]
    lines = []
    if title:
        lines.append(title)
    for ylab, row in zip(y_labels, grid):
        lines.append(f"{ylab}|{''.join(row)}")
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':11} {x_lo:<12.6g}{'':^{max(width - 26, 1)}}{x_hi:>12.6g}")
    legend = "   ".join(
        f"{mark}={label}" for (label, _), mark in zip(series.items(), markers)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(columns: List[str], rows: List[Dict[str, Any]]) -> str:
    """Plain aligned text table."""
    rendered = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = [line(columns), line(["-" * w for w in widths])]
    out += [line(r) for r in rendered]
    return "\n".join(out)


def format_result(result: ExperimentResult) -> str:
    """Full report block for one experiment."""
    parts = [
        f"== {result.name}: {result.description}",
        format_table(result.columns, result.rows),
    ]
    if result.notes:
        parts.append("notes:")
        parts.extend(f"  - {n}" for n in result.notes)
    return "\n".join(parts)


def ratio_summary(
    result: ExperimentResult,
    metric: str,
    baseline_system: str,
    system_col: str = "system",
    group_cols: Optional[List[str]] = None,
) -> str:
    """Speedup of the baseline over each other system per group — the
    'NICE is up to 4.3× faster than ROG' style numbers the paper quotes."""
    group_cols = group_cols or []
    groups: Dict[tuple, Dict[str, float]] = {}
    for row in result.rows:
        key = tuple(row.get(c) for c in group_cols)
        groups.setdefault(key, {})[row[system_col]] = row[metric]
    lines = []
    others = sorted(
        {row[system_col] for row in result.rows if row[system_col] != baseline_system}
    )
    for other in others:
        ratios = [
            vals[other] / vals[baseline_system]
            for vals in groups.values()
            if baseline_system in vals and other in vals and vals[baseline_system]
        ]
        if ratios:
            lines.append(
                f"{baseline_system} vs {other} ({metric}): "
                f"min {min(ratios):.2f}x, max {max(ratios):.2f}x"
            )
    return "\n".join(lines)
