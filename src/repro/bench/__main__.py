"""CLI: regenerate any figure of the paper.

Examples::

    python -m repro.bench fig5                 # quick scale
    python -m repro.bench fig5 --full          # paper scale (1000 ops/point)
    python -m repro.bench all --ops 100 --jobs 4
    nice-bench fig12 --ops 500

Figure and chaos sweeps decompose into independent cells (see
``repro.bench.parallel``) that fan across ``--jobs`` worker processes and
merge deterministically — ``--jobs 1`` and ``--jobs N`` output is
bit-identical.  Results are cached content-addressed in ``.bench_cache/``
(keyed on cell params + a fingerprint of ``src/repro``), so re-running
after an unrelated edit skips unchanged cells; ``--no-cache`` disables.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from . import ablations, figures, parallel
from ..obs import runtime as obs_runtime
from .report import ascii_chart, format_result, ratio_summary

#: Default path of the figure-suite JSON report.
FIGURES_OUT = "BENCH_figures.json"


def _chart_for(name: str, result):
    """Text rendering of figure-shaped results (series over an x axis)."""
    if name == "fig11":
        series = {
            "gets/s": [(r["t_s"], r["gets_per_s"]) for r in result.rows],
            "puts/s": [(r["t_s"], r["puts_per_s"]) for r in result.rows],
        }
        return ascii_chart(series, title="Fig 11 — served requests/s over time")
    if name in ("fig4", "fig5"):
        metric = "get_ms" if name == "fig4" else "put_ms"
        import math

        series = {}
        for row in result.rows:
            series.setdefault(row["system"], []).append(
                (math.log2(row["size_bytes"]), row[metric])
            )
        return ascii_chart(
            series, title=f"{name} — {metric} vs log2(object size)"
        )
    return None

#: experiment id -> (runner(n_ops), summary spec or None)
def _registry(n_ops: int, full: bool, smoke: bool = False):
    ycsb_ops = 20000 if full else max(n_ops, 50)
    # Figs 5/6/7 share one sweep; memoize it so `bench all` (or any subset
    # of fig5/fig6/fig7) runs the expensive replication sweep exactly once
    # per invocation.
    shared = {}

    def fig5_6_7():
        if "result" not in shared:
            shared["result"] = figures.fig5_6_7_replication(n_ops=n_ops)
        return shared["result"]

    return {
        "fig4": (
            lambda: figures.fig4_request_routing(n_ops=n_ops),
            ("get_ms", "NICE", ["size_bytes"]),
        ),
        "fig5": (
            lambda: fig5_6_7()["fig5"],
            ("put_ms", "NICE", ["size_bytes"]),
        ),
        "fig6": (
            lambda: fig5_6_7()["fig6"],
            ("link_bytes_per_op", "NICE", ["size_bytes"]),
        ),
        "fig7": (
            lambda: fig5_6_7()["fig7"],
            None,
        ),
        "fig8": (
            lambda: figures.fig8_quorum(n_ops=max(n_ops // 10, 5)),
            ("put_ms", "NICE", ["quorum"]),
        ),
        "fig9": (
            lambda: figures.fig9_consistency(n_ops=n_ops),
            ("put_ms", "NICE", ["replication", "size_bytes"]),
        ),
        "fig10": (
            lambda: figures.fig10_load_balancing(n_ops=max(n_ops // 2, 10)),
            ("op_ms", "NICE", ["replication", "size_bytes"]),
        ),
        "fig11": (lambda: figures.fig11_fault_tolerance(), None),
        "fig12": (
            lambda: figures.fig12_ycsb(n_ops_per_client=ycsb_ops),
            ("mean_op_ms", "NICE", ["workload"]),
        ),
        "sec46": (lambda: figures.sec46_switch_scalability(), None),
        "read_scaling": (
            lambda: figures.read_scaling(
                n_ops_per_client=2000 if full else max(n_ops, 50),
            ),
            ("throughput_ops_s", "NICE", ["workload", "replication"]),
        ),
        "scale": (
            lambda: figures.scale_fabric(
                n_ops=max(n_ops // 5, 10),
                configs=figures.SCALE_SMOKE_CONFIGS if smoke else None,
            ),
            None,
        ),
        "ablation-chain": (lambda: ablations.ablation_chain_replication(), None),
        "ablation-lb": (lambda: ablations.ablation_lb_rules(), None),
        "ablation-membership": (
            lambda: ablations.ablation_membership_maintenance(),
            None,
        ),
        "ablation-deployment": (lambda: ablations.ablation_deployment(), None),
        "ablation-sw-rewrite": (lambda: ablations.ablation_software_rewrite(), None),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="nice-bench",
        description="Regenerate the figures of NICE (HPDC 2017) on the simulator.",
    )
    parser.add_argument(
        "experiment",
        nargs="+",
        help="fig4..fig12, sec46, scale, ablation-*, 'perf', 'chaos', or "
             "'all' (= the figure suite; 'scale' runs separately)",
    )
    parser.add_argument(
        "--ops", type=int, default=100,
        help="operations per data point (default 100; paper uses 1000)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale run (1000 ops/point, 20K YCSB ops/client)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="perf/chaos/scale suites: shrunk matrices for CI sanity runs",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for figure/chaos cells "
             "(default: all cores; 1 = inline, no pool)",
    )
    parser.add_argument(
        "--cache-dir", default=parallel.DEFAULT_CACHE_DIR, metavar="DIR",
        help="content-addressed result cache for figure/chaos cells "
             f"(default {parallel.DEFAULT_CACHE_DIR}; invalidated by any "
             "src/repro edit)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always recompute cells; do not read or write the cache",
    )
    parser.add_argument(
        "--figures-out", default=FIGURES_OUT, metavar="PATH",
        help=f"figure-suite JSON report path (default {FIGURES_OUT}; "
             "'-' disables)",
    )
    parser.add_argument(
        "--perf-out", default=None, metavar="PATH",
        help="perf suite only: output JSON path (default BENCH_perf.json)",
    )
    parser.add_argument(
        "--seeds", type=int, default=5,
        help="chaos suite only: seeds per NICE schedule (default 5)",
    )
    parser.add_argument(
        "--chaos-out", default=None, metavar="PATH",
        help="chaos suite only: output JSON path (default BENCH_chaos.json)",
    )
    parser.add_argument(
        "--sim-mode", choices=("exact", "approx"), default=None,
        help="simulation fidelity for every cluster built during the run "
             "(DESIGN.md §5g).  'approx' aggregates steady-state data-plane "
             "flows analytically for a large speedup at ±few-%% accuracy; "
             "protocol traffic stays discrete.  Composes with --jobs N and "
             "the cell cache: the mode is part of each cell's identity and "
             "cache key, so exact and approx results never mix.  "
             "Default: exact",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a sim-time trace of every cluster built during the "
             "run; written as Chrome trace JSON (open in chrome://tracing "
             "or Perfetto), or JSONL if PATH ends in .jsonl.  Forces "
             "--jobs 1 and --no-cache (tracers live in this process; a "
             "cached cell would leave a hole in the trace)",
    )
    args = parser.parse_args(argv)
    n_ops = 1000 if args.full else args.ops
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if jobs < 1:
        parser.error(f"--jobs must be >= 1, got {jobs}")
    cache_dir = None if args.no_cache else args.cache_dir
    if args.trace:
        if args.jobs is not None and args.jobs != 1:
            print(f"--trace: overriding --jobs {args.jobs} -> 1", file=sys.stderr)
        jobs = 1
        cache_dir = None
        obs_runtime.start(args.trace)
    prior_sim_mode = None
    if args.sim_mode is not None:
        from ..core import set_default_sim_mode

        prior_sim_mode = set_default_sim_mode(args.sim_mode)
    prior_config = parallel.configure(
        jobs=jobs, cache_dir=cache_dir, sim_mode=args.sim_mode or "exact"
    )
    try:
        return _run(parser, args, n_ops, jobs)
    finally:
        parallel.configure(**prior_config)
        if prior_sim_mode is not None:
            from ..core import set_default_sim_mode

            set_default_sim_mode(prior_sim_mode)
        session = obs_runtime.stop()
        if session is not None and session.tracers:
            summary = session.export()
            print(
                f"wrote {summary['path']} ({summary['format']} trace, "
                f"{summary['events']} events from {summary['runs']} runs)"
            )


def _run(parser, args, n_ops: int, jobs: int) -> int:
    registry = _registry(n_ops, args.full, smoke=args.smoke)

    wanted = args.experiment
    if "perf" in wanted:
        from . import perf

        out_path = args.perf_out or perf.DEFAULT_OUT
        t0 = time.perf_counter()
        report = perf.run_suite(smoke=args.smoke, out_path=out_path)
        print(perf.format_report(report))
        print(f"wrote {out_path}")
        print(f"({time.perf_counter() - t0:.1f}s wall)\n")
        wanted = [w for w in wanted if w != "perf"]
        if not wanted:
            return 0
    if "chaos" in wanted:
        from . import chaos

        out_path = args.chaos_out or chaos.DEFAULT_OUT
        report = chaos.run_suite(
            seeds=args.seeds, smoke=args.smoke, out_path=out_path
        )
        print(chaos.format_report(report))
        cells = report.get("cells", [])
        hits = sum(1 for c in cells if c["cache_hit"])
        print(f"({len(cells)} cells, {hits} cache hits, --jobs {jobs})")
        print(f"wrote {out_path}")
        print(f"({report['wall_s']:.1f}s wall)\n")
        wanted = [w for w in wanted if w != "chaos"]
        if not wanted:
            return 0 if report["passed"] else 1
    if "all" in wanted:
        # "all" = the paper's figure suite; the fabric scale family and the
        # harmonia read-scaling sweep are their own opt-in runs (python -m
        # repro.bench scale / read_scaling) so the 81-cell baseline stays
        # byte-stable.
        wanted = [name for name in registry if name not in ("scale", "read_scaling")]
    unknown = [w for w in wanted if w not in registry]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    parallel.drain_records()  # figure records start clean for the report
    experiments = []
    all_cells = []
    for name in wanted:
        runner, summary = registry[name]
        t0 = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - t0
        cells = parallel.drain_records()
        all_cells.extend(cells)
        print(format_result(result))
        chart = _chart_for(name, result)
        if chart:
            print(chart)
        if summary is not None:
            metric, baseline, groups = summary
            text = ratio_summary(result, metric, baseline, group_cols=groups)
            if text:
                print("summary:")
                for line in text.splitlines():
                    print(f"  {line}")
        hits = sum(1 for c in cells if c["cache_hit"])
        cell_note = f", {len(cells)} cells, {hits} cache hits" if cells else ""
        print(f"({elapsed:.1f}s wall{cell_note})\n")
        experiments.append(
            {
                "name": result.name,
                "description": result.description,
                "columns": result.columns,
                "rows": result.rows,
                "notes": result.notes,
                "wall_s": elapsed,
                "cells": cells,
            }
        )
    if experiments and args.figures_out != "-":
        prov = parallel.provenance(
            records=all_cells, ops=n_ops, jobs=jobs, full=args.full
        )
        session = obs_runtime.current()
        if session is not None:
            prov["trace"] = {
                "path": session.path,
                "runs": len(session.tracers),
                "events": session.total_events,
            }
        report = {
            "schema_version": 1,
            "suite": "figures",
            "provenance": prov,
            "experiments": experiments,
        }
        with open(args.figures_out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.figures_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
