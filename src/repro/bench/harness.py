"""Shared experiment plumbing for the per-figure benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core import ClusterConfig, NiceCluster
from ..noob import NoobCluster, NoobConfig
from ..obs import runtime as obs_runtime

__all__ = ["ExperimentResult", "build_nice", "build_noob", "run_to_completion"]

#: Hard ceiling on simulated seconds per experiment leg (safety net).
MAX_HORIZON_S = 100_000.0


@dataclass
class ExperimentResult:
    """One figure's regenerated data: rows of named columns plus notes."""

    name: str
    description: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    series_label: str = "system"

    def add(self, **row: Any) -> None:
        self.rows.append(row)

    def column(self, name: str, where: Optional[Dict[str, Any]] = None) -> List[Any]:
        out = []
        for row in self.rows:
            if where and any(row.get(k) != v for k, v in where.items()):
                continue
            out.append(row.get(name))
        return out

    def note(self, text: str) -> None:
        self.notes.append(text)


def build_nice(**overrides) -> NiceCluster:
    """A warmed NICE cluster with the paper's §6 defaults."""
    cfg = ClusterConfig(**overrides)
    cluster = NiceCluster(cfg)
    cluster.warm_up()
    # Under `--trace` a session is open and every built cluster gets a
    # tracer (after warm-up, so traces carry measurement traffic only);
    # otherwise this is a no-op and sim.tracer stays None.
    obs_runtime.attach(cluster.sim, label=_trace_label("NICE", overrides))
    return cluster


def build_noob(**overrides) -> NoobCluster:
    """A warmed NOOB cluster with the paper's §6 defaults."""
    cfg = NoobConfig(**overrides)
    cluster = NoobCluster(cfg)
    cluster.warm_up()
    obs_runtime.attach(cluster.sim, label=_trace_label("NOOB", overrides))
    return cluster


def _trace_label(system: str, overrides: dict) -> str:
    params = " ".join(f"{k}={v}" for k, v in sorted(overrides.items()))
    return f"{system} {params}" if params else system


def run_to_completion(cluster, process, horizon_s: float = MAX_HORIZON_S):
    """Drive the simulator until ``process`` finishes; return its value.

    Uses :meth:`Simulator.run_until`, which stops exactly when the process
    event is processed instead of spinning fixed 50-sim-second ``run``
    chunks past it.
    """
    deadline = cluster.sim.now + horizon_s
    cluster.sim.run_until(process, until=deadline)
    if not process.triggered:
        if cluster.sim.pending_events == 0:
            raise RuntimeError(
                f"simulation drained with process still pending at t={cluster.sim.now}"
            )
        raise RuntimeError(f"experiment exceeded horizon of {horizon_s} sim-seconds")
    if process.ok is False:
        raise process.value
    return process.value
