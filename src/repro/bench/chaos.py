"""The chaos × consistency verification sweep (``python -m repro.bench chaos``).

For every (access mode, fault schedule, seed) cell the sweep builds a
fresh cluster, runs a paced put/get workload against one partition while
the :class:`~repro.chaos.ChaosEngine` plays the schedule, records the
full op history, and verifies it — the cheap staleness screen first, then
the exact Wing–Gong linearizability check.  The result is a pass/fail
matrix written to ``BENCH_chaos.json``.

Expectations encode the paper's claim (§3.3, §4.5): NICE and the honestly
configured NOOB variants stay linearizable through every schedule, while
the *weak* NOOB configuration — primary-only replication with round-robin
reads, a config the baseline happily accepts — must be **caught** serving
stale data, with a minimal counterexample in the artifact.  The suite
fails (non-zero exit) if a safe mode produces a violation *or* the weak
mode escapes detection.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

import numpy as np

from ..chaos import ChaosEngine, FaultSchedule, controlplane_schedules, standard_schedules
from ..check import (
    CheckLimitExceeded,
    HistoryRecorder,
    check_durable,
    check_linearizable,
    check_monotonic,
)
from ..workloads.synthetic import keys_in_partition
from .harness import build_nice, build_noob
from .parallel import Cell, drain_records, provenance, run_cells

__all__ = [
    "run_suite",
    "format_report",
    "DEFAULT_OUT",
    "MODES",
    "run_case",
    "chaos_cell",
    "harmonia_midput_cell",
    "durability_cell",
    "torn_wal_cell",
    "bit_rot_cell",
    "fail_slow_cell",
]

#: Schedule-suite key the sweep builds its schedules under.
SCHEDULE_KEY = "k0"

DEFAULT_OUT = "BENCH_chaos.json"

#: mode name -> builder spec + expectations.  ``expect_violation`` marks
#: the deliberately weak config the checker must catch.  ``loss_fragile``
#: marks honest configs with a *known* hazard under packet loss: NOOB-2PC
#: never retransmits a lost commit, so one replica can stay prepared/stale
#: while round-robin reads serve the other — a genuine partial-commit
#: window the chaos suite documents rather than hides.  Violations in a
#: loss-fragile mode under a loss-bearing schedule are recorded as
#: "tolerated"; anywhere else they fail the suite.  NICE is never fragile:
#: its multicast transport repairs losses and 2PC acks ride it (§4.3).
MODES: Dict[str, Dict] = {
    "nice": dict(system="nice", expect_violation=False, loss_fragile=False, overrides={}),
    "rac-2pc": dict(
        system="noob",
        expect_violation=False,
        loss_fragile=True,
        overrides=dict(access="rac", consistency="2pc"),
    ),
    "rag-2pc": dict(
        system="noob",
        expect_violation=False,
        loss_fragile=True,
        overrides=dict(access="rag", consistency="2pc"),
    ),
    "rog-2pc": dict(
        system="noob",
        expect_violation=False,
        loss_fragile=True,
        overrides=dict(access="rog", consistency="2pc"),
    ),
    "rac-quorum": dict(
        system="noob",
        expect_violation=False,
        loss_fragile=False,
        overrides=dict(access="rac", consistency="quorum"),
    ),
    # Primary-only replication acks puts even when the replica transfers
    # fail, and round-robin reads then serve whatever the replicas hold:
    # the misconfiguration the checker must catch.
    "rac-weak": dict(
        system="noob",
        expect_violation=True,
        loss_fragile=False,
        overrides=dict(access="rac", consistency="primary", get_lb="round_robin"),
    ),
    # Harmonia protocol mode (DESIGN.md §5j): switch dirty-set, any-replica
    # conflict-free reads.  The honest mode must stay linearizable through
    # every schedule; "harmonia-weak" clears the dirty entry on the commit
    # multicast's *transit* (before replicas apply) — the directed
    # rack-isolate-mid-put cell makes that leak a stale read the checker
    # must catch.
    "harmonia": dict(
        system="nice",
        expect_violation=False,
        loss_fragile=False,
        overrides=dict(protocol_mode="harmonia"),
    ),
    "harmonia-weak": dict(
        system="nice",
        expect_violation=True,
        loss_fragile=False,
        overrides=dict(protocol_mode="harmonia-weak"),
    ),
    # Durability-only mode (DESIGN.md §5k): acks race the flush.  Never
    # part of the linearizability matrix — it exists so the power-blackout
    # cell can prove the acked-durability checker catches ack-before-
    # durable holes.
    "nice-waloff": dict(
        system="nice",
        expect_violation=True,
        loss_fragile=False,
        durability_only=True,
        overrides=dict(wal_forced=False),
    ),
}

#: Cluster shrunk for sweep speed; semantics (R=3, one partition under
#: attack) match the paper's fault scenario.
CLUSTER_KW = dict(n_storage_nodes=6, n_clients=3)


def _build(mode: str, seed: int, standbys: int = 0):
    spec = MODES[mode]
    kwargs = dict(CLUSTER_KW, seed=seed, **spec["overrides"])
    if spec["system"] == "nice":
        if standbys:
            kwargs["metadata_standbys"] = standbys
        return build_nice(**kwargs)
    if standbys:
        raise ValueError("metadata standbys are a NICE-only configuration")
    return build_noob(**kwargs)


def _schedule_suite(key: str, names: Optional[List[str]] = None) -> List[FaultSchedule]:
    suite = standard_schedules(key)
    suite["random-a"] = FaultSchedule.random(101, key)
    suite["random-b"] = FaultSchedule.random(202, key)
    # Addressable by name but not part of the default sweep (the harmonia
    # modes add them explicitly; the flow-rule families under attack are
    # NICE-internal, so they are noise for the NOOB baselines).
    extras = {"rule_flap": FaultSchedule.rule_flap(key)}
    if names is None:
        return list(suite.values())
    by_name = {**suite, **extras}
    unknown = [n for n in names if n not in by_name]
    if unknown:
        raise ValueError(f"unknown schedule(s) {unknown}; have {sorted(by_name)}")
    return [by_name[n] for n in names]


def _schedule_by_name(key: str, name: str) -> FaultSchedule:
    """Resolve a schedule from either family by name."""
    cp = controlplane_schedules(key)
    if name in cp:
        return cp[name]
    return _schedule_suite(key, [name])[0]


def _workload(
    cluster,
    recorder: HistoryRecorder,
    keys: List[str],
    duration: float,
    seed: int,
    put_until: Optional[float] = None,
):
    """One paced writer + dedicated readers, values globally unique.

    The split matters: a writer whose put times out stalls for seconds
    (client retry backoff), and if every client mixed puts and gets the
    whole workload would stall inside the fault window — exactly when
    reads must keep probing replicas for stale data.  ``put_until`` cuts
    the writer early (durability cells stop writing at the power failure,
    so the surviving state is judged against pre-blackout acked puts)."""
    sim = cluster.sim
    put_until = duration if put_until is None else put_until

    def writer(client, stream: np.random.Generator):
        seq = 0
        while sim.now < put_until:
            yield sim.timeout(stream.exponential(0.03))
            seq += 1
            key = keys[seq % len(keys)]
            yield client.put(key, f"{client.host.name}:{seq}", 1000, max_retries=1)

    def reader(client, stream: np.random.Generator):
        while sim.now < duration:
            yield sim.timeout(stream.exponential(0.03))
            key = keys[int(stream.integers(len(keys)))]
            yield client.get(key, max_retries=1)

    for idx, client in enumerate(cluster.clients):
        recorder.attach(client)
        loop = writer if idx == 0 else reader
        sim.process(loop(client, np.random.default_rng([seed, idx])))


def _table_snapshot(cluster) -> List:
    """Semantic FlowTable + group-table state of every switch, chaos
    cookies excluded, mutable per-rule stats (seq, hit counters) ignored —
    two snapshots are equal iff the switches would forward identically."""
    snap = []
    switches = getattr(cluster, "switches", None)
    if switches is None:
        switches = [cluster.switch] + list(getattr(cluster, "edge_switches", []))
    for switch in switches:
        rules = sorted(
            (r.cookie, r.priority, str(r.match), str(list(r.actions)))
            for r in switch.table.iter_rules()
            if not r.cookie.startswith("chaos:")
        )
        groups = sorted(
            (gid, str(list(g.buckets))) for gid, g in switch.groups.items()
        )
        snap.append((switch.name, tuple(rules), tuple(groups)))
    return snap


def _controlplane_provenance(cluster) -> Dict:
    """Post-run control-plane verdict for an HA cell.

    Runs one reconciliation pass over the settled cluster (it must find
    nothing to repair), then compares the resulting tables against a
    from-scratch ``sync_all`` — bit-identical tables prove the
    diff-repair converged to exactly the desired state.
    """
    sim = cluster.sim
    ha = cluster.metadata_ha
    service = cluster.metadata_active
    steady = service.reconcile_switches()
    sim.run(until=sim.now + 0.01)  # let the repair flow-mods land
    reconciled = _table_snapshot(cluster)
    cluster.controller.sync_all(epoch=service.epoch)
    sim.run(until=sim.now + 0.01)
    scratch = _table_snapshot(cluster)
    nodes = list(cluster.nodes.values())
    return {
        "epoch_final": service.epoch,
        "promotions": ha.promotions.value,
        "demotions": ha.demotions.value,
        "fenced_flow_mods": sum(sw.fenced_mods.value for sw in cluster.switches),
        "membership_fenced": sum(n.membership_fenced.value for n in nodes),
        "meta_failovers": sum(n.meta_failovers.value for n in nodes),
        "takeover_reconcile": {
            "installed": ha.reconcile_installed.value,
            "deleted": ha.reconcile_deleted.value,
            "matched": ha.reconcile_matched.value,
        },
        "steady_reconcile": steady,
        "reconcile_matches_scratch": reconciled == scratch,
    }


def run_case(
    mode: str,
    schedule: FaultSchedule,
    seed: int,
    duration: float = 10.0,
    n_keys: int = 3,
    max_states: int = 2_000_000,
    standbys: int = 0,
) -> Dict:
    """One cell of the matrix; returns a JSON-ready row."""
    cluster = _build(mode, seed, standbys)
    partition = 0
    keys = keys_in_partition(partition, cluster.config.n_partitions, n_keys)
    # Re-target the schedule at a key of the chosen partition: schedules
    # are built per-key, so rebuild with the actual key.
    schedule = rebuild_for_key(schedule, keys[0])

    recorder = HistoryRecorder()
    _workload(cluster, recorder, keys, duration, seed)
    engine = ChaosEngine(cluster, schedule, seed=seed)
    engine.start()
    cluster.sim.run(until=duration)

    mono = check_monotonic(recorder.ops)
    try:
        lin = check_linearizable(recorder.ops, max_states=max_states)
        inconclusive = False
        states = lin.states
        linearizable = lin.ok
        core = lin.violation
        reason = lin.reason
    except CheckLimitExceeded as exc:
        inconclusive = True
        states = max_states
        linearizable = mono.ok  # best effort: screen result only
        core = mono.violation
        reason = f"W&G limit: {exc}"
    if not mono.ok and linearizable:
        # The screen only reports true violations; exact search must agree.
        linearizable, core, reason = False, mono.violation, mono.reason

    ok_ops = sum(1 for op in recorder.ops if op.ok)
    row = {
        "family": "controlplane" if standbys else "standard",
        "standbys": standbys,
        "mode": mode,
        "schedule": schedule.name,
        "has_loss": any(ev.kind == "loss" for ev in schedule),
        "seed": seed,
        "n_ops": len(recorder.ops),
        "ok_ops": ok_ops,
        "failed_ops": sum(1 for op in recorder.ops if op.completed and not op.ok),
        "pending_ops": len(recorder.pending()),
        "linearizable": bool(linearizable),
        "monotonic_ok": bool(mono.ok),
        "inconclusive": inconclusive,
        "states": states,
        "chaos_events": [[t, label] for t, label in engine.events],
        "violation": [str(op) for op in core],
        "reason": reason,
    }
    if standbys:
        row["controlplane"] = _controlplane_provenance(cluster)
    return row


def rebuild_for_key(schedule: FaultSchedule, key: str) -> FaultSchedule:
    """Clone ``schedule`` with every symbolic target pointed at ``key``."""
    from ..chaos.schedule import FaultEvent

    events = []
    for ev in schedule:
        role, _, _ = ev.target.partition(":")
        target = f"{role}:{key}" if role in ("primary", "secondary", "key") else ev.target
        events.append(FaultEvent(ev.at, ev.kind, target, ev.params))
    return FaultSchedule(schedule.name, tuple(events), schedule.description)


def chaos_cell(
    mode: str, schedule: str, duration: float, seed: int, standbys: int = 0
) -> Dict:
    """One matrix cell, addressable by config alone: the schedule is
    rebuilt from its name inside the (possibly worker) process, so a cell
    is a pure function of ``(mode, schedule, duration, seed, standbys)``."""
    return run_case(
        mode,
        _schedule_by_name(SCHEDULE_KEY, schedule),
        seed,
        duration=duration,
        standbys=standbys,
    )


def harmonia_midput_cell(mode: str, seed: int) -> Dict:
    """Directed harmonia race cell: rack isolation between the primary's
    local commit and the commit multicast reaching a rack-1 secondary.

    The stranded secondary keeps the old value while the primary holds the
    new one and the client's put fails (ambiguous).  A correct dirty-set
    pins the key to the primary (linearizable); the weakened variant
    cleared the key on the commit's transit and serves the stale replica
    rack-locally — the violation the checker must catch.
    """
    from ..core import ClusterConfig, NiceCluster

    spec = MODES[mode]
    cluster = NiceCluster(ClusterConfig(
        n_storage_nodes=8, n_clients=2, replication_level=3, n_racks=2,
        heartbeat_miss_limit=10_000, seed=seed, **spec["overrides"],
    ))
    cluster.warm_up()
    sim = cluster.sim
    c0, c1 = cluster.clients  # round-robin placement: rack 0, rack 1
    recorder = HistoryRecorder()
    for client in cluster.clients:
        client.recorder = recorder

    key = primary = secondary = None
    for i in range(500):
        cand = f"hk{i}"
        rs = cluster.partition_map.get(cluster.uni_vring.subgroup_of_key(cand))
        if cluster.rack_of[rs.primary] != 0:
            continue
        strays = [m for m in rs.get_targets()
                  if m != rs.primary and cluster.rack_of[m] == 1]
        if strays:
            key, primary, secondary = cand, rs.primary, strays[0]
            break
    if key is None:
        raise RuntimeError(f"seed {seed}: no rack-split replica set found")

    events: List = []

    def isolate_mid_put():
        p_node, s_node = cluster.nodes[primary], cluster.nodes[secondary]
        while True:
            prepared = any(p.key == key and p.value == "v2"
                           for p in s_node._pending.values())
            obj = p_node.store.get(key)
            if prepared and obj is not None and obj.value == "v2":
                break
            yield sim.timeout(10e-6)
        for link in cluster.fabric.uplinks_of(1):
            link.set_down(True)
        events.append([sim.now, "rack 1 uplinks cut mid-put (post-commit@primary)"])

    def driver():
        r = yield c0.put(key, "v1", 1000)
        assert r.ok
        sim.process(isolate_mid_put())
        yield c0.put(key, "v2", 1000, max_retries=0)
        # Rack-0 reads force the ambiguous put's effect into the history,
        # then rack-1 reads probe for the stale conflict-free read.
        yield c0.get(key, max_retries=1)
        for _ in range(4):
            yield c1.get(key, max_retries=0)

    proc = sim.process(driver())
    sim.run(until=60.0)
    if not proc.triggered:
        raise RuntimeError("directed mid-put driver did not finish")

    mono = check_monotonic(recorder.ops)
    lin = check_linearizable(recorder.ops)
    linearizable, core, reason = lin.ok, lin.violation, lin.reason
    if not mono.ok and linearizable:
        linearizable, core, reason = False, mono.violation, mono.reason
    return {
        "family": "harmonia-directed",
        "standbys": 0,
        "mode": mode,
        "schedule": "rack_isolate_midput",
        "has_loss": False,
        "seed": seed,
        "n_ops": len(recorder.ops),
        "ok_ops": sum(1 for op in recorder.ops if op.ok),
        "failed_ops": sum(1 for op in recorder.ops if op.completed and not op.ok),
        "pending_ops": len(recorder.pending()),
        "linearizable": bool(linearizable),
        "monotonic_ok": bool(mono.ok),
        "inconclusive": False,
        "states": lin.states,
        "chaos_events": events,
        "violation": [str(op) for op in core],
        "reason": reason,
        "dirty_set": cluster.harmonia.stats(),
        "stale_replica_reads": cluster.nodes[secondary].gets_served.value,
    }


def _final_values(cluster, keys: List[str]) -> Dict[str, object]:
    """Post-run surviving value per key, read from each key's acting
    primary store (the replica clients would be routed to)."""
    finals: Dict[str, object] = {}
    for key in keys:
        rs = cluster.partition_map.get(cluster.uni_vring.subgroup_of_key(key))
        node = cluster.nodes.get(rs.primary)
        obj = node.store.get(key) if node is not None else None
        if obj is not None:
            finals[key] = obj.value
    return finals


def _node_durability_stats(cluster) -> Dict[str, int]:
    """Aggregate §5k counters across the cluster's storage nodes."""
    nodes = list(cluster.nodes.values())
    return {
        "torn_records": sum(n.wal.torn_records for n in nodes),
        "lost_records": sum(n.wal.lost_records for n in nodes),
        "resurrected_records": sum(n.wal.resurrected_records for n in nodes),
        "cold_restarts": sum(n.cold_restarts.value for n in nodes),
        "replayed_commits": sum(n.replayed_commits.value for n in nodes),
        "power_losses": sum(n.disk.power_losses.value for n in nodes),
        "scrub_scans": sum(n.scrub_scans.value for n in nodes),
        "scrub_repairs": sum(n.scrub_repairs.value for n in nodes),
        "read_repairs": sum(n.read_repairs.value for n in nodes),
        "corruptions": sum(n.store.corruptions for n in nodes),
    }


def _durability_row(
    mode: str, schedule: str, seed: int, cluster, recorder: HistoryRecorder,
    events: List, keys: List[str],
) -> Dict:
    """Common tail of every durability cell: verify the history (staleness
    screen + exact check + acked-durability against the surviving stores)
    and assemble the JSON row."""
    mono = check_monotonic(recorder.ops)
    lin = check_linearizable(recorder.ops)
    linearizable, core, reason = lin.ok, lin.violation, lin.reason
    if not mono.ok and linearizable:
        linearizable, core, reason = False, mono.violation, mono.reason
    durable = check_durable(recorder.ops, _final_values(cluster, keys))
    row = {
        "family": "durability",
        "standbys": 0,
        "mode": mode,
        "schedule": schedule,
        "has_loss": False,
        "seed": seed,
        "n_ops": len(recorder.ops),
        "ok_ops": sum(1 for op in recorder.ops if op.ok),
        "failed_ops": sum(1 for op in recorder.ops if op.completed and not op.ok),
        "pending_ops": len(recorder.pending()),
        "linearizable": bool(linearizable),
        "monotonic_ok": bool(mono.ok),
        "inconclusive": False,
        "states": lin.states,
        "chaos_events": [[t, label] for t, label in events],
        "violation": [str(op) for op in core],
        "reason": reason,
        "durable": bool(durable.ok),
        "durability_reason": durable.reason,
        "durable_keys_checked": len(durable.checked_keys),
    }
    row.update(_node_durability_stats(cluster))
    return row


def durability_cell(mode: str, schedule: str, seed: int, duration: float = 10.0) -> Dict:
    """Whole-cluster power loss under live traffic (§4.4, Complete Cluster
    Failure): every node drops volatile state *and* its unflushed disk
    cache, then cold-restarts from the durable image + WAL replay.  For
    the honest mode every acked put must survive; for ``nice-waloff``
    (acks race the flush) the acked-durability checker must catch losses.
    """
    cluster = _build(mode, seed)
    keys = keys_in_partition(0, cluster.config.n_partitions, 3)
    recorder = HistoryRecorder()
    sched = rebuild_for_key(_durability_schedule(schedule), keys[0])
    blackout_at = min(ev.at for ev in sched)
    _workload(cluster, recorder, keys, duration, seed, put_until=blackout_at)
    engine = ChaosEngine(cluster, sched, seed=seed)
    engine.start()
    cluster.sim.run(until=duration)
    return _durability_row(mode, sched.name, seed, cluster, recorder, engine.events, keys)


def _durability_schedule(name: str) -> FaultSchedule:
    from ..chaos import durability_schedules

    suite = durability_schedules(SCHEDULE_KEY)
    if name not in suite:
        raise ValueError(f"unknown durability schedule {name!r}; have {sorted(suite)}")
    return suite[name]


def torn_wal_cell(seed: int) -> Dict:
    """Directed torn-tail cell: power-fail one secondary in the exact
    window where a WAL append has completed its transfer but no flush
    covers it yet.  The replayed log must truncate the torn frame (never
    a phantom or corrupt record) and every acked put must still be
    readable once the node rejoins."""
    cluster = build_nice(**CLUSTER_KW, seed=seed)
    sim = cluster.sim
    recorder = HistoryRecorder()
    for client in cluster.clients:
        client.recorder = recorder
    keys = keys_in_partition(0, cluster.config.n_partitions, 2)
    rs = cluster.partition_map.get(0)
    victim = next(m for m in rs.members if m != rs.primary)
    node = cluster.nodes[victim]
    events: List = []

    def crash_mid_append():
        # An append is vulnerable from transfer completion until the
        # flush cycle covers it (~flush latency): poll well inside that.
        while node.wal.unflushed_appends() == 0:
            yield sim.timeout(5e-6)
        node.crash(power_loss=True)
        events.append([sim.now, f"{victim} power-fails mid-append (torn tail)"])

    c0 = cluster.clients[0]

    def driver():
        for key in keys:  # a durable base round first
            yield c0.put(key, f"base:{key}", 1000)
        sim.process(crash_mid_append())
        seq = 0
        while not events and sim.now < 5.0:
            seq += 1
            yield c0.put(keys[seq % len(keys)], f"v{seq}", 1000, max_retries=0)
        yield sim.timeout(3.0)  # let the metadata service declare the node
        events.append([sim.now, f"{victim} restarts"])
        proc = node.restart()
        if proc is not None:
            yield proc
            events.append([sim.now, f"{victim} consistent"])
        for key in keys:
            yield c0.get(key, max_retries=1)

    proc = sim.process(driver())
    sim.run(until=30.0)
    if not proc.triggered:
        raise RuntimeError("torn-WAL driver did not finish")
    return _durability_row("nice", "torn_wal", seed, cluster, recorder, events, keys)


def bit_rot_cell(seed: int, duration: float = 8.0) -> Dict:
    """Silent corruption vs scrub-and-repair: rot 4 of 6 stored objects on
    a secondary — most of them *cold* (written once, never read), so only
    the background scrubber can find them.  No client may ever observe a
    corrupted value, and by the end of the run every store must verify."""
    cluster = build_nice(**CLUSTER_KW, seed=seed, scrub_interval_s=1.0)
    sim = cluster.sim
    recorder = HistoryRecorder()
    for client in cluster.clients:
        client.recorder = recorder
    keys = keys_in_partition(0, cluster.config.n_partitions, 6)
    hot = keys[0]
    c0, c1 = cluster.clients[0], cluster.clients[1]

    def writer():
        for i, key in enumerate(keys):
            yield c0.put(key, f"init:{i}", 1000)

    def reader():
        while sim.now < duration:
            yield sim.timeout(0.03)
            yield c1.get(hot, max_retries=1)

    sim.process(writer())
    sim.process(reader())
    sched = rebuild_for_key(FaultSchedule.bit_rot(SCHEDULE_KEY, count=4), keys[0])
    engine = ChaosEngine(cluster, sched, seed=seed)
    engine.start()
    sim.run(until=duration)

    remaining = sum(
        1
        for node in cluster.nodes.values()
        for name in node.store.names()
        if not node.store.verify(node.store.get(name))
    )
    bitrot_served = sum(
        1
        for op in recorder.ops
        if op.kind == "get"
        and isinstance(op.value, tuple)
        and op.value
        and op.value[0] == "\x00bitrot"
    )
    row = _durability_row("nice", "bit_rot", seed, cluster, recorder, engine.events, keys)
    row["remaining_corrupt"] = remaining
    row["bitrot_served"] = bitrot_served
    return row


def fail_slow_cell(seed: int, duration: float = 10.0) -> Dict:
    """Fail-slow disk under the harmonia read path: the primary's device
    runs 8× slow.  The obs-layer health signal must flag it within a few
    heartbeats, the metadata service must drain it from the read
    round-robin and hand the primary role off, and the history must stay
    linearizable throughout; after the heal the node is restored."""
    cluster = build_nice(**CLUSTER_KW, seed=seed, protocol_mode="harmonia")
    keys = keys_in_partition(0, cluster.config.n_partitions, 3)
    recorder = HistoryRecorder()
    _workload(cluster, recorder, keys, duration, seed)
    sched = rebuild_for_key(FaultSchedule.fail_slow(SCHEDULE_KEY), keys[0])
    engine = ChaosEngine(cluster, sched, seed=seed)
    engine.start()
    cluster.sim.run(until=duration)
    meta = cluster.metadata_active
    row = _durability_row(
        "harmonia", "fail_slow", seed, cluster, recorder, engine.events, keys
    )
    row["failslow_detections"] = meta.failslow_detections.value
    row["failslow_handoffs"] = meta.failslow_handoffs.value
    row["degraded_after"] = sorted(meta.degraded)
    return row


def run_suite(
    seeds: int = 5,
    baseline_seeds: int = 2,
    modes: Optional[List[str]] = None,
    schedules: Optional[List[str]] = None,
    duration: float = 10.0,
    smoke: bool = False,
    out_path: Optional[str] = DEFAULT_OUT,
) -> Dict:
    """Sweep the matrix; returns (and writes) the report dict.

    NICE gets the full ``seeds`` sweep (the paper's headline claim);
    baselines get ``baseline_seeds`` each to bound wall time.  ``smoke``
    shrinks everything for CI.  Cells fan across workers per the session's
    ``--jobs`` setting; the merged case order (mode → schedule → seed) and
    every case payload are identical to a sequential run.
    """
    cp_names = sorted(controlplane_schedules(SCHEDULE_KEY))
    dur_names = ["power_blackout", "torn_wal", "bit_rot", "fail_slow"]
    if smoke:
        seeds, baseline_seeds, duration = 2, 1, 8.0
        modes = modes or ["nice", "rac-2pc", "rac-weak", "harmonia", "harmonia-weak"]
        schedules = schedules or [
            "crash_rejoin", "partition_rejoin", "primary_crash", *cp_names,
            *dur_names,
        ]
    # Durability-only modes (nice-waloff) never join the matrix product;
    # the durability cell plan below instantiates them directly.
    modes = modes or [m for m in MODES if not MODES[m].get("durability_only")]
    # ``schedules`` spans both families: names from the control-plane
    # family select HA cells, the rest the standard suite.  ``None``
    # means everything.
    if schedules is None:
        std_names: Optional[List[str]] = None
        cp_selected = cp_names
        dur_selected = dur_names
    else:
        std_names = [
            n for n in schedules if n not in cp_names and n not in dur_names
        ]
        cp_selected = [n for n in cp_names if n in schedules]
        dur_selected = [n for n in dur_names if n in schedules]
    # Harmonia modes get their own cell plan below: the honest mode runs
    # the standard suite plus the rule_flap schedule (its read rules are
    # flow state the flap attacks), the weak mode runs the directed
    # mid-put cell that deterministically exposes its early dirty-clear.
    h_modes = [m for m in modes if m.startswith("harmonia")]
    std_modes = [m for m in modes if not m.startswith("harmonia")]
    t0 = time.perf_counter()
    drain_records()  # isolate this suite's cell records from earlier runs
    cells = [
        Cell(
            chaos_cell,
            dict(mode=mode, schedule=schedule.name, duration=duration),
            seed=seed,
        )
        for mode in std_modes
        for schedule in _schedule_suite(SCHEDULE_KEY, std_names)
        for seed in range(1, (seeds if mode == "nice" else baseline_seeds) + 1)
    ]
    if "harmonia" in h_modes:
        h_sched = [s.name for s in _schedule_suite(SCHEDULE_KEY, std_names)]
        if "rule_flap" not in h_sched:
            h_sched.append("rule_flap")
        cells += [
            Cell(
                chaos_cell,
                dict(mode="harmonia", schedule=name, duration=duration),
                seed=seed,
            )
            for name in h_sched
            for seed in range(1, baseline_seeds + 1)
        ]
    cells += [
        Cell(harmonia_midput_cell, dict(mode=mode), seed=seed)
        for mode in h_modes
        for seed in range(1, baseline_seeds + 1)
    ]
    # The control-plane family (metadata-leader crash/failover, controller
    # channel outages) runs NICE-only, with one metadata standby.
    if "nice" in modes:
        cells += [
            Cell(
                chaos_cell,
                dict(mode="nice", schedule=name, duration=duration, standbys=1),
                seed=seed,
            )
            for name in cp_selected
            for seed in range(1, seeds + 1)
        ]
    # The durability family (§5k): power blackout for the honest mode and
    # the weakened wal=off variant, the directed torn-tail cell, bit-rot
    # vs the scrubber, and the fail-slow drain (harmonia read path).
    if "nice" in modes and dur_selected:
        d_dur = max(duration, 10.0)
        d_seeds = range(1, baseline_seeds + 1)
        if "power_blackout" in dur_selected:
            cells += [
                Cell(
                    durability_cell,
                    dict(mode=mode, schedule="power_blackout", duration=d_dur),
                    seed=seed,
                )
                for mode in ("nice", "nice-waloff")
                for seed in d_seeds
            ]
        if "torn_wal" in dur_selected:
            cells += [Cell(torn_wal_cell, {}, seed=seed) for seed in d_seeds]
        if "bit_rot" in dur_selected:
            cells += [Cell(bit_rot_cell, {}, seed=seed) for seed in d_seeds]
        if "fail_slow" in dur_selected:
            cells += [Cell(fail_slow_cell, {}, seed=seed) for seed in d_seeds]
    cases: List[Dict] = run_cells(cells)
    cell_records = drain_records()

    summary: Dict[str, Dict] = {}
    failures: List[str] = []
    for mode in modes:
        rows = [
            c for c in cases
            if c["mode"] == mode
            and c.get("family") not in ("controlplane", "durability")
        ]
        violations = [c for c in rows if not c["linearizable"]]
        tolerated = [
            c
            for c in violations
            if MODES[mode]["loss_fragile"] and c["has_loss"]
        ]
        inconclusive = [c for c in rows if c["inconclusive"]]
        summary[mode] = {
            "cases": len(rows),
            "violations": len(violations),
            "tolerated": len(tolerated),
            "inconclusive": len(inconclusive),
            "expect_violation": MODES[mode]["expect_violation"],
        }
        if MODES[mode]["expect_violation"]:
            if not violations:
                failures.append(f"{mode}: weak config escaped detection")
        else:
            for c in violations:
                if c in tolerated:
                    continue
                failures.append(
                    f"{mode}/{c['schedule']}/seed{c['seed']}: "
                    f"unexpected violation: {c['reason']}"
                )
    cp_rows = [c for c in cases if c.get("family") == "controlplane"]
    if cp_rows:
        summary["controlplane"] = {
            "cases": len(cp_rows),
            "violations": len([c for c in cp_rows if not c["linearizable"]]),
            "promotions": sum(c["controlplane"]["promotions"] for c in cp_rows),
            "fenced_flow_mods": sum(
                c["controlplane"]["fenced_flow_mods"] for c in cp_rows
            ),
            "reconcile_matches_scratch": all(
                c["controlplane"]["reconcile_matches_scratch"] for c in cp_rows
            ),
        }
        for c in cp_rows:
            tag = f"controlplane/{c['schedule']}/seed{c['seed']}"
            cp = c["controlplane"]
            if not c["linearizable"]:
                failures.append(f"{tag}: unexpected violation: {c['reason']}")
            if c["schedule"] in ("metadata_failover", "node_meta_crash") and not cp["promotions"]:
                failures.append(f"{tag}: metadata leader crashed but no standby promoted")
            if not cp["reconcile_matches_scratch"]:
                failures.append(f"{tag}: reconciled tables diverge from scratch sync")
            if cp["steady_reconcile"]["installed"] or cp["steady_reconcile"]["deleted"]:
                failures.append(
                    f"{tag}: settled cluster still needed repair: {cp['steady_reconcile']}"
                )
    h_rows = [
        c for c in cases
        if c["mode"].startswith("harmonia") and c.get("family") != "durability"
    ]
    harmonia_verdict = None
    if h_rows:
        safe_rows = [c for c in h_rows if c["mode"] == "harmonia"]
        weak_rows = [c for c in h_rows if c["mode"] == "harmonia-weak"]
        directed = [c for c in h_rows if c.get("family") == "harmonia-directed"]
        dirty = {}
        for c in directed:
            for k, v in c.get("dirty_set", {}).items():
                dirty[k] = dirty.get(k, 0) + v
        harmonia_verdict = {
            "cases": len(h_rows),
            "safe_cases": len(safe_rows),
            "safe_violations": len(
                [c for c in safe_rows if not c["linearizable"]]
            ),
            "weak_cases": len(weak_rows),
            "weak_caught": any(not c["linearizable"] for c in weak_rows),
            "directed_cells": len(directed),
            "stale_replica_reads": sum(
                c.get("stale_replica_reads", 0) for c in directed
            ),
            "dirty_set": dirty,
        }
    d_rows = [c for c in cases if c.get("family") == "durability"]
    durability_verdict = None
    if d_rows:
        honest = [c for c in d_rows if c["mode"] != "nice-waloff"]
        weak = [c for c in d_rows if c["mode"] == "nice-waloff"]
        durability_verdict = {
            "cells": len(d_rows),
            "acked_lost": sum(1 for c in honest if not c["durable"]),
            "torn_detected": sum(c["torn_records"] for c in d_rows),
            "scrub_repairs": sum(c["scrub_repairs"] for c in d_rows),
            "failslow_detected": any(
                c.get("failslow_detections", 0) > 0 for c in d_rows
            ),
            "failslow_handoffs": sum(
                c.get("failslow_handoffs", 0) for c in d_rows
            ),
            "weak_cases": len(weak),
            "weak_caught": bool(weak)
            and all(not c["durable"] for c in weak),
        }
        for c in honest:
            tag = f"durability/{c['schedule']}/seed{c['seed']}"
            if not c["durable"]:
                failures.append(
                    f"{tag}: acked put lost: {c['durability_reason']}"
                )
            if not c["linearizable"]:
                failures.append(f"{tag}: unexpected violation: {c['reason']}")
            if c["schedule"] == "torn_wal" and not c["torn_records"]:
                failures.append(f"{tag}: crash mid-append left no torn tail")
            if c["schedule"] == "bit_rot":
                if not c["scrub_repairs"]:
                    failures.append(f"{tag}: scrubber repaired nothing")
                if c.get("remaining_corrupt"):
                    failures.append(
                        f"{tag}: {c['remaining_corrupt']} objects still corrupt"
                    )
                if c.get("bitrot_served"):
                    failures.append(
                        f"{tag}: {c['bitrot_served']} corrupt values served"
                    )
            if c["schedule"] == "fail_slow":
                if not c.get("failslow_detections"):
                    failures.append(f"{tag}: fail-slow disk never detected")
                if not c.get("failslow_handoffs"):
                    failures.append(f"{tag}: degraded primary never handed off")
                if c.get("degraded_after"):
                    failures.append(
                        f"{tag}: still degraded after heal: {c['degraded_after']}"
                    )
        for c in weak:
            if c["durable"]:
                failures.append(
                    f"durability/{c['schedule']}/seed{c['seed']}: "
                    "wal=off acked losses escaped detection"
                )
    report = {
        "schema_version": 5,
        "suite": "chaos",
        "smoke": smoke,
        "duration_s_per_case": duration,
        "provenance": provenance(records=cell_records, seeds=seeds),
        "cases": cases,
        "cells": cell_records,
        "summary": summary,
        "failures": failures,
        "passed": not failures,
        "wall_s": round(time.perf_counter() - t0, 1),
    }
    if harmonia_verdict is not None:
        report["harmonia"] = harmonia_verdict
    if durability_verdict is not None:
        report["durability"] = durability_verdict
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    return report


def format_report(report: Dict) -> str:
    lines = ["chaos × consistency matrix (ops verified per cell):", ""]
    header = f"{'mode':<12} {'schedule':<18} {'seed':>4} {'ops':>5} {'lin':>5} {'note'}"
    lines.append(header)
    lines.append("-" * len(header))
    for c in report["cases"]:
        note = "inconclusive" if c["inconclusive"] else (c["reason"][:50] if not c["linearizable"] else "")
        lines.append(
            f"{c['mode']:<12} {c['schedule']:<18} {c['seed']:>4} "
            f"{c['n_ops']:>5} {'ok' if c['linearizable'] else 'VIOL':>5} {note}"
        )
    lines.append("")
    for mode, s in report["summary"].items():
        if mode == "controlplane":
            lines.append(
                f"  {mode:<12} {s['cases']} cases, {s['violations']} violations, "
                f"{s['promotions']} promotions, {s['fenced_flow_mods']} fenced mods, "
                f"reconcile==scratch: {s['reconcile_matches_scratch']}"
            )
            continue
        want = "expected" if s["expect_violation"] else "must be clean"
        tol = f", {s['tolerated']} tolerated (loss-fragile)" if s.get("tolerated") else ""
        lines.append(
            f"  {mode:<12} {s['cases']} cases, {s['violations']} violations ({want}){tol}"
        )
    h = report.get("harmonia")
    if h:
        lines.append(
            f"  harmonia: {h['safe_cases']} safe cases "
            f"({h['safe_violations']} violations), weak caught: "
            f"{h['weak_caught']} over {h['weak_cases']} cases, "
            f"{h['directed_cells']} directed mid-put cells"
        )
    d = report.get("durability")
    if d:
        lines.append(
            f"  durability: {d['cells']} cells, {d['acked_lost']} acked losses, "
            f"{d['torn_detected']} torn records, {d['scrub_repairs']} scrub "
            f"repairs, fail-slow detected: {d['failslow_detected']} "
            f"({d['failslow_handoffs']} handoffs), wal=off caught: "
            f"{d['weak_caught']} over {d['weak_cases']} cells"
        )
    lines.append("")
    lines.append("PASS" if report["passed"] else "FAIL:")
    for f in report["failures"]:
        lines.append(f"  {f}")
    return "\n".join(lines)
