"""Perf-regression microbenchmark suite.

The benches cover the layers of the simulator fast path (schema v5):

* ``kernel_churn`` — raw event-loop throughput: processes spinning on
  timeouts, ``AnyOf``/``AllOf`` joins, and deferred calls (the allocation
  profile 2PC exercises).
* ``kernel_steady`` — steady-state heap throughput under heavy timer
  cancellation (the tombstone path, DESIGN.md §5g): a sliding window of
  pending timeouts of which most are cancelled before firing.
* ``switch_lookup`` — :class:`~repro.net.flowtable.FlowTable` lookup under
  N installed rules, exact-match cache on vs off.
* ``multicast_fanout`` — end-to-end put legs at replication 3/5/7, the
  workload the vectorized group fan-out serves.
* ``fig5_put_leg`` — an end-to-end fig5-style put leg on a warmed NICE
  cluster, cache on vs off, asserting the results are bit-identical.
* ``approx_vs_exact`` — the same leg under ``sim_mode="approx"`` vs
  ``"exact"``: event reduction, wall speedup, and result drift.
* ``harmonia_read_floor`` — hot-partition YCSB-C read throughput at R=3,
  harmonia mode vs NICE-LB (DESIGN.md §5j).  The §4.5 divisions leave the
  primary with half an evenly-spread client population, so harmonia's
  any-consistent-replica round-robin must clear ``HARMONIA_READ_FLOOR``
  (1.5x) on the gate's 5-client population; the suite asserts it.
* ``plan_scale`` — the incremental rule planner (schema v5) on the scale
  ladder's fabric rungs: cold ``sync_all`` wall time, warm ``reconcile``
  wall time (must recompute **zero** plans — every partition served from
  the plan cache), and single-partition incremental resync, asserting the
  cache contracts and recording plans/s per rung.
* ``trace_overhead`` — the same leg with a live tracer vs the null
  tracer, asserting tracing changes wall-clock only, never results
  (the obs-layer determinism contract, DESIGN.md §5e), and that the
  overhead stays under :data:`TRACE_OVERHEAD_MAX`.

``python -m repro.bench perf`` runs the suite and writes ``BENCH_perf.json``
(schema documented in EXPERIMENTS.md) so every future PR has a perf
trajectory to regress against.  Wall-clock numbers are machine-dependent;
the *ratios* (cache speedups) and the simulated results are not.  Kernel
benches also report :meth:`Simulator.pool_stats` so allocator regressions
(pool thrash, reuse-rate collapse) show up without a profiler.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Optional

from ..core import set_default_sim_mode
from ..net import FlowTable, IPv4Address, IPv4Network, Match, Output, Packet, Proto, Rule
from ..obs import install as install_tracer
from ..sim import AllOf, AnyOf, Simulator
from ..workloads import closed_loop_puts
from .figures import BASE_SEED, read_scaling_cell
from .harness import build_nice, run_to_completion
from .parallel import provenance

__all__ = ["run_suite", "format_report", "DEFAULT_OUT"]

SCHEMA_VERSION = 5
DEFAULT_OUT = "BENCH_perf.json"

#: Ceiling on the live-tracer wall-clock multiplier (satellite of the §5g
#: perf overhaul; the suite asserts it).
TRACE_OVERHEAD_MAX = 1.30

#: Environment escape hatch honored by FlowTable (see flowtable.py).
DISABLE_ENV = "REPRO_DISABLE_FLOW_CACHE"

#: Floor on harmonia's hot-partition read throughput relative to NICE-LB
#: at R=3 under YCSB-C (the §5j read-scaling contract).  The structural
#: ratio on the gate population is 1.8x (the LB primary carries 3 of the
#: 5 client IPs — two in its own division plus the power-of-two
#: fall-through block — while harmonia serves each replica 1/3), so 1.5x
#: leaves room for closed-loop tail effects without ever passing a
#: regression that collapses the round-robin.
HARMONIA_READ_FLOOR = 1.5


# ------------------------------------------------------------------ kernel
def _churn_proc(sim: Simulator, rounds: int):
    for _ in range(rounds):
        # The 1–3 event joins that dominate the storage protocols.
        got = yield AnyOf(sim, [sim.timeout(1.0, "fast"), sim.timeout(2.0, "slow")])
        assert "fast" in list(got.values())
        yield AllOf(sim, [sim.timeout(0.5), sim.timeout(1.0), sim.timeout(1.5)])
        yield sim.timeout(0.25)


def bench_kernel_churn(n_procs: int = 64, rounds: int = 250) -> dict:
    """Event-loop throughput: timeout + condition churn across processes."""
    sim = Simulator()
    marks = []
    for _ in range(n_procs):
        sim.process(_churn_proc(sim, rounds))
    for i in range(n_procs * rounds):
        sim.call_in(float(i % 97) * 0.01, marks.append, None)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    events = sim._eid  # total heap entries scheduled (kernel-internal counter)
    return {
        "processes": n_procs,
        "rounds": rounds,
        "scheduled_events": events,
        "wall_s": wall,
        "events_per_s": events / wall if wall > 0 else None,
        "pools": sim.pool_stats(),
    }


def bench_kernel_steady(
    n_events: int = 500_000, window: int = 1024, keep_every: int = 10
) -> dict:
    """Steady-state heap throughput, timer-cancellation-heavy.

    Keeps a ``window``-deep pool of pending timeouts, cancels all but one
    in ``keep_every`` before they fire, and drains the survivors — the
    protocol-timeout profile (armed, then beaten by the common case) that
    exercises the kernel's O(1) tombstone cancellation and entry recycling.
    """
    sim = Simulator()
    scheduled = 0
    cancelled = 0
    timeout = sim.timeout
    cancel = sim.cancel_timer
    t0 = time.perf_counter()
    while scheduled < n_events:
        batch = [timeout(1.0 + (i % 13) * 0.05) for i in range(window)]
        scheduled += window
        for i, ev in enumerate(batch):
            if i % keep_every:
                cancel(ev)
                cancelled += 1
        sim.run()  # fire survivors, sweep tombstones
    wall = time.perf_counter() - t0
    return {
        "scheduled_events": scheduled,
        "cancelled": cancelled,
        "cancel_ratio": cancelled / scheduled,
        "wall_s": wall,
        "events_per_s": scheduled / wall if wall > 0 else None,
        "pools": sim.pool_stats(),
    }


# ------------------------------------------------------------------ switch
def _lookup_table(n_rules: int, cache_enabled: bool) -> FlowTable:
    table = FlowTable(cache_enabled=cache_enabled)
    base = IPv4Address("10.64.0.0")
    for i in range(n_rules):
        table.add(
            Rule(
                Match(ip_dst=IPv4Network(base + i, 32), proto=Proto.UDP),
                [Output(1)],
                priority=100,
            )
        )
    return table


def _lookup_packets(n_rules: int, n_flows: int) -> list:
    base = IPv4Address("10.64.0.0")
    src = IPv4Address("10.0.0.1")
    packets = []
    for f in range(n_flows):
        # Spread flows across the whole table so the linear scan pays the
        # average (n/2) depth, not a best- or worst-case corner.
        idx = (f * n_rules) // n_flows
        packets.append(
            Packet(src_ip=src, dst_ip=base + idx, proto=Proto.UDP, dport=4000,
                   payload_bytes=64)
        )
    return packets


def bench_switch_lookup(
    n_rules: int = 1000, n_lookups: int = 20000, n_flows: int = 64
) -> dict:
    """FlowTable.lookup under ``n_rules`` installed rules, cache on vs off."""
    packets = _lookup_packets(n_rules, n_flows)
    out = {"n_rules": n_rules, "n_lookups": n_lookups, "n_flows": n_flows}
    for label, cache_enabled in (("cached", True), ("uncached", False)):
        table = _lookup_table(n_rules, cache_enabled)
        lookup = table.lookup
        t0 = time.perf_counter()
        for k in range(n_lookups):
            lookup(packets[k % n_flows], 1)
        wall = time.perf_counter() - t0
        entry = {
            "wall_s": wall,
            "lookups_per_s": n_lookups / wall if wall > 0 else None,
        }
        if cache_enabled:
            total = table.cache_hits + table.cache_misses
            entry["hit_rate"] = table.cache_hits / total if total else 0.0
        out[label] = entry
    out["speedup"] = out["uncached"]["wall_s"] / out["cached"]["wall_s"]
    return out


# ------------------------------------------------------------- end-to-end
#: Vring partitions for the end-to-end leg: 128 subgroups on 15 nodes puts
#: ~(R+1)·128 ≈ 800 rules in the switch — the §4.6 regime the cache is for.
#: (The default 16-partition table is short enough that the linear scan
#: hides behind kernel work.)
E2E_PARTITIONS = 128


def _run_fig5_leg(
    n_ops: int,
    size: int,
    disable_cache: bool,
    traced: bool = False,
    sim_mode: str = "exact",
) -> dict:
    prior = os.environ.get(DISABLE_ENV)
    os.environ[DISABLE_ENV] = "1" if disable_cache else "0"
    prior_mode = set_default_sim_mode(sim_mode)
    try:
        t0 = time.perf_counter()
        cluster = build_nice(
            n_storage_nodes=15, n_clients=1, n_partitions=E2E_PARTITIONS
        )
        tracer = install_tracer(cluster.sim, label="perf") if traced else None
        client = cluster.clients[0]
        key = f"perf-{size}"

        def driver(sim):
            seed = yield client.put(key, "x", size)
            assert seed.ok, "seed put failed"
            tally = yield closed_loop_puts(client, sim, n_ops, size, keys=[key])
            return tally

        tally = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
        wall = time.perf_counter() - t0
    finally:
        set_default_sim_mode(prior_mode)
        if prior is None:
            os.environ.pop(DISABLE_ENV, None)
        else:
            os.environ[DISABLE_ENV] = prior
    out = {
        "wall_s": wall,
        "ops_per_s": n_ops / wall if wall > 0 else None,
        "sim_time_s": cluster.sim.now,
        "put_ms": tally.mean * 1e3,
        "put_count": tally.count,
        "installed_rules": len(cluster.switch.table),
        "scheduled_events": cluster.sim._eid,
    }
    if tracer is not None:
        out["trace_events"] = len(tracer.events)
    return out


def bench_fig5_put_leg(n_ops: int = 400, size: int = 1 << 12) -> dict:
    """Fig5-style put leg end to end; cache on vs off must agree exactly."""
    cached = _run_fig5_leg(n_ops, size, disable_cache=False)
    uncached = _run_fig5_leg(n_ops, size, disable_cache=True)
    identical = (
        cached["put_ms"] == uncached["put_ms"]
        and cached["sim_time_s"] == uncached["sim_time_s"]
        and cached["put_count"] == uncached["put_count"]
    )
    return {
        "n_ops": n_ops,
        "size_bytes": size,
        "cached": cached,
        "uncached": uncached,
        "speedup": uncached["wall_s"] / cached["wall_s"],
        "results_identical": identical,
    }


def bench_multicast_fanout(n_ops: int = 150, size: int = 1 << 14) -> dict:
    """Put legs at replication 3/5/7: the vectorized fan-out workload.

    Per-op event counts are the durable signal here — the batched group
    fan-out schedules one shared serialize chain plus R delivery legs
    instead of R full transmit chains.
    """
    out = {"n_ops": n_ops, "size_bytes": size, "legs": []}
    for r in (3, 5, 7):
        cluster = build_nice(
            n_storage_nodes=8, n_clients=1, replication_level=r, n_partitions=8
        )
        client = cluster.clients[0]
        key = f"fanout-{r}"

        def driver(sim):
            seed = yield client.put(key, "x", size)
            assert seed.ok, "seed put failed"
            tally = yield closed_loop_puts(client, sim, n_ops, size, keys=[key])
            return tally

        t0 = time.perf_counter()
        tally = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
        wall = time.perf_counter() - t0
        out["legs"].append(
            {
                "replication": r,
                "wall_s": wall,
                "ops_per_s": n_ops / wall if wall > 0 else None,
                "put_ms": tally.mean * 1e3,
                "scheduled_events": cluster.sim._eid,
                "events_per_op": cluster.sim._eid / n_ops,
            }
        )
    return out


def bench_approx_vs_exact(n_ops: int = 400, size: int = 1 << 16) -> dict:
    """Fig5-style leg in ``sim_mode="approx"`` vs ``"exact"``.

    Approx aggregates data-plane link service analytically (1 event per
    packet per hop instead of the grant/serialize/finish/deliver chain)
    and runs data-plane switch lookups inline; protocol traffic stays
    discrete.  Reports the event reduction, wall speedup (min of two runs
    per mode), and the drift of put latency / simulated time — the suite
    asserts the drift stays within ±5%.
    """
    exact = min(
        (_run_fig5_leg(n_ops, size, disable_cache=False) for _ in range(2)),
        key=lambda r: r["wall_s"],
    )
    approx = min(
        (
            _run_fig5_leg(n_ops, size, disable_cache=False, sim_mode="approx")
            for _ in range(2)
        ),
        key=lambda r: r["wall_s"],
    )
    put_err = abs(approx["put_ms"] - exact["put_ms"]) / exact["put_ms"]
    time_err = abs(approx["sim_time_s"] - exact["sim_time_s"]) / exact["sim_time_s"]
    return {
        "n_ops": n_ops,
        "size_bytes": size,
        "exact": exact,
        "approx": approx,
        "wall_speedup": exact["wall_s"] / approx["wall_s"],
        "event_reduction": exact["scheduled_events"] / approx["scheduled_events"],
        "put_ms_rel_err": put_err,
        "sim_time_rel_err": time_err,
        "within_tolerance": put_err <= 0.05 and time_err <= 0.05,
    }


def bench_trace_overhead(n_ops: int = 400, size: int = 1 << 12) -> dict:
    """Fig5-style put leg, null tracer vs live tracer.

    The simulated results (latency, sim time, op count) must be
    bit-identical — the tracer only appends to a list, never schedules —
    so ``overhead`` isolates the wall-clock cost of tracing.  The legs
    run three times each, *alternating* so slow drift (thermal, noisy
    neighbours) hits both sides equally, and keep the faster wall time
    per side — machine noise otherwise swamps the
    :data:`TRACE_OVERHEAD_MAX` comparison.
    """
    untraced_runs, traced_runs = [], []
    for _ in range(3):
        untraced_runs.append(_run_fig5_leg(n_ops, size, disable_cache=False))
        traced_runs.append(
            _run_fig5_leg(n_ops, size, disable_cache=False, traced=True)
        )
    untraced = min(untraced_runs, key=lambda r: r["wall_s"])
    traced = min(traced_runs, key=lambda r: r["wall_s"])
    identical = (
        traced["put_ms"] == untraced["put_ms"]
        and traced["sim_time_s"] == untraced["sim_time_s"]
        and traced["put_count"] == untraced["put_count"]
    )
    overhead = traced["wall_s"] / untraced["wall_s"]
    return {
        "n_ops": n_ops,
        "size_bytes": size,
        "untraced": untraced,
        "traced": traced,
        "trace_events": traced["trace_events"],
        "overhead": overhead,
        "overhead_max": TRACE_OVERHEAD_MAX,
        "overhead_ok": overhead <= TRACE_OVERHEAD_MAX,
        "results_identical": identical,
    }


# -------------------------------------------------- harmonia read floor
def bench_harmonia_read_floor(
    n_ops_per_client: int = 800, n_clients: int = 5, n_records: int = 200
) -> dict:
    """Hot-partition YCSB-C at R=3: harmonia vs NICE-LB read throughput.

    Reuses the read-scaling cell (one partition's keyspace, 150us server
    cost) so the gate measures exactly what the figure plots.  5 clients
    is the deliberately LB-hostile population: stride placement lands 3
    of the 5 in the primary's share of the §4.5 division space.
    """
    legs = {}
    for label, system in (("nice_lb", "NICE"), ("harmonia", "NICE harmonia")):
        t0 = time.perf_counter()
        row = read_scaling_cell(
            workload="C", system=system, replication=3,
            n_ops_per_client=n_ops_per_client, n_clients=n_clients,
            n_records=n_records, seed=BASE_SEED,
        )["rows"][0]
        row["wall_s"] = time.perf_counter() - t0
        legs[label] = row
    ratio = (
        legs["harmonia"]["throughput_ops_s"] / legs["nice_lb"]["throughput_ops_s"]
    )
    return {
        "workload": "C",
        "replication": 3,
        "n_ops_per_client": n_ops_per_client,
        "n_clients": n_clients,
        "n_records": n_records,
        "nice_lb": legs["nice_lb"],
        "harmonia": legs["harmonia"],
        "ratio": ratio,
        "floor": HARMONIA_READ_FLOOR,
        "floor_ok": ratio >= HARMONIA_READ_FLOOR
        and legs["nice_lb"]["errors"] == 0
        and legs["harmonia"]["errors"] == 0,
    }


# ------------------------------------------------------------ plan_scale
#: The fabric rungs plan_scale climbs (racks, hosts_per_rack, rule budget).
#: Clusters build in approx mode — the planner under test is
#: mode-independent and the data plane never runs here.
PLAN_SCALE_RUNGS = ((4, 16, 1024), (10, 30, 4096), (20, 50, 8192))
PLAN_SCALE_SMOKE_RUNGS = ((4, 16, 1024),)


def _plan_scale_rung(racks: int, hosts_per_rack: int, budget: int) -> dict:
    t0 = time.perf_counter()
    cluster = build_nice(
        n_storage_nodes=racks * hosts_per_rack,
        n_clients=2,
        n_racks=racks,
        switch_rule_budget=budget,
        sim_mode="approx",
    )
    build_s = time.perf_counter() - t0
    sim, ctrl = cluster.sim, cluster.controller
    sim.run(until=sim.now + 0.05)  # let the build-time flow-mods land

    # Cold: every (switch, partition) plan recomputed from scratch.
    ctrl.invalidate_plans()
    ctrl.plan_recomputes.reset()
    ctrl.plan_cache_hits.reset()
    ctrl.plan_wall_s = 0.0
    t0 = time.perf_counter()
    ctrl.sync_all()
    cold_sync_s = time.perf_counter() - t0
    sim.run(until=sim.now + 0.05)
    cold_recomputes = ctrl.plan_recomputes.value

    # Warm: reconcile must serve every plan from the cache.
    ctrl.plan_recomputes.reset()
    ctrl.plan_cache_hits.reset()
    t0 = time.perf_counter()
    stats = ctrl.reconcile()
    warm_reconcile_s = time.perf_counter() - t0
    sim.run(until=sim.now + 0.05)
    warm_recomputes = ctrl.plan_recomputes.value
    warm_hits = ctrl.plan_cache_hits.value

    # Incremental: dirty one partition, resync just it.
    t0 = time.perf_counter()
    ctrl.sync_partition(0)
    incremental_sync_s = time.perf_counter() - t0
    sim.run(until=sim.now + 0.05)

    return {
        "racks": racks,
        "hosts_per_rack": hosts_per_rack,
        "nodes": racks * hosts_per_rack,
        "partitions": len(ctrl.partition_map),
        "switches": len(ctrl.channel.switches),
        "rule_budget": budget,
        "build_s": build_s,
        "cold_sync_s": cold_sync_s,
        "cold_recomputes": cold_recomputes,
        "plans_per_s": cold_recomputes / cold_sync_s if cold_sync_s > 0 else None,
        "warm_reconcile_s": warm_reconcile_s,
        "warm_recomputes": warm_recomputes,
        "warm_cache_hits": warm_hits,
        "warm_reconcile_noop": bool(
            stats["installed"] == 0 and stats["deleted"] == 0
        ),
        "incremental_sync_s": incremental_sync_s,
        "incremental_speedup": (
            cold_sync_s / incremental_sync_s if incremental_sync_s > 0 else None
        ),
    }


def bench_plan_scale(rungs=PLAN_SCALE_RUNGS) -> dict:
    """Controller planning cost per scale-ladder rung (cold / warm / incremental)."""
    out = {"rungs": [_plan_scale_rung(*rung) for rung in rungs]}
    out["all_warm_cached"] = all(
        r["warm_recomputes"] == 0 and r["warm_cache_hits"] > 0 for r in out["rungs"]
    )
    return out


# ----------------------------------------------------------------- driver
def run_suite(smoke: bool = False, out_path: Optional[str] = DEFAULT_OUT) -> dict:
    """Run every bench; write ``out_path`` (unless None); return the report."""
    if out_path:
        out_dir = os.path.dirname(os.path.abspath(out_path))
        if not os.path.isdir(out_dir):
            raise SystemExit(f"perf: output directory does not exist: {out_dir}")
    if smoke:
        kernel = bench_kernel_churn(n_procs=16, rounds=40)
        steady = bench_kernel_steady(n_events=60_000)
        lookup = bench_switch_lookup(n_rules=1000, n_lookups=3000)
        fanout = bench_multicast_fanout(n_ops=30)
        fig5 = bench_fig5_put_leg(n_ops=40)
        approx = bench_approx_vs_exact(n_ops=40)
        trace = bench_trace_overhead(n_ops=40)
        plan = bench_plan_scale(rungs=PLAN_SCALE_SMOKE_RUNGS)
        read_floor = bench_harmonia_read_floor(n_ops_per_client=300)
    else:
        kernel = bench_kernel_churn()
        steady = bench_kernel_steady()
        lookup = bench_switch_lookup()
        fanout = bench_multicast_fanout()
        fig5 = bench_fig5_put_leg()
        approx = bench_approx_vs_exact()
        trace = bench_trace_overhead()
        plan = bench_plan_scale()
        read_floor = bench_harmonia_read_floor()
    # Hard determinism/overhead contracts (DESIGN.md §5e/§5g): fail the
    # suite loudly rather than publish a report that quietly violates them.
    assert fig5["results_identical"], "flow-cache on/off changed results"
    assert trace["results_identical"], "tracing perturbed simulated results"
    assert trace["overhead_ok"], (
        f"trace overhead {trace['overhead']:.2f}x exceeds "
        f"{TRACE_OVERHEAD_MAX:.2f}x"
    )
    assert approx["within_tolerance"], (
        f"approx drifted beyond ±5%: put_ms {approx['put_ms_rel_err']:.3f}, "
        f"sim_time {approx['sim_time_rel_err']:.3f}"
    )
    assert plan["all_warm_cached"], (
        "incremental planner recomputed plans on a warm reconcile: "
        + str([(r["racks"], r["warm_recomputes"]) for r in plan["rungs"]])
    )
    assert all(r["warm_reconcile_noop"] for r in plan["rungs"]), (
        "warm reconcile was not a table no-op"
    )
    assert read_floor["floor_ok"], (
        f"harmonia hot-partition read throughput {read_floor['ratio']:.2f}x "
        f"NICE-LB is under the {read_floor['floor']:.2f}x floor "
        f"(R=3, YCSB-C)"
    )
    # The perf suite deliberately bypasses the cell cache: its payload is
    # host wall-clock, which a cached result would misreport.
    report = {
        "schema_version": SCHEMA_VERSION,
        "generated_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "smoke": smoke,
        "provenance": provenance(),
        "benches": {
            "kernel_churn": kernel,
            "kernel_steady": steady,
            "switch_lookup": lookup,
            "multicast_fanout": fanout,
            "fig5_put_leg": fig5,
            "approx_vs_exact": approx,
            "trace_overhead": trace,
            "plan_scale": plan,
            "harmonia_read_floor": read_floor,
        },
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


def format_report(report: dict) -> str:
    b = report["benches"]
    k, l, f = b["kernel_churn"], b["switch_lookup"], b["fig5_put_leg"]
    lines = [
        f"perf suite (schema v{report['schema_version']},"
        f" smoke={report['smoke']}, python {report['python']})",
        f"  kernel_churn   : {k['events_per_s']:,.0f} events/s"
        f" ({k['scheduled_events']} events in {k['wall_s']:.3f}s,"
        f" call-pool reuse {k['pools']['call_pool']['reuse_rate']:.3f})",
        f"  switch_lookup  : {l['cached']['lookups_per_s']:,.0f} lookups/s cached vs"
        f" {l['uncached']['lookups_per_s']:,.0f} uncached"
        f" at {l['n_rules']} rules -> {l['speedup']:.1f}x"
        f" (hit rate {l['cached']['hit_rate']:.3f})",
        f"  fig5_put_leg   : {f['cached']['wall_s']:.3f}s cached vs"
        f" {f['uncached']['wall_s']:.3f}s uncached -> {f['speedup']:.2f}x,"
        f" identical={f['results_identical']}",
    ]
    s = b.get("kernel_steady")
    if s is not None:
        lines.insert(
            2,
            f"  kernel_steady  : {s['events_per_s']:,.0f} events/s"
            f" ({s['scheduled_events']} events, {s['cancel_ratio']:.0%} cancelled,"
            f" entry-pool reuse {s['pools']['entry_pool']['reuse_rate']:.3f})",
        )
    m = b.get("multicast_fanout")
    if m is not None:
        per_r = ", ".join(
            f"R={leg['replication']}: {leg['events_per_op']:,.0f} ev/op"
            for leg in m["legs"]
        )
        lines.append(f"  multicast_fanout: {per_r}")
    a = b.get("approx_vs_exact")
    if a is not None:
        lines.append(
            f"  approx_vs_exact: {a['event_reduction']:.2f}x fewer events,"
            f" {a['wall_speedup']:.2f}x wall,"
            f" drift put_ms {a['put_ms_rel_err']:.2%} /"
            f" sim_time {a['sim_time_rel_err']:.2%}"
        )
    p = b.get("plan_scale")
    if p is not None:
        per_rung = ", ".join(
            f"{r['racks']}x{r['hosts_per_rack']}: {r['plans_per_s']:,.0f} plans/s"
            f" cold, warm {r['warm_reconcile_s']*1e3:,.0f}ms"
            for r in p["rungs"]
        )
        lines.append(
            f"  plan_scale     : {per_rung}, warm-cached={p['all_warm_cached']}"
        )
    h = b.get("harmonia_read_floor")
    if h is not None:
        lines.append(
            f"  harmonia_reads : {h['ratio']:.2f}x NICE-LB at R=3 YCSB-C"
            f" ({h['harmonia']['throughput_ops_s']:,.0f} vs"
            f" {h['nice_lb']['throughput_ops_s']:,.0f} ops/s,"
            f" floor {h['floor']:.2f}x, ok={h['floor_ok']})"
        )
    t = b.get("trace_overhead")
    if t is not None:
        lines.append(
            f"  trace_overhead : {t['overhead']:.2f}x wall with live tracer"
            f" ({t['trace_events']} events),"
            f" identical={t['results_identical']}"
        )
    return "\n".join(lines)
