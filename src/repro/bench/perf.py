"""Perf-regression microbenchmark suite.

Three benches cover the three layers of the simulator fast path:

* ``kernel_churn`` — raw event-loop throughput: processes spinning on
  timeouts, ``AnyOf``/``AllOf`` joins, and deferred calls (the allocation
  profile 2PC exercises).
* ``switch_lookup`` — :class:`~repro.net.flowtable.FlowTable` lookup under
  N installed rules, exact-match cache on vs off.
* ``fig5_put_leg`` — an end-to-end fig5-style put leg on a warmed NICE
  cluster, cache on vs off, asserting the results are bit-identical.
* ``trace_overhead`` — the same leg with a live tracer vs the null
  tracer, asserting tracing changes wall-clock only, never results
  (the obs-layer determinism contract, DESIGN.md §5e).

``python -m repro.bench perf`` runs the suite and writes ``BENCH_perf.json``
(schema documented in EXPERIMENTS.md) so every future PR has a perf
trajectory to regress against.  Wall-clock numbers are machine-dependent;
the *ratios* (cache speedups) and the simulated results are not.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Optional

from ..net import FlowTable, IPv4Address, IPv4Network, Match, Output, Packet, Proto, Rule
from ..obs import install as install_tracer
from ..sim import AllOf, AnyOf, Simulator
from ..workloads import closed_loop_puts
from .harness import build_nice, run_to_completion
from .parallel import provenance

__all__ = ["run_suite", "format_report", "DEFAULT_OUT"]

SCHEMA_VERSION = 3
DEFAULT_OUT = "BENCH_perf.json"

#: Environment escape hatch honored by FlowTable (see flowtable.py).
DISABLE_ENV = "REPRO_DISABLE_FLOW_CACHE"


# ------------------------------------------------------------------ kernel
def _churn_proc(sim: Simulator, rounds: int):
    for _ in range(rounds):
        # The 1–3 event joins that dominate the storage protocols.
        got = yield AnyOf(sim, [sim.timeout(1.0, "fast"), sim.timeout(2.0, "slow")])
        assert "fast" in list(got.values())
        yield AllOf(sim, [sim.timeout(0.5), sim.timeout(1.0), sim.timeout(1.5)])
        yield sim.timeout(0.25)


def bench_kernel_churn(n_procs: int = 64, rounds: int = 250) -> dict:
    """Event-loop throughput: timeout + condition churn across processes."""
    sim = Simulator()
    marks = []
    for _ in range(n_procs):
        sim.process(_churn_proc(sim, rounds))
    for i in range(n_procs * rounds):
        sim.call_in(float(i % 97) * 0.01, marks.append, None)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    events = sim._eid  # total heap entries scheduled (kernel-internal counter)
    return {
        "processes": n_procs,
        "rounds": rounds,
        "scheduled_events": events,
        "wall_s": wall,
        "events_per_s": events / wall if wall > 0 else None,
    }


# ------------------------------------------------------------------ switch
def _lookup_table(n_rules: int, cache_enabled: bool) -> FlowTable:
    table = FlowTable(cache_enabled=cache_enabled)
    base = IPv4Address("10.64.0.0")
    for i in range(n_rules):
        table.add(
            Rule(
                Match(ip_dst=IPv4Network(base + i, 32), proto=Proto.UDP),
                [Output(1)],
                priority=100,
            )
        )
    return table


def _lookup_packets(n_rules: int, n_flows: int) -> list:
    base = IPv4Address("10.64.0.0")
    src = IPv4Address("10.0.0.1")
    packets = []
    for f in range(n_flows):
        # Spread flows across the whole table so the linear scan pays the
        # average (n/2) depth, not a best- or worst-case corner.
        idx = (f * n_rules) // n_flows
        packets.append(
            Packet(src_ip=src, dst_ip=base + idx, proto=Proto.UDP, dport=4000,
                   payload_bytes=64)
        )
    return packets


def bench_switch_lookup(
    n_rules: int = 1000, n_lookups: int = 20000, n_flows: int = 64
) -> dict:
    """FlowTable.lookup under ``n_rules`` installed rules, cache on vs off."""
    packets = _lookup_packets(n_rules, n_flows)
    out = {"n_rules": n_rules, "n_lookups": n_lookups, "n_flows": n_flows}
    for label, cache_enabled in (("cached", True), ("uncached", False)):
        table = _lookup_table(n_rules, cache_enabled)
        lookup = table.lookup
        t0 = time.perf_counter()
        for k in range(n_lookups):
            lookup(packets[k % n_flows], 1)
        wall = time.perf_counter() - t0
        entry = {
            "wall_s": wall,
            "lookups_per_s": n_lookups / wall if wall > 0 else None,
        }
        if cache_enabled:
            total = table.cache_hits + table.cache_misses
            entry["hit_rate"] = table.cache_hits / total if total else 0.0
        out[label] = entry
    out["speedup"] = out["uncached"]["wall_s"] / out["cached"]["wall_s"]
    return out


# ------------------------------------------------------------- end-to-end
#: Vring partitions for the end-to-end leg: 128 subgroups on 15 nodes puts
#: ~(R+1)·128 ≈ 800 rules in the switch — the §4.6 regime the cache is for.
#: (The default 16-partition table is short enough that the linear scan
#: hides behind kernel work.)
E2E_PARTITIONS = 128


def _run_fig5_leg(n_ops: int, size: int, disable_cache: bool, traced: bool = False) -> dict:
    prior = os.environ.get(DISABLE_ENV)
    os.environ[DISABLE_ENV] = "1" if disable_cache else "0"
    try:
        t0 = time.perf_counter()
        cluster = build_nice(
            n_storage_nodes=15, n_clients=1, n_partitions=E2E_PARTITIONS
        )
        tracer = install_tracer(cluster.sim, label="perf") if traced else None
        client = cluster.clients[0]
        key = f"perf-{size}"

        def driver(sim):
            seed = yield client.put(key, "x", size)
            assert seed.ok, "seed put failed"
            tally = yield closed_loop_puts(client, sim, n_ops, size, keys=[key])
            return tally

        tally = run_to_completion(cluster, cluster.sim.process(driver(cluster.sim)))
        wall = time.perf_counter() - t0
    finally:
        if prior is None:
            os.environ.pop(DISABLE_ENV, None)
        else:
            os.environ[DISABLE_ENV] = prior
    out = {
        "wall_s": wall,
        "ops_per_s": n_ops / wall if wall > 0 else None,
        "sim_time_s": cluster.sim.now,
        "put_ms": tally.mean * 1e3,
        "put_count": tally.count,
        "installed_rules": len(cluster.switch.table),
    }
    if tracer is not None:
        out["trace_events"] = len(tracer.events)
    return out


def bench_fig5_put_leg(n_ops: int = 400, size: int = 1 << 12) -> dict:
    """Fig5-style put leg end to end; cache on vs off must agree exactly."""
    cached = _run_fig5_leg(n_ops, size, disable_cache=False)
    uncached = _run_fig5_leg(n_ops, size, disable_cache=True)
    identical = (
        cached["put_ms"] == uncached["put_ms"]
        and cached["sim_time_s"] == uncached["sim_time_s"]
        and cached["put_count"] == uncached["put_count"]
    )
    return {
        "n_ops": n_ops,
        "size_bytes": size,
        "cached": cached,
        "uncached": uncached,
        "speedup": uncached["wall_s"] / cached["wall_s"],
        "results_identical": identical,
    }


def bench_trace_overhead(n_ops: int = 400, size: int = 1 << 12) -> dict:
    """Fig5-style put leg, null tracer vs live tracer.

    The simulated results (latency, sim time, op count) must be
    bit-identical — the tracer only appends to a list, never schedules —
    so ``overhead`` isolates the wall-clock cost of tracing.
    """
    untraced = _run_fig5_leg(n_ops, size, disable_cache=False)
    traced = _run_fig5_leg(n_ops, size, disable_cache=False, traced=True)
    identical = (
        traced["put_ms"] == untraced["put_ms"]
        and traced["sim_time_s"] == untraced["sim_time_s"]
        and traced["put_count"] == untraced["put_count"]
    )
    return {
        "n_ops": n_ops,
        "size_bytes": size,
        "untraced": untraced,
        "traced": traced,
        "trace_events": traced["trace_events"],
        "overhead": traced["wall_s"] / untraced["wall_s"],
        "results_identical": identical,
    }


# ----------------------------------------------------------------- driver
def run_suite(smoke: bool = False, out_path: Optional[str] = DEFAULT_OUT) -> dict:
    """Run every bench; write ``out_path`` (unless None); return the report."""
    if out_path:
        out_dir = os.path.dirname(os.path.abspath(out_path))
        if not os.path.isdir(out_dir):
            raise SystemExit(f"perf: output directory does not exist: {out_dir}")
    if smoke:
        kernel = bench_kernel_churn(n_procs=16, rounds=40)
        lookup = bench_switch_lookup(n_rules=1000, n_lookups=3000)
        fig5 = bench_fig5_put_leg(n_ops=40)
        trace = bench_trace_overhead(n_ops=40)
    else:
        kernel = bench_kernel_churn()
        lookup = bench_switch_lookup()
        fig5 = bench_fig5_put_leg()
        trace = bench_trace_overhead()
    # The perf suite deliberately bypasses the cell cache: its payload is
    # host wall-clock, which a cached result would misreport.
    report = {
        "schema_version": SCHEMA_VERSION,
        "generated_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "smoke": smoke,
        "provenance": provenance(),
        "benches": {
            "kernel_churn": kernel,
            "switch_lookup": lookup,
            "fig5_put_leg": fig5,
            "trace_overhead": trace,
        },
    }
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


def format_report(report: dict) -> str:
    b = report["benches"]
    k, l, f = b["kernel_churn"], b["switch_lookup"], b["fig5_put_leg"]
    t = b.get("trace_overhead")
    lines = [
        f"perf suite (schema v{report['schema_version']},"
        f" smoke={report['smoke']}, python {report['python']})",
        f"  kernel_churn   : {k['events_per_s']:,.0f} events/s"
        f" ({k['scheduled_events']} events in {k['wall_s']:.3f}s)",
        f"  switch_lookup  : {l['cached']['lookups_per_s']:,.0f} lookups/s cached vs"
        f" {l['uncached']['lookups_per_s']:,.0f} uncached"
        f" at {l['n_rules']} rules -> {l['speedup']:.1f}x"
        f" (hit rate {l['cached']['hit_rate']:.3f})",
        f"  fig5_put_leg   : {f['cached']['wall_s']:.3f}s cached vs"
        f" {f['uncached']['wall_s']:.3f}s uncached -> {f['speedup']:.2f}x,"
        f" identical={f['results_identical']}",
    ]
    if t is not None:
        lines.append(
            f"  trace_overhead : {t['overhead']:.2f}x wall with live tracer"
            f" ({t['trace_events']} events),"
            f" identical={t['results_identical']}"
        )
    return "\n".join(lines)
