"""The chaos engine: plays a :class:`FaultSchedule` against a cluster.

The engine is a simulator process.  It walks the schedule's events in
time order, resolves each symbolic target against *current* membership,
performs the fault through the same primitives operators have — host
fail/recover, link down, switch flow-mods, control-plane latency — and
appends a ``(sim_time_s, label)`` pair to its typed event log (the same
shape as :class:`~repro.workloads.faultload.FaultTimelineResult.events`).

Determinism: all randomness (loss, jitter) comes from per-event numpy
streams derived from ``(engine seed, event index)``, so a run is
bit-reproducible from ``(cluster seed, schedule, engine seed)`` — the
determinism tests compare whole event logs and op histories across runs.

Pairing rule: a fault that takes a node out (``crash``, ``isolate``,
``partition``) *binds* its symbolic target to the concrete node it hit;
the matching recovery event (``rejoin``, ``heal``, ``heal_partition``)
reuses that binding.  Without this, "secondary:k" would re-resolve after
failover promoted a different replica and the wrong node would rejoin.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..kv import ConsistentHashRing, key_hash
from ..net.flowtable import Drop, Match, Rule
from .schedule import FaultEvent, FaultSchedule

__all__ = ["ChaosEngine"]

#: Above every routing rule (vring rules are O(100), ARP 500).
PARTITION_PRIORITY = 10_000


class ChaosEngine:
    """Interprets one schedule against one built cluster."""

    def __init__(self, cluster, schedule: FaultSchedule, seed: int = 0):
        self.cluster = cluster
        self.schedule = schedule
        self.seed = seed
        self.sim = cluster.sim
        #: Typed event log: each entry is a ``(sim_time_s, label)`` pair.
        self.events: List[Tuple[float, str]] = []
        # target spec -> FIFO of concrete node names (a spec can have
        # several outstanding outages, e.g. two "primary:<k>" crashes
        # where the second hits the promoted replica).
        self._bound: Dict[str, List[str]] = {}
        self._event_index = 0

    # -- lifecycle ---------------------------------------------------------------
    def start(self):
        """Spawn the schedule-player process; returns the Process."""
        return self.sim.process(self._run())

    def _run(self):
        for event in self.schedule:
            if event.at > self.sim.now:
                yield self.sim.timeout(event.at - self.sim.now)
            self._fire(event)

    def _mark(self, label: str) -> None:
        self.events.append((float(self.sim.now), label))
        tr = self.sim.tracer
        if tr is not None:
            # Fault markers render as global instants so injected faults
            # are visible inline across the whole trace timeline.
            tr.instant(label, "fault", node="chaos")

    def _stream(self) -> np.random.Generator:
        """A fresh deterministic rng for the event being fired."""
        rng = np.random.default_rng([self.seed, self._event_index])
        return rng

    # -- target resolution ---------------------------------------------------------
    def _partition_of_key(self, key: str) -> int:
        vring = getattr(self.cluster, "uni_vring", None)
        if vring is not None:
            return vring.subgroup_of_key(key)
        return ConsistentHashRing.partition_of_hash(
            key_hash(key), len(self.cluster.partition_map)
        )

    def _resolve_node(self, spec: str, bind: str = "none") -> Optional[str]:
        """Map a symbolic target to a node name against current membership.

        ``bind="bind"`` (outage events) records the resolution;
        ``bind="unbind"`` (recovery events) consumes the oldest recorded
        one; ``bind="peek"`` reads it without consuming; ``bind="none"``
        resolves fresh (self-healing bursts).
        """
        if bind in ("unbind", "peek") and self._bound.get(spec):
            fifo = self._bound[spec]
            return fifo.pop(0) if bind == "unbind" else fifo[0]
        kind, _, arg = spec.partition(":")
        if kind == "node":
            name = arg
        elif kind in ("primary", "secondary"):
            rs = self.cluster.partition_map.get(self._partition_of_key(arg))
            if kind == "primary":
                name = rs.primary
            else:
                secondaries = [m for m in rs.members if m != rs.primary]
                if not secondaries:
                    return None
                name = secondaries[0]
        else:
            raise ValueError(f"unknown chaos target {spec!r}")
        if name not in self.cluster.nodes:
            return None
        if bind == "bind":
            self._bound.setdefault(spec, []).append(name)
        return name

    def _access_link(self, name: str):
        # The host's own port's link — identical to the sw0<->host link in
        # the single-switch topology, and the leaf<->host link in a fabric.
        host = self.cluster.nodes[name].host
        return host.port.link

    def _access_switch(self, name: str):
        """The switch the node's access link terminates on."""
        host = self.cluster.nodes[name].host
        peer = host.port.peer
        return peer.device if peer is not None else self.cluster.switch

    def _all_switches(self) -> list:
        switches = getattr(self.cluster, "switches", None)
        if switches is not None:
            return list(switches)
        return [self.cluster.switch] + list(
            getattr(self.cluster, "edge_switches", [])
        )

    # -- event dispatch ------------------------------------------------------------
    def _fire(self, event: FaultEvent) -> None:
        self._event_index += 1
        handler = getattr(self, f"_do_{event.kind}", None)
        if handler is None:
            raise ValueError(f"unknown fault kind {event.kind!r}")
        handler(event)

    def _do_crash(self, event: FaultEvent) -> None:
        name = self._resolve_node(event.target, bind="bind")
        if name is None or not self.cluster.nodes[name].host.up:
            self._mark(f"crash skipped ({event.target})")
            return
        self.cluster.nodes[name].crash()
        self._mark(f"{name} crashes")

    def _do_rejoin(self, event: FaultEvent) -> None:
        name = self._resolve_node(event.target, bind="unbind")
        if name is None:
            self._mark(f"rejoin skipped ({event.target})")
            return
        node = self.cluster.nodes[name]
        self._mark(f"{name} restarts")
        proc = node.restart()
        if proc is not None:  # NICE: two-stage rejoin runs as a process
            def done(_=None, name=name):
                self._mark(f"{name} consistent")

            self.sim.process(self._await(proc, done))

    @staticmethod
    def _await(proc, done):
        yield proc
        done()

    def _do_isolate(self, event: FaultEvent) -> None:
        name = self._resolve_node(event.target, bind="bind")
        link = self._access_link(name) if name else None
        if link is None:
            self._mark(f"isolate skipped ({event.target})")
            return
        link.set_down(True)
        self._mark(f"{name} link down")

    def _do_heal(self, event: FaultEvent) -> None:
        name = self._resolve_node(event.target, bind="unbind")
        link = self._access_link(name) if name else None
        if link is None:
            self._mark(f"heal skipped ({event.target})")
            return
        link.set_down(False)
        self._mark(f"{name} link up")

    # -- rack-level faults (leaf-spine fabric) -----------------------------------------
    def _rack_target(self, event: FaultEvent):
        fabric = getattr(self.cluster, "fabric", None)
        kind, _, arg = event.target.partition(":")
        if fabric is None or kind != "rack":
            return None, None
        rack = int(arg)
        if not 0 <= rack < fabric.n_racks:
            return None, None
        return fabric, rack

    def _do_rack_isolate(self, event: FaultEvent) -> None:
        """Cut every uplink of the rack's leaf: the whole failure domain
        drops off the fabric at once (hosts still reach each other through
        the leaf, exactly like a real spine-facing optics failure)."""
        fabric, rack = self._rack_target(event)
        if fabric is None:
            self._mark(f"rack_isolate skipped ({event.target})")
            return
        for link in fabric.uplinks_of(rack):
            link.set_down(True)
        self._mark(f"rack {rack} isolated ({len(fabric.uplinks_of(rack))} uplinks down)")

    def _do_rack_heal(self, event: FaultEvent) -> None:
        """Bring the uplinks back and two-phase-rejoin every node in the
        rack the metadata service declared failed during the outage."""
        fabric, rack = self._rack_target(event)
        if fabric is None:
            self._mark(f"rack_heal skipped ({event.target})")
            return
        for link in fabric.uplinks_of(rack):
            link.set_down(False)
        self._mark(f"rack {rack} uplinks healed")
        metadata = self.cluster.metadata_active
        for name in sorted(self.cluster.nodes):
            if self.cluster.rack_of.get(name) != rack:
                continue
            if metadata.status.get(name) != "down":
                continue
            node = self.cluster.nodes[name]
            self._mark(f"{name} restarts")
            proc = node.restart()
            if proc is not None:
                def done(_=None, name=name):
                    self._mark(f"{name} consistent")

                self.sim.process(self._await(proc, done))

    def _peer_ips(self, name: str) -> List:
        """IPs of the target's storage peers plus the metadata service."""
        ips = [
            ip for peer, ip in sorted(self.cluster.directory.items()) if peer != name
        ]
        meta = self.cluster.network.devices.get("meta")
        if meta is not None:
            ips.append(meta.ip)
        return ips

    def _do_partition(self, event: FaultEvent) -> None:
        name = self._resolve_node(event.target, bind="bind")
        if name is None:
            self._mark(f"partition skipped ({event.target})")
            return
        ip = self.cluster.directory[name]
        cookie = f"chaos:partition:{name}"
        access = self._access_switch(name)
        for peer_ip in self._peer_ips(name):
            for src, dst in ((ip, peer_ip), (peer_ip, ip)):
                access.install_rule(
                    Rule(
                        Match(ip_src=src, ip_dst=dst),
                        [Drop()],
                        PARTITION_PRIORITY,
                        cookie=cookie,
                    )
                )
        self._mark(f"{name} partitioned from peers")

    def _do_heal_partition(self, event: FaultEvent) -> None:
        # Resolve without consuming the binding: the paired "rejoin" event
        # (same target, same instant) still needs it.
        name = self._resolve_node(event.target, bind="peek")
        if name is None:
            self._mark(f"heal_partition skipped ({event.target})")
            return
        removed = self._access_switch(name).remove_cookie(f"chaos:partition:{name}")
        self._mark(f"{name} partition healed ({removed} rules)")

    def _do_loss(self, event: FaultEvent) -> None:
        name = self._resolve_node(event.target)  # bursts self-heal; no binding
        link = self._access_link(name) if name else None
        if link is None:
            self._mark(f"loss skipped ({event.target})")
            return
        rate = float(event.param("rate", 0.05))
        duration = float(event.param("duration", 1.0))
        link.set_loss(rate, self._stream())

        def restore(name=name, link=link):
            link.set_loss(0.0)
            self._mark(f"{name} loss burst ends")

        self.sim.call_in(duration, restore)
        self._mark(f"{name} loss burst {rate:.0%} for {duration:g}s")

    def _do_jitter(self, event: FaultEvent) -> None:
        name = self._resolve_node(event.target)  # bursts self-heal; no binding
        link = self._access_link(name) if name else None
        if link is None:
            self._mark(f"jitter skipped ({event.target})")
            return
        jitter_s = float(event.param("jitter_s", 100e-6))
        duration = float(event.param("duration", 1.0))
        link.set_delay_jitter(jitter_s, self._stream())

        def restore(name=name, link=link):
            link.set_delay_jitter(0.0)
            self._mark(f"{name} jitter ends")

        self.sim.call_in(duration, restore)
        self._mark(f"{name} jitter {jitter_s * 1e6:g}us for {duration:g}s")

    def _do_flap(self, event: FaultEvent) -> None:
        controller = getattr(self.cluster, "controller", None)
        if controller is None or not hasattr(controller, "sync_partition"):
            self._mark(f"flap skipped (no flow rules: {event.target})")
            return
        kind, _, key = event.target.partition(":")
        if kind != "key":
            raise ValueError(f"flap wants a 'key:<key>' target, got {event.target!r}")
        partition = self._partition_of_key(key)
        down_s = float(event.param("down_s", 0.2))
        removed = 0
        for switch in self._all_switches():
            removed += switch.remove_cookie(f"uni:{partition}")
            removed += switch.remove_cookie(f"mc:{partition}")
            # Harmonia mode (DESIGN.md §5j) carries its read rule in a
            # separate family; a flap must rip it out too or the stale
            # frozen replica choices outlive the flap window.
            removed += switch.remove_cookie(f"hread:{partition}")

        def resync(partition=partition):
            controller.sync_partition(partition)
            self._mark(f"p{partition} rules re-synced")

        self.sim.call_in(down_s, resync)
        self._mark(f"p{partition} rules flapped ({removed} removed, {down_s:g}s)")

    # -- control-plane faults --------------------------------------------------------
    def _do_metadata_crash(self, event: FaultEvent) -> None:
        """Fail-stop the acting metadata leader (requires standbys)."""
        ha = getattr(self.cluster, "metadata_ha", None)
        leader = ha.leader if ha is not None else None
        if leader is None or not leader.host.up:
            self._mark(f"metadata_crash skipped ({event.target or 'no leader'})")
            return
        leader.crash()
        # Bind under a symbolic key so the paired rejoin revives the
        # replica that actually crashed, not whoever leads by then.
        self._bound.setdefault("meta", []).append(leader.host.name)
        self._mark(f"{leader.host.name} (metadata leader) crashes")

    def _do_metadata_rejoin(self, event: FaultEvent) -> None:
        ha = getattr(self.cluster, "metadata_ha", None)
        fifo = self._bound.get("meta")
        replica = ha.replica_named(fifo.pop(0)) if (ha is not None and fifo) else None
        if replica is None:
            self._mark(f"metadata_rejoin skipped ({event.target})")
            return
        replica.recover()
        self._mark(f"{replica.host.name} (metadata replica) rejoins")

    def _do_controller_crash(self, event: FaultEvent) -> None:
        """Sever the controller↔switch channel: flow-mods and packet-ins
        are dropped until ``controller_recover``."""
        control_plane = getattr(self.cluster, "control_plane", None)
        if control_plane is None or not hasattr(control_plane, "set_down"):
            self._mark("controller_crash skipped (no control plane)")
            return
        control_plane.set_down(True)
        self._mark("controller channel down")

    def _do_controller_recover(self, event: FaultEvent) -> None:
        """Restore the channel and run the reconciliation pass: recompute
        the desired ruleset and repair only what diverged."""
        control_plane = getattr(self.cluster, "control_plane", None)
        if control_plane is None or not hasattr(control_plane, "set_down"):
            self._mark("controller_recover skipped (no control plane)")
            return
        control_plane.set_down(False)
        service = getattr(self.cluster, "metadata_active", None)
        if service is not None and hasattr(service, "reconcile_switches"):
            stats = service.reconcile_switches()
            self._mark(
                "controller channel up (reconciled "
                f"+{stats['installed']}/-{stats['deleted']}, {stats['matched']} kept)"
            )
        else:
            self._mark("controller channel up")

    def _do_stall(self, event: FaultEvent) -> None:
        control_plane = getattr(self.cluster, "control_plane", None)
        if control_plane is None:
            self._mark("stall skipped (no control plane)")
            return
        latency_s = float(event.param("latency_s", 0.05))
        duration = float(event.param("duration", 1.0))
        previous = control_plane.latency_s
        control_plane.latency_s = latency_s

        def restore(previous=previous):
            control_plane.latency_s = previous
            self._mark("controller stall ends")

        self.sim.call_in(duration, restore)
        self._mark(f"controller stalled to {latency_s * 1e3:g}ms for {duration:g}s")

    # -- durability faults (DESIGN.md §5k) ---------------------------------------------
    def _do_disk_slow(self, event: FaultEvent) -> None:
        """Fail-slow disk: service times scaled by ``factor``; the device
        keeps answering, so only the health signal can expose it."""
        name = self._resolve_node(event.target, bind="bind")
        if name is None or not self.cluster.nodes[name].host.up:
            self._mark(f"disk_slow skipped ({event.target})")
            return
        factor = float(event.param("factor", 8.0))
        self.cluster.nodes[name].disk.set_degraded(factor)
        self._mark(f"{name} disk {factor:g}x slow")

    def _do_disk_heal(self, event: FaultEvent) -> None:
        name = self._resolve_node(event.target, bind="unbind")
        if name is None:
            self._mark(f"disk_heal skipped ({event.target})")
            return
        self.cluster.nodes[name].disk.set_degraded(1.0)
        self._mark(f"{name} disk healed")

    def _do_disk_corrupt(self, event: FaultEvent) -> None:
        """Silent bit-rot: flip ``count`` stored objects on the target.
        Checksums are untouched, so reads and scrubs can detect the rot."""
        name = self._resolve_node(event.target)  # no recovery pair; no binding
        if name is None or not self.cluster.nodes[name].host.up:
            self._mark(f"disk_corrupt skipped ({event.target})")
            return
        store = self.cluster.nodes[name].store
        names = sorted(store.names())
        if not names:
            self._mark(f"disk_corrupt skipped ({name}: empty store)")
            return
        count = min(int(event.param("count", 1)), len(names))
        rng = self._stream()
        picks = [names[i] for i in rng.choice(len(names), size=count, replace=False)]
        rotted = sum(1 for key in picks if store.corrupt(key))
        self._mark(f"{name} bit-rot in {rotted} objects")

    def _do_power_failure(self, event: FaultEvent) -> None:
        """Whole-cluster power loss: every up storage node crashes *with*
        its disk's volatile write cache (torn-tail appends included), and
        the controller channel goes dark.  The metadata membership state
        is modeled as durable (§4.4's recovery assumes the log survives;
        with standbys the HA leader crashes too and must replay it)."""
        downed: List[str] = []
        for name in sorted(self.cluster.nodes):
            node = self.cluster.nodes[name]
            if node.host.up:
                node.crash(power_loss=True)
                downed.append(name)
        self._bound.setdefault("power", []).append(downed)
        ha = getattr(self.cluster, "metadata_ha", None)
        leader = ha.leader if ha is not None else None
        if leader is not None and leader.host.up:
            leader.crash()
            self._bound.setdefault("meta", []).append(leader.host.name)
        control_plane = getattr(self.cluster, "control_plane", None)
        if control_plane is not None and hasattr(control_plane, "set_down"):
            control_plane.set_down(True)
        self._mark(f"power failure ({len(downed)} nodes dark)")

    def _do_power_restore(self, event: FaultEvent) -> None:
        """Power returns: control plane first, then the storage nodes
        restart staggered by ``stagger_s`` — each cold-restarts from its
        durable disk image + WAL replay, then runs the two-phase rejoin."""
        fifo = self._bound.get("power")
        downed = fifo.pop(0) if fifo else []
        control_plane = getattr(self.cluster, "control_plane", None)
        if control_plane is not None and hasattr(control_plane, "set_down"):
            control_plane.set_down(False)
        ha = getattr(self.cluster, "metadata_ha", None)
        meta_fifo = self._bound.get("meta")
        if ha is not None and meta_fifo:
            replica = ha.replica_named(meta_fifo.pop(0))
            if replica is not None:
                replica.recover()
                self._mark(f"{replica.host.name} (metadata replica) rejoins")
        stagger = float(event.param("stagger_s", 0.25))
        for i, name in enumerate(downed):
            def boot(name=name):
                node = self.cluster.nodes[name]
                self._mark(f"{name} cold restart")
                proc = node.restart()
                if proc is not None:
                    def done(_=None, name=name):
                        self._mark(f"{name} consistent")

                    self.sim.process(self._await(proc, done))

            if i == 0:
                boot()
            else:
                self.sim.call_in(i * stagger, boot)
        self._mark(f"power restored ({len(downed)} nodes booting)")
