"""Chaos engine: seeded, declarative fault schedules for the simulator.

A :class:`FaultSchedule` is a plain list of timed :class:`FaultEvent`\\ s —
node crashes and rejoins, link partitions, loss and delay bursts, switch
rule flaps, controller stalls.  A :class:`ChaosEngine` plays a schedule
against a built :class:`~repro.core.system.NiceCluster` or
:class:`~repro.noob.system.NoobCluster` inside the discrete-event kernel,
so every run is bit-reproducible from ``(cluster seed, schedule)`` and the
engine's typed event log can be compared across runs.

Used with :mod:`repro.check` this gives a Jepsen-style harness: inject
faults, record client histories, verify linearizability
(``python -m repro.bench chaos``).
"""

from .engine import ChaosEngine
from .schedule import (
    FaultEvent,
    FaultSchedule,
    controlplane_schedules,
    durability_schedules,
    standard_schedules,
)

__all__ = [
    "ChaosEngine",
    "FaultEvent",
    "FaultSchedule",
    "controlplane_schedules",
    "durability_schedules",
    "standard_schedules",
]
