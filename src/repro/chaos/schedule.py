"""Declarative fault schedules.

A schedule is data, not code: a named, time-sorted list of
:class:`FaultEvent` records that :class:`~repro.chaos.engine.ChaosEngine`
interprets.  Keeping schedules declarative makes them printable, hashable
into test IDs, and — together with the deterministic simulator — makes a
chaos run reproducible from ``(seed, schedule)`` alone.

Event kinds (see the engine for exact semantics):

=================  ==========================================================
``crash``          fail-stop the target node (volatile state lost)
``rejoin``         power the node back on; NICE runs the two-stage rejoin
``isolate``        take the node's access link down (node alive, link dark)
``heal``           restore the node's access link
``partition``      install switch drop rules between the node and its
                   storage/metadata peers — clients still reach it (the
                   asymmetric partition that exposes stale replicas)
``heal_partition`` remove those drop rules
``loss``           random packet loss on the node's link for ``duration``
``jitter``         extra random delivery delay on the link for ``duration``
``flap``           delete the partition's vring flow rules, re-sync after
                   ``down_s`` (NICE only)
``stall``          raise the controller's control-plane latency for
                   ``duration`` (NICE only)
``metadata_crash`` fail-stop the acting metadata leader; a standby must
                   promote itself (NICE with ``metadata_standbys`` only)
``metadata_rejoin`` power the crashed metadata replica back on (it returns
                   as a standby and syncs the membership log)
``controller_crash`` sever the controller↔switch channel: flow-mods and
                   packet-ins are dropped (NICE only)
``controller_recover`` restore the channel and run the epoch-stamped
                   reconciliation pass (diff-repair, not reinstall)
``rack_isolate``   cut every spine uplink of one rack's leaf switch — the
                   whole failure domain drops off the fabric (leaf-spine
                   clusters only; target ``"rack:<idx>"``)
``rack_heal``      restore the rack's uplinks and two-phase-rejoin every
                   node the metadata service declared failed meanwhile
``disk_slow``      degrade the target node's disk by ``factor`` (fail-slow
                   fault: the device still works, just slower)
``disk_heal``      restore the disk's factory service times
``disk_corrupt``   silently flip bits in ``count`` stored objects on the
                   target node (bit-rot; checksums catch it on read/scrub)
``power_failure``  whole-cluster power loss: every up node crashes with
                   volatile state *and* unflushed disk caches discarded;
                   the metadata leader and controller channel go dark too
``power_restore``  power returns: controller + metadata first, then the
                   storage nodes restart staggered by ``stagger_s``; each
                   cold-restarts from its durable image + WAL replay (§4.4
                   complete-cluster-failure recovery)
=================  ==========================================================

Targets are symbolic and resolved by the engine *at fire time* (membership
may have changed): ``"node:<name>"``, ``"primary:<key>"``,
``"secondary:<key>"`` (first non-primary replica), ``"key:<key>"`` (the
key's partition, for ``flap``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "controlplane_schedules",
    "durability_schedules",
    "standard_schedules",
]


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault: *at* ``at`` seconds, do ``kind`` to ``target``."""

    at: float
    kind: str
    target: str = ""
    params: Tuple[Tuple[str, object], ...] = ()

    def param(self, name: str, default=None):
        return dict(self.params).get(name, default)

    @staticmethod
    def make(at: float, kind: str, target: str = "", **params) -> "FaultEvent":
        """Build an event with params given as keyword arguments."""
        return FaultEvent(float(at), kind, target, tuple(sorted(params.items())))

    def __str__(self) -> str:
        p = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"@{self.at:g}s {self.kind}({self.target}{', ' if p else ''}{p})"


@dataclass(frozen=True)
class FaultSchedule:
    """A named, time-ordered fault script."""

    name: str
    events: Tuple[FaultEvent, ...]
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=lambda e: e.at))
        )

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def horizon(self) -> float:
        """Time of the last scheduled event."""
        return self.events[-1].at if self.events else 0.0

    # -- named schedules ----------------------------------------------------------
    @staticmethod
    def crash_rejoin(key: str, fail_at: float = 2.0, rejoin_at: float = 6.0) -> "FaultSchedule":
        """The Fig 11 scenario: a secondary replica crashes and rejoins."""
        return FaultSchedule(
            "crash_rejoin",
            (
                FaultEvent.make(fail_at, "crash", f"secondary:{key}"),
                FaultEvent.make(rejoin_at, "rejoin", f"secondary:{key}"),
            ),
            "secondary replica fail-stop crash, later restart + rejoin",
        )

    @staticmethod
    def primary_crash(key: str, fail_at: float = 2.0, rejoin_at: float = 6.0) -> "FaultSchedule":
        """Crash the key's *primary* mid-traffic: exercises failover
        reconciliation (committed-anywhere ⇒ commit-everywhere, §4.4)."""
        return FaultSchedule(
            "primary_crash",
            (
                FaultEvent.make(fail_at, "crash", f"primary:{key}"),
                FaultEvent.make(rejoin_at, "rejoin", f"primary:{key}"),
            ),
            "primary crash during 2PC traffic, later restart + rejoin",
        )

    @staticmethod
    def partition_rejoin(key: str, start: float = 2.0, heal_at: float = 5.0) -> "FaultSchedule":
        """Asymmetric partition of a secondary from its peers, then heal.

        The node stays reachable from clients the whole time — exactly the
        window where a system without NICE's consistent-rejoin discipline
        serves stale data.  After healing, the node is explicitly rejoined
        (an isolated node is declared failed and must rejoin, §4.5)."""
        return FaultSchedule(
            "partition_rejoin",
            (
                FaultEvent.make(start, "partition", f"secondary:{key}"),
                FaultEvent.make(heal_at, "heal_partition", f"secondary:{key}"),
                FaultEvent.make(heal_at, "rejoin", f"secondary:{key}"),
            ),
            "secondary partitioned from peers (clients still reach it), heal + rejoin",
        )

    @staticmethod
    def isolate_rejoin(key: str, start: float = 2.0, heal_at: float = 5.0) -> "FaultSchedule":
        """Full access-link blackout of a secondary, then heal + rejoin."""
        return FaultSchedule(
            "isolate_rejoin",
            (
                FaultEvent.make(start, "isolate", f"secondary:{key}"),
                FaultEvent.make(heal_at, "heal", f"secondary:{key}"),
                FaultEvent.make(heal_at, "rejoin", f"secondary:{key}"),
            ),
            "secondary's access link fully dark, heal + rejoin",
        )

    @staticmethod
    def rack_outage(rack: int = 1, start: float = 2.0, heal_at: float = 5.0) -> "FaultSchedule":
        """Take a whole rack off the fabric (leaf uplinks dark), then heal.

        The rack-aware placement guarantees every replica set spans >= 2
        racks, so the surviving fabric must keep every partition available
        and linearizable; on heal, the rack's nodes run the §4.4 two-phase
        rejoin."""
        return FaultSchedule(
            "rack_outage",
            (
                FaultEvent.make(start, "rack_isolate", f"rack:{rack}"),
                FaultEvent.make(heal_at, "rack_heal", f"rack:{rack}"),
            ),
            f"rack {rack} isolated from the spines, later healed + rejoined",
        )

    @staticmethod
    def lossy_network(key: str, start: float = 1.0, rate: float = 0.05, duration: float = 4.0) -> "FaultSchedule":
        """A loss + jitter burst on every replica link of the key."""
        return FaultSchedule(
            "lossy_network",
            (
                FaultEvent.make(start, "loss", f"primary:{key}", rate=rate, duration=duration),
                FaultEvent.make(start, "loss", f"secondary:{key}", rate=rate, duration=duration),
                FaultEvent.make(start, "jitter", f"secondary:{key}", jitter_s=200e-6, duration=duration),
            ),
            f"{rate:.0%} loss burst + delay jitter on the key's replica links",
        )

    @staticmethod
    def rule_flap(key: str, at: float = 2.0, down_s: float = 0.2, times: int = 2, gap: float = 1.5) -> "FaultSchedule":
        """Repeatedly delete and re-sync the key partition's flow rules."""
        events = tuple(
            FaultEvent.make(at + i * gap, "flap", f"key:{key}", down_s=down_s)
            for i in range(times)
        )
        return FaultSchedule(
            "rule_flap", events, "vring flow rules deleted and re-synced (NICE only)"
        )

    @staticmethod
    def controller_stall(at: float = 1.5, latency_s: float = 0.05, duration: float = 3.0) -> "FaultSchedule":
        """Slow the control plane 100×: packet-ins and flow-mods crawl."""
        return FaultSchedule(
            "controller_stall",
            (FaultEvent.make(at, "stall", latency_s=latency_s, duration=duration),),
            "control-plane latency raised for a window (NICE only)",
        )

    @staticmethod
    def metadata_failover(crash_at: float = 2.0, rejoin_at: float = 5.5) -> "FaultSchedule":
        """Kill the metadata leader mid-2PC traffic; a standby must detect
        the lease expiry, replay the membership log, mint the next epoch
        and reconcile the switches.  The deposed leader later returns and
        must demote itself (its stale-epoch messages are fenced)."""
        return FaultSchedule(
            "metadata_failover",
            (
                FaultEvent.make(crash_at, "metadata_crash"),
                FaultEvent.make(rejoin_at, "metadata_rejoin"),
            ),
            "metadata leader crash -> standby promotion -> deposed leader returns",
        )

    @staticmethod
    def controller_outage(
        key: str,
        node_fail_at: float = 1.5,
        crash_at: float = 3.8,
        node_rejoin_at: float = 4.0,
        recover_at: float = 5.5,
    ) -> "FaultSchedule":
        """Sever the switch channel across a node rejoin: the metadata
        leader defers the rejoin (its visibility flow-mods would be
        dropped), the node retries, and the post-recovery reconciliation
        repairs exactly the rules that diverged."""
        return FaultSchedule(
            "controller_outage",
            (
                FaultEvent.make(node_fail_at, "crash", f"secondary:{key}"),
                FaultEvent.make(crash_at, "controller_crash"),
                FaultEvent.make(node_rejoin_at, "rejoin", f"secondary:{key}"),
                FaultEvent.make(recover_at, "controller_recover"),
            ),
            "controller channel dark across a node rejoin; reconcile on recovery",
        )

    @staticmethod
    def node_meta_crash(
        key: str,
        node_fail_at: float = 1.5,
        meta_crash_at: float = 2.2,
        meta_rejoin_at: float = 4.6,
        node_rejoin_at: float = 6.4,
    ) -> "FaultSchedule":
        """Combined data+control failure: a storage node dies, then the
        metadata leader dies before declaring it.  The promoted standby
        must declare the node from its own (replayed) state, and the node's
        rejoin lands on the new leader via redirect/failover."""
        return FaultSchedule(
            "node_meta_crash",
            (
                FaultEvent.make(node_fail_at, "crash", f"secondary:{key}"),
                FaultEvent.make(meta_crash_at, "metadata_crash"),
                FaultEvent.make(meta_rejoin_at, "metadata_rejoin"),
                FaultEvent.make(node_rejoin_at, "rejoin", f"secondary:{key}"),
            ),
            "storage node + metadata leader crash; promoted standby handles both",
        )

    @staticmethod
    def power_blackout(
        fail_at: float = 3.0, restore_at: float = 5.0, stagger_s: float = 0.25
    ) -> "FaultSchedule":
        """Complete cluster power failure (§4.4, Complete Cluster Failure).

        Every node loses volatile state *and* its disk's unflushed write
        cache — only flushed (forced + flush-covered) bytes survive.  On
        restore, nodes cold-restart from the durable image + WAL replay;
        every acknowledged put must still be readable."""
        return FaultSchedule(
            "power_blackout",
            (
                FaultEvent.make(fail_at, "power_failure"),
                FaultEvent.make(restore_at, "power_restore", stagger_s=stagger_s),
            ),
            "whole-cluster power loss; staggered cold restart from durable state",
        )

    @staticmethod
    def bit_rot(
        key: str, at: float = 2.5, count: int = 4, target_role: str = "secondary"
    ) -> "FaultSchedule":
        """Silent on-disk corruption of stored objects on one replica.

        Per-object checksums must catch the rot on the next read (read
        path) or scrubber pass (cold data) and repair from a consistent
        peer — no client may ever observe a corrupted value."""
        return FaultSchedule(
            "bit_rot",
            (
                FaultEvent.make(at, "disk_corrupt", f"{target_role}:{key}", count=count),
            ),
            f"silent bit-rot in {count} objects on the {target_role}; "
            "checksums + scrub-and-repair must recover",
        )

    @staticmethod
    def fail_slow(
        key: str,
        at: float = 1.5,
        heal_at: float = 6.0,
        factor: float = 8.0,
        target_role: str = "primary",
    ) -> "FaultSchedule":
        """A fail-slow (gray-failure) disk: the device answers, just
        ``factor``× slower.  The obs-layer health signal must flag it, the
        metadata service must drain it from the read path and hand off the
        primary role; on heal the node is restored."""
        return FaultSchedule(
            "fail_slow",
            (
                FaultEvent.make(at, "disk_slow", f"{target_role}:{key}", factor=factor),
                FaultEvent.make(heal_at, "disk_heal", f"{target_role}:{key}"),
            ),
            f"disk {factor:g}x slower on the {target_role}; detector must "
            "drain + hand off, then restore on heal",
        )

    @staticmethod
    def random(seed: int, key: str, horizon: float = 8.0, n_episodes: int = 3, nice_only_events: bool = False) -> "FaultSchedule":
        """A seeded random schedule of fault episodes.

        Episodes never overlap (each heals before the next begins) so
        recovery paths — not pile-ups — are what gets exercised.  The same
        ``seed`` always produces the same schedule.
        """
        rng = np.random.default_rng(seed)
        kinds = ["crash", "partition", "isolate", "loss", "jitter"]
        if nice_only_events:
            kinds += ["flap", "stall"]
        events: List[FaultEvent] = []
        t = 0.5 + float(rng.uniform(0.0, 1.0))
        for _ in range(n_episodes):
            if t >= horizon - 1.0:
                break
            kind = kinds[int(rng.integers(len(kinds)))]
            role = "primary" if rng.random() < 0.3 else "secondary"
            target = f"{role}:{key}"
            dur = float(rng.uniform(0.8, 2.0))
            if kind == "crash":
                events += [
                    FaultEvent.make(t, "crash", target),
                    FaultEvent.make(t + dur, "rejoin", target),
                ]
            elif kind == "partition":
                events += [
                    FaultEvent.make(t, "partition", target),
                    FaultEvent.make(t + dur, "heal_partition", target),
                    FaultEvent.make(t + dur, "rejoin", target),
                ]
            elif kind == "isolate":
                events += [
                    FaultEvent.make(t, "isolate", target),
                    FaultEvent.make(t + dur, "heal", target),
                    FaultEvent.make(t + dur, "rejoin", target),
                ]
            elif kind == "loss":
                events.append(
                    FaultEvent.make(
                        t, "loss", target, rate=float(rng.uniform(0.02, 0.15)), duration=dur
                    )
                )
            elif kind == "jitter":
                events.append(
                    FaultEvent.make(
                        t, "jitter", target, jitter_s=float(rng.uniform(1e-4, 5e-4)), duration=dur
                    )
                )
            elif kind == "flap":
                events.append(FaultEvent.make(t, "flap", f"key:{key}", down_s=0.2))
            else:  # stall
                events.append(
                    FaultEvent.make(t, "stall", latency_s=0.02, duration=dur)
                )
            t += dur + 0.5 + float(rng.uniform(0.0, 1.0))
        return FaultSchedule(
            f"random[{seed}]", tuple(events), f"seeded random episodes (seed={seed})"
        )


def standard_schedules(key: str) -> Dict[str, FaultSchedule]:
    """The named schedule suite the chaos bench sweeps, keyed by name."""
    schedules = [
        FaultSchedule.crash_rejoin(key),
        FaultSchedule.primary_crash(key),
        FaultSchedule.partition_rejoin(key),
        FaultSchedule.isolate_rejoin(key),
        FaultSchedule.lossy_network(key),
    ]
    return {s.name: s for s in schedules}


def controlplane_schedules(key: str) -> Dict[str, FaultSchedule]:
    """The control-plane fault family (NICE with metadata standbys)."""
    schedules = [
        FaultSchedule.metadata_failover(),
        FaultSchedule.controller_outage(key),
        FaultSchedule.node_meta_crash(key),
    ]
    return {s.name: s for s in schedules}


def durability_schedules(key: str) -> Dict[str, FaultSchedule]:
    """The durability fault family (DESIGN.md §5k): power loss, bit-rot,
    and fail-slow disks."""
    schedules = [
        FaultSchedule.power_blackout(),
        FaultSchedule.bit_rot(key),
        FaultSchedule.fail_slow(key),
    ]
    return {s.name: s for s in schedules}
