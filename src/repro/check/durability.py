"""Acked-durability checker: acknowledged puts survive power loss.

Fig 3's durability contract — every write a put acknowledgment depends on
sits behind a forced log append — implies a client-visible guarantee: once
a put is acked, its effect must survive *complete cluster power failure*
(§4.4, Complete Cluster Failure).  This checker decides, from the recorded
op history plus the post-restart surviving value of each key, whether the
guarantee held.

Per key, let ``P`` be the acked put with the latest return stamp.  A put
``Q`` is *admissible* as the surviving value unless it provably linearized
before ``P``: an acked ``Q`` that returned before ``P`` was even invoked
is ordered before ``P`` and cannot be the final state.  Everything else —
``P`` itself, acked puts concurrent with or later than ``P``, and
ambiguous puts (failed / timed out / pending at cut-off, whose effect may
have landed anyway) — may legitimately be what the cluster recovers.

A key with at least one acked put whose surviving value is missing or
inadmissible is a durability violation: an acknowledged write was lost
(the cluster rolled back past ``P``) or a phantom value appeared.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Hashable, List, Optional, Tuple

from .history import Operation
from .linearizability import CheckResult

__all__ = ["check_durable"]

#: Sentinel for "the key did not survive" (distinct from surviving None).
_MISSING = object()


def _canon(value: Any) -> Hashable:
    """Hashable canonical form so unhashable values can be compared."""
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


def check_durable(
    ops: Iterable[Operation],
    final_values: Dict[str, Any],
) -> CheckResult:
    """Check every acked put against the post-restart surviving state.

    ``final_values`` maps key -> the value the cluster serves (or stores)
    for that key after the full restart; keys that did not survive are
    simply absent.  Keys with no acked put are unconstrained (their puts
    were all ambiguous, so any outcome — including loss — is legal).
    """
    by_key: Dict[str, List[Operation]] = {}
    n_ops = 0
    for op in ops:
        n_ops += 1
        if op.kind == "put":
            by_key.setdefault(op.key, []).append(op)

    checked: List[str] = []
    for key in sorted(by_key):
        puts = by_key[key]
        acked = [p for p in puts if p.acked]
        if not acked:
            continue
        checked.append(key)
        last = max(acked, key=lambda p: p.return_ts)
        admissible = {
            _canon(p.value)
            for p in puts
            if not (p.acked and p.return_ts <= last.invoke_ts)
        }
        final = final_values.get(key, _MISSING)
        if final is _MISSING:
            return CheckResult(
                ok=False,
                n_ops=n_ops,
                checked_keys=tuple(checked),
                key=key,
                violation=[last],
                reason=(
                    f"acked put {last.value!r} (returned t={last.return_ts:.6f}) "
                    f"lost: key {key!r} missing after restart"
                ),
            )
        if _canon(final) not in admissible:
            return CheckResult(
                ok=False,
                n_ops=n_ops,
                checked_keys=tuple(checked),
                key=key,
                violation=[last],
                reason=(
                    f"key {key!r} survived with {final!r}, but the last acked "
                    f"put wrote {last.value!r} (returned t={last.return_ts:.6f}); "
                    "an acknowledged write was rolled back"
                ),
            )
    return CheckResult(ok=True, n_ops=n_ops, checked_keys=tuple(checked))
