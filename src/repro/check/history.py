"""Op-history recording for consistency checking.

A :class:`HistoryRecorder` captures every client operation as an
:class:`Operation` with simulated-time invoke/return stamps — the raw
material for the linearizability and monotonic-reads checkers.  It hooks
into the client libraries non-invasively: :meth:`HistoryRecorder.record`
wraps the client's operation *generator*, so the recorder sees the exact
invocation instant (when the process starts running, not when it was
scheduled) and the exact completion instant and :class:`OpResult`.

Recording is attached per client (``client.recorder = recorder``); clients
without a recorder pay nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["HistoryRecorder", "Operation"]


@dataclass
class Operation:
    """One client operation in a recorded history.

    ``value`` is the written value for puts and the *returned* value for
    gets (``None`` until completion, and for misses).  ``return_ts`` stays
    ``None`` for operations still pending when the run was cut off; the
    checkers treat those like timeouts (effect ambiguous).
    """

    op_index: int
    client: str
    kind: str  # "put" | "get"
    key: str
    invoke_ts: float
    value: Any = None
    return_ts: Optional[float] = None
    ok: Optional[bool] = None
    status: str = "pending"
    retries: int = 0

    @property
    def completed(self) -> bool:
        return self.return_ts is not None

    @property
    def acked(self) -> bool:
        """Did the client observe success (so the effect is guaranteed)?"""
        return self.ok is True

    def as_tuple(self) -> Tuple:
        """Canonical form for determinism comparisons across runs."""
        return (
            self.op_index,
            self.client,
            self.kind,
            self.key,
            self.invoke_ts,
            self.value,
            self.return_ts,
            self.ok,
            self.status,
            self.retries,
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        ret = f"{self.return_ts:.6f}" if self.completed else "…"
        val = "" if self.kind == "get" and not self.completed else f"={self.value!r}"
        return (
            f"[{self.invoke_ts:.6f},{ret}] {self.client} "
            f"{self.kind}({self.key}){val} -> {self.status}"
        )


@dataclass
class HistoryRecorder:
    """Collects :class:`Operation` records from any number of clients."""

    ops: List[Operation] = field(default_factory=list)

    def attach(self, *clients) -> "HistoryRecorder":
        """Point each client's ``recorder`` attribute at this recorder."""
        for client in clients:
            client.recorder = self
        return self

    def record(self, client: str, kind: str, key: str, value: Any, sim, gen) -> Iterator:
        """Wrap a client op generator; yields through to the simulator.

        The wrapper stamps ``invoke_ts`` when the process first runs and
        fills in the outcome from the generator's returned
        :class:`~repro.core.client.OpResult`.
        """
        op = Operation(
            op_index=len(self.ops),
            client=client,
            kind=kind,
            key=key,
            invoke_ts=sim.now,
            value=None if kind == "get" else value,
        )
        self.ops.append(op)
        result = yield from gen
        op.return_ts = sim.now
        if result is None:  # defensive: a client bug, not a protocol outcome
            op.ok = False
            op.status = "error"
        else:
            op.ok = bool(result.ok)
            op.status = result.status if result.status else ("ok" if result.ok else "error")
            op.retries = result.retries
            if kind == "get" and result.ok:
                op.value = result.value
        return result

    # -- views -----------------------------------------------------------------
    def per_key(self) -> Dict[str, List[Operation]]:
        """Operations grouped by key, each group in invocation order."""
        by_key: Dict[str, List[Operation]] = {}
        for op in self.ops:
            by_key.setdefault(op.key, []).append(op)
        return by_key

    def completed(self) -> List[Operation]:
        return [op for op in self.ops if op.completed]

    def pending(self) -> List[Operation]:
        return [op for op in self.ops if not op.completed]

    def as_tuples(self) -> List[Tuple]:
        return [op.as_tuple() for op in self.ops]

    def __len__(self) -> int:
        return len(self.ops)
