"""Cheap real-time staleness checker (necessary condition for linearizability).

Where the Wing–Gong search is exact but exponential in the worst case,
this screen is O(n log n + v·g) per key and catches the violation class
the NOOB misconfigurations actually produce — *stale reads*: a get
returns a value that some acked put had already overwritten before the
get was even invoked.

Two rules per key (writes must carry distinct values — the chaos workload
guarantees this by tagging each put ``"{client}:{seq}"``):

* **stale read**: get ``G`` returned the value of put ``W`` (or the
  initial ``None``), yet some acked put ``Q ≠ W`` satisfies
  ``Q.return < G.invoke`` and ``W.return < Q.invoke`` — ``Q`` strictly
  follows ``W`` and was fully acknowledged before ``G`` began, so ``G``
  observed an overwritten value.
* **read regression**: gets ``G1``, ``G2`` with ``G1.return < G2.invoke``
  (any clients) where ``G2``'s writer strictly precedes ``G1``'s writer
  (``W2.return < W1.invoke``) — the value went backwards in real time.

Every violation it reports is a true linearizability violation; a pass is
*not* a linearizability proof (use :func:`check_linearizable` for that).
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple

from .history import Operation
from .linearizability import CheckResult

__all__ = ["check_monotonic"]


def _writer_window(
    value: object, writers: Dict[object, Operation]
) -> Tuple[float, float]:
    """(invoke, return) of the put that wrote ``value``; initial = (-inf, -inf)."""
    if value is None:
        return (-math.inf, -math.inf)
    w = writers.get(value)
    if w is None:
        # Value from outside the recorded history (e.g. seeded before
        # recording started): treat like the initial value.
        return (-math.inf, -math.inf)
    return (w.invoke_ts, w.return_ts if w.completed else math.inf)


def _check_key(key: str, ops: List[Operation], n_total: int) -> Optional[CheckResult]:
    writers: Dict[object, Operation] = {}
    for op in ops:
        if op.kind == "put":
            writers[op.value] = op
    acked_puts = [op for op in ops if op.kind == "put" and op.acked]
    gets = [
        op
        for op in ops
        if op.kind == "get" and (op.acked or (op.completed and op.status == "miss"))
    ]

    def violation(core: List[Operation], reason: str) -> CheckResult:
        seen, ordered = set(), []
        for op in sorted(core, key=lambda o: o.invoke_ts):
            if id(op) not in seen:
                seen.add(id(op))
                ordered.append(op)
        return CheckResult(
            ok=False, n_ops=n_total, key=key, violation=ordered, reason=reason
        )

    # -- stale reads: acked puts sorted by return; prefix-max of invoke lets
    # us ask "did any put acked before G.invoke start after W returned?"
    acked_by_ret = sorted(acked_puts, key=lambda p: p.return_ts)
    rets = [p.return_ts for p in acked_by_ret]
    prefix_best: List[Operation] = []  # prefix-argmax by invoke_ts
    best: Optional[Operation] = None
    for p in acked_by_ret:
        if best is None or p.invoke_ts > best.invoke_ts:
            best = p
        prefix_best.append(best)

    for g in gets:
        w_inv, w_ret = _writer_window(g.value, writers)
        # puts fully acked strictly before g was invoked
        hi = bisect.bisect_left(rets, g.invoke_ts)
        if hi == 0:
            continue
        q = prefix_best[hi - 1]
        if q.invoke_ts > w_ret and writers.get(g.value) is not q:
            core = [q, g]
            w = writers.get(g.value)
            if w is not None:
                core.insert(0, w)
            what = f"value {g.value!r}" if g.value is not None else "the initial value"
            return violation(
                core,
                f"stale read: {g.client} get({key}) returned {what}, "
                f"overwritten by an acked put before the get was invoked",
            )

    # -- read regressions across the whole history (subsumes per-client
    # monotonic reads since every client sees the same global order).
    gets_by_inv = sorted(gets, key=lambda g: g.invoke_ts)
    for j, g2 in enumerate(gets_by_inv):
        w2_inv, w2_ret = _writer_window(g2.value, writers)
        for g1 in gets_by_inv[:j]:
            if not g1.completed or g1.return_ts >= g2.invoke_ts:
                continue
            if g1.value == g2.value:
                continue
            w1_inv, _ = _writer_window(g1.value, writers)
            if w2_ret < w1_inv:
                core = [g1, g2]
                for v in (g1.value, g2.value):
                    w = writers.get(v)
                    if w is not None:
                        core.append(w)
                return violation(
                    core,
                    f"read regression: {g2.client} get({key}) returned "
                    f"{g2.value!r} after {g1.client} had already read the "
                    f"strictly newer {g1.value!r}",
                )
    return None


def check_monotonic(ops: Sequence[Operation]) -> CheckResult:
    """Screen a history for stale reads and read regressions, per key."""
    by_key: Dict[str, List[Operation]] = {}
    for op in ops:
        if op.kind in ("put", "get"):
            by_key.setdefault(op.key, []).append(op)
    for key in sorted(by_key):
        bad = _check_key(key, by_key[key], len(ops))
        if bad is not None:
            return bad
    return CheckResult(ok=True, n_ops=len(ops), checked_keys=tuple(sorted(by_key)))
