"""Wing–Gong linearizability checker for the per-key KV register model.

The storage systems under test expose independent single-value registers
(one per key), so a history is linearizable iff each key's subhistory is —
the checker partitions by key and runs an exact memoized Wing&Gong [1986]
search per register:

* state = (set of linearized ops, value of the register);
* an op may be linearized next iff no *other* unlinearized op returned
  before it was invoked (real-time order is preserved);
* a read may be linearized only if it returns the current register value;
* acked puts and completed gets are *required*; puts that failed, timed
  out, or were still pending at cut-off are *ambiguous* — they may take
  effect at any point after invocation or never (they get an infinite
  linearization window and need not be linearized at all).  Gets that
  timed out carry no information and are dropped.  Gets that returned
  ``status="miss"`` are reads of the initial value ``None``.

On violation the checker shrinks the offending key's subhistory to a
minimal violating core (greedy delta-debugging over a failing prefix) so
the counterexample is human-readable — typically the 3-op stale-read
pattern ``put(old) · put(new) · get->old``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .history import Operation

__all__ = ["CheckLimitExceeded", "CheckResult", "check_linearizable"]

#: Register value before any put is linearized.
INITIAL = None


class CheckLimitExceeded(RuntimeError):
    """The search visited more states than ``max_states`` allows."""


@dataclass
class CheckResult:
    """Outcome of a history check."""

    ok: bool
    n_ops: int
    checked_keys: Tuple[str, ...] = ()
    key: Optional[str] = None  #: first violating key (None when ok)
    violation: List[Operation] = field(default_factory=list)  #: minimal core
    reason: str = ""
    states: int = 0  #: search states visited (cost diagnostics)

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        """Multi-line human-readable report (empty string when ok)."""
        if self.ok:
            return ""
        lines = [f"non-linearizable history on key {self.key!r}: {self.reason}"]
        lines += [f"  {op}" for op in self.violation]
        return "\n".join(lines)


@dataclass
class _Entry:
    """One op of a per-key subhistory, normalised for the search."""

    op: Operation
    is_write: bool
    value: object
    inv: float
    ret: float  # math.inf for ambiguous/pending ops
    required: bool


def _entries_for_key(ops: Sequence[Operation]) -> List[_Entry]:
    entries: List[_Entry] = []
    for op in ops:
        if op.kind == "put":
            if op.acked:
                entries.append(_Entry(op, True, op.value, op.invoke_ts, op.return_ts, True))
            else:
                # Failed / timed-out / pending put: may have taken effect on
                # some replica anyway, at any time after invocation.
                entries.append(_Entry(op, True, op.value, op.invoke_ts, math.inf, False))
        elif op.kind == "get":
            if op.acked:
                entries.append(_Entry(op, False, op.value, op.invoke_ts, op.return_ts, True))
            elif op.completed and op.status == "miss":
                # A definite "no such key" answer: a read of INITIAL.
                entries.append(_Entry(op, False, INITIAL, op.invoke_ts, op.return_ts, True))
            # else: timed-out/pending get — no information, drop.
    return entries


def _search_key(entries: List[_Entry], max_states: int) -> Tuple[bool, int]:
    """Exact W&G search over one register's entries.

    Returns ``(linearizable, states_visited)``; raises
    :class:`CheckLimitExceeded` past ``max_states``.
    """
    n = len(entries)
    if n == 0:
        return True, 0
    inv = [e.inv for e in entries]
    ret = [e.ret for e in entries]
    required_mask = 0
    for i, e in enumerate(entries):
        if e.required:
            required_mask |= 1 << i
    all_mask = (1 << n) - 1

    # State: (mask of linearized entries, index of last linearized write;
    # -1 = INITIAL).  DFS with memoization on visited states.
    seen = set()
    states = 0
    stack: List[Tuple[int, int]] = [(0, -1)]
    while stack:
        mask, cur = stack.pop()
        if (mask, cur) in seen:
            continue
        seen.add((mask, cur))
        states += 1
        if states > max_states:
            raise CheckLimitExceeded(
                f"linearizability search exceeded {max_states} states "
                f"({n} ops on one key)"
            )
        if mask & required_mask == required_mask:
            return True, states

        # Real-time rule: entry i is eligible iff no *unlinearized* j has
        # ret[j] < inv[i].  min over unlinearized rets decides for all i
        # (using the second-smallest when i itself holds the minimum).
        remaining = all_mask & ~mask
        min1 = min2 = math.inf
        argmin1 = -1
        m = remaining
        while m:
            low = m & -m
            i = low.bit_length() - 1
            m ^= low
            r = ret[i]
            if r < min1:
                min2 = min1
                min1, argmin1 = r, i
            elif r < min2:
                min2 = r
        cur_value = INITIAL if cur < 0 else entries[cur].value

        m = remaining
        while m:
            low = m & -m
            i = low.bit_length() - 1
            m ^= low
            bound = min2 if i == argmin1 else min1
            if bound < inv[i]:
                continue  # some other pending op returned before i invoked
            e = entries[i]
            if e.is_write:
                stack.append((mask | (1 << i), i))
            elif e.value == cur_value:
                stack.append((mask | (1 << i), cur))
    return False, states


def _is_linearizable(entries: List[_Entry], max_states: int) -> bool:
    ok, _ = _search_key(entries, max_states)
    return ok


def _minimize(entries: List[_Entry], max_states: int) -> List[_Entry]:
    """Shrink a non-linearizable per-key subhistory to a minimal core.

    Two passes: (1) cut to the shortest failing prefix by invocation time
    (keeping every write whose value some kept read returned, so reads
    never dangle); (2) greedy delta-debugging — drop each op if the
    remainder still fails.  Writes that a kept read observed are never
    dropped, which keeps the counterexample semantically meaningful.
    """

    def read_values(subset: List[_Entry]) -> set:
        return {e.value for e in subset if not e.is_write and e.value is not INITIAL}

    def closed(subset: List[_Entry]) -> List[_Entry]:
        # Keep writes whose value is observed by a kept read.
        needed = read_values(subset)
        extra = [
            e
            for e in entries
            if e.is_write and e.value in needed and e not in subset
        ]
        if not extra:
            return subset
        merged = subset + extra
        merged.sort(key=lambda e: e.inv)
        return merged

    def fails(subset: List[_Entry]) -> bool:
        try:
            return not _is_linearizable(subset, max_states)
        except CheckLimitExceeded:
            return False  # inconclusive: treat as "cannot shrink this way"

    ordered = sorted(entries, key=lambda e: e.inv)
    core = ordered
    # Pass 1: shortest failing invocation-prefix (doubling then refine).
    for cut in range(1, len(ordered) + 1):
        prefix = closed(ordered[:cut])
        if fails(prefix):
            core = prefix
            break

    # Pass 2: greedy removal, latest ops first.
    changed = True
    while changed:
        changed = False
        for e in sorted(core, key=lambda x: -x.inv):
            trial = [x for x in core if x is not e]
            if e.is_write and e.value in read_values(trial):
                continue  # a kept read observed this write
            if fails(trial):
                core = trial
                changed = True
    return sorted(core, key=lambda e: e.inv)


def check_linearizable(
    ops: Sequence[Operation],
    max_states: int = 2_000_000,
    minimize: bool = True,
) -> CheckResult:
    """Check a recorded history against the per-key register model.

    Keys are checked independently (cheapest first, so a violation on a
    quiet key surfaces before an expensive search on a busy one).  On the
    first violating key the returned :class:`CheckResult` carries a
    minimal violating subhistory in ``violation``.
    """
    by_key: Dict[str, List[Operation]] = {}
    for op in ops:
        if op.kind in ("put", "get"):
            by_key.setdefault(op.key, []).append(op)

    total_states = 0
    for key in sorted(by_key, key=lambda k: len(by_key[k])):
        entries = _entries_for_key(by_key[key])
        ok, states = _search_key(entries, max_states)
        total_states += states
        if ok:
            continue
        core = _minimize(entries, max_states) if minimize else entries
        return CheckResult(
            ok=False,
            n_ops=len(ops),
            checked_keys=tuple(sorted(by_key)),
            key=key,
            violation=[e.op for e in core],
            reason=(
                f"no valid linearization of {len(entries)} ops "
                f"(minimal core: {len(core)} ops)"
            ),
            states=total_states,
        )
    return CheckResult(
        ok=True,
        n_ops=len(ops),
        checked_keys=tuple(sorted(by_key)),
        states=total_states,
    )
