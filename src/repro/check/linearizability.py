"""Wing–Gong linearizability checker for the per-key KV register model.

The storage systems under test expose independent single-value registers
(one per key), so a history is linearizable iff each key's subhistory is —
the checker partitions by key and runs an exact memoized Wing&Gong [1986]
search per register:

* state = (set of linearized ops, value of the register);
* an op may be linearized next iff no *other* unlinearized op returned
  before it was invoked (real-time order is preserved);
* a read may be linearized only if it returns the current register value;
* acked puts and completed gets are *required*; puts that failed, timed
  out, or were still pending at cut-off are *ambiguous* — they may take
  effect at any point after invocation or never (they get an infinite
  linearization window and need not be linearized at all).  Gets that
  timed out carry no information and are dropped.  Gets that returned
  ``status="miss"`` are reads of the initial value ``None``.

On violation the checker shrinks the offending key's subhistory to a
minimal violating core (greedy delta-debugging over a failing prefix) so
the counterexample is human-readable — typically the 3-op stale-read
pattern ``put(old) · put(new) · get->old``.

Long read-heavy subhistories (chaos runs record tens of thousands of gets
against a hot key) are handled by *commit-point windowed decomposition*:
the per-key subhistory is cut at every instant where all earlier ops have
returned before all later ops invoke — no op spans the cut, so a
linearization of the whole is exactly a linearization of each window in
sequence, with the set of possible register values carried across the
boundary.  Windows are searched independently against the carried value
set, which keeps the search's bitmask width (and the memo table) bounded
by the widest burst of truly-overlapping ops instead of the whole
history.  Ambiguous puts get an infinite return time and therefore block
every later cut, which is what makes the decomposition sound.  If even
one window exceeds ``window_ops`` the checker refuses loudly
(:class:`CheckLimitExceeded`) instead of grinding into an exponential
search — raise ``window_ops`` explicitly to force the attempt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .history import Operation

__all__ = ["CheckLimitExceeded", "CheckResult", "check_linearizable"]

#: Register value before any put is linearized.
INITIAL = None

#: Client name of the synthetic write that pins a decomposition window's
#: inherited register value (see :func:`_boundary_entry`).
_BOUNDARY_CLIENT = "<window-boundary>"


class CheckLimitExceeded(RuntimeError):
    """The search visited more states than ``max_states`` allows."""


@dataclass
class CheckResult:
    """Outcome of a history check."""

    ok: bool
    n_ops: int
    checked_keys: Tuple[str, ...] = ()
    key: Optional[str] = None  #: first violating key (None when ok)
    violation: List[Operation] = field(default_factory=list)  #: minimal core
    reason: str = ""
    states: int = 0  #: search states visited (cost diagnostics)

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        """Multi-line human-readable report (empty string when ok)."""
        if self.ok:
            return ""
        lines = [f"non-linearizable history on key {self.key!r}: {self.reason}"]
        lines += [f"  {op}" for op in self.violation]
        return "\n".join(lines)


@dataclass
class _Entry:
    """One op of a per-key subhistory, normalised for the search."""

    op: Operation
    is_write: bool
    value: object
    inv: float
    ret: float  # math.inf for ambiguous/pending ops
    required: bool


def _entries_for_key(ops: Sequence[Operation]) -> List[_Entry]:
    entries: List[_Entry] = []
    for op in ops:
        if op.kind == "put":
            if op.acked:
                entries.append(_Entry(op, True, op.value, op.invoke_ts, op.return_ts, True))
            else:
                # Failed / timed-out / pending put: may have taken effect on
                # some replica anyway, at any time after invocation.
                entries.append(_Entry(op, True, op.value, op.invoke_ts, math.inf, False))
        elif op.kind == "get":
            if op.acked:
                entries.append(_Entry(op, False, op.value, op.invoke_ts, op.return_ts, True))
            elif op.completed and op.status == "miss":
                # A definite "no such key" answer: a read of INITIAL.
                entries.append(_Entry(op, False, INITIAL, op.invoke_ts, op.return_ts, True))
            # else: timed-out/pending get — no information, drop.
    return entries


def _search_key(
    entries: List[_Entry],
    max_states: int,
    initial_values: Sequence = (INITIAL,),
    collect_finals: bool = False,
) -> Tuple[bool, int, List]:
    """Exact W&G search over one register's entries.

    The search may start from any of ``initial_values`` (one initial DFS
    state per candidate register value — a window of a decomposed history
    inherits the previous window's possible ending values).  Returns
    ``(linearizable, states_visited, finals)`` where ``finals`` is the
    register values reachable at an accepting state; with
    ``collect_finals=False`` the search stops at the first accept and
    ``finals`` holds just that state's value.  Raises
    :class:`CheckLimitExceeded` past ``max_states``.
    """
    n = len(entries)
    if n == 0:
        return True, 0, list(initial_values)
    inv = [e.inv for e in entries]
    ret = [e.ret for e in entries]
    required_mask = 0
    for i, e in enumerate(entries):
        if e.required:
            required_mask |= 1 << i
    all_mask = (1 << n) - 1

    # State: (mask of linearized entries, index of last linearized write;
    # negative = still on initial_values[-cur - 1]).  DFS with memoization
    # on visited states.
    seen = set()
    states = 0
    ok = False
    finals: List = []
    stack: List[Tuple[int, int]] = [(0, -(k + 1)) for k in range(len(initial_values))]
    while stack:
        mask, cur = stack.pop()
        if (mask, cur) in seen:
            continue
        seen.add((mask, cur))
        states += 1
        if states > max_states:
            raise CheckLimitExceeded(
                f"linearizability search exceeded {max_states} states "
                f"({n} ops on one key)"
            )
        cur_value = initial_values[-cur - 1] if cur < 0 else entries[cur].value
        if mask & required_mask == required_mask:
            ok = True
            if not collect_finals:
                return True, states, [cur_value]
            if not any(f == cur_value for f in finals):
                finals.append(cur_value)
            # Fall through: linearizing a remaining (ambiguous) write past
            # this accept can still produce further boundary values.

        # Real-time rule: entry i is eligible iff no *unlinearized* j has
        # ret[j] < inv[i].  min over unlinearized rets decides for all i
        # (using the second-smallest when i itself holds the minimum).
        remaining = all_mask & ~mask
        min1 = min2 = math.inf
        argmin1 = -1
        m = remaining
        while m:
            low = m & -m
            i = low.bit_length() - 1
            m ^= low
            r = ret[i]
            if r < min1:
                min2 = min1
                min1, argmin1 = r, i
            elif r < min2:
                min2 = r

        m = remaining
        while m:
            low = m & -m
            i = low.bit_length() - 1
            m ^= low
            bound = min2 if i == argmin1 else min1
            if bound < inv[i]:
                continue  # some other pending op returned before i invoked
            e = entries[i]
            if e.is_write:
                stack.append((mask | (1 << i), i))
            elif e.value == cur_value:
                stack.append((mask | (1 << i), cur))
    return ok, states, finals


def _is_linearizable(entries: List[_Entry], max_states: int) -> bool:
    return _search_key(entries, max_states)[0]


def _split_windows(entries: List[_Entry]) -> List[List[_Entry]]:
    """Cut a subhistory at its commit points.

    A cut is placed before entry ``i`` (in invocation order) when every
    earlier entry returned strictly before ``i`` invoked: no op spans the
    cut, so real time forces all earlier ops to linearize first and the
    only state crossing the boundary is the register value.  Ambiguous
    ops carry ``ret = inf`` and therefore suppress every later cut.
    """
    ordered = sorted(entries, key=lambda e: e.inv)
    windows: List[List[_Entry]] = []
    start = 0
    horizon = -math.inf
    for i, e in enumerate(ordered):
        if i > start and horizon < e.inv:
            windows.append(ordered[start:i])
            start = i
        if e.ret > horizon:
            horizon = e.ret
    if start < len(ordered):
        windows.append(ordered[start:])
    return windows


def _boundary_entry(key: str, value) -> _Entry:
    """A synthetic acked write pinning a window's inherited register value.

    Its return time precedes every real invocation, so the real-time rule
    forces it to linearize first — prepending it to a window makes "check
    the window from boundary value v" expressible to the plain searcher
    (the minimizer reuses it, and may drop it if the core fails without)."""
    op = Operation(
        op_index=-1,
        client=_BOUNDARY_CLIENT,
        kind="put",
        key=key,
        invoke_ts=-math.inf,
        value=value,
        return_ts=-math.inf,
        ok=True,
        status="boundary",
    )
    return _Entry(op, True, value, -math.inf, -math.inf, True)


def _minimize(entries: List[_Entry], max_states: int) -> List[_Entry]:
    """Shrink a non-linearizable per-key subhistory to a minimal core.

    Two passes: (1) cut to the shortest failing prefix by invocation time
    (keeping every write whose value some kept read returned, so reads
    never dangle); (2) greedy delta-debugging — drop each op if the
    remainder still fails.  Writes that a kept read observed are never
    dropped, which keeps the counterexample semantically meaningful.
    Synthetic window-boundary writes are likewise never dropped: they are
    what explains a stale read whose overwriting put lives in an earlier
    decomposition window.
    """

    def read_values(subset: List[_Entry]) -> set:
        return {e.value for e in subset if not e.is_write and e.value is not INITIAL}

    def closed(subset: List[_Entry]) -> List[_Entry]:
        # Keep writes whose value is observed by a kept read.
        needed = read_values(subset)
        extra = [
            e
            for e in entries
            if e.is_write and e.value in needed and e not in subset
        ]
        if not extra:
            return subset
        merged = subset + extra
        merged.sort(key=lambda e: e.inv)
        return merged

    def fails(subset: List[_Entry]) -> bool:
        try:
            return not _is_linearizable(subset, max_states)
        except CheckLimitExceeded:
            return False  # inconclusive: treat as "cannot shrink this way"

    ordered = sorted(entries, key=lambda e: e.inv)
    core = ordered
    # Pass 1: shortest failing invocation-prefix (doubling then refine).
    for cut in range(1, len(ordered) + 1):
        prefix = closed(ordered[:cut])
        if fails(prefix):
            core = prefix
            break

    # Pass 2: greedy removal, latest ops first.
    changed = True
    while changed:
        changed = False
        for e in sorted(core, key=lambda x: -x.inv):
            if e.op.client == _BOUNDARY_CLIENT:
                continue  # boundary value must stay explained
            trial = [x for x in core if x is not e]
            if e.is_write and e.value in read_values(trial):
                continue  # a kept read observed this write
            if fails(trial):
                core = trial
                changed = True
    return sorted(core, key=lambda e: e.inv)


def check_linearizable(
    ops: Sequence[Operation],
    max_states: int = 2_000_000,
    minimize: bool = True,
    window_ops: int = 256,
) -> CheckResult:
    """Check a recorded history against the per-key register model.

    Keys are checked independently (cheapest first, so a violation on a
    quiet key surfaces before an expensive search on a busy one).  On the
    first violating key the returned :class:`CheckResult` carries a
    minimal violating subhistory in ``violation``.

    Subhistories longer than ``window_ops`` are decomposed at commit
    points (see module docstring) and the windows checked in sequence;
    a single window wider than ``window_ops`` raises
    :class:`CheckLimitExceeded` instead of attempting a search whose
    memo table would not fit — the failure is loud by design, never a
    silently skipped key.
    """
    by_key: Dict[str, List[Operation]] = {}
    for op in ops:
        if op.kind in ("put", "get"):
            by_key.setdefault(op.key, []).append(op)

    total_states = 0
    for key in sorted(by_key, key=lambda k: len(by_key[k])):
        entries = _entries_for_key(by_key[key])
        if len(entries) <= window_ops:
            ok, states, _ = _search_key(entries, max_states)
            total_states += states
            if ok:
                continue
            core = _minimize(entries, max_states) if minimize else entries
            reason = (
                f"no valid linearization of {len(entries)} ops "
                f"(minimal core: {len(core)} ops)"
            )
        else:
            ok, states, bad = _check_key_windowed(
                key, entries, max_states, window_ops
            )
            total_states += states
            if ok:
                continue
            window, boundary = bad
            seed = window if INITIAL in boundary else (
                [_boundary_entry(key, boundary[0])] + window
            )
            core = _minimize(seed, max_states) if minimize else seed
            reason = (
                f"no valid linearization of a {len(window)}-op commit-point "
                f"window of {len(entries)} ops, from any of "
                f"{len(boundary)} boundary value(s) "
                f"(minimal core: {len(core)} ops)"
            )
        return CheckResult(
            ok=False,
            n_ops=len(ops),
            checked_keys=tuple(sorted(by_key)),
            key=key,
            violation=[e.op for e in core],
            reason=reason,
            states=total_states,
        )
    return CheckResult(
        ok=True,
        n_ops=len(ops),
        checked_keys=tuple(sorted(by_key)),
        states=total_states,
    )


def _check_key_windowed(
    key: str, entries: List[_Entry], max_states: int, window_ops: int
) -> Tuple[bool, int, Optional[Tuple[List[_Entry], List]]]:
    """Commit-point decomposition check of one long subhistory.

    Returns ``(ok, states, bad)`` where ``bad`` is ``(window,
    boundary_values)`` for the first window with no valid linearization
    from any inherited register value.
    """
    windows = _split_windows(entries)
    widest = max(len(w) for w in windows)
    if widest > window_ops:
        raise CheckLimitExceeded(
            f"key {key!r}: {len(entries)}-op subhistory decomposes into a "
            f"{widest}-op commit-point window (> window_ops={window_ops}); "
            f"that many truly-overlapping ops would blow up the exact "
            f"search — pass a larger window_ops to force the attempt"
        )
    boundary: List = [INITIAL]
    states = 0
    for wi, window in enumerate(windows):
        last = wi == len(windows) - 1
        ok, used, finals = _search_key(
            window, max_states, tuple(boundary), collect_finals=not last
        )
        states += used
        if not ok:
            return False, states, (window, boundary)
        boundary = finals
    return True, states, None
