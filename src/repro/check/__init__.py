"""Consistency checking: op-history recording and history checkers.

The chaos test suite validates NICE's headline correctness claim — clients
stay connected only to *consistent* replicas through failures and the
two-stage rejoin (§3.3, §4.5) — the way Jepsen-style harnesses do: record
every client operation with simulated-time invoke/return stamps, then
decide from the history alone whether the guarantee held.

* :class:`HistoryRecorder` / :class:`Operation` — the recording side,
  hooked into the NICE and NOOB client libraries.
* :func:`check_linearizable` — a Wing–Gong linearizability checker for the
  per-key KV register model (exact, exponential worst case, memoized).
* :func:`check_monotonic` — a cheap O(n log n) real-time staleness /
  monotonic-reads checker (necessary-condition screen for big histories).
* :func:`check_durable` — acked-durability: every acknowledged put must
  survive complete cluster power failure (Fig 3 / §4.4).

Both checkers return a :class:`CheckResult` whose ``violation`` is a
minimal violating subhistory for debugging.
"""

from .durability import check_durable
from .history import HistoryRecorder, Operation
from .linearizability import CheckLimitExceeded, CheckResult, check_linearizable
from .monotonic import check_monotonic

__all__ = [
    "CheckLimitExceeded",
    "CheckResult",
    "HistoryRecorder",
    "Operation",
    "check_durable",
    "check_linearizable",
    "check_monotonic",
]
