"""YCSB workload definitions and the closed-loop runner (Cooper et al. [16]).

The paper's Fig 12 uses workloads C (read-only) and F (read-modify-write,
the highest put ratio in YCSB at 50%), zipfian popularity, 1 KB objects,
10 clients × 20 K ops.  All six standard workloads are defined so the
harness can sweep beyond the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..sim import Tally
from .zipf import LatestGenerator, ScrambledZipfianGenerator, UniformGenerator

__all__ = ["YcsbWorkload", "WORKLOADS", "YcsbRunner", "DEFAULT_OBJECT_BYTES"]

#: YCSB default record: 10 fields × 100 B.
DEFAULT_OBJECT_BYTES = 1000


@dataclass(frozen=True)
class YcsbWorkload:
    """Operation mix of one YCSB workload."""

    name: str
    read: float
    update: float
    insert: float
    rmw: float
    distribution: str = "zipfian"

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"workload {self.name}: mix sums to {total}, not 1")


WORKLOADS: Dict[str, YcsbWorkload] = {
    "A": YcsbWorkload("A", read=0.5, update=0.5, insert=0.0, rmw=0.0),
    "B": YcsbWorkload("B", read=0.95, update=0.05, insert=0.0, rmw=0.0),
    "C": YcsbWorkload("C", read=1.0, update=0.0, insert=0.0, rmw=0.0),
    "D": YcsbWorkload("D", read=0.95, update=0.0, insert=0.05, rmw=0.0, distribution="latest"),
    "E": YcsbWorkload("E", read=0.95, update=0.0, insert=0.05, rmw=0.0),  # scans→reads
    "F": YcsbWorkload("F", read=0.5, update=0.0, insert=0.0, rmw=0.5),
}


class YcsbRunner:
    """Drives KV clients (NICE or NOOB — same put/get API) through a
    workload, closed-loop, one process per client."""

    def __init__(
        self,
        workload: YcsbWorkload,
        n_records: int = 1000,
        object_bytes: int = DEFAULT_OBJECT_BYTES,
        rng: np.random.Generator = None,
        keys: List[str] = None,
    ):
        """``keys`` substitutes an explicit keyspace for the default
        ``user<i>`` names — e.g. keys pinned to one partition so a run
        exercises a single replica set's read path.  Must hold at least
        ``n_records`` names (inserts past it fall back to ``user<i>``)."""
        self.workload = workload
        self.n_records = n_records
        self.object_bytes = object_bytes
        self.rng = rng or np.random.default_rng(0)
        if keys is not None and len(keys) < n_records:
            raise ValueError(
                f"explicit keyspace holds {len(keys)} names < {n_records} records"
            )
        self.keys = list(keys) if keys is not None else None
        if workload.distribution == "zipfian":
            self.keychooser = ScrambledZipfianGenerator(n_records, rng=self.rng)
        elif workload.distribution == "latest":
            self.keychooser = LatestGenerator(n_records, rng=self.rng)
        else:
            self.keychooser = UniformGenerator(n_records, rng=self.rng)
        self._insert_cursor = n_records
        self.op_latency = Tally("ycsb.ops")
        self.read_latency = Tally("ycsb.reads")
        self.write_latency = Tally("ycsb.writes")
        self.errors = 0
        self.ops_done = 0

    def key(self, index: int) -> str:
        if self.keys is not None and index < len(self.keys):
            return self.keys[index]
        return f"user{index}"

    def _choose_op(self) -> str:
        w = self.workload
        u = self.rng.random()
        if u < w.read:
            return "read"
        if u < w.read + w.update:
            return "update"
        if u < w.read + w.update + w.insert:
            return "insert"
        return "rmw"

    def load_phase(self, client, sim):
        """Insert the initial records through one client; returns a Process."""

        def run():
            for i in range(self.n_records):
                r = yield client.put(self.key(i), f"v{i}", self.object_bytes)
                if not r.ok:
                    self.errors += 1

        return sim.process(run())

    def client_process(self, client, sim, n_ops: int):
        """One closed-loop client; returns a Process."""

        def run():
            for _ in range(n_ops):
                op = self._choose_op()
                t0 = sim.now
                if op == "read":
                    r = yield client.get(self.key(self.keychooser.next()))
                    ok = r.ok or r.status == "miss"  # cold key: still served
                    self.read_latency.observe(sim.now - t0)
                elif op == "update":
                    key = self.key(self.keychooser.next())
                    r = yield client.put(key, "u", self.object_bytes)
                    ok = r.ok
                    self.write_latency.observe(sim.now - t0)
                elif op == "insert":
                    key = self.key(self._insert_cursor)
                    self._insert_cursor += 1
                    if isinstance(self.keychooser, LatestGenerator):
                        self.keychooser.set_last_item(self._insert_cursor)
                    r = yield client.put(key, "i", self.object_bytes)
                    ok = r.ok
                    self.write_latency.observe(sim.now - t0)
                else:  # read-modify-write (workload F)
                    key = self.key(self.keychooser.next())
                    r1 = yield client.get(key)
                    r2 = yield client.put(key, "rmw", self.object_bytes)
                    ok = (r1.ok or r1.status == "miss") and r2.ok
                    self.write_latency.observe(sim.now - t0)
                self.op_latency.observe(sim.now - t0)
                self.ops_done += 1
                if not ok:
                    self.errors += 1

        return sim.process(run())

    def run(
        self,
        clients: List,
        sim,
        n_ops_per_client: int,
        load_client=None,
        threads: int = 4,
    ):
        """Full benchmark: load phase then concurrent clients; returns a
        Process whose value is the run's wall-clock duration and throughput.

        ``threads`` is YCSB's per-client thread count: each client machine
        keeps that many operations outstanding (closed loop per thread).
        """

        def run():
            yield self.load_phase(load_client or clients[0], sim)
            t0 = sim.now
            procs = []
            for c in clients:
                per_thread = n_ops_per_client // threads
                remainder = n_ops_per_client - per_thread * threads
                for t in range(threads):
                    ops = per_thread + (1 if t < remainder else 0)
                    if ops:
                        procs.append(self.client_process(c, sim, ops))
            from ..sim import AllOf

            yield AllOf(sim, procs)
            elapsed = sim.now - t0
            total_ops = n_ops_per_client * len(clients)
            return {
                "elapsed_s": elapsed,
                "ops": total_ops,
                "throughput_ops_s": total_ops / elapsed if elapsed > 0 else float("inf"),
                "errors": self.errors,
            }

        return sim.process(run())
