"""Synthetic micro-workloads for the §6 figures: size sweeps, hot-object
weak scaling, and same-partition key selection."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..kv import ConsistentHashRing, key_hash
from ..sim import AllOf, Tally

__all__ = [
    "OBJECT_SIZES",
    "keys_in_partition",
    "closed_loop_puts",
    "closed_loop_gets",
    "hot_object_clients",
]

#: The size axis of Figs 4–5: 4 B to 1 MB.
OBJECT_SIZES = [4, 256, 1024, 4096, 16384, 65536, 262144, 1048576]


def keys_in_partition(partition: int, n_partitions: int, count: int, prefix: str = "k") -> List[str]:
    """Generate ``count`` keys whose hash falls in ``partition`` — Figs 10
    and 11 put "all objects in the same partition"."""
    keys = []
    i = 0
    while len(keys) < count:
        key = f"{prefix}{i}"
        if ConsistentHashRing.partition_of_hash(key_hash(key), n_partitions) == partition:
            keys.append(key)
        i += 1
        if i > 1_000_000:
            raise RuntimeError("could not find enough keys in the partition")
    return keys


def closed_loop_puts(client, sim, n_ops: int, size: int, keys: Optional[List[str]] = None,
                     value: str = "x", tally: Optional[Tally] = None):
    """n back-to-back puts from one client; returns a Process → Tally."""
    tally = tally or Tally("puts")

    def run():
        for i in range(n_ops):
            key = keys[i % len(keys)] if keys else f"obj{i}"
            r = yield client.put(key, value, size)
            if r.ok:
                tally.observe(r.latency)
        return tally

    return sim.process(run())


def closed_loop_gets(client, sim, n_ops: int, keys: List[str],
                     tally: Optional[Tally] = None):
    """n back-to-back gets from one client; returns a Process → Tally."""
    tally = tally or Tally("gets")

    def run():
        for i in range(n_ops):
            r = yield client.get(keys[i % len(keys)])
            if r.ok:
                tally.observe(r.latency)
        return tally

    return sim.process(run())


def hot_object_clients(put_client, get_clients, sim, key: str, size: int, n_ops: int,
                       include_put: bool = True):
    """Fig 10's weak-scaling workload: 1 client puts the same object n times
    while the other clients get it n times each.  Returns a Process whose
    value is {"elapsed_s", "put": Tally, "get": Tally}."""
    put_tally = Tally("hot.put")
    get_tally = Tally("hot.get")

    def putter():
        for _ in range(n_ops):
            r = yield put_client.put(key, "hot", size)
            if r.ok:
                put_tally.observe(r.latency)

    def getter(client):
        for _ in range(n_ops):
            r = yield client.get(key)
            if r.ok:
                get_tally.observe(r.latency)

    def run():
        # Seed the object so first gets don't miss.
        yield put_client.put(key, "seed", size)
        t0 = sim.now
        procs = [sim.process(getter(c)) for c in get_clients]
        if include_put:
            procs.append(sim.process(putter()))
        if procs:
            yield AllOf(sim, procs)
        return {"elapsed_s": sim.now - t0, "put": put_tally, "get": get_tally}

    return sim.process(run())
