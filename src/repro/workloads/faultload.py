"""The Fig 11 fault-tolerance scenario driver.

Three clients access one partition with a 20/80 put/get ratio and 1 KB
objects; a secondary replica fails at the 30 s mark and rejoins at 90 s.
The driver records served puts and gets per second — the two series the
figure plots — plus the membership-event timestamps.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..sim import RateSeries

__all__ = ["FaultTimelineResult", "run_fault_timeline"]


class FaultTimelineResult:
    """Series + event marks from one fault-injection run."""

    def __init__(self) -> None:
        self.put_rate = RateSeries(1.0, "puts/s")
        self.get_rate = RateSeries(1.0, "gets/s")
        self.failed_puts = RateSeries(1.0, "failed puts/s")
        #: Membership-event marks, ordered by simulated time: each entry is
        #: a ``(sim_time_s, label)`` pair such as ``(30.0, "n3 fails")``.
        self.events: List[Tuple[float, str]] = []

    def mark(self, when: float, label: str) -> None:
        self.events.append((float(when), label))


def run_fault_timeline(
    cluster,
    keys: List[str],
    fail_at: float = 30.0,
    recover_at: float = 90.0,
    duration: float = 120.0,
    put_ratio: float = 0.2,
    object_bytes: int = 1000,
    think_time_s: float = 5e-3,
    seed: int = 1,
) -> FaultTimelineResult:
    """Run the scenario on a built NICE cluster; returns the series.

    ``keys`` must all hash to one partition (use
    :func:`repro.workloads.synthetic.keys_in_partition`).

    The returned :class:`FaultTimelineResult` carries the three rate series
    and ``events``, the typed ``List[Tuple[float, str]]`` of membership
    marks (failure, rejoin, consistency-restored) in timeline order —
    the vertical annotation lines of Fig 11.
    """
    sim = cluster.sim
    result = FaultTimelineResult()
    partition = cluster.uni_vring.subgroup_of_key(keys[0])
    rs = cluster.partition_map.get(partition)
    victim_name = [m for m in rs.members if m != rs.primary][0]
    victim = cluster.nodes[victim_name]
    rng = np.random.default_rng(seed)
    recently_put: List[str] = []

    def client_loop(client, stream: np.random.Generator):
        # Seed one object so early gets can hit.
        r = yield client.put(keys[0], "seed", object_bytes)
        if r.ok:
            recently_put.append(keys[0])
        i = 0
        while sim.now < duration:
            if think_time_s > 0:
                # Pace the client (the paper's clients serve a few hundred
                # requests/s each, not a tight busy loop).
                yield sim.timeout(stream.exponential(think_time_s))
            if stream.random() < put_ratio:
                key = keys[i % len(keys)]
                i += 1
                r = yield client.put(key, "v", object_bytes, max_retries=0)
                if r.ok:
                    result.put_rate.record(sim.now)
                    recently_put.append(key)
                    if len(recently_put) > 256:
                        recently_put.pop(0)
                else:
                    result.failed_puts.record(sim.now)
                    # Fig 11: "the client will retry after waiting for 2
                    # seconds, in which case the operations will succeed".
                    yield sim.timeout(2.0)
            else:
                key = recently_put[int(stream.integers(len(recently_put)))]
                r = yield client.get(key, max_retries=0)
                if r.ok:
                    result.get_rate.record(sim.now)

    def fault_script():
        yield sim.timeout(fail_at)
        victim.crash()
        result.mark(sim.now, f"{victim_name} fails")
        yield sim.timeout(recover_at - fail_at)
        result.mark(sim.now, f"{victim_name} rejoins")
        proc = victim.restart()
        yield proc
        result.mark(sim.now, f"{victim_name} consistent")

    for idx, client in enumerate(cluster.clients[:3]):
        sim.process(client_loop(client, np.random.default_rng(seed * 100 + idx)))
    sim.process(fault_script())
    sim.run(until=duration)
    return result
