"""Workload generators: YCSB (zipfian), synthetic size sweeps, hot-object
weak scaling, and the fault-injection timeline."""

from .faultload import FaultTimelineResult, run_fault_timeline
from .synthetic import (
    OBJECT_SIZES,
    closed_loop_gets,
    closed_loop_puts,
    hot_object_clients,
    keys_in_partition,
)
from .ycsb import DEFAULT_OBJECT_BYTES, WORKLOADS, YcsbRunner, YcsbWorkload
from .zipf import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)

__all__ = [
    "DEFAULT_OBJECT_BYTES",
    "FaultTimelineResult",
    "LatestGenerator",
    "OBJECT_SIZES",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "WORKLOADS",
    "YcsbRunner",
    "YcsbWorkload",
    "ZipfianGenerator",
    "closed_loop_gets",
    "closed_loop_puts",
    "hot_object_clients",
    "keys_in_partition",
    "run_fault_timeline",
]
