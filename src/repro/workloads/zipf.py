"""Zipfian key popularity (YCSB's request distribution [16]).

Implements the Gray et al. bounded zipfian generator YCSB uses (constant
0.99 by default) plus the scrambled variant that decorrelates popularity
from key order.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "LatestGenerator",
]


class ZipfianGenerator:
    """Draws integers in [0, n) with zipfian popularity (item 0 hottest)."""

    def __init__(self, n_items: int, theta: float = 0.99, rng: np.random.Generator = None):
        if n_items < 1:
            raise ValueError(f"need at least one item: {n_items}")
        if not 0 < theta < 1:
            raise ValueError(f"theta must be in (0, 1): {theta}")
        self.n_items = n_items
        self.theta = theta
        self.rng = rng or np.random.default_rng(0)
        self._zetan = self._zeta(n_items, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        if n_items > 2:
            self._eta = (1 - (2.0 / n_items) ** (1 - theta)) / (
                1 - self._zeta2 / self._zetan
            )
        else:
            # Gray's eta is 0/0 for n <= 2; the first two branches of
            # next() fully cover that case.
            self._eta = 0.0

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Direct sum; n is bounded (YCSB default record counts are small).
        return float(np.sum(1.0 / np.power(np.arange(1, n + 1), theta)))

    def next(self) -> int:
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return min(1, self.n_items - 1)
        rank = int(self.n_items * (self._eta * u - self._eta + 1) ** self._alpha)
        return min(rank, self.n_items - 1)

    def sample(self, count: int) -> np.ndarray:
        return np.fromiter((self.next() for _ in range(count)), dtype=np.int64, count=count)


class ScrambledZipfianGenerator:
    """Zipfian ranks hashed over the item space (YCSB 'scrambled zipfian'),
    so hot items are spread across the key space — and hence across
    partitions, as in the paper's YCSB runs."""

    def __init__(self, n_items: int, theta: float = 0.99, rng: np.random.Generator = None):
        self._inner = ZipfianGenerator(n_items, theta, rng)
        self.n_items = n_items

    def next(self) -> int:
        rank = self._inner.next()
        digest = hashlib.blake2b(rank.to_bytes(8, "little"), digest_size=8).digest()
        return int.from_bytes(digest, "little") % self.n_items

    def sample(self, count: int) -> np.ndarray:
        return np.fromiter((self.next() for _ in range(count)), dtype=np.int64, count=count)


class LatestGenerator:
    """YCSB's 'latest' distribution (workload D): popularity skews toward
    the most recently inserted items — zipfian over recency rank."""

    def __init__(self, n_items: int, theta: float = 0.99, rng: np.random.Generator = None):
        self._inner = ZipfianGenerator(n_items, theta, rng)
        self.n_items = n_items

    def set_last_item(self, n_items: int) -> None:
        """Grow the item space after an insert (newest item = hottest)."""
        if n_items > self.n_items:
            self.n_items = n_items

    def next(self) -> int:
        rank = self._inner.next()  # 0 = hottest = newest
        return max(self.n_items - 1 - rank, 0)

    def sample(self, count: int) -> np.ndarray:
        return np.fromiter((self.next() for _ in range(count)), dtype=np.int64, count=count)


class UniformGenerator:
    """Uniform item choice (YCSB's uniform request distribution)."""

    def __init__(self, n_items: int, rng: np.random.Generator = None):
        if n_items < 1:
            raise ValueError(f"need at least one item: {n_items}")
        self.n_items = n_items
        self.rng = rng or np.random.default_rng(0)

    def next(self) -> int:
        return int(self.rng.integers(self.n_items))

    def sample(self, count: int) -> np.ndarray:
        return self.rng.integers(0, self.n_items, size=count)
