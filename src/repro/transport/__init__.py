"""Transport protocols: UDP sockets, message-oriented TCP, and the NICEKV
reliable (any-k) multicast."""

from .reliable_multicast import MulticastEndpoint, MulticastMessage, MulticastSender
from .sockets import Datagram, EPHEMERAL_BASE, ProtocolStack
from .tcp import TcpConnection, TcpLayer, TcpMessage

__all__ = [
    "Datagram",
    "EPHEMERAL_BASE",
    "MulticastEndpoint",
    "MulticastMessage",
    "MulticastSender",
    "ProtocolStack",
    "TcpConnection",
    "TcpLayer",
    "TcpMessage",
]
