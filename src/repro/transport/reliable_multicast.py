"""NICEKV's reliable UDP multicast transport (§5, Replication).

Data is conceptually divided into chunks of less than one MTU (1400 B).
Receivers NACK missing chunks; the sender repairs them over unicast; ACKs
implement flow control.  The quorum variant ("reliable any-k multicasting")
returns as soon as any *k* receivers hold the complete data, and keeps
servicing straggler NACKs afterwards until they finish or time out.

In the simulator a multicast transfer is one flow burst fanned out by the
switch group table; chunk loss is drawn per receiver (binomial over the
chunk count) so the NACK/repair path is exercised without per-chunk events.

Wire envelopes are plain tuples tagged by their first element — cheaper to
build and dispatch than dicts on the per-packet hot path, and the declared
``payload_bytes`` (what the wire model charges for) is unchanged:

* ``("mc_ctrl", payload)``
* ``("mc_data", op, ack_port, payload)``
* ``("mc_ack", op)``
* ``("mc_nack", op, missing, repair_port)``
* ``("mc_repair", op, chunks)``
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..net import IPv4Address, MTU_BYTES
from ..sim import Store

from .sockets import Datagram, ProtocolStack

__all__ = ["MulticastSender", "MulticastEndpoint", "MulticastMessage"]


@dataclass
class MulticastMessage:
    """A fully-reassembled multicast message, handed to the application."""

    src_ip: IPv4Address
    ack_port: int
    op: Tuple
    payload: Any
    payload_bytes: int
    virtual_dst: Optional[IPv4Address]


def _chunks(payload_bytes: int) -> int:
    return max(1, -(-payload_bytes // MTU_BYTES))


class MulticastSender:
    """Initiator side: sends bursts, services NACKs, collects ACKs."""

    #: How long after quorum the sender keeps repairing stragglers (§5).
    STRAGGLER_TIMEOUT_S = 5.0

    def __init__(self, stack: ProtocolStack):
        self.stack = stack
        self._op_seq = itertools.count(1)

    def send_ctrl(
        self,
        group_ip: IPv4Address,
        dport: int,
        payload: Any,
        payload_bytes: int,
    ) -> None:
        """Unreliable small multicast (the 2PC timestamp message, Fig 3):
        single chunk, no ACK, no repair — losses surface as protocol
        timeouts, as with real UDP."""
        self.stack.udp_send(
            IPv4Address(group_ip),
            dport,
            ("mc_ctrl", payload),
            payload_bytes,
        )

    def send(
        self,
        group_ip: IPv4Address,
        dport: int,
        payload: Any,
        payload_bytes: int,
        n_receivers: int,
        quorum: Optional[int] = None,
    ):
        """Multicast ``payload``; returns a Process to ``yield`` on.

        The process completes when ``quorum`` receivers (default: all
        ``n_receivers``) have acknowledged complete reception; its value is
        the list of ``(receiver_ip, ack_time)`` pairs, in arrival order.
        """
        if n_receivers < 1:
            raise ValueError(f"n_receivers must be >= 1: {n_receivers}")
        k = n_receivers if quorum is None else quorum
        if not 1 <= k <= n_receivers:
            raise ValueError(f"quorum {k} out of range 1..{n_receivers}")
        return self.stack.sim.process(
            self._send(group_ip, dport, payload, payload_bytes, n_receivers, k)
        )

    def _send(self, group_ip, dport, payload, payload_bytes, n_receivers, k):
        sim = self.stack.sim
        op = (self.stack.ip, next(self._op_seq))
        ack_port = self.stack.ephemeral_port()
        inbox = self.stack.udp_bind(ack_port)
        self.stack.udp_send(
            IPv4Address(group_ip),
            dport,
            ("mc_data", op, ack_port, payload),
            payload_bytes,
            sport=ack_port,
        )
        acks: List[Tuple[IPv4Address, float]] = []
        while len(acks) < k:
            dgram = yield inbox.get()
            body = dgram.payload
            if type(body) is not tuple or len(body) < 2 or body[1] != op:
                continue
            if body[0] == "mc_ack":
                acks.append((dgram.src_ip, sim.now))
            elif body[0] == "mc_nack":
                self._repair(dgram, payload_bytes)
        if len(acks) < n_receivers:
            sim.process(
                self._serve_stragglers(
                    inbox, ack_port, op, payload_bytes, n_receivers - len(acks)
                )
            )
        else:
            self.stack.udp_unbind(ack_port)
        return acks

    def _serve_stragglers(self, inbox: Store, ack_port: int, op, payload_bytes, remaining: int):
        """Post-quorum: keep answering NACKs until all finish or timeout."""
        sim = self.stack.sim
        deadline = sim.now + self.STRAGGLER_TIMEOUT_S
        while remaining > 0 and sim.now < deadline:
            get = inbox.get()
            got = yield sim.any_of([get, sim.timeout(max(deadline - sim.now, 0.0))])
            if get not in got:
                inbox.cancel(get)
                break
            dgram = got[get]
            body = dgram.payload
            if type(body) is not tuple or len(body) < 2 or body[1] != op:
                continue
            if body[0] == "mc_ack":
                remaining -= 1
            elif body[0] == "mc_nack":
                self._repair(dgram, payload_bytes)
        self.stack.udp_unbind(ack_port)
        return remaining

    def _repair(self, nack: Datagram, payload_bytes: int) -> None:
        """Unicast the missing chunks back to the NACKing receiver."""
        _, op, missing, repair_port = nack.payload
        missing = int(missing)
        repair_bytes = min(missing * MTU_BYTES, payload_bytes)
        self.stack.udp_send(
            nack.src_ip,
            repair_port,
            ("mc_repair", op, missing),
            repair_bytes,
            sport=nack.dport,
        )


class MulticastEndpoint:
    """Receiver side: reassembles bursts, NACKs losses, ACKs completion.

    ``chunk_loss_rate`` injects per-chunk loss (binomially over the burst's
    chunk count) to exercise the repair protocol; production experiments run
    with 0.
    """

    def __init__(
        self,
        stack: ProtocolStack,
        port: int,
        chunk_loss_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ):
        if chunk_loss_rate and rng is None:
            raise ValueError("chunk loss injection requires an rng")
        if not 0.0 <= chunk_loss_rate < 1.0:
            raise ValueError(f"chunk loss rate must be in [0, 1): {chunk_loss_rate}")
        self.stack = stack
        self.port = port
        self.chunk_loss_rate = chunk_loss_rate
        self.rng = rng
        #: Complete messages, for the application.
        self.messages = Store(stack.sim, name=f"{stack.host.name}:mc:{port}")
        self._raw = stack.udp_bind(port)
        #: op -> (missing chunk count, original datagram)
        self._partial: Dict[Tuple, Tuple[int, Datagram]] = {}
        self.nacks_sent = 0
        self.repairs_received = 0
        self._proc = stack.sim.process(self._run())

    def close(self) -> None:
        self.stack.udp_unbind(self.port)

    def _lose(self, chunks: int) -> int:
        if not self.chunk_loss_rate:
            return 0
        return int(self.rng.binomial(chunks, self.chunk_loss_rate))

    def _run(self):
        while True:
            dgram = yield self._raw.get()
            body = dgram.payload
            if type(body) is not tuple or not body:
                continue  # not one of ours; drop.
            kind = body[0]
            if kind == "mc_data":
                self._on_data(dgram, body)
            elif kind == "mc_repair":
                self._on_repair(dgram, body)
            elif kind == "mc_ctrl":
                self._on_ctrl(dgram, body)
            # anything else on this port is not ours; drop.

    def _on_ctrl(self, dgram: Datagram, body: tuple) -> None:
        """Unreliable control message: deliver unless its single chunk is lost."""
        if self._lose(1):
            return
        self.messages.put(
            MulticastMessage(
                src_ip=dgram.src_ip,
                ack_port=0,
                op=(),
                payload=body[1],
                payload_bytes=dgram.payload_bytes,
                virtual_dst=dgram.virtual_dst,
            )
        )

    def _on_data(self, dgram: Datagram, body: tuple) -> None:
        total = _chunks(dgram.payload_bytes)
        lost = self._lose(total)
        if lost == 0:
            self._complete(dgram, body)
        else:
            self._partial[body[1]] = (lost, dgram)
            self._nack(dgram, body, lost)

    def _on_repair(self, dgram: Datagram, body: tuple) -> None:
        op = body[1]
        entry = self._partial.get(op)
        if entry is None:
            return  # duplicate repair after completion
        self.repairs_received += 1
        missing, original = entry
        repaired = int(body[2])
        still_lost = self._lose(repaired)
        missing = missing - repaired + still_lost
        if missing <= 0:
            del self._partial[op]
            self._complete(original, original.payload)
        else:
            self._partial[op] = (missing, original)
            self._nack(original, original.payload, missing)

    def _nack(self, dgram: Datagram, body: tuple, missing: int) -> None:
        self.nacks_sent += 1
        self.stack.udp_send(
            dgram.src_ip,
            body[2],
            ("mc_nack", body[1], missing, self.port),
            0,
            sport=self.port,
        )

    def _complete(self, dgram: Datagram, body: tuple) -> None:
        _, op, ack_port, payload = body
        self.stack.udp_send(
            dgram.src_ip,
            ack_port,
            ("mc_ack", op),
            0,
            sport=self.port,
        )
        self.messages.put(
            MulticastMessage(
                src_ip=dgram.src_ip,
                ack_port=ack_port,
                op=op,
                payload=payload,
                payload_bytes=dgram.payload_bytes,
                virtual_dst=dgram.virtual_dst,
            )
        )
