"""The per-host protocol stack and UDP sockets.

NICEKV sends client requests over UDP (so the switch can rewrite the vnode
destination freely and multicast puts — §5, Request Routing) and uses TCP
for everything else.  The stack demultiplexes inbound packets to UDP
bindings, TCP connections (:mod:`.tcp`) and the reliable-multicast engine
(:mod:`.reliable_multicast`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..net import Host, IPv4Address, Packet, Proto
from ..sim import Simulator, Store

__all__ = ["ProtocolStack", "Datagram", "EPHEMERAL_BASE"]

#: First ephemeral port number handed out by a stack.
EPHEMERAL_BASE = 32768


@dataclass
class Datagram:
    """An application-visible UDP message."""

    src_ip: IPv4Address
    sport: int
    dst_ip: IPv4Address
    dport: int
    payload: Any
    payload_bytes: int
    #: The vnode address the sender targeted, when the switch rewrote the
    #: destination (None for plain physical-address traffic).
    virtual_dst: Optional[IPv4Address]


class ProtocolStack:
    """Installed on a :class:`~repro.net.Host`; owns its sockets."""

    def __init__(self, sim: Simulator, host: Host):
        self.sim = sim
        self.host = host
        host.stack = self
        self._udp_bindings: Dict[int, Store] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        # Installed lazily to avoid import cycles.
        from .tcp import TcpLayer

        self.tcp = TcpLayer(self)

    @property
    def ip(self) -> IPv4Address:
        return self.host.ip

    def ephemeral_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    # -- UDP ---------------------------------------------------------------
    def udp_bind(self, port: int) -> Store:
        """Bind ``port``; returns the Store that receives Datagrams."""
        if port in self._udp_bindings:
            raise ValueError(f"{self.host.name}: UDP port {port} already bound")
        store = Store(self.sim, name=f"{self.host.name}:udp:{port}")
        self._udp_bindings[port] = store
        return store

    def udp_unbind(self, port: int) -> None:
        self._udp_bindings.pop(port, None)

    def udp_send(
        self,
        dst_ip: IPv4Address,
        dport: int,
        payload: Any,
        payload_bytes: int,
        sport: int = 0,
    ) -> None:
        """Fire-and-forget datagram (may be rewritten/multicast in-network)."""
        self.host.send(
            Packet(
                src_ip=self.ip,
                dst_ip=IPv4Address(dst_ip),
                proto=Proto.UDP,
                sport=sport,
                dport=dport,
                payload=payload,
                payload_bytes=payload_bytes,
            )
        )

    # -- inbound demux --------------------------------------------------------
    def deliver(self, packet: Packet) -> None:
        if packet.proto == Proto.UDP:
            binding = self._udp_bindings.get(packet.dport)
            if binding is not None:
                binding.put(
                    Datagram(
                        src_ip=packet.src_ip,
                        sport=packet.sport,
                        dst_ip=packet.dst_ip,
                        dport=packet.dport,
                        payload=packet.payload,
                        payload_bytes=packet.payload_bytes,
                        virtual_dst=packet.virtual_dst,
                    )
                )
            # Unbound ports drop silently, as real UDP does (minus the ICMP).
        elif packet.proto == Proto.TCP:
            self.tcp.deliver(packet)
        # ARP replies reach the controller path, not host stacks.
