"""Message-oriented TCP model.

NICEKV uses TCP for every transfer except client requests (§5).  What the
evaluation is sensitive to is (a) connection *establishment* cost — Fig 9a
attributes NOOB's small-object degradation partly to "the overhead of
creating and maintaining up to 8 TCP connections" — and (b) the bytes and
serialization of the data itself.  The model therefore provides:

* a 3-way handshake (SYN / SYN-ACK / ACK control packets, 1.5 RTT) on first
  contact, with per-(peer, port) connection caching thereafter;
* message sends that complete when the message reaches the peer's stack
  (the data traverses the network for real, so link contention applies);
* per-connection inboxes plus listener sockets with selective receive.

Segment-level ACK clocking is *not* modeled: it contributes no asymmetry
between the compared systems and would multiply event counts (DESIGN.md §5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..net import IPv4Address, Packet, Proto
from ..sim import Event, Store

__all__ = ["TcpLayer", "TcpConnection", "TcpMessage"]


@dataclass
class TcpMessage:
    """An application message received over a connection."""

    conn: "TcpConnection"
    src_ip: IPv4Address
    sport: int
    payload: Any
    payload_bytes: int


class TcpConnection:
    """One established (or establishing) connection endpoint."""

    _ids = itertools.count(1)

    def __init__(
        self,
        layer: "TcpLayer",
        local_port: int,
        remote_ip: IPv4Address,
        remote_port: int,
    ):
        self.layer = layer
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.established = False
        self.conn_id = next(self._ids)
        #: Messages arriving on this connection when no listener is bound to
        #: the local port (the initiator side's receive path).
        self.inbox = Store(layer.stack.sim, name=f"tcp-conn-{self.conn_id}")
        self._msg_seq = itertools.count(1)

    @property
    def local_ip(self) -> IPv4Address:
        return self.layer.stack.ip

    def send(self, payload: Any, payload_bytes: int) -> Event:
        """Transmit one message; the returned event triggers on delivery.

        The event never triggers if the peer is down — callers guard with
        protocol timeouts, exactly as the paper's protocols do (§4.4).
        """
        done = Event(self.layer.stack.sim)
        body = {
            "kind": "data",
            "msg": next(self._msg_seq),
            "payload": payload,
            "_delivered": done,
        }
        self.layer._send_segment(self, body, payload_bytes)
        return done

    def __repr__(self) -> str:  # pragma: no cover
        state = "est" if self.established else "syn"
        return (
            f"<TcpConnection {self.local_ip}:{self.local_port} -> "
            f"{self.remote_ip}:{self.remote_port} {state}>"
        )


class TcpLayer:
    """Per-host TCP endpoint: listeners, connection cache, handshake engine."""

    #: Handshake control segments carry no payload (66 B on the wire).
    CTRL_BYTES = 0
    #: SYN retransmission schedule: base interval and max attempts.  A peer
    #: that stays dark wedges nothing — the handshake state is torn down
    #: after the last attempt so later connects start fresh.
    SYN_RETRY_S = 0.5
    SYN_MAX_TRIES = 20

    def __init__(self, stack):
        self.stack = stack
        self._listeners: Dict[int, Store] = {}
        #: Initiator-side cache: (dst_ip, dst_port) -> TcpConnection.
        self._client_conns: Dict[Tuple[IPv4Address, int], TcpConnection] = {}
        #: All connections keyed for demux: (remote_ip, remote_port, local_port).
        self._conns: Dict[Tuple[IPv4Address, int, int], TcpConnection] = {}
        #: In-flight handshakes: (dst_ip, dst_port) -> waiter events.
        self._connecting: Dict[Tuple[IPv4Address, int], List[Event]] = {}
        self.handshakes = 0

    # -- server side ------------------------------------------------------------
    def listen(self, port: int) -> Store:
        """Accept connections and receive messages on ``port``."""
        if port in self._listeners:
            raise ValueError(f"{self.stack.host.name}: TCP port {port} already listening")
        store = Store(self.stack.sim, name=f"{self.stack.host.name}:tcp:{port}")
        self._listeners[port] = store
        return store

    def close_listener(self, port: int) -> None:
        self._listeners.pop(port, None)

    # -- client side --------------------------------------------------------------
    def connect(self, dst_ip: IPv4Address, dport: int) -> Event:
        """Return an event yielding an established connection.

        Reuses a cached connection when available (triggers immediately);
        otherwise runs the 3-way handshake.  Concurrent connects to the same
        destination share one handshake.
        """
        dst_ip = IPv4Address(dst_ip)
        sim = self.stack.sim
        done = Event(sim)
        cached = self._client_conns.get((dst_ip, dport))
        if cached is not None and cached.established:
            done.succeed(cached)
            return done
        waiters = self._connecting.get((dst_ip, dport))
        if waiters is not None:
            waiters.append(done)
            return done
        self._connecting[(dst_ip, dport)] = [done]
        self.handshakes += 1
        local_port = self.stack.ephemeral_port()
        conn = TcpConnection(self, local_port, dst_ip, dport)
        self._client_conns[(dst_ip, dport)] = conn
        self._conns[(dst_ip, dport, local_port)] = conn
        self._send_ctrl(conn, "syn")
        self.stack.sim.process(self._syn_retry(conn, (dst_ip, dport)))
        return done

    def _syn_retry(self, conn: TcpConnection, key):
        """Retransmit the SYN with backoff; tear down on final failure so a
        recovered peer can be reconnected with a fresh handshake."""
        tries = 1
        while not conn.established and tries < self.SYN_MAX_TRIES:
            yield self.stack.sim.timeout(self.SYN_RETRY_S * min(tries, 4))
            if conn.established:
                return
            self._send_ctrl(conn, "syn")
            tries += 1
        if not conn.established:
            if self._client_conns.get(key) is conn:
                del self._client_conns[key]
            self._conns.pop((conn.remote_ip, conn.remote_port, conn.local_port), None)
            # Waiters stay untriggered: protocol timeouts own that failure.
            self._connecting.pop(key, None)

    def send_message(self, dst_ip: IPv4Address, dport: int, payload: Any, payload_bytes: int):
        """Connect (cached) then send; returns a Process to ``yield`` on.

        The process's value is the connection, so callers can await the
        reply on ``conn.inbox``.
        """
        def _run():
            conn = yield self.connect(dst_ip, dport)
            yield conn.send(payload, payload_bytes)
            return conn

        return self.stack.sim.process(_run())

    def reset_peer(self, ip: IPv4Address) -> int:
        """Tear down all cached state toward ``ip`` (peer declared failed).

        Returns the number of connections dropped.  Pending handshake
        waiters toward the peer are left to their protocol timeouts.
        """
        ip = IPv4Address(ip)
        dropped = 0
        for key in [k for k in self._client_conns if k[0] == ip]:
            self._client_conns.pop(key)
            dropped += 1
        for key in [k for k in self._conns if k[0] == ip]:
            conn = self._conns.pop(key)
            conn.established = False
        for key in [k for k in self._connecting if k[0] == ip]:
            self._connecting.pop(key)  # abandon in-flight handshakes
        return dropped

    # -- wire --------------------------------------------------------------------
    def _send_ctrl(self, conn: TcpConnection, kind: str) -> None:
        self._send_segment(conn, {"kind": kind}, self.CTRL_BYTES)

    def _send_segment(self, conn: TcpConnection, body: dict, payload_bytes: int) -> None:
        self.stack.host.send(
            Packet(
                src_ip=self.stack.ip,
                dst_ip=conn.remote_ip,
                proto=Proto.TCP,
                sport=conn.local_port,
                dport=conn.remote_port,
                payload=body,
                payload_bytes=payload_bytes,
            )
        )

    # -- inbound ------------------------------------------------------------------
    def deliver(self, packet: Packet) -> None:
        kind = (packet.payload or {}).get("kind")
        if kind == "syn":
            self._on_syn(packet)
        elif kind == "synack":
            self._on_synack(packet)
        elif kind == "ack":
            self._on_ack(packet)
        elif kind == "data":
            self._on_data(packet)
        # Unknown kinds are dropped (corrupt/late segments).

    def _on_syn(self, packet: Packet) -> None:
        if packet.dport not in self._listeners:
            return  # nothing listening: silently dropped (peer times out)
        key = (packet.src_ip, packet.sport, packet.dport)
        conn = self._conns.get(key)
        if conn is None:
            conn = TcpConnection(self, packet.dport, packet.src_ip, packet.sport)
            self._conns[key] = conn
        conn.established = True
        self._send_ctrl(conn, "synack")

    def _on_synack(self, packet: Packet) -> None:
        key = (packet.src_ip, packet.sport, packet.dport)
        conn = self._conns.get(key)
        if conn is None:
            return
        conn.established = True
        self._send_ctrl(conn, "ack")
        waiters = self._connecting.pop((packet.src_ip, packet.sport), [])
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed(conn)

    def _on_ack(self, packet: Packet) -> None:
        # Final handshake leg; the server connection is already usable.
        return

    def _on_data(self, packet: Packet) -> None:
        key = (packet.src_ip, packet.sport, packet.dport)
        conn = self._conns.get(key)
        if conn is None:
            # Data on an implicitly-established connection (server restarted
            # or segment raced the handshake): accept if a listener exists.
            if packet.dport not in self._listeners:
                return
            conn = TcpConnection(self, packet.dport, packet.src_ip, packet.sport)
            conn.established = True
            self._conns[key] = conn
        message = TcpMessage(
            conn=conn,
            src_ip=packet.src_ip,
            sport=packet.sport,
            payload=packet.payload["payload"],
            payload_bytes=packet.payload_bytes,
        )
        listener = self._listeners.get(packet.dport)
        if listener is not None:
            listener.put(message)
        else:
            conn.inbox.put(message)
        delivered = packet.payload.get("_delivered")
        if delivered is not None and not delivered.triggered:
            delivered.succeed()
