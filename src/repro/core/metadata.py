"""The metadata service (§4.1): membership module + SDN controller driver.

The service is the only component with complete membership knowledge.  It:

* receives UDP heartbeats from storage nodes and declares a node failed
  after ``heartbeat_miss_limit`` missed beats, or immediately upon a peer's
  failure report (§4.4, Failure Detection);
* hides failed nodes by re-syncing switch rules without them (§4.4,
  Failure Hiding) and selects a handoff node per affected partition (§4.4,
  Maintaining Replication Level);
* stages node rejoin in two phases — put-visible first, get-visible after
  the node reports consistency (§4.4, Node Recovery);
* supports administrative ring reconfiguration (§4.4, Ring Re-Configuration);
* pushes O(R) membership slices to affected replicas only, keeping
  maintenance O(S) switch messages + O(R) node messages per change (§4.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..net import IPv4Address
from ..sim import Counter, Simulator
from ..transport import ProtocolStack
from .config import (
    ACK_BYTES,
    ClusterConfig,
    HEARTBEAT_BYTES,
    MEMBERSHIP_BYTES,
    META_PORT,
    NODE_PORT,
)
from .controller import NiceControllerApp
from .membership import PartitionMap, ReplicaSet

__all__ = ["MetadataService"]

#: Node lifecycle states tracked by the membership module.
UP, DOWN, JOINING = "up", "down", "joining"


class MetadataService:
    """Runs on its own host; owns the partition map and the controller."""

    def __init__(
        self,
        sim: Simulator,
        stack: ProtocolStack,
        config: ClusterConfig,
        partition_map: PartitionMap,
        controller: NiceControllerApp,
    ):
        self.sim = sim
        self.stack = stack
        self.config = config
        self.partition_map = partition_map
        self.controller = controller
        self.status: Dict[str, str] = {}
        self.last_heartbeat: Dict[str, float] = {}
        #: Client IPs observed per partition (heartbeat workload stats, §4.5).
        self.client_stats: Dict[int, set] = {}
        self._handoff_rr = 0  # round-robin cursor for handoff selection
        self.failures_declared = Counter("meta.failures")
        self.rejoins_completed = Counter("meta.rejoins")
        self.membership_messages = Counter("meta.membership_msgs")
        self._hb_inbox = stack.udp_bind(META_PORT)
        self._ctl_inbox = stack.tcp.listen(META_PORT)
        sim.process(self._heartbeat_loop())
        sim.process(self._control_loop())
        sim.process(self._monitor_loop())

    # -- registration -------------------------------------------------------------
    def register_node(self, name: str) -> None:
        self.status[name] = UP
        self.last_heartbeat[name] = self.sim.now

    def node_ip(self, name: str) -> Optional[IPv4Address]:
        rec = self.controller.hosts.get(name)
        return rec.ip if rec else None

    def live_nodes(self) -> List[str]:
        return [n for n, s in self.status.items() if s == UP]

    # -- inbound loops ---------------------------------------------------------------
    def _heartbeat_loop(self):
        while True:
            dgram = yield self._hb_inbox.get()
            body = dgram.payload or {}
            if body.get("type") != "hb":
                continue
            node = body["node"]
            if self.status.get(node) == DOWN:
                continue  # must rejoin explicitly first (§4.4)
            self.last_heartbeat[node] = self.sim.now
            for partition, clients in (body.get("stats") or {}).items():
                self.client_stats.setdefault(partition, set()).update(clients)

    def _monitor_loop(self):
        interval = self.config.heartbeat_interval_s
        limit = self.config.heartbeat_miss_limit * interval
        while True:
            yield self.sim.timeout(interval)
            now = self.sim.now
            for node, state in list(self.status.items()):
                if state == UP and now - self.last_heartbeat.get(node, now) > limit:
                    self.declare_failed(node)

    def _control_loop(self):
        while True:
            msg = yield self._ctl_inbox.get()
            body = msg.payload or {}
            kind = body.get("type")
            if kind == "report_failure":
                suspect = body["suspect"]
                if self.status.get(suspect) == UP:
                    self.declare_failed(suspect)
                yield msg.conn.send({"type": "report_ack"}, ACK_BYTES)
            elif kind == "rejoin":
                reply = self.begin_rejoin(body["node"])
                yield msg.conn.send({"type": "rejoin_ack", **reply}, MEMBERSHIP_BYTES)
            elif kind == "consistent":
                self.complete_rejoin(body["node"])
                yield msg.conn.send({"type": "consistent_ack"}, ACK_BYTES)
            elif kind == "admin_remove":
                self.admin_remove(body["node"])
                yield msg.conn.send({"type": "admin_ack"}, ACK_BYTES)

    # -- failure handling (§4.4) --------------------------------------------------------
    def declare_failed(self, node: str) -> None:
        """Hide ``node`` everywhere and install handoffs for its partitions."""
        if self.status.get(node) == DOWN:
            return
        self.status[node] = DOWN
        self.failures_declared.add()
        # Drop cached transport state toward the corpse: reconnects to the
        # rejoined node must run a fresh handshake.
        ip = self.node_ip(node)
        if ip is not None:
            self.stack.tcp.reset_peer(ip)
        affected = self.partition_map.partitions_of(node)
        for rs in affected:
            was_member = node in rs.members
            rs.mark_failed(node)
            if was_member:
                handoff = self._select_handoff(rs)
                if handoff is not None:
                    rs.add_handoff(handoff)
        self.controller.hide_host(node)
        for rs in affected:
            self.controller.sync_partition(rs.partition)
            self._inform_replicas(rs)

    def _select_handoff(self, rs: ReplicaSet) -> Optional[str]:
        eligible = self.partition_map.eligible_handoffs(rs.partition, self.live_nodes())
        if not eligible:
            return None
        eligible.sort()
        choice = eligible[self._handoff_rr % len(eligible)]
        self._handoff_rr += 1
        return choice

    # -- rejoin (§4.4, Node Recovery) ------------------------------------------------------
    def begin_rejoin(self, node: str) -> dict:
        """Phase 1: make ``node`` put-visible; tell it where its handoffs are.

        §4.4: the node becomes "accessible to other storage nodes and to
        client put requests only" — L3 reachability returns now (peers must
        reach it for catch-up traffic), get visibility only in phase 2.
        """
        self.status[node] = JOINING
        self.last_heartbeat[node] = self.sim.now
        self.controller.unhide_host(node)
        handoff_info = {}
        slices = []
        for rs in self.partition_map.partitions_where_member(node):
            rs.begin_rejoin(node)
            self.controller.sync_partition(rs.partition)
            self._inform_replicas(rs)
            slices.append(rs.to_wire())
            if rs.handoffs:
                handoff_info[rs.partition] = list(rs.handoffs)
        # The reply carries the fresh O(R) slices so the node can start
        # participating in puts the moment it learns its handoffs.
        return {"handoffs": handoff_info, "replica_sets": slices}

    def complete_rejoin(self, node: str) -> None:
        """Phase 2: node reports consistent data — restore get visibility,
        release handoffs, restore its primary roles.

        Also serves admin node-addition (§4.4 Ring Re-Configuration): the
        node is already UP there, joining only the new partitions.
        """
        if self.status.get(node) not in (JOINING, UP):
            return
        if self.status.get(node) == JOINING:
            self.rejoins_completed.add()
        self.status[node] = UP
        self.controller.unhide_host(node)
        for rs in self.partition_map.partitions_where_member(node):
            if node not in rs.joining:
                continue
            released = rs.complete_rejoin(node)
            self.controller.sync_partition(rs.partition)
            self._inform_replicas(rs, extra=released)

    # -- admin reconfiguration (§4.4, Ring Re-Configuration) -------------------------------
    def admin_add_to_replica_set(self, node: str, partition: int) -> None:
        """Add an existing storage node to a partition's replica set.

        §4.4: "Adding a new node to a replica set follows a procedure
        similar to rejoining a node after a temporary failure.  The node is
        added first to the put vring ... the node contacts the primary node
        to retrieve all keys stored in the hash range.  Once the new node
        has consistent data it is added to the get vring."

        The metadata side: extend membership, stage the node put-visible,
        and re-sync the switch.  The node-side catch-up transfer runs when
        the node receives the membership slice (it sees itself joining).
        """
        rs = self.partition_map.get(partition)
        if rs.is_member(node):
            raise ValueError(f"{node} already serves partition {partition}")
        if self.status.get(node) != UP:
            raise ValueError(f"{node} is not a live registered node")
        rs.members.append(node)
        rs.absent.add(node)   # not yet consistent: hidden from gets
        rs.begin_rejoin(node)  # put-visible immediately
        self.controller.sync_partition(partition)
        self._inform_replicas(rs)

    def admin_remove(self, node: str) -> None:
        """Permanently remove ``node``: hide it and erase it from membership."""
        if self.status.get(node) != DOWN:
            self.declare_failed(node)
        affected = [
            rs for rs in self.partition_map if node in rs.members or node in rs.handoffs
        ]
        for rs in affected:
            if node in rs.members:
                rs.members.remove(node)
                rs.absent.discard(node)
                rs.joining.discard(node)
            if node in rs.handoffs:
                rs.handoffs.remove(node)
            self.controller.sync_partition(rs.partition)
            self._inform_replicas(rs)
        self.status.pop(node, None)

    # -- pushing membership slices -----------------------------------------------------------
    def _inform_replicas(self, rs: ReplicaSet, extra: Optional[List[str]] = None) -> None:
        """Send the O(R) slice to every node serving (or just released from)
        the partition."""
        targets = set(rs.put_targets()) | set(rs.get_targets()) | set(extra or [])
        wire = rs.to_wire()
        for name in sorted(targets):
            ip = self.node_ip(name)
            if ip is None or self.status.get(name) == DOWN:
                continue
            self.membership_messages.add()
            self.sim.process(self._send_membership(ip, wire))

    def _send_membership(self, ip: IPv4Address, wire: dict):
        yield self.stack.tcp.send_message(
            ip, NODE_PORT, {"type": "membership", "replica_set": wire}, MEMBERSHIP_BYTES
        )
