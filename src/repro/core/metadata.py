"""The metadata service (§4.1): membership module + SDN controller driver.

The service is the only component with complete membership knowledge.  It:

* receives UDP heartbeats from storage nodes and declares a node failed
  after ``heartbeat_miss_limit`` missed beats, or immediately upon a peer's
  failure report (§4.4, Failure Detection);
* hides failed nodes by re-syncing switch rules without them (§4.4,
  Failure Hiding) and selects a handoff node per affected partition (§4.4,
  Maintaining Replication Level);
* stages node rejoin in two phases — put-visible first, get-visible after
  the node reports consistency (§4.4, Node Recovery);
* supports administrative ring reconfiguration (§4.4, Ring Re-Configuration);
* pushes O(R) membership slices to affected replicas only, keeping
  maintenance O(S) switch messages + O(R) node messages per change (§4.1).

For control-plane fault tolerance (``ClusterConfig.metadata_standbys``)
the service additionally carries an **epoch** stamped on every flow-mod
and membership message, appends every membership transition to a
persisted :class:`~repro.core.controlplane_ha.MembershipLog` (replicated
to standbys), and beats a leader heartbeat so standbys can detect its
death and promote.  With no standbys configured (the default) all of
that collapses to the original single-process behavior: epoch is the
constant 1, the log is ``None``, and no leader beats are sent.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..net import IPv4Address
from ..sim import AnyOf, Counter, Simulator
from ..transport import ProtocolStack
from .config import (
    ACK_BYTES,
    ClusterConfig,
    HEARTBEAT_BYTES,
    MEMBERSHIP_BYTES,
    META_PORT,
    NODE_PORT,
)
from .controller import NiceControllerApp
from .membership import PartitionMap, ReplicaSet

__all__ = ["MetadataService"]

#: Node lifecycle states tracked by the membership module.
UP, DOWN, JOINING = "up", "down", "joining"


class MetadataService:
    """Runs on its own host; owns the partition map and the controller.

    ``own_loops=False`` is the HA mode: a
    :class:`~repro.core.controlplane_ha.MetadataReplica` owns the sockets
    and forwards traffic in, so a promoted service can take over without
    rebinding ports.  ``active`` gates every timed loop — a deposed
    leader's service is deactivated in place and its still-running
    processes become no-ops.
    """

    def __init__(
        self,
        sim: Simulator,
        stack: ProtocolStack,
        config: ClusterConfig,
        partition_map: PartitionMap,
        controller: NiceControllerApp,
        epoch: int = 1,
        peers: Iterable[IPv4Address] = (),
        log=None,
        own_loops: bool = True,
    ):
        self.sim = sim
        self.stack = stack
        self.config = config
        self.partition_map = partition_map
        self.controller = controller
        #: Monotonically increasing leadership epoch; stamped on every
        #: flow-mod and membership message so switches and nodes can fence
        #: a deposed leader.  The build-time leader starts at 1.
        self.epoch = epoch
        self.peers: Tuple[IPv4Address, ...] = tuple(peers)
        self.log = log
        self.active = True
        # Keep the controller's stamp in step: the reactive packet-in path
        # stamps flow-mods with controller.epoch, and it must never lag the
        # acting leader's epoch or the switches would fence it.
        controller.epoch = epoch
        controller.partition_map = partition_map
        self.status: Dict[str, str] = {}
        self.last_heartbeat: Dict[str, float] = {}
        #: Client IPs observed per partition (heartbeat workload stats, §4.5).
        self.client_stats: Dict[int, set] = {}
        self._handoff_rr = 0  # round-robin cursor for handoff selection
        #: Nodes currently reporting a fail-slow disk (§5k); excluded from
        #: the read round-robin and from primary/handoff selection.
        self.degraded: set = set()
        self.failures_declared = Counter("meta.failures")
        self.rejoins_completed = Counter("meta.rejoins")
        self.membership_messages = Counter("meta.membership_msgs")
        self.reconcile_passes = Counter("meta.reconciles")
        self.failslow_detections = Counter("meta.failslow_detections")
        self.failslow_handoffs = Counter("meta.failslow_handoffs")
        if own_loops:
            self._hb_inbox = stack.udp_bind(META_PORT)
            self._ctl_inbox = stack.tcp.listen(META_PORT)
            sim.process(self._heartbeat_loop())
            sim.process(self._control_loop())
        else:
            self._hb_inbox = None
            self._ctl_inbox = None
        sim.process(self._monitor_loop())
        if self.peers:
            sim.process(self._leader_beat_loop())
        if self.log is not None and len(self.log) == 0:
            self._log_append("init", slices=list(partition_map))

    # -- registration -------------------------------------------------------------
    def register_node(self, name: str) -> None:
        self.status[name] = UP
        # Seed the liveness clock at registration: a node that dies before
        # its first beat must still be declared within the miss limit.
        self.last_heartbeat[name] = self.sim.now
        self._log_append("register", node=name)

    def node_ip(self, name: str) -> Optional[IPv4Address]:
        rec = self.controller.hosts.get(name)
        return rec.ip if rec else None

    def live_nodes(self) -> List[str]:
        return [n for n, s in self.status.items() if s == UP]

    # -- inbound handlers ---------------------------------------------------------------
    def on_heartbeat(self, body: dict) -> None:
        if body.get("type") != "hb":
            return
        node = body["node"]
        if self.status.get(node) == DOWN:
            return  # must rejoin explicitly first (§4.4)
        self.last_heartbeat[node] = self.sim.now
        for partition, clients in (body.get("stats") or {}).items():
            self.client_stats.setdefault(partition, set()).update(clients)
        slow = bool(body.get("disk_slow"))
        if slow != (node in self.degraded):
            self._set_degraded(node, slow)

    def handle_control(self, msg, body: dict):
        """One TCP control message; a generator (``yield from``-able by the
        HA replica wrapper)."""
        kind = body.get("type")
        if kind == "report_failure":
            suspect = body["suspect"]
            # Idempotent under races: a report for a node already mid-rejoin
            # re-declares it (its rejoin restarts at phase 1), a report for
            # a node already DOWN is a no-op.
            if self.status.get(suspect) in (UP, JOINING):
                self.declare_failed(suspect)
            yield msg.conn.send({"type": "report_ack"}, ACK_BYTES)
        elif kind == "rejoin":
            if self._switch_channel_down():
                # The §4.4 two-phase visibility protocol depends on the
                # flow-mods landing; with the switch channel down they are
                # dropped, which would leave a "joining" node invisible to
                # puts yet later marked consistent.  Defer the node.
                yield msg.conn.send({"type": "retry_later"}, ACK_BYTES)
                return
            reply = self.begin_rejoin(body["node"])
            yield msg.conn.send(
                {"type": "rejoin_ack", "epoch": self.epoch, **reply}, MEMBERSHIP_BYTES
            )
        elif kind == "consistent":
            if self._switch_channel_down():
                yield msg.conn.send({"type": "retry_later"}, ACK_BYTES)
                return
            self.complete_rejoin(body["node"])
            yield msg.conn.send({"type": "consistent_ack"}, ACK_BYTES)
        elif kind == "admin_remove":
            self.admin_remove(body["node"])
            yield msg.conn.send({"type": "admin_ack"}, ACK_BYTES)

    def _switch_channel_down(self) -> bool:
        """True while the controller's switch channel is severed (the
        OpenFlow session drop is observable — echo timeouts in a real
        controller; the chaos ``controller_crash`` fault here)."""
        channel = getattr(self.controller, "channel", None)
        return bool(getattr(channel, "down", False))

    # -- inbound loops (single-process mode) ---------------------------------------------
    def _heartbeat_loop(self):
        while True:
            dgram = yield self._hb_inbox.get()
            self.on_heartbeat(dgram.payload or {})

    def _control_loop(self):
        while True:
            msg = yield self._ctl_inbox.get()
            yield from self.handle_control(msg, msg.payload or {})

    def _monitor_loop(self):
        interval = self.config.heartbeat_interval_s
        limit = self.config.heartbeat_miss_limit * interval
        while True:
            yield self.sim.timeout(interval)
            # A deposed or crashed leader's monitor must not keep declaring
            # failures (its clock of heartbeats stopped with its NIC).
            if not self.active or not self.stack.host.up:
                continue
            now = self.sim.now
            for node, state in list(self.status.items()):
                # JOINING nodes are monitored too: a node that dies
                # mid-rejoin must not stay put-visible forever.  A missing
                # entry counts as "never beat", not "fresh".
                beat = self.last_heartbeat.get(node, float("-inf"))
                if state in (UP, JOINING) and now - beat > limit:
                    self.declare_failed(node)

    def _leader_beat_loop(self):
        """Announce leadership to standbys on the same heartbeat cadence
        nodes use; a standby promotes when the lease expires."""
        interval = self.config.heartbeat_interval_s
        while True:
            yield self.sim.timeout(interval)
            if not self.active or not self.stack.host.up:
                continue
            self.send_leader_beat()

    def send_leader_beat(self) -> None:
        body = {"type": "leader_hb", "epoch": self.epoch, "ip": str(self.stack.ip)}
        for ip in self.peers:
            self.stack.udp_send(ip, META_PORT, body, HEARTBEAT_BYTES)

    def set_peers(self, peers: Iterable[IPv4Address]) -> None:
        """Late peer wiring (build-time: standbys are created after the
        leader).  Starts the leader-beat loop on the 0→N transition so the
        standby-less configuration never schedules it."""
        had_peers = bool(self.peers)
        self.peers = tuple(peers)
        if self.peers and not had_peers:
            self.sim.process(self._leader_beat_loop())

    # -- membership log (control-plane HA) ------------------------------------------------
    def _log_append(self, kind: str, node: str = "", slices: Iterable[ReplicaSet] = ()) -> None:
        if self.log is None:
            return
        record = {
            "kind": kind,
            "epoch": self.epoch,
            "node": node,
            "slices": [rs.to_wire() for rs in slices],
        }
        self.log.append(record)
        for ip in self.peers:
            self.sim.process(self._replicate_record(ip, record))

    def _replicate_record(self, ip: IPv4Address, record: dict):
        send = self.stack.tcp.send_message(
            ip, META_PORT,
            {"type": "meta_log", "epoch": self.epoch, "record": record},
            MEMBERSHIP_BYTES,
        )
        # Best-effort: a dead standby must not wedge the leader.
        yield AnyOf(self.sim, [send, self.sim.timeout(self.config.peer_timeout_s * 4)])

    def reconcile_switches(self) -> Dict[str, int]:
        """Recompute the desired ruleset from membership and diff-repair
        every switch (takeover / controller-reconnect path)."""
        stats = self.controller.reconcile(epoch=self.epoch)
        self.reconcile_passes.add()
        tr = self.sim.tracer
        if tr is not None:
            tr.instant("reconcile", "ctrl", node=self.stack.host.name,
                       epoch=self.epoch, **stats)
        return stats

    # -- failure handling (§4.4) --------------------------------------------------------
    def declare_failed(self, node: str) -> None:
        """Hide ``node`` everywhere and install handoffs for its partitions."""
        if self.status.get(node) == DOWN:
            return
        self.status[node] = DOWN
        self.failures_declared.add()
        # Drop cached transport state toward the corpse: reconnects to the
        # rejoined node must run a fresh handshake.
        ip = self.node_ip(node)
        if ip is not None:
            self.stack.tcp.reset_peer(ip)
        affected = self.partition_map.partitions_of(node)
        for rs in affected:
            was_member = node in rs.members
            rs.mark_failed(node)
            # One handoff per uncovered absence: re-declaring a node whose
            # partitions already hold replacement handoffs (e.g. a failure
            # report racing its rejoin) must not stack a second one.
            if was_member and len(rs.absent) > len(rs.handoffs):
                handoff = self._select_handoff(rs)
                if handoff is not None:
                    rs.add_handoff(handoff)
                else:
                    # No stand-in exists to accumulate the writes this
                    # node will miss: its rejoin needs a full fetch.
                    rs.uncovered.add(node)
        self.controller.hide_host(node)
        for rs in affected:
            self.controller.sync_partition(rs.partition, epoch=self.epoch)
            self._inform_replicas(rs)
        self._log_append("fail", node=node, slices=affected)

    def _set_degraded(self, node: str, slow: bool) -> None:
        """React to a node's fail-slow report (§5k).

        The node stays a consistent replica — its data is fine, only its
        device is slow — so it is *drained*, not failed: the controller
        drops it from the read round-robin / LB divisions, and any
        partition it leads is handed to a healthy replica (the primary
        serves forwarded gets, reconciliation, and commit stamping; a
        fail-slow primary throttles the whole partition)."""
        if slow:
            self.degraded.add(node)
            self.failslow_detections.add()
        else:
            self.degraded.discard(node)
        # Degradation changes desired rules without bumping membership
        # revisions, so the controller must drop its plan cache.
        self.controller.set_degraded(node, slow)
        affected = self.partition_map.partitions_of(node)
        for rs in affected:
            if slow and rs.primary == node:
                candidates = [
                    m
                    for m in rs.members
                    if m != node
                    and m not in rs.absent
                    and m not in rs.joining
                    and m not in self.degraded
                    and self.status.get(m) == UP
                ]
                if candidates and rs.set_primary(candidates[0]):
                    self.failslow_handoffs.add()
            self.controller.sync_partition(rs.partition, epoch=self.epoch)
            self._inform_replicas(rs)
        self._log_append("degraded" if slow else "undegraded", node=node,
                         slices=affected)
        tr = self.sim.tracer
        if tr is not None:
            tr.instant("failslow" if slow else "failslow_clear", "ctrl", node=node)

    def _select_handoff(self, rs: ReplicaSet) -> Optional[str]:
        eligible = self.partition_map.eligible_handoffs(rs.partition, self.live_nodes())
        if not eligible:
            return None
        eligible.sort()
        # Rack awareness: prefer a stand-in from a rack the surviving put
        # targets do not already cover, keeping the set spread over >= 2
        # failure domains.  Outside fabric mode every rack is None, the
        # preference filter is empty, and selection is exactly the
        # pre-fabric round-robin.
        covered = {self.controller.rack_of_node(n) for n in rs.put_targets()}
        preferred = [
            c for c in eligible if self.controller.rack_of_node(c) not in covered
        ]
        pool = preferred or eligible
        choice = pool[self._handoff_rr % len(pool)]
        self._handoff_rr += 1
        return choice

    # -- rejoin (§4.4, Node Recovery) ------------------------------------------------------
    def begin_rejoin(self, node: str) -> dict:
        """Phase 1: make ``node`` put-visible; tell it where its handoffs are.

        §4.4: the node becomes "accessible to other storage nodes and to
        client put requests only" — L3 reachability returns now (peers must
        reach it for catch-up traffic), get visibility only in phase 2.
        """
        self.status[node] = JOINING
        self.last_heartbeat[node] = self.sim.now
        self.controller.unhide_host(node, epoch=self.epoch)
        handoff_info = {}
        full_fetch = []
        slices = []
        affected = self.partition_map.partitions_where_member(node)
        for rs in affected:
            rs.begin_rejoin(node)
            self.controller.sync_partition(rs.partition, epoch=self.epoch)
            self._inform_replicas(rs)
            slices.append(rs.to_wire())
            if rs.handoffs:
                handoff_info[rs.partition] = list(rs.handoffs)
            if node in rs.uncovered:
                # The handoff chain broke while this node was away (a
                # stand-in died, or none existed): incremental catch-up
                # cannot be trusted — fetch the whole partition.
                full_fetch.append(rs.partition)
        self._log_append("rejoin_begin", node=node, slices=affected)
        # The reply carries the fresh O(R) slices so the node can start
        # participating in puts the moment it learns its handoffs.
        return {
            "handoffs": handoff_info,
            "replica_sets": slices,
            "full_fetch": full_fetch,
        }

    def complete_rejoin(self, node: str) -> None:
        """Phase 2: node reports consistent data — restore get visibility,
        release handoffs, restore its primary roles.

        Also serves admin node-addition (§4.4 Ring Re-Configuration): the
        node is already UP there, joining only the new partitions.
        """
        if self.status.get(node) not in (JOINING, UP):
            return
        if self.status.get(node) == JOINING:
            self.rejoins_completed.add()
        self.status[node] = UP
        self.controller.unhide_host(node, epoch=self.epoch)
        completed = []
        for rs in self.partition_map.partitions_where_member(node):
            if node not in rs.joining:
                continue
            released = rs.complete_rejoin(node)
            self.controller.sync_partition(rs.partition, epoch=self.epoch)
            self._inform_replicas(rs, extra=released)
            completed.append(rs)
        self._log_append("rejoin_complete", node=node, slices=completed)

    # -- admin reconfiguration (§4.4, Ring Re-Configuration) -------------------------------
    def admin_add_to_replica_set(self, node: str, partition: int) -> None:
        """Add an existing storage node to a partition's replica set.

        §4.4: "Adding a new node to a replica set follows a procedure
        similar to rejoining a node after a temporary failure.  The node is
        added first to the put vring ... the node contacts the primary node
        to retrieve all keys stored in the hash range.  Once the new node
        has consistent data it is added to the get vring."

        The metadata side: extend membership, stage the node put-visible,
        and re-sync the switch.  The node-side catch-up transfer runs when
        the node receives the membership slice (it sees itself joining).
        """
        rs = self.partition_map.get(partition)
        if rs.is_member(node):
            raise ValueError(f"{node} already serves partition {partition}")
        if self.status.get(node) != UP:
            raise ValueError(f"{node} is not a live registered node")
        rs.members.append(node)
        rs.absent.add(node)   # not yet consistent: hidden from gets
        rs.begin_rejoin(node)  # put-visible immediately
        self.controller.sync_partition(partition, epoch=self.epoch)
        self._inform_replicas(rs)
        self._log_append("admin_add", node=node, slices=[rs])

    def admin_remove(self, node: str) -> None:
        """Permanently remove ``node``: hide it and erase it from membership."""
        if self.status.get(node) != DOWN:
            self.declare_failed(node)
        affected = [
            rs for rs in self.partition_map if node in rs.members or node in rs.handoffs
        ]
        for rs in affected:
            if node in rs.members:
                rs.members.remove(node)
                rs.absent.discard(node)
                rs.joining.discard(node)
            if node in rs.handoffs:
                rs.handoffs.remove(node)
            self.controller.sync_partition(rs.partition, epoch=self.epoch)
            self._inform_replicas(rs)
        self.status.pop(node, None)
        self._log_append("admin_remove", node=node, slices=affected)

    # -- pushing membership slices -----------------------------------------------------------
    def _inform_replicas(self, rs: ReplicaSet, extra: Optional[List[str]] = None) -> None:
        """Send the O(R) slice to every node serving (or just released from)
        the partition."""
        targets = set(rs.put_targets()) | set(rs.get_targets()) | set(extra or [])
        wire = rs.to_wire()
        for name in sorted(targets):
            ip = self.node_ip(name)
            if ip is None or self.status.get(name) == DOWN:
                continue
            self.membership_messages.add()
            self.sim.process(self._send_membership(ip, wire))

    def _send_membership(self, ip: IPv4Address, wire: dict):
        yield self.stack.tcp.send_message(
            ip, NODE_PORT,
            {"type": "membership", "epoch": self.epoch, "replica_set": wire},
            MEMBERSHIP_BYTES,
        )
