"""The NICE client library (§3.2, §5 Request Routing).

The client addresses the *virtual* storage system: it hashes the object
name, finds the responsible vnode, and fires a UDP request at the vnode
address — the unicast vring for gets, the multicast vring for puts (with
the object data on the reliable multicast transport).  Replies arrive on a
client-side TCP socket.  Failed operations are retried after a fixed
back-off (Fig 11 uses 2 s); retried puts reuse the original client
timestamp, so commits are idempotent across retries (§4.3).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from ..net import Host, IPv4Address
from ..sim import AnyOf, Counter, Event, Simulator, Tally
from ..transport import MulticastSender, ProtocolStack
from .config import (
    CLIENT_PORT,
    ClusterConfig,
    GET_PORT,
    PUT_PORT,
    REQUEST_BYTES,
)
from .vring import VirtualRing

__all__ = ["NiceClient", "OpResult"]


class OpResult:
    """Outcome of one client operation."""

    __slots__ = ("ok", "latency", "retries", "value", "status")

    def __init__(self, ok: bool, latency: float, retries: int, value=None, status=""):
        self.ok = ok
        self.latency = latency
        self.retries = retries
        self.value = value
        self.status = status

    def __repr__(self) -> str:  # pragma: no cover
        return f"<OpResult {'ok' if self.ok else self.status} {self.latency * 1e3:.3f}ms>"


class NiceClient:
    """One client machine's NICEKV library instance."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        config: ClusterConfig,
        unicast_vring: VirtualRing,
        multicast_vring: VirtualRing,
    ):
        self.sim = sim
        self.host = host
        self.config = config
        self.uni = unicast_vring
        self.mc = multicast_vring
        self.stack = ProtocolStack(sim, host)
        self.mc_sender = MulticastSender(self.stack)
        self._reply_inbox = self.stack.tcp.listen(CLIENT_PORT)
        self._waiters: Dict[Tuple, Event] = {}
        self._op_seq = itertools.count(1)
        self.put_latency = Tally(f"{host.name}.put")
        self.get_latency = Tally(f"{host.name}.get")
        self.failures = Counter(f"{host.name}.failures")
        self.retries = Counter(f"{host.name}.retries")
        #: Optional :class:`~repro.check.HistoryRecorder`; when set, every
        #: op is captured with invoke/return stamps for consistency checks.
        self.recorder = None
        sim.process(self._reply_loop())

    @property
    def ip(self) -> IPv4Address:
        return self.host.ip

    def _traced(self, kind: str, key: str, value, gen):
        if self.recorder is not None:
            gen = self.recorder.record(self.host.name, kind, key, value, self.sim, gen)
        return self.sim.process(gen)

    def _reply_loop(self):
        while True:
            msg = yield self._reply_inbox.get()
            body = msg.payload or {}
            op_id = tuple(body.get("op_id", ()))
            waiter = self._waiters.pop(op_id, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(body)
            # Late duplicates (replies to retried ops) are dropped.

    def _new_op(self) -> Tuple:
        return (str(self.ip), next(self._op_seq))

    # -- public API -----------------------------------------------------------
    def put(self, key: str, value, size: int, max_retries: int = 3):
        """Store ``value`` under ``key``; returns a Process → :class:`OpResult`."""
        return self._traced("put", key, value, self._put(key, value, size, max_retries))

    def get(self, key: str, max_retries: int = 3):
        """Fetch ``key``; returns a Process → :class:`OpResult`."""
        return self._traced("get", key, None, self._get(key, max_retries))

    def put_anyk(self, key: str, value, size: int, quorum: int):
        """Quorum-mode put (§5): the reliable any-k multicast returns when
        ``quorum`` replicas hold the data; no 2PC round (Fig 8's NICE side)."""
        return self._traced("put", key, value, self._put_anyk(key, value, size, quorum))

    # -- implementations ----------------------------------------------------------
    def _put(self, key: str, value, size: int, max_retries: int):
        t0 = self.sim.now
        client_ts = self.sim.now  # reused across retries: idempotence token
        vaddr = self.mc.vnode_for_key(key)
        tr = self.sim.tracer
        if tr is not None:
            tr.instant("vnode_resolve", "client", node=self.host.name,
                       key=key, vnode=str(vaddr), kind="put")
        for attempt in range(max_retries + 1):
            op_id = self._new_op()
            span = None
            if tr is not None:
                span = tr.begin("put", "op", node=self.host.name, op=op_id,
                                key=key, attempt=attempt)
            waiter = Event(self.sim)
            self._waiters[op_id] = waiter
            self.mc_sender.send(
                vaddr,
                PUT_PORT,
                {
                    "type": "put",
                    "op_id": op_id,
                    "key": key,
                    "value": value,
                    "size": size,
                    "client_ip": str(self.ip),
                    "client_ts": client_ts,
                    "client_port": CLIENT_PORT,
                },
                size,
                n_receivers=self.config.replication_level,
                quorum=1,
            )
            got = yield AnyOf(
                self.sim, [waiter, self.sim.timeout(self.config.client_retry_timeout_s)]
            )
            self._waiters.pop(op_id, None)
            replied = waiter in got
            if replied and got[waiter].get("status") == "ok":
                latency = self.sim.now - t0
                self.put_latency.observe(latency)
                if span is not None:
                    span.end(status="ok")
                return OpResult(True, latency, attempt)
            if span is not None:
                span.end(
                    status=got[waiter].get("status", "error") if replied
                    else "timeout"
                )
            if attempt < max_retries:
                self.retries.add()
                if replied:
                    # A rejection (e.g. an aborted 2PC) arrives well before
                    # the retry timeout fires; without this wait the client
                    # re-multicasts in the same sim instant, so a rejecting
                    # replica set sees max_retries+1 puts in zero sim time.
                    yield self.sim.timeout(self.config.client_retry_timeout_s)
        self.failures.add()
        return OpResult(False, self.sim.now - t0, max_retries, status="timeout")

    def _resolve_get_route(self, key: str, attempt: int):
        """Vnode address for one get attempt.

        Attempt 0 is the canonical hash-resolved vnode.  Retries
        *re-resolve*: they rotate deterministically to a different vnode
        address of the same subgroup, so a retry never re-presents the
        byte-identical header tuple its failed predecessor used — the
        switches must re-scan it against their *current* tables instead
        of serving whatever per-flow state (exact-match cache entries,
        in-flight buffered copies) the pre-flap/pre-reconcile route left
        behind.  The subgroup — and therefore the partition and every
        rule that can match — is unchanged; only the flow identity moves.
        """
        vaddr = self.uni.vnode_for_key(key)
        if attempt == 0:
            return vaddr
        prefix = self.uni.subgroup_prefix(self.uni.subgroup_of_key(key))
        offset = (vaddr - prefix.address + attempt) % prefix.num_addresses
        return prefix.address + offset

    def _get(self, key: str, max_retries: int):
        t0 = self.sim.now
        tr = self.sim.tracer
        for attempt in range(max_retries + 1):
            vaddr = self._resolve_get_route(key, attempt)
            if tr is not None:
                tr.instant("vnode_resolve", "client", node=self.host.name,
                           key=key, vnode=str(vaddr), kind="get",
                           attempt=attempt)
            op_id = self._new_op()
            span = None
            if tr is not None:
                span = tr.begin("get", "op", node=self.host.name, op=op_id,
                                key=key, attempt=attempt)
            waiter = Event(self.sim)
            self._waiters[op_id] = waiter
            self.stack.udp_send(
                vaddr,
                GET_PORT,
                {
                    "type": "get",
                    "op_id": op_id,
                    "key": key,
                    "client_ip": str(self.ip),
                    "client_port": CLIENT_PORT,
                },
                REQUEST_BYTES,
            )
            got = yield AnyOf(
                self.sim, [waiter, self.sim.timeout(self.config.client_retry_timeout_s)]
            )
            self._waiters.pop(op_id, None)
            replied = waiter in got
            if replied:
                body = got[waiter]
                status = body.get("status", "error")
                latency = self.sim.now - t0
                if status == "ok":
                    self.get_latency.observe(latency)
                    if span is not None:
                        span.end(status="ok")
                    return OpResult(True, latency, attempt, value=body.get("value"))
                if status == "miss":
                    # An authoritative miss is an answer (the checker reads
                    # it as "initial value"), not a failure to reach the
                    # store — returned as-is, no retry.
                    if span is not None:
                        span.end(status="miss")
                    return OpResult(False, latency, attempt, status="miss")
            if span is not None:
                span.end(
                    status=got[waiter].get("status", "error") if replied
                    else "timeout"
                )
            if attempt < max_retries:
                self.retries.add()
                if replied:
                    # Mirror of _put: an early error reply must still honor
                    # the fixed back-off before the next attempt.
                    yield self.sim.timeout(self.config.client_retry_timeout_s)
        self.failures.add()
        return OpResult(False, self.sim.now - t0, max_retries, status="timeout")

    def _put_anyk(self, key: str, value, size: int, quorum: int):
        t0 = self.sim.now
        vaddr = self.mc.vnode_for_key(key)
        op_id = self._new_op()
        tr = self.sim.tracer
        span = None
        if tr is not None:
            span = tr.begin("put_anyk", "op", node=self.host.name, op=op_id,
                            key=key, quorum=quorum)
        sender = self.mc_sender.send(
            vaddr,
            PUT_PORT,
            {
                "type": "put_anyk",
                "op_id": op_id,
                "key": key,
                "value": value,
                "size": size,
                "client_ip": str(self.ip),
                "client_ts": t0,
                "client_port": CLIENT_PORT,
            },
            size,
            n_receivers=self.config.replication_level,
            quorum=quorum,
        )
        # Same timeout contract as _put: if quorum replicas are unreachable
        # (crash/partition) the reliable multicast never completes — without
        # this bound the op would hang forever and still report ok=True.
        got = yield AnyOf(
            self.sim, [sender, self.sim.timeout(self.config.client_retry_timeout_s)]
        )
        if sender not in got:
            self.failures.add()
            if span is not None:
                span.end(status="timeout")
            return OpResult(False, self.sim.now - t0, 0, status="timeout")
        acks = got[sender]
        latency = self.sim.now - t0
        self.put_latency.observe(latency)
        if span is not None:
            span.end(status="ok", acks=len(acks))
        return OpResult(True, latency, 0, value=len(acks))
