"""Membership state: replica sets and the partition map.

The metadata service is "the only component that maintains the system
membership and metadata" (§4.1).  Each partition (vring subgroup) has a
replica set; storage nodes receive only the O(R) slice relevant to them.

A replica set distinguishes:

* *members* — the original replicas (element 0 is the original primary);
* *absent* — failed or not-yet-consistent members, hidden from clients
  (consistency-aware fault tolerance, §3.3);
* *joining* — rejoining members in phase 1: visible to puts (multicast
  group) but not yet to gets (§4.4, Node Recovery);
* *handoffs* — stand-in secondaries covering for absent members (§4.4);
* *uncovered* — absent members whose missed writes are NOT fully covered
  by the current handoffs (a handoff died, or none could be appointed).
  Correlated failures (e.g. a rack outage) can kill a handoff that was
  itself inside the failing domain; a rejoiner listed here must run a
  full partition fetch from the acting primary instead of trusting the
  incremental handoff catch-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..kv import ConsistentHashRing

__all__ = ["ReplicaSet", "PartitionMap"]


@dataclass
class ReplicaSet:
    """Current membership of one partition."""

    partition: int
    members: List[str]
    primary: str = ""
    absent: Set[str] = field(default_factory=set)
    joining: Set[str] = field(default_factory=set)
    handoffs: List[str] = field(default_factory=list)
    uncovered: Set[str] = field(default_factory=set)
    #: Mutation counter bumped by every membership transition; the
    #: controller's plan cache keys on it.  Excluded from equality so
    #: wire round-trips and test fixtures compare by content.
    rev: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError(f"partition {self.partition}: empty replica set")
        if not self.primary:
            self.primary = self.members[0]

    # -- views ------------------------------------------------------------
    def put_targets(self) -> List[str]:
        """Multicast-group membership: consistent members, phase-1 joiners,
        and handoffs — everyone who must receive new puts."""
        out = [m for m in self.members if m not in self.absent]
        out += [m for m in self.members if m in self.joining and m in self.absent]
        out += list(self.handoffs)
        return out

    def get_targets(self) -> List[str]:
        """Unicast/LB targets: only nodes holding consistent data."""
        return [m for m in self.members if m not in self.absent] + list(self.handoffs)

    def secondaries(self) -> List[str]:
        """Current secondary replicas from the acting primary's view."""
        return [n for n in self.put_targets() if n != self.primary]

    def is_member(self, node: str) -> bool:
        return node in self.members or node in self.handoffs

    def live_original_members(self) -> List[str]:
        return [m for m in self.members if m not in self.absent]

    # -- transitions (driven by the metadata service) -----------------------------
    def mark_failed(self, node: str) -> None:
        self.rev += 1
        if node in self.members:
            self.absent.add(node)
            self.joining.discard(node)
            if self.primary == node:
                live = self.live_original_members()
                # §4.4: "the metadata service selects one of the secondary
                # nodes to act as a primary node".
                if live:
                    self.primary = live[0]
                elif self.handoffs:
                    self.primary = self.handoffs[0]
        elif node in self.handoffs:
            self.handoffs.remove(node)
            # The dead handoff may have been the only holder of writes its
            # absent members missed; their catch-up can no longer rely on
            # the (remaining) handoff chain.
            self.uncovered |= set(self.absent)

    def add_handoff(self, node: str) -> None:
        if self.is_member(node):
            raise ValueError(f"{node} already serves partition {self.partition}")
        self.rev += 1
        self.handoffs.append(node)

    def set_primary(self, node: str) -> bool:
        """Hand the primary role to ``node`` (fail-slow drain, §5k): the
        old primary stays a consistent member — its data is fine, only
        its device is slow.  Returns whether anything changed."""
        if node == self.primary or node not in self.members or node in self.absent:
            return False
        self.rev += 1
        self.primary = node
        return True

    def begin_rejoin(self, node: str) -> None:
        """Phase 1: put-visible only (still 'absent' for gets)."""
        if node not in self.members:
            raise ValueError(f"{node} is not an original member of p{self.partition}")
        self.rev += 1
        self.joining.add(node)

    def complete_rejoin(self, node: str) -> List[str]:
        """Phase 2: node is consistent — restore it, drop handoffs.

        Returns the handoff nodes released by this transition.
        """
        if node not in self.joining:
            raise ValueError(f"{node} has not begun rejoin on p{self.partition}")
        self.rev += 1
        self.joining.discard(node)
        self.absent.discard(node)
        self.uncovered.discard(node)
        released, self.handoffs = self.handoffs, []
        if self.members and self.members[0] == node:
            self.primary = node  # original primary resumes its role
        elif self.primary not in self.live_original_members():
            self.primary = self.live_original_members()[0]
        return released

    def to_wire(self) -> dict:
        """Serializable O(R) slice sent to affected storage nodes."""
        return {
            "partition": self.partition,
            "members": list(self.members),
            "primary": self.primary,
            "absent": sorted(self.absent),
            "joining": sorted(self.joining),
            "handoffs": list(self.handoffs),
            "uncovered": sorted(self.uncovered),
        }

    @staticmethod
    def from_wire(data: dict) -> "ReplicaSet":
        return ReplicaSet(
            partition=data["partition"],
            members=list(data["members"]),
            primary=data["primary"],
            absent=set(data["absent"]),
            joining=set(data["joining"]),
            handoffs=list(data["handoffs"]),
            uncovered=set(data.get("uncovered", ())),
        )


class PartitionMap:
    """All replica sets, plus the placement logic that seeds them."""

    def __init__(self, replica_sets: List[ReplicaSet]):
        self._sets: Dict[int, ReplicaSet] = {rs.partition: rs for rs in replica_sets}
        #: Bumped whenever a replica-set *object* is swapped in (HA log
        #: replay); plan-cache entries keyed on the old object die with it.
        self.generation = 0

    @staticmethod
    def build(
        node_names: List[str],
        n_partitions: int,
        replication_level: int,
        ring_points_per_node: int = 32,
        racks: Optional[Dict[str, int]] = None,
    ) -> "PartitionMap":
        """Initial placement: partitions land on the physical consistent-hash
        ring; the R clockwise successors form the replica set (§3.1).

        With ``racks`` (node -> failure domain), placement is rack-aware:
        if the R successors all share one rack, the last member is swapped
        for the next clockwise node from a different rack, so every
        replica set spans >= 2 failure domains whenever the cluster does.
        The swap is deterministic (pure ring order) and a no-op when
        ``racks`` is None or single-rack — the pre-fabric placement.
        """
        ring = ConsistentHashRing(points_per_node=ring_points_per_node)
        for name in node_names:
            ring.add_node(name)
        multi_rack = racks is not None and len(set(racks.values())) > 1
        sets = []
        for p in range(n_partitions):
            point = ConsistentHashRing.partition_point(p, n_partitions)
            members = [str(n) for n in ring.successors(point, replication_level)]
            if multi_rack and len({racks[m] for m in members}) == 1:
                order = [str(n) for n in ring.successors(point, len(node_names))]
                home = racks[members[0]]
                for candidate in order[replication_level:]:
                    if racks[candidate] != home:
                        members[-1] = candidate
                        break
            sets.append(ReplicaSet(partition=p, members=members))
        return PartitionMap(sets)

    def __len__(self) -> int:
        return len(self._sets)

    def __iter__(self):
        return iter(self._sets.values())

    def get(self, partition: int) -> ReplicaSet:
        try:
            return self._sets[partition]
        except KeyError:
            raise KeyError(f"unknown partition {partition}") from None

    def install(self, rs: ReplicaSet) -> None:
        """Replace one partition's replica set (membership-log replay)."""
        self._sets[rs.partition] = rs
        self.generation += 1

    def partitions_of(self, node: str) -> List[ReplicaSet]:
        """Every replica set ``node`` currently serves (member or handoff)."""
        return [rs for rs in self._sets.values() if rs.is_member(node)]

    def partitions_where_member(self, node: str) -> List[ReplicaSet]:
        return [rs for rs in self._sets.values() if node in rs.members]

    def eligible_handoffs(self, partition: int, candidates: List[str]) -> List[str]:
        """Nodes that may stand in for a failure on ``partition``: "any
        storage node ... that is not already part of the affected
        replication set" (§4.4)."""
        rs = self.get(partition)
        return [c for c in candidates if not rs.is_member(c)]
