"""NICE core: virtual rings, SDN controller, metadata service, storage
nodes, clients, and the cluster builder — the paper's contribution."""

from .client import NiceClient, OpResult
from .config import (
    ACK_BYTES,
    CLIENT_PORT,
    COMMIT_BYTES,
    ClusterConfig,
    GET_PORT,
    HEARTBEAT_BYTES,
    MEMBERSHIP_BYTES,
    META_PORT,
    NODE_PORT,
    PUT_PORT,
    REQUEST_BYTES,
    get_default_sim_mode,
    set_default_sim_mode,
)
from .controller import HostRecord, NiceControllerApp
from .controlplane_ha import (
    ControlPlaneHA,
    MembershipLog,
    MetadataReplica,
    replay_log,
)
from .membership import PartitionMap, ReplicaSet
from .metadata import MetadataService
from .storage_node import NiceStorageNode
from .system import NiceCluster
from .vring import VirtualRing

__all__ = [
    "ACK_BYTES",
    "CLIENT_PORT",
    "COMMIT_BYTES",
    "ClusterConfig",
    "ControlPlaneHA",
    "GET_PORT",
    "HEARTBEAT_BYTES",
    "HostRecord",
    "MEMBERSHIP_BYTES",
    "META_PORT",
    "MembershipLog",
    "MetadataReplica",
    "MetadataService",
    "NODE_PORT",
    "NiceClient",
    "NiceCluster",
    "NiceControllerApp",
    "NiceStorageNode",
    "OpResult",
    "PUT_PORT",
    "PartitionMap",
    "REQUEST_BYTES",
    "ReplicaSet",
    "replay_log",
    "get_default_sim_mode",
    "set_default_sim_mode",
    "VirtualRing",
]
