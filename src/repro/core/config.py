"""Cluster-wide configuration and wire-protocol constants.

Defaults mirror the paper's deployment (§6): 15 storage nodes + 1 metadata
node, 14 client machines, 1 Gbps links, replication level 3, sequential
consistency; unicast vring 10.10.0.0/16 and multicast vring 10.11.0.0/16
(§4.2's example ranges).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net import GBPS, IPv4Network

__all__ = [
    "ClusterConfig",
    "set_default_sim_mode",
    "get_default_sim_mode",
    "GET_PORT",
    "PUT_PORT",
    "NODE_PORT",
    "META_PORT",
    "CLIENT_PORT",
    "REQUEST_BYTES",
    "ACK_BYTES",
    "COMMIT_BYTES",
    "HEARTBEAT_BYTES",
    "MEMBERSHIP_BYTES",
]

#: UDP port for get requests sent to the unicast vring.
GET_PORT = 7000
#: UDP port for put requests sent to the multicast vring.
PUT_PORT = 7001
#: TCP port for storage-node ↔ storage-node protocol messages.
NODE_PORT = 7100
#: Ports on the metadata service: UDP heartbeats and TCP control.
META_PORT = 7200
#: TCP port clients listen on for replies ("waits for the reply on a
#: client-side TCP socket", §5).
CLIENT_PORT = 7300

#: Application-level message sizes (bytes of payload; headers are added by
#: the wire model).
REQUEST_BYTES = 100
ACK_BYTES = 64
COMMIT_BYTES = 128
HEARTBEAT_BYTES = 256
MEMBERSHIP_BYTES = 512

#: Process-wide default for :attr:`ClusterConfig.sim_mode`; set via
#: :func:`set_default_sim_mode` (the ``--sim-mode`` CLI flag).
_DEFAULT_SIM_MODE = "exact"


def set_default_sim_mode(mode: str) -> str:
    """Set the default ``sim_mode`` for configs built after this call.

    This is how ``python -m repro.bench --sim-mode approx`` switches every
    cluster a sweep builds without threading a parameter through each cell
    function.  The bench layer records the active mode on each
    :class:`repro.bench.parallel.Cell` and folds it into the cell cache
    key, so parallel runs and the warm cache stay mode-correct.  Returns
    the previous default so callers can restore it.
    """
    global _DEFAULT_SIM_MODE
    if mode not in ("exact", "approx"):
        raise ValueError(f"sim_mode must be 'exact' or 'approx': {mode!r}")
    prior = _DEFAULT_SIM_MODE
    _DEFAULT_SIM_MODE = mode
    return prior


def get_default_sim_mode() -> str:
    """The mode :class:`ClusterConfig` will default to right now."""
    return _DEFAULT_SIM_MODE


@dataclass
class ClusterConfig:
    """Knobs shared by the NICE and NOOB cluster builders."""

    n_storage_nodes: int = 15
    n_clients: int = 14
    replication_level: int = 3
    #: Partitions (= vring subgroups).  Defaults to the node count so every
    #: node is primary of exactly one partition; must be a power of two for
    #: the prefix-subgroup mapping, so the builder rounds up.
    n_partitions: int = 0
    link_bandwidth_bps: float = GBPS
    link_latency_s: float = 50e-6
    switch_lookup_latency_s: float = 5e-6
    controller_latency_s: float = 500e-6
    heartbeat_interval_s: float = 0.5
    #: Heartbeats missed before the metadata service declares failure (§4.4).
    heartbeat_miss_limit: int = 3
    #: Node-to-node protocol timeout; two timeouts trigger a failure report.
    peer_timeout_s: float = 0.5
    #: Client retry timeout — Fig 11: "the client will retry after waiting
    #: for 2 seconds".
    client_retry_timeout_s: float = 2.0
    unicast_vring: IPv4Network = field(default_factory=lambda: IPv4Network("10.10.0.0/16"))
    multicast_vring: IPv4Network = field(default_factory=lambda: IPv4Network("10.11.0.0/16"))
    client_space: IPv4Network = field(default_factory=lambda: IPv4Network("10.20.0.0/24"))
    #: Smooth node placement on the physical ring.
    ring_points_per_node: int = 32
    #: Per-request CPU service time on a storage node (request parsing,
    #: indexing, syscalls).  Serialized per node: the resource a hot
    #: primary saturates on small-object workloads (Figs 10, 12).
    node_cpu_per_op_s: float = 25e-6
    #: Enable the §4.5 source-prefix load balancer for gets.
    load_balancing: bool = True
    #: Inject per-chunk multicast loss (exercises NACK repair; 0 in paper runs).
    multicast_chunk_loss: float = 0.0
    #: Metadata-service standbys for control-plane HA.  0 (default) keeps
    #: the single-process service from the paper; N > 0 adds N standby
    #: replicas that tail the membership log and promote themselves (with
    #: a new epoch) when the leader's lease expires.
    metadata_standbys: int = 0
    #: Deployment shape (§5.1): "hw" — one switch that can rewrite headers
    #: and multicast (the idealized setup); "ovs" — the paper's actual
    #: CloudLab deployment: a software Open vSwitch on every client does
    #: the virtual→physical rewrites, the hardware switch only forwards
    #: and multicasts (it cannot modify destination addresses).
    deployment: str = "hw"
    #: Leaf–spine fabric shape (DESIGN.md §5h).  ``n_racks == 1`` (default)
    #: keeps the paper's single hardware switch and is bit-identical to the
    #: pre-fabric builder; ``n_racks > 1`` puts each rack behind a leaf
    #: switch and meshes the leaves to ``n_spines`` spine switches with
    #: deterministic hash-based ECMP uplink selection.
    n_racks: int = 1
    n_spines: int = 2
    #: Per-switch flow-table budget for fabric switches (0 = unlimited).
    #: When set, every leaf and spine is built with this table capacity, so
    #: exceeding the budget raises at rule-install time (§4.6 for real).
    switch_rule_budget: int = 0
    #: Salt for the fabric's ECMP hash — same seed, same paths.
    ecmp_seed: int = 0
    #: Simulation fidelity (DESIGN.md §5g): "exact" (default) simulates
    #: every wire event discretely; "approx" aggregates steady-state
    #: data-plane flows analytically (per-link service-rate accounting)
    #: while protocol-critical traffic — 2PC votes and commits (NODE_PORT),
    #: membership/heartbeats (META_PORT), ARP, and chaos faults — stays
    #: discrete.  Approx trades exact RNG ordering for event count; use it
    #: for throughput sweeps, never for bit-identity comparisons.
    sim_mode: str = field(default_factory=lambda: _DEFAULT_SIM_MODE)
    #: Read-path protocol (DESIGN.md §5j).  "nice" (default) keeps the
    #: paper's §4.5 static (src-prefix, dst-prefix) load balancer.
    #: "harmonia" adds a switch-maintained dirty-set of in-flight puts
    #: (Harmonia, arXiv 1904.08964): gets on clean keys round-robin over
    #: every consistent replica, gets on dirty keys fall back to the
    #: primary.  "harmonia-weak" is a deliberately broken variant that
    #: clears the dirty entry when the commit multicast *transits* the
    #: switch (before replicas apply) — kept only so the chaos suite can
    #: prove the linearizability checker catches the stale-read window.
    protocol_mode: str = "nice"
    #: Fig 3 durability contract (DESIGN.md §5k): every write a put ack
    #: depends on sits behind a forced (flushed) log append.  ``False``
    #: models the deliberately-weakened ``wal=off`` variant — appends
    #: skip the flush, so acks race durability and a power failure loses
    #: acknowledged puts; kept only so the chaos matrix can prove the
    #: acked-durability checker catches it.
    wal_forced: bool = True
    #: Background scrubber cadence (seconds between full store walks that
    #: re-verify object checksums and read-repair bit-rot from a
    #: consistent replica).  0 (default) disables the scrubber entirely —
    #: no process is spawned, keeping default runs bit-identical.
    scrub_interval_s: float = 0.0
    #: Fail-slow detector (§5k): a node reports its disk degraded once the
    #: observed/nominal service-time ratio stays at or above
    #: ``failslow_threshold`` for ``failslow_strikes`` consecutive
    #: heartbeats; the metadata service then drains the node from the
    #: read round-robin and, if it is a primary, hands the role off.
    failslow_threshold: float = 4.0
    failslow_strikes: int = 2
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_storage_nodes < 1:
            raise ValueError("need at least one storage node")
        if not 1 <= self.replication_level <= self.n_storage_nodes:
            raise ValueError(
                f"replication level {self.replication_level} needs "
                f"{self.replication_level} storage nodes, have {self.n_storage_nodes}"
            )
        if self.n_partitions <= 0:
            self.n_partitions = self.n_storage_nodes
        # Round partitions up to a power of two (prefix subgroups, §3.2).
        p = 1
        while p < self.n_partitions:
            p *= 2
        self.n_partitions = p
        if self.deployment not in ("hw", "ovs"):
            raise ValueError(f"deployment must be 'hw' or 'ovs': {self.deployment!r}")
        if self.sim_mode not in ("exact", "approx"):
            raise ValueError(f"sim_mode must be 'exact' or 'approx': {self.sim_mode!r}")
        if self.protocol_mode not in ("nice", "harmonia", "harmonia-weak"):
            raise ValueError(
                "protocol_mode must be 'nice', 'harmonia' or "
                f"'harmonia-weak': {self.protocol_mode!r}"
            )
        if self.scrub_interval_s < 0:
            raise ValueError(f"scrub_interval_s must be >= 0: {self.scrub_interval_s}")
        if self.failslow_threshold <= 1.0:
            raise ValueError(
                f"failslow_threshold must be > 1: {self.failslow_threshold}"
            )
        if self.failslow_strikes < 1:
            raise ValueError(f"failslow_strikes must be >= 1: {self.failslow_strikes}")
        if self.metadata_standbys < 0:
            raise ValueError(f"metadata_standbys must be >= 0: {self.metadata_standbys}")
        if self.n_racks < 1:
            raise ValueError(f"n_racks must be >= 1: {self.n_racks}")
        if self.n_spines < 1:
            raise ValueError(f"n_spines must be >= 1: {self.n_spines}")
        if self.switch_rule_budget < 0:
            raise ValueError(
                f"switch_rule_budget must be >= 0: {self.switch_rule_budget}"
            )
        if self.n_racks > 1:
            if self.deployment != "hw":
                raise ValueError(
                    "the leaf-spine fabric models rewriting leaves; "
                    "deployment must be 'hw' when n_racks > 1"
                )
            # Each rack gets one 10.0.<rack>.0/24 storage block; rack 0 also
            # hosts the metadata service at .250+.
            per_rack = -(-self.n_storage_nodes // self.n_racks)
            if per_rack > 200:
                raise ValueError(
                    f"{per_rack} storage nodes per rack exceeds the /24 "
                    "rack address block"
                )
