"""The NICE SDN controller (the paper's Ryu app, §5 "Mapping Service").

Responsibilities, mirroring the paper:

* **L3 learning switch** — learns which (IP, MAC) sits behind which switch
  port; unknown destinations are ARPed while the triggering packet is
  buffered; recently-ARPed addresses are not re-asked.
* **Virtual-ring mapping** — packets to a unicast-vring subgroup are
  rewritten (dst IP + MAC) to the responsible physical replica and
  forwarded in a single hop (§3.2); packets to a multicast-vring subgroup
  hit an ALL-group that clones them to every put target (§4.2).
* **In-network load balancing** — per-partition (src-prefix, dst-prefix)
  rules spread get requests of one partition over its R replicas; clients
  outside the divisions fall through to the primary (§4.5).
* **Consistency-aware fault tolerance** — failed or inconsistent nodes are
  simply absent from the installed mappings, so clients cannot reach them
  (§3.3); the metadata service drives re-syncs on membership changes.

Rule budget (§4.6): one unicast + one multicast entry per partition without
load balancing (2N total), R unicast entries per partition with it
((R+1)N total).  ``rule_count()`` exposes the live number for the
scalability benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from ..sim import Counter
from ..net import (
    ArpTable,
    Bucket,
    ControllerApp,
    FLOOD,
    Group,
    HarmoniaRead,
    IPv4Address,
    IPv4Network,
    MacAddress,
    Match,
    Output,
    OutputGroup,
    Packet,
    Proto,
    Rule,
    SetEthDst,
    SetIpDst,
    ToController,
    ecmp_index,
    make_arp_request,
)
from .config import ClusterConfig, GET_PORT
from .membership import PartitionMap, ReplicaSet
from .vring import VirtualRing, mc_group_address

__all__ = ["NiceControllerApp", "HostRecord", "SwitchInfo"]

#: Rule priorities (higher wins).
PRIO_ARP = 500
#: Harmonia-mode read rule (DESIGN.md §5j): one dirty-set-aware entry per
#: partition, above the §4.5 static LB divisions it replaces.
PRIO_HARMONIA = 310
PRIO_LB = 300
#: Fabric: multicast arriving from the designated spine is delivered
#: locally; it must outrank the plain ascend rule on the same address.
PRIO_MC_DELIVER = 210
PRIO_VRING = 200
PRIO_L3 = 150
#: Fabric: per-rack aggregated prefix routes — below every /32 host route,
#: so local delivery always wins on a leaf.
PRIO_L3AGG = 140

#: Controller's pseudo-identity for ARP requests it originates.
_CTRL_IP = IPv4Address("0.0.0.0")
_CTRL_MAC = MacAddress(0x02FFFFFFFFFF)


@dataclass(frozen=True)
class HostRecord:
    """Identity of a machine the controller may map traffic to."""

    name: str
    ip: IPv4Address
    mac: MacAddress


@dataclass
class SwitchInfo:
    """Role of one switch in the deployment (§5.1).

    * ``core`` — the (hardware) fabric switch.  ``can_rewrite`` says
      whether it supports set-field actions; the CloudLab switch did not.
    * ``edge`` — a client-side Open vSwitch: always rewrites, serves one
      client, forwards everything else up its ``uplink_port``.
    * ``leaf`` — a rack's top-of-rack switch in the leaf–spine fabric
      (DESIGN.md §5h): rewrites at ingress, serves rack ``rack``.
    * ``spine`` — an aggregation switch: prefix routes and multicast
      fan-out to leaves only, never rewrites.
    """

    role: str = "core"
    can_rewrite: bool = True
    client_ip: Optional[IPv4Address] = None
    uplink_port: Optional[int] = None
    rack: Optional[int] = None


_DEFAULT_SWITCH_INFO = SwitchInfo()


class NiceControllerApp(ControllerApp):
    """SDN module of the metadata service."""

    def __init__(
        self,
        config: ClusterConfig,
        partition_map: PartitionMap,
        unicast_vring: VirtualRing,
        multicast_vring: VirtualRing,
    ):
        super().__init__()
        self.config = config
        # -- incremental rule planner (DESIGN.md §5i) ----------------------
        #: switch name -> {partition -> (version key, (pre, group, post))}.
        self._plan_cache: Dict[str, Dict[int, Tuple[tuple, tuple]]] = {}
        #: Per-partition dirty counter, bumped by every sync_partition call
        #: (the metadata service calls it on each membership change).
        self._part_version: Dict[int, int] = {}
        #: Bumped on any topology-shaped change (switch/host/prefix
        #: registration, fabric discovery): invalidates every cached plan
        #: and the derived indexes below.
        self._topo_version = 0
        #: (switch name, partition) pairs a sync has ever installed vring
        #: rules for — lets sync_partition skip the delete round-trip on
        #: pairs that never held rules (the build-time common case).
        self._synced: set = set()
        self.plan_recomputes = Counter("plan.recomputed")
        self.plan_cache_hits = Counter("plan.cache_hits")
        #: Wall-clock seconds spent inside sync_all/sync_partition/reconcile
        #: (outermost call only — nested calls don't double-count).
        self.plan_wall_s = 0.0
        self._timer_depth = 0
        # Memoized pure derivations (cleared on the relevant version bump).
        self._division_memo: Dict[int, List[IPv4Network]] = {}
        self._spine_memo: Dict[Tuple[str, int], str] = {}
        self._mc_spine_memo: Dict[int, str] = {}
        self._static_memo: Dict[str, Tuple[tuple, List[Rule]]] = {}
        self._l3_index_memo: Optional[Tuple[tuple, Dict[str, List[HostRecord]]]] = None
        self._uni_prefix_memo: Dict[int, IPv4Network] = {}
        self._mc_prefix_memo: Dict[int, IPv4Network] = {}
        self._mc_addr_memo: Dict[int, IPv4Address] = {}

        self.partition_map = partition_map
        self.uni = unicast_vring
        self.mc = multicast_vring
        self.hosts: Dict[str, HostRecord] = {}
        #: The cluster's shared dirty-set registry in Harmonia mode
        #: (DESIGN.md §5j), set by the system builder; None in NICE mode.
        self.harmonia = None
        #: Control-plane epoch stamped on outgoing flow-mods.  The acting
        #: metadata leader keeps this equal to its own epoch; switches
        #: fence anything older (see OpenFlowSwitch.accept_epoch).
        self.epoch = 0
        self.arp = ArpTable()
        #: dst ip -> [(switch, buffer_id)] awaiting ARP resolution.
        self._pending: Dict[IPv4Address, List[Tuple[object, int]]] = {}
        self._host_by_ip: Dict[IPv4Address, HostRecord] = {}
        #: switch name -> deployment role (default: rewriting core).
        self._switch_info: Dict[str, SwitchInfo] = {}
        #: (switch name, peer switch name) -> local port toward the peer.
        self._fabric_ports: Dict[Tuple[str, str], int] = {}
        #: Fabric bookkeeping (empty outside leaf–spine deployments).
        self._rack_prefixes: Dict[int, List[IPv4Network]] = {}
        self._leaf_of_rack: Dict[int, str] = {}
        self._spine_names: List[str] = []
        #: Fail-slow nodes (§5k), as reported by the metadata service:
        #: excluded from read round-robin / LB divisions (kept only as the
        #: primary fallback until the primary handoff lands).
        self.degraded: set = set()

    # -- incremental planner plumbing (DESIGN.md §5i) ---------------------------
    @property
    def partition_map(self) -> PartitionMap:
        return self._partition_map

    @partition_map.setter
    def partition_map(self, value: PartitionMap) -> None:
        # A takeover (control-plane HA) rebinds the whole map: every cached
        # plan may describe the old leader's view, so drop them all.
        prior = getattr(self, "_partition_map", None)
        self._partition_map = value
        if prior is not None and prior is not value:
            self.invalidate_plans()

    def invalidate_plans(self) -> None:
        """Drop every cached plan and derived index; the next
        ``desired_state``/``sync_partition`` recomputes from scratch."""
        self._plan_cache.clear()
        self._static_memo.clear()
        self._l3_index_memo = None
        self._topo_version += 1

    def set_degraded(self, name: str, slow: bool = True) -> None:
        """Drain (or restore) a fail-slow node in the read paths (§5k).
        Degradation changes the desired rules without touching any
        replica-set revision, so the plan cache must be dropped."""
        if slow == (name in self.degraded):
            return
        if slow:
            self.degraded.add(name)
        else:
            self.degraded.discard(name)
        self.invalidate_plans()

    def _read_targets(self, rs: ReplicaSet) -> list:
        """Get-serving replicas: the consistent targets minus fail-slow
        drains — except the primary, which must stay addressable as the
        dirty-key / uncovered-division fallback until a handoff lands."""
        return [
            self.hosts[n]
            for n in rs.get_targets()
            if n in self.hosts and (n not in self.degraded or n == rs.primary)
        ]

    def _bump_topology(self) -> None:
        self._topo_version += 1
        self._spine_memo.clear()
        self._mc_spine_memo.clear()
        self._static_memo.clear()
        self._l3_index_memo = None

    def _plan_key(self, rs: ReplicaSet) -> tuple:
        """Version vector a cached plan is valid for: partition dirty
        counter, replica-set revision, map generation (log replay), fabric
        topology, and ARP state (host locations feed rewrites/buckets)."""
        return (
            self._part_version.get(rs.partition, 0),
            getattr(rs, "rev", 0),
            getattr(self._partition_map, "generation", 0),
            self._topo_version,
            self.arp.generation,
        )

    def _plan_partition(
        self, rs: ReplicaSet, switch, info: SwitchInfo, force: bool = False
    ) -> Tuple[List[Rule], Optional[Group], List[Rule]]:
        key = self._plan_key(rs)
        cache = self._plan_cache.setdefault(switch.name, {})
        entry = cache.get(rs.partition)
        if not force and entry is not None and entry[0] == key:
            self.plan_cache_hits.add()
            return entry[1]
        plan = self._partition_state(rs, switch, info)
        cache[rs.partition] = (key, plan)
        self.plan_recomputes.add()
        return plan

    def _timer_start(self) -> float:
        self._timer_depth += 1
        return perf_counter() if self._timer_depth == 1 else 0.0

    def _timer_stop(self, t0: float) -> None:
        self._timer_depth -= 1
        if self._timer_depth == 0:
            self.plan_wall_s += perf_counter() - t0

    # -- deployment roles -------------------------------------------------------
    def register_switch(
        self,
        switch,
        role: str = "core",
        can_rewrite: bool = True,
        client_ip: Optional[IPv4Address] = None,
        uplink_port: Optional[int] = None,
        rack: Optional[int] = None,
    ) -> None:
        if role not in ("core", "edge", "leaf", "spine"):
            raise ValueError(
                f"switch role must be core, edge, leaf or spine: {role!r}"
            )
        self._switch_info[switch.name] = SwitchInfo(
            role, can_rewrite, IPv4Address(client_ip) if client_ip else None,
            uplink_port, rack,
        )
        if role == "leaf":
            self._leaf_of_rack[rack] = switch.name
        elif role == "spine":
            self._spine_names.append(switch.name)
        self._bump_topology()

    def register_rack_prefix(self, rack: int, prefix: IPv4Network) -> None:
        """Declare that ``prefix`` lives in ``rack`` — the unit of spine
        (and remote-leaf) route aggregation."""
        self._rack_prefixes.setdefault(rack, []).append(IPv4Network(prefix))
        self._bump_topology()

    @property
    def _fabric_mode(self) -> bool:
        return bool(self._spine_names)

    def rack_of_node(self, name: str) -> Optional[int]:
        """Rack a host sits in (None outside fabric mode / pre-discovery)."""
        rec = self.hosts.get(name)
        if rec is None:
            return None
        loc = self.arp.lookup(rec.ip)
        if loc is None:
            return None
        info = self._switch_info.get(loc.switch_name)
        return info.rack if info is not None else None

    def _uplink_to(self, sw_name: str, peer_name: str) -> Optional[int]:
        return self._fabric_ports.get((sw_name, peer_name))

    def _spine_toward(self, leaf_name: str, dst_rack: int) -> str:
        """ECMP spine for unicast traffic from ``leaf_name`` to ``dst_rack``.

        The flow key is (ingress leaf, destination rack) — the same key the
        leaf's aggregated rack route uses, so per-host rewrites and the
        aggregate prefix rule always pick the same path.
        """
        memo = self._spine_memo.get((leaf_name, dst_rack))
        if memo is not None:
            return memo
        spines = self._spine_names
        choice = spines[ecmp_index(len(spines), leaf_name, dst_rack, self.config.ecmp_seed)]
        self._spine_memo[(leaf_name, dst_rack)] = choice
        return choice

    def _mc_spine(self, partition: int) -> str:
        """The one spine carrying partition ``partition``'s multicast tree.

        Keyed on the partition alone (not the ingress leaf) so the tree is
        a tree: every leaf ascends to the same spine, which fans out to
        every leaf holding a put target — no duplicate or looping copies.
        """
        memo = self._mc_spine_memo.get(partition)
        if memo is not None:
            return memo
        spines = self._spine_names
        choice = spines[ecmp_index(len(spines), "mc", partition, self.config.ecmp_seed)]
        self._mc_spine_memo[partition] = choice
        return choice

    def _info(self, switch) -> SwitchInfo:
        return self._switch_info.get(switch.name, _DEFAULT_SWITCH_INFO)

    @property
    def _harmonia_mode(self) -> bool:
        """Plan the ``hread:`` rule family instead of §4.5 LB divisions?"""
        return self.config.protocol_mode != "nice"

    # Static per-partition derivations (IPv4Network construction is the
    # single hottest allocation in a full sync at 1000 nodes — memoized,
    # the vrings never change after construction).
    def _uni_prefix(self, partition: int) -> IPv4Network:
        memo = self._uni_prefix_memo.get(partition)
        if memo is None:
            memo = self._uni_prefix_memo[partition] = self.uni.subgroup_prefix(partition)
        return memo

    def _mc_prefix(self, partition: int) -> IPv4Network:
        memo = self._mc_prefix_memo.get(partition)
        if memo is None:
            memo = self._mc_prefix_memo[partition] = self.mc.subgroup_prefix(partition)
        return memo

    def _mc_addr(self, partition: int) -> IPv4Address:
        memo = self._mc_addr_memo.get(partition)
        if memo is None:
            memo = self._mc_addr_memo[partition] = mc_group_address(partition)
        return memo

    # -- directory -------------------------------------------------------------
    def register_host(self, name: str, ip: IPv4Address, mac: MacAddress) -> HostRecord:
        rec = HostRecord(name, IPv4Address(ip), MacAddress(mac))
        self.hosts[name] = rec
        self._host_by_ip[rec.ip] = rec
        self._bump_topology()
        return rec

    def learn_location(self, ip: IPv4Address, switch, port_no: int) -> None:
        rec = self._host_by_ip.get(IPv4Address(ip))
        mac = rec.mac if rec else MacAddress.BROADCAST
        self.arp.learn(IPv4Address(ip), mac, switch.name, port_no)

    def discover_topology(self, network) -> None:
        """Learn every host's location and the inter-switch fabric ports
        (equivalent to the steady state the learning switch converges to;
        reactive learning is exercised separately in tests)."""
        from ..net import Host, OpenFlowSwitch

        for switch in self.channel.switches:
            for port_no, port in switch.ports.items():
                peer = port.peer
                if peer is None:
                    continue
                if isinstance(peer.device, Host):
                    self.learn_location(peer.device.ip, switch, port_no)
                elif isinstance(peer.device, OpenFlowSwitch):
                    self._fabric_ports[(switch.name, peer.device.name)] = port_no
        self._bump_topology()

    def _edge_of_host(self, ip: IPv4Address) -> Optional[str]:
        """Name of the edge switch ``ip`` sits behind, if any."""
        loc = self.arp.lookup(ip)
        if loc is None:
            return None
        info = self._switch_info.get(loc.switch_name)
        return loc.switch_name if info is not None and info.role == "edge" else None

    def location_of(self, name: str):
        rec = self.hosts.get(name)
        if rec is None:
            return None
        return self.arp.lookup(rec.ip)

    # -- bootstrap -----------------------------------------------------------------
    def _static_rules(self, switch, info: SwitchInfo) -> List[Rule]:
        """ARP punt rule on every switch, plus edge-switch base rules:
        deliver the attached client's traffic to it, default everything
        else up the uplink.  Fabric switches additionally carry the
        per-rack aggregated prefix routes (one wildcard per rack prefix
        instead of one /32 per host — the §4.6 budget saver).

        Memoized per switch on (topology, ARP) versions — reconcile calls
        this once per switch per pass, and the aggregate expansion is
        O(racks × prefixes)."""
        key = (self._topo_version, self.arp.generation)
        memo = self._static_memo.get(switch.name)
        if memo is not None and memo[0] == key:
            return memo[1]
        rules = self._compute_static_rules(switch, info)
        self._static_memo[switch.name] = (key, rules)
        return rules

    def _compute_static_rules(self, switch, info: SwitchInfo) -> List[Rule]:
        rules = [Rule(Match(proto=Proto.ARP), [ToController()], PRIO_ARP, cookie="arp")]
        if info.role in ("leaf", "spine"):
            rules.extend(self._aggregate_rules(switch, info))
            return rules
        if info.role != "edge":
            return rules
        rec = self._host_by_ip.get(info.client_ip)
        loc = self.arp.lookup(info.client_ip) if rec else None
        if rec is not None and loc is not None and loc.switch_name == switch.name:
            rules.append(
                Rule(
                    Match(ip_dst=rec.ip),
                    [SetEthDst(rec.mac), Output(loc.port_no)],
                    PRIO_L3,
                    cookie="edge-base",
                )
            )
        if info.uplink_port is not None:
            rules.append(Rule(Match(), [Output(info.uplink_port)], 1, cookie="edge-base"))
        return rules

    def _aggregate_rules(self, switch, info: SwitchInfo) -> List[Rule]:
        """Per-rack wildcard routes (cookie ``l3agg:<rack>``).

        * On a spine: every rack prefix routes down to that rack's leaf.
        * On a leaf: every *remote* rack prefix routes up the ECMP-chosen
          uplink for (this leaf, that rack); local hosts are covered by
          their /32 ``l3:`` rules at higher priority.
        """
        rules: List[Rule] = []
        for rack in sorted(self._rack_prefixes):
            if info.role == "spine":
                port = self._uplink_to(switch.name, self._leaf_of_rack[rack])
            elif rack == info.rack:
                continue
            else:
                port = self._uplink_to(switch.name, self._spine_toward(switch.name, rack))
            if port is None:
                continue  # pre-discovery: fabric ports not yet learned
            for prefix in self._rack_prefixes[rack]:
                rules.append(
                    Rule(
                        Match(ip_dst=prefix),
                        [Output(port)],
                        PRIO_L3AGG,
                        cookie=f"l3agg:{rack}",
                    )
                )
        return rules

    def install_static_rules(self) -> None:
        for switch in self.channel.switches:
            ops = [
                ("rule", rule)
                for rule in self._static_rules(switch, self._info(switch))
            ]
            self.channel.apply_batch(switch, ops)

    def sync_all(self, epoch: Optional[int] = None) -> None:
        """Install L3 + vring + LB + group rules for the whole system."""
        t0 = self._timer_start()
        try:
            for rec in self.hosts.values():
                self._install_l3(rec, epoch=epoch)
            for rs in self.partition_map:
                self.sync_partition(rs.partition, epoch=epoch)
        finally:
            self._timer_stop(t0)

    # -- per-partition rule synthesis --------------------------------------------------
    def sync_partition(self, partition: int, epoch: Optional[int] = None) -> None:
        """Recompute and reinstall every rule derived from one replica set.

        Called by the metadata service on any membership change affecting
        the partition — failure hiding, handoff insertion, rejoin phases.
        Always replans (the caller is telling us the partition is dirty)
        and refreshes the plan cache, so the following ``desired_state`` /
        ``reconcile`` reuse the result instead of recomputing.

        Each switch's operations ride one batched control message
        (:meth:`ControlPlane.apply_batch`): identical operations in
        identical order, one scheduled delivery per switch.  The delete
        round-trip is skipped for (switch, partition) pairs that have
        never held vring rules — at build time that is most of them.
        """
        t0 = self._timer_start()
        try:
            rs = self.partition_map.get(partition)
            self._part_version[partition] = self._part_version.get(partition, 0) + 1
            for switch in self.channel.switches:
                pre, group, post = self._plan_partition(
                    rs, switch, self._info(switch), force=True
                )
                ops = []
                if (switch.name, partition) in self._synced:
                    ops.append(("delete", f"uni:{partition}"))
                    ops.append(("delete", f"mc:{partition}"))
                    if self._harmonia_mode:
                        ops.append(("delete", f"hread:{partition}"))
                for rule in pre:
                    ops.append(("rule", rule))
                if group is not None:
                    ops.append(("group", group))
                for rule in post:
                    ops.append(("rule", rule))
                self._synced.add((switch.name, partition))
                self.channel.apply_batch(switch, ops, epoch=epoch)
            if self.harmonia is not None:
                # Pins (and any orphaned in-flight entries) bridged the
                # gap between a put failure and this membership-driven
                # re-sync; the fresh rules only target get-visible
                # replicas, so the registry can let go of the partition.
                self.harmonia.on_sync(partition)
        finally:
            self._timer_stop(t0)

    def _partition_state(
        self, rs: ReplicaSet, switch, info: SwitchInfo
    ) -> Tuple[List[Rule], Optional[Group], List[Rule]]:
        """Desired (rules-before-group, group, rules-after-group) for one
        partition on one switch.  The split preserves install order: a
        group must land before the rules that reference it."""
        if info.role == "edge":
            return self._edge_rules(rs, switch, info), None, []
        if info.role == "spine":
            group, post = self._spine_mc_entry(rs, switch)
            return [], group, post
        if info.role == "leaf":
            pre = self._unicast_rules(rs, switch)
            group, post = self._leaf_mc_entry(rs, switch, info)
            return pre, group, post
        pre = self._unicast_rules(rs, switch) if info.can_rewrite else []
        group, post = self._multicast_entry(rs, switch, info)
        return pre, group, post

    def _unicast_rules(self, rs: ReplicaSet, switch) -> List[Rule]:
        subgroup = self._uni_prefix(rs.partition)
        rules: List[Rule] = []
        primary = self.hosts.get(rs.primary)
        targets = self._read_targets(rs)
        if primary is None or not targets:
            return rules  # partition dark: no consistent replica reachable
        if self._harmonia_mode and len(targets) > 1:
            # One dirty-set-aware entry replaces the §4.5 LB divisions:
            # the switch resolves the replica per packet (DESIGN.md §5j).
            # choices[0] is the primary — the dirty-key fallback — even
            # when a failover moved the primary off members[0].
            ordered = [primary] + [t for t in targets if t is not primary]
            choices = tuple(
                tuple(self._rewrite_to(rec, switch)) for rec in ordered
            )
            rules.append(
                Rule(
                    Match(ip_dst=subgroup, proto=Proto.UDP, dport=GET_PORT),
                    [HarmoniaRead(rs.partition, choices)],
                    PRIO_HARMONIA,
                    cookie=f"hread:{rs.partition}",
                )
            )
        elif self.config.load_balancing and len(targets) > 1:
            for division, rec in zip(self._client_divisions(len(targets)), targets):
                rules.append(
                    Rule(
                        Match(
                            ip_src=division,
                            ip_dst=subgroup,
                            proto=Proto.UDP,
                            dport=GET_PORT,
                        ),
                        self._rewrite_to(rec, switch),
                        PRIO_LB,
                        cookie=f"uni:{rs.partition}",
                    )
                )
        # Default: anything else on this subgroup goes to the primary (§4.5:
        # "requests coming from IP addresses that are not covered by these
        # divisions ... forwarded to the primary replica").
        rules.append(
            Rule(
                Match(ip_dst=subgroup),
                self._rewrite_to(primary, switch),
                PRIO_VRING,
                cookie=f"uni:{rs.partition}",
            )
        )
        return rules

    def _multicast_entry(self, rs: ReplicaSet, switch, info: SwitchInfo) -> Tuple[Group, List[Rule]]:
        """The core switch's ALL-group plus the rules that hit it.

        A rewriting core matches the multicast-vring subgroup directly (hw
        deployment); any core also matches the replica set's IP multicast
        group address — the target of edge rewrites and of storage-node
        protocol multicasts (the 2PC timestamp)."""
        buckets = []
        for name in rs.put_targets():
            rec = self.hosts.get(name)
            loc = self.arp.lookup(rec.ip) if rec else None
            if loc is None or loc.switch_name != switch.name:
                continue
            actions = (SetIpDst(rec.ip), SetEthDst(rec.mac)) if info.can_rewrite else ()
            buckets.append(Bucket(actions=actions, port=loc.port_no))
        group = Group(group_id=rs.partition, buckets=buckets)
        rules = [
            Rule(
                Match(ip_dst=self._mc_addr(rs.partition)),
                [OutputGroup(rs.partition)],
                PRIO_VRING,
                cookie=f"mc:{rs.partition}",
            )
        ]
        if info.can_rewrite:
            rules.append(
                Rule(
                    Match(ip_dst=self._mc_prefix(rs.partition)),
                    [OutputGroup(rs.partition)],
                    PRIO_VRING,
                    cookie=f"mc:{rs.partition}",
                )
            )
        return group, rules

    def _leaf_mc_entry(
        self, rs: ReplicaSet, switch, info: SwitchInfo
    ) -> Tuple[Optional[Group], List[Rule]]:
        """Leaf side of the partition's multicast tree (DESIGN.md §5h).

        Three rules, one shared group address ``mcaddr``:

        * *deliver* — ``mcaddr`` arriving on the uplink from the designated
          spine fans into the local ALL-group (put targets in this rack),
          with the virtual→physical rewrite in the buckets.
        * *ascend* — ``mcaddr`` from any other port (a storage node's 2PC
          multicast) climbs to the designated spine.
        * *client rewrite* — the multicast-vring subgroup prefix is
          rewritten to ``mcaddr`` at ingress and climbs likewise.

        Every copy transits the spine — including rack-local ones — so
        each put target receives exactly one copy, sender included, exactly
        as the single-switch ALL-group behaves.
        """
        mcaddr = self._mc_addr(rs.partition)
        spine = self._mc_spine(rs.partition)
        up = self._uplink_to(switch.name, spine)
        if up is None:
            return None, []
        buckets = []
        for name in rs.put_targets():
            rec = self.hosts.get(name)
            loc = self.arp.lookup(rec.ip) if rec else None
            if loc is None or loc.switch_name != switch.name:
                continue
            buckets.append(
                Bucket(actions=(SetIpDst(rec.ip), SetEthDst(rec.mac)), port=loc.port_no)
            )
        cookie = f"mc:{rs.partition}"
        rules = []
        if buckets:
            rules.append(
                Rule(
                    Match(ip_dst=mcaddr, in_port=up),
                    [OutputGroup(rs.partition)],
                    PRIO_MC_DELIVER,
                    cookie=cookie,
                )
            )
        rules.append(
            Rule(Match(ip_dst=mcaddr), [Output(up)], PRIO_VRING, cookie=cookie)
        )
        rules.append(
            Rule(
                Match(ip_dst=self._mc_prefix(rs.partition)),
                [SetIpDst(mcaddr), Output(up)],
                PRIO_VRING,
                cookie=cookie,
            )
        )
        group = Group(group_id=rs.partition, buckets=buckets) if buckets else None
        return group, rules

    def _spine_mc_entry(self, rs: ReplicaSet, switch) -> Tuple[Optional[Group], List[Rule]]:
        """Spine side of the tree: only the designated spine carries the
        partition, fanning ``mcaddr`` to every leaf with a put target."""
        if switch.name != self._mc_spine(rs.partition):
            return None, []
        racks = set()
        for name in rs.put_targets():
            rack = self.rack_of_node(name)
            if rack is not None:
                racks.add(rack)
        buckets = []
        for rack in sorted(racks):
            port = self._uplink_to(switch.name, self._leaf_of_rack[rack])
            if port is not None:
                buckets.append(Bucket(actions=(), port=port))
        if not buckets:
            return None, []
        rules = [
            Rule(
                Match(ip_dst=self._mc_addr(rs.partition)),
                [OutputGroup(rs.partition)],
                PRIO_VRING,
                cookie=f"mc:{rs.partition}",
            )
        ]
        return Group(group_id=rs.partition, buckets=buckets), rules

    def _edge_rules(self, rs: ReplicaSet, switch, info: SwitchInfo) -> List[Rule]:
        """Client-side OVS rules (§5.1): rewrite virtual destinations to
        physical ones, then punt up the uplink; the hardware switch does
        the forwarding and multicast fan-out."""
        rules: List[Rule] = []
        if info.uplink_port is None:
            return rules
        uplink = [Output(info.uplink_port)]
        primary = self.hosts.get(rs.primary)
        targets = self._read_targets(rs)
        if primary is None or not targets:
            return rules
        if self._harmonia_mode and len(targets) > 1:
            # The client-side OVS is the rewriting hop (§5.1), so it hosts
            # the dirty-set rule; the hardware core just forwards.
            # choices[0] is the primary (dirty-key fallback), as above.
            ordered = [primary] + [t for t in targets if t is not primary]
            choices = tuple(
                (SetIpDst(rec.ip), SetEthDst(rec.mac), Output(info.uplink_port))
                for rec in ordered
            )
            rules.append(
                Rule(
                    Match(ip_dst=self._uni_prefix(rs.partition),
                          proto=Proto.UDP, dport=GET_PORT),
                    [HarmoniaRead(rs.partition, choices)],
                    PRIO_HARMONIA,
                    cookie=f"hread:{rs.partition}",
                )
            )
        else:
            # Which replica serves THIS client's gets (its LB division, §4.5).
            target = primary
            if self.config.load_balancing and len(targets) > 1 and info.client_ip is not None:
                for division, rec in zip(self._client_divisions(len(targets)), targets):
                    if info.client_ip in division:
                        target = rec
                        break
            rules.append(
                Rule(
                    Match(ip_dst=self._uni_prefix(rs.partition), proto=Proto.UDP,
                          dport=GET_PORT),
                    [SetIpDst(target.ip), SetEthDst(target.mac)] + uplink,
                    PRIO_LB,
                    cookie=f"uni:{rs.partition}",
                )
            )
        rules.append(
            Rule(
                Match(ip_dst=self._uni_prefix(rs.partition)),
                [SetIpDst(primary.ip), SetEthDst(primary.mac)] + uplink,
                PRIO_VRING,
                cookie=f"uni:{rs.partition}",
            )
        )
        rules.append(
            Rule(
                Match(ip_dst=self._mc_prefix(rs.partition)),
                [SetIpDst(self._mc_addr(rs.partition))] + uplink,
                PRIO_VRING,
                cookie=f"mc:{rs.partition}",
            )
        )
        return rules

    def _client_divisions(self, r: int) -> List[IPv4Network]:
        """Split the client space into the first ``r`` power-of-two blocks."""
        memo = self._division_memo.get(r)
        if memo is not None:
            return memo
        blocks = 1
        while blocks < r:
            blocks *= 2
        new_plen = self.config.client_space.prefixlen + (blocks.bit_length() - 1)
        divisions = list(self.config.client_space.subnets(new_plen))[:r]
        self._division_memo[r] = divisions
        return divisions

    def _rewrite_to(self, rec: HostRecord, switch) -> list:
        loc = self.arp.lookup(rec.ip)
        if loc is not None and loc.switch_name == switch.name:
            return [SetIpDst(rec.ip), SetEthDst(rec.mac), Output(loc.port_no)]
        if loc is not None and self._info(switch).role == "leaf":
            # Remote replica: rewrite at ingress, then climb the same ECMP
            # uplink the aggregated rack route uses; the spine's prefix
            # rule and the remote leaf's /32 finish the path.
            remote = self._switch_info.get(loc.switch_name)
            if remote is not None and remote.rack is not None:
                up = self._uplink_to(
                    switch.name, self._spine_toward(switch.name, remote.rack)
                )
                if up is not None:
                    return [SetIpDst(rec.ip), SetEthDst(rec.mac), Output(up)]
        return [ToController()]  # location unknown: punt (then ARP)

    def _l3_rule(self, rec: HostRecord, switch, info: SwitchInfo) -> Optional[Rule]:
        loc = self.arp.lookup(rec.ip)
        if loc is None:
            return None
        if switch.name == loc.switch_name:
            return Rule(
                Match(ip_dst=rec.ip),
                [SetEthDst(rec.mac), Output(loc.port_no)],
                PRIO_L3,
                cookie=f"l3:{rec.ip}",
            )
        if info.role == "core":
            # Host sits behind another switch (a client's edge OVS):
            # route toward that switch's fabric port.
            port = self._fabric_ports.get((switch.name, loc.switch_name))
            if port is not None:
                return Rule(
                    Match(ip_dst=rec.ip),
                    [Output(port)],
                    PRIO_L3,
                    cookie=f"l3:{rec.ip}",
                )
        # Edges reach everything else via their default uplink rule.
        return None

    def _install_l3(self, rec: HostRecord, epoch: Optional[int] = None) -> None:
        for switch in self.channel.switches:
            rule = self._l3_rule(rec, switch, self._info(switch))
            if rule is not None:
                self.channel.apply_batch(
                    switch,
                    [("delete", rule.cookie), ("rule", rule)],
                    epoch=epoch,
                )

    def _hosts_for_l3(self, switch, info: SwitchInfo):
        """Hosts that can possibly yield an L3 rule on ``switch``.

        Core switches route to every known host; an edge/leaf only holds
        entries for hosts learned behind itself.  The per-switch index is
        rebuilt lazily when the topology or the ARP table changes, turning
        desired_state's L3 leg from O(switches × hosts) into O(hosts).
        """
        if info.role == "core":
            return self.hosts.values()
        key = (self._topo_version, self.arp.generation)
        if self._l3_index_memo is None or self._l3_index_memo[0] != key:
            index: Dict[str, List[HostRecord]] = {}
            lookup = self.arp.lookup
            for rec in self.hosts.values():
                loc = lookup(rec.ip)
                if loc is not None:
                    index.setdefault(loc.switch_name, []).append(rec)
            self._l3_index_memo = (key, index)
        return self._l3_index_memo[1].get(switch.name, ())

    def hide_host(self, name: str) -> None:
        """Hide a failed/inconsistent node from *clients* (§3.3, §4.4).

        Hiding is a virtual-ring property: the partition re-syncs that
        accompany this call exclude the node from every unicast rule and
        multicast bucket, so no client request can reach it — clients only
        ever address vnode IPs.  Physical L3 reachability deliberately
        remains: "inconsistent nodes can communicate with the other
        consistent nodes to update their data set" (§3.3), and the node
        must be able to talk to the metadata service to rejoin.
        """
        # vring exclusion happens in the caller's sync_partition() calls.
        return

    def unhide_host(self, name: str, epoch: Optional[int] = None) -> None:
        """Re-assert the node's L3 entry (idempotent; see hide_host)."""
        rec = self.hosts.get(name)
        if rec is not None:
            self._install_l3(rec, epoch=epoch)

    # -- takeover reconciliation (control-plane HA) ------------------------------------
    def desired_state(self, switch) -> Tuple[Dict[str, List[Rule]], Dict[int, Group]]:
        """Everything ``switch``'s tables *should* hold right now, keyed by
        cookie / group id — the reference side of the reconciliation diff."""
        info = self._info(switch)
        rules: List[Rule] = list(self._static_rules(switch, info))
        for rec in self._hosts_for_l3(switch, info):
            rule = self._l3_rule(rec, switch, info)
            if rule is not None:
                rules.append(rule)
        groups: Dict[int, Group] = {}
        for rs in self.partition_map:
            pre, group, post = self._plan_partition(rs, switch, info)
            rules.extend(pre)
            rules.extend(post)
            if group is not None:
                groups[group.group_id] = group
        by_cookie: Dict[str, List[Rule]] = {}
        for rule in rules:
            by_cookie.setdefault(rule.cookie, []).append(rule)
        return by_cookie, groups

    @staticmethod
    def _rules_equal(have: List[Rule], want: List[Rule]) -> bool:
        if len(have) != len(want):
            return False
        key = lambda r: (-r.priority, str(r.match))
        pairs = zip(sorted(have, key=key), sorted(want, key=key))
        return all(
            h.priority == w.priority
            and h.match == w.match
            and list(h.actions) == list(w.actions)
            for h, w in pairs
        )

    @staticmethod
    def _group_equal(have: Optional[Group], want: Group) -> bool:
        return have is not None and list(have.buckets) == list(want.buckets)

    def reconcile(self, epoch: Optional[int] = None) -> Dict[str, int]:
        """Diff-based table repair after a takeover or controller↔switch
        reconnect: recompute the desired ruleset from membership, compare
        against each switch's installed contents by cookie, install what's
        missing, delete what's orphaned, and leave matching rules untouched
        so the switches' exact-match flow caches stay warm.  Rules injected
        by the chaos engine (cookie ``chaos:*``) are outside the desired
        state and deliberately left alone."""
        stats = {"installed": 0, "deleted": 0, "matched": 0, "groups": 0}
        t0 = self._timer_start()
        try:
            for switch in self.channel.switches:
                # Claim mastership first (generation-id bump): the fence must
                # engage even if this switch needs zero repairs.
                self.channel.role_claim(switch, epoch=epoch)
                want_rules, want_groups = self.desired_state(switch)
                have: Dict[str, List[Rule]] = {}
                for rule in switch.table.iter_rules():
                    if not rule.cookie.startswith("chaos:"):
                        have.setdefault(rule.cookie, []).append(rule)
                ops = []
                for cookie in sorted(set(have) - set(want_rules)):
                    ops.append(("delete", cookie))
                    stats["deleted"] += len(have[cookie])
                for cookie in sorted(want_rules):
                    rules = want_rules[cookie]
                    if cookie in have and self._rules_equal(have[cookie], rules):
                        stats["matched"] += len(rules)
                        self._mark_synced(switch.name, cookie)
                        continue
                    if cookie in have:
                        ops.append(("delete", cookie))
                        stats["deleted"] += len(have[cookie])
                    for rule in rules:
                        ops.append(("rule", rule))
                        stats["installed"] += 1
                    self._mark_synced(switch.name, cookie)
                for gid in sorted(set(switch.groups) - set(want_groups)):
                    ops.append(("group_delete", gid))
                    stats["groups"] += 1
                for gid in sorted(want_groups):
                    if not self._group_equal(switch.groups.get(gid), want_groups[gid]):
                        ops.append(("group", want_groups[gid]))
                        stats["groups"] += 1
                    self._synced.add((switch.name, gid))
                self.channel.apply_batch(switch, ops, epoch=epoch)
        finally:
            self._timer_stop(t0)
        return stats

    def _mark_synced(self, switch_name: str, cookie: str) -> None:
        """Record that a vring cookie exists on a switch so the next
        ``sync_partition`` for it issues its delete round-trip."""
        kind, _, suffix = cookie.partition(":")
        if kind in ("uni", "mc", "hread") and suffix.isdigit():
            self._synced.add((switch_name, int(suffix)))

    # -- reactive path (packet-in) ----------------------------------------------------
    def on_packet_in(self, switch, packet: Packet, in_port_no: int, buffer_id: int) -> None:
        if packet.proto == Proto.ARP:
            self._on_arp(switch, packet, in_port_no, buffer_id)
            return
        # Learn the sender's location from any data-plane packet.
        if not packet.src_ip.is_multicast and packet.src_ip != _CTRL_IP:
            if self.arp.lookup(packet.src_ip) is None:
                self.learn_location(packet.src_ip, switch, in_port_no)
        dst = packet.dst_ip
        if dst in self.uni.prefix:
            self.sync_partition(self.uni.subgroup_of_address(dst))
            self.channel.release_buffered(switch, buffer_id)
        elif dst in self.mc.prefix:
            self.sync_partition(self.mc.subgroup_of_address(dst))
            self.channel.release_buffered(switch, buffer_id)
        elif dst.is_multicast:
            # A replica-set group address (node-originated 2PC timestamp
            # racing a rule re-sync): reinstall and release.
            partition = dst.value & 0x0FFFFFFF
            try:
                self.partition_map.get(partition)
            except KeyError:
                self.channel.drop_buffered(switch, buffer_id)
                return
            self.sync_partition(partition)
            self.channel.release_buffered(switch, buffer_id)
        elif self.arp.lookup(dst) is not None:
            rec = self._host_by_ip.get(dst)
            if rec is not None:
                self._install_l3(rec)
            self.channel.release_buffered(switch, buffer_id)
        else:
            # Unknown unicast: buffer and ARP (rate-limited, §5).
            self._pending.setdefault(dst, []).append((switch, buffer_id))
            now = switch.sim.now
            if self.arp.should_ask(dst, now):
                req = make_arp_request(_CTRL_IP, _CTRL_MAC, dst)
                self._arp_flood(switch, req)

    def _on_arp(self, switch, packet: Packet, in_port_no: int, buffer_id: int) -> None:
        body = packet.payload or {}
        if body.get("op") == "reply":
            ip = body["sender_ip"]
            self.arp.learn(ip, body["sender_mac"], switch.name, in_port_no)
            rec = self._host_by_ip.get(ip)
            if rec is not None:
                self._install_l3(rec)
            for sw, bid in self._pending.pop(ip, []):
                self.channel.release_buffered(sw, bid)
        elif body.get("op") == "request":
            # Host-originated ARP (not used by NICE clients): flood it.
            self._arp_flood(switch, packet.copy())
        self.channel.drop_buffered(switch, buffer_id)

    def _arp_flood(self, switch, packet: Packet) -> None:
        """Broadcast an ARP frame without looping the fabric.

        Single-switch: a plain FLOOD packet-out (the original behavior).
        Fabric: FLOOD on a leaf would re-enter other switches' ARP punt
        rules and re-flood forever; instead the controller packet-outs one
        copy per *host-facing* leaf port across the whole fabric.
        """
        if not self._fabric_mode:
            self.channel.packet_out(switch, packet, [Output(FLOOD)])
            return
        for sw in self.channel.switches:
            if self._info(sw).role != "leaf":
                continue
            fabric_ports = {
                port
                for (name, _), port in self._fabric_ports.items()
                if name == sw.name
            }
            outs = [
                Output(no)
                for no, port in sorted(sw.ports.items())
                if no not in fabric_ports and port.link is not None
            ]
            if outs:
                self.channel.packet_out(sw, packet.copy(), outs)

    # -- §4.6 accounting -----------------------------------------------------------------
    def rule_count(self, cookie_prefixes: Tuple[str, ...] = ("uni:", "mc:")) -> int:
        """Total vring entries across switches (the §4.6 budget)."""
        total = 0
        for switch in self.channel.switches:
            for rule in switch.table.iter_rules():
                if any(rule.cookie.startswith(p) for p in cookie_prefixes):
                    total += 1
        return total

    def rule_counts_by_switch(self) -> Dict[str, int]:
        """Controller-planned rules per switch — the per-switch side of
        the §4.6 budget that the fabric's ``switch_rule_budget`` enforces
        at install time.  Rules injected by the chaos engine (cookie
        ``chaos:*``) are fault machinery, not planned state, and are
        excluded — an in-flight fault schedule must not inflate (or mask
        headroom in) the budget census."""
        return {
            switch.name: sum(
                1
                for rule in switch.table.iter_rules()
                if not rule.cookie.startswith("chaos:")
            )
            for switch in self.channel.switches
        }

    def rule_census_by_switch(self) -> Dict[str, Dict[str, int]]:
        """Per-family rule census: switch name -> {family: count}.

        The family is the cookie prefix before ``:`` (``uni``, ``mc``,
        ``hread``, ``l3``, ``l3agg``, ``arp``, ``edge-base``); ``chaos``
        cookies are excluded exactly as in :meth:`rule_counts_by_switch`,
        of which this is the itemized breakdown (same totals)."""
        census: Dict[str, Dict[str, int]] = {}
        for switch in self.channel.switches:
            families: Dict[str, int] = {}
            for rule in switch.table.iter_rules():
                family = rule.cookie.partition(":")[0] or "(uncookied)"
                if family == "chaos":
                    continue
                families[family] = families.get(family, 0) + 1
            census[switch.name] = families
        return census
