"""Control-plane fault tolerance: replicated metadata service with
epoch-fenced takeover (the robustness layer NICE §4.4 assumes away).

The paper's metadata service + SDN controller are single processes; here
they gain a primary/standby replication scheme built from the same
machinery storage nodes already use:

* **Leader lease** — the acting leader beats ``leader_hb`` datagrams to
  every standby on the node-heartbeat cadence; a standby promotes itself
  when ``heartbeat_miss_limit × heartbeat_interval_s`` elapses without
  one (staggered by replica rank so standbys don't race each other).
* **Membership log** — every membership transition (register / fail /
  rejoin phases / admin ops) is appended to a disk-backed log
  (``kv.wal`` pattern: forced sequential writes) and replicated to the
  standbys over TCP.  A promoting standby **replays** the log to rebuild
  the :class:`~repro.core.membership.PartitionMap` and node-status table
  — nodes that were mid-rejoin replay as JOINING and are told to restart
  at phase 1, which is always safe (§4.4 rejoin is idempotent).
* **Epochs** — each promotion mints ``epoch+1``; flow-mods and
  membership messages carry the minting epoch, and switches / storage
  nodes fence anything older, so a deposed leader that wakes up cannot
  corrupt rules or membership no matter what it still believes.
* **Reconciliation** — after takeover the new leader diffs the desired
  ruleset against actual ``FlowTable`` contents by cookie and repairs
  only the differences (see ``NiceControllerApp.reconcile``), keeping
  switch flow caches warm instead of reinstalling the world.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..kv import Disk
from ..net import Host, IPv4Address
from ..sim import AnyOf, Counter, Simulator
from ..transport import ProtocolStack
from .config import (
    ACK_BYTES,
    ClusterConfig,
    MEMBERSHIP_BYTES,
    META_PORT,
    NODE_PORT,
    REQUEST_BYTES,
)
from .controller import NiceControllerApp
from .membership import PartitionMap, ReplicaSet
from .metadata import DOWN, JOINING, MetadataService, UP

__all__ = ["ControlPlaneHA", "MembershipLog", "MetadataReplica", "replay_log"]

#: Bytes persisted per membership-log record (kv.wal pattern).
RECORD_BYTES = 256


class MembershipLog:
    """Durable, replicated log of membership transitions.

    Each record is a plain dict ``{kind, epoch, node, slices}`` where
    ``slices`` are post-mutation ``ReplicaSet.to_wire()`` snapshots —
    state-carrying records make replay trivial and order-insensitive
    within one epoch.  Appends are persisted with a forced sequential
    disk write, mirroring :class:`~repro.kv.WriteAheadLog`.
    """

    def __init__(self, disk: Disk):
        self.disk = disk
        self._records: List[dict] = []

    def append(self, record: dict) -> None:
        self._records.append(record)
        # Fire-and-forget persistence: the disk write costs sim time on
        # the device but membership progress does not block on it.
        self.disk.write(RECORD_BYTES, forced=True)

    def replace(self, records) -> None:
        """Adopt a full log copy (standby bootstrap / post-demotion sync)."""
        self._records = list(records)

    def records(self) -> Tuple[dict, ...]:
        return tuple(self._records)

    def last_epoch(self) -> int:
        return max((r.get("epoch", 0) for r in self._records), default=0)

    def __len__(self) -> int:
        return len(self._records)


def replay_log(records) -> Tuple[Optional[PartitionMap], Dict[str, str]]:
    """Rebuild (partition map, node status) from a membership log.

    The ``init`` record snapshots the build-time map; every later record
    installs its post-mutation slices over it.  A node whose last
    transition was ``rejoin_begin`` replays as JOINING — the new leader
    restarts its rejoin at phase 1.
    """
    pm: Optional[PartitionMap] = None
    status: Dict[str, str] = {}
    for rec in records:
        kind = rec.get("kind")
        if kind == "init":
            pm = PartitionMap([ReplicaSet.from_wire(w) for w in rec.get("slices", ())])
            continue
        if pm is not None:
            for w in rec.get("slices", ()):
                pm.install(ReplicaSet.from_wire(w))
        node = rec.get("node") or ""
        if kind == "register":
            status[node] = UP
        elif kind == "fail":
            status[node] = DOWN
        elif kind == "rejoin_begin":
            status[node] = JOINING
        elif kind == "rejoin_complete":
            status[node] = UP
        elif kind == "admin_remove":
            status.pop(node, None)
        # admin_add / takeover records carry slices only.
    return pm, status


class MetadataReplica:
    """One metadata host: socket owner + promotion state machine.

    The replica owns the protocol stack, the membership-log disk, and the
    META_PORT inboxes; the actual :class:`MetadataService` logic runs
    *inside* the replica (``own_loops=False``) so a standby can promote —
    construct a fresh service over the replayed state — without rebinding
    any socket.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        config: ClusterConfig,
        controller: NiceControllerApp,
        ha: "ControlPlaneHA",
        rank: int,
    ):
        self.sim = sim
        self.host = host
        self.config = config
        self.controller = controller
        self.ha = ha
        self.rank = rank
        self.stack = ProtocolStack(sim, host)
        self.log = MembershipLog(Disk(sim, name=f"{host.name}.disk"))
        self.role = "standby"
        self.service: Optional[MetadataService] = None
        #: Highest epoch this replica has heard of (beats, log records).
        self.epoch_seen = 0
        self.last_leader_beat = sim.now
        self.leader_ip: Optional[IPv4Address] = None
        self._hb_inbox = self.stack.udp_bind(META_PORT)
        self._ctl_inbox = self.stack.tcp.listen(META_PORT)
        sim.process(self._hb_loop())
        sim.process(self._ctl_loop())
        sim.process(self._tick_loop())
        ha.add_replica(self)

    # -- lifecycle ----------------------------------------------------------------
    def lead(self, partition_map: PartitionMap, epoch: int = 1) -> MetadataService:
        """Become the build-time leader (rank 0)."""
        self.role = "leader"
        self.service = MetadataService(
            self.sim, self.stack, self.config, partition_map, self.controller,
            epoch=epoch, peers=(), log=self.log, own_loops=False,
        )
        self.epoch_seen = epoch
        return self.service

    def crash(self) -> None:
        self.host.fail()

    def recover(self) -> None:
        self.host.recover()
        # Fresh lease: judge the current leader from now, not from before
        # the outage, or a recovering standby would promote instantly.
        self.last_leader_beat = self.sim.now

    @property
    def leading(self) -> bool:
        """Actively serving as leader: a crashed leader's service object
        stays ``active`` (nobody deactivated it) but its NIC is dark."""
        return self.service is not None and self.service.active and self.host.up

    @property
    def current_epoch(self) -> int:
        return self.service.epoch if self.leading else self.epoch_seen

    def _peer_ips(self) -> List[IPv4Address]:
        return [r.host.ip for r in self.ha.replicas if r is not self]

    # -- inbound ------------------------------------------------------------------
    def _hb_loop(self):
        while True:
            dgram = yield self._hb_inbox.get()
            body = dgram.payload or {}
            if body.get("type") == "leader_hb":
                self._on_leader_hb(body)
            elif self.leading:
                self.service.on_heartbeat(body)

    def _on_leader_hb(self, body: dict) -> None:
        epoch = body.get("epoch", 0)
        if self.leading:
            if epoch > self.service.epoch:
                # Someone took over while we were dead: stand down and
                # resync the log from the new leader.
                self._demote(epoch, body.get("ip"))
            return
        if epoch < self.epoch_seen:
            return  # stale beat from a deposed leader
        self.epoch_seen = epoch
        self.last_leader_beat = self.sim.now
        if body.get("ip"):
            self.leader_ip = IPv4Address(body["ip"])

    def _demote(self, new_epoch: int, leader_ip_str: Optional[str]) -> None:
        svc = self.service
        if svc is not None:
            svc.active = False
        self.service = None
        self.role = "standby"
        self.epoch_seen = max(self.epoch_seen, new_epoch)
        self.last_leader_beat = self.sim.now
        self.ha.demotions.add()
        tr = self.sim.tracer
        if tr is not None:
            tr.instant("meta_demote", "ctrl", node=self.host.name, epoch=new_epoch)
        if leader_ip_str:
            self.leader_ip = IPv4Address(leader_ip_str)
            self.sim.process(self._sync_log_from(self.leader_ip))

    def _ctl_loop(self):
        while True:
            msg = yield self._ctl_inbox.get()
            body = msg.payload or {}
            kind = body.get("type")
            if kind == "meta_log":
                epoch = body.get("epoch", 0)
                if epoch >= self.epoch_seen and not self.leading:
                    self.epoch_seen = epoch
                    self.last_leader_beat = self.sim.now
                    record = body.get("record") or {}
                    tail = self.log.records()
                    # TCP retransmits delayed across an outage can deliver a
                    # record we already copied via log_sync; drop the dup.
                    if not tail or tail[-1] != record:
                        self.log.append(record)
            elif kind == "log_sync":
                if self.leading:
                    yield msg.conn.send(
                        {
                            "type": "log_sync_reply",
                            "epoch": self.service.epoch,
                            "records": list(self.log.records()),
                        },
                        MEMBERSHIP_BYTES,
                    )
            elif self.leading:
                yield from self.service.handle_control(msg, body)
            elif kind in ("rejoin", "consistent", "report_failure"):
                # Standby redirect: if the leader we follow holds a fresh
                # lease, point the node at it directly.  With a stale lease
                # we stay silent — the sender's timeout/failover path keeps
                # rotating while a promotion is pending.
                lease = (
                    self.config.heartbeat_miss_limit
                    * self.config.heartbeat_interval_s
                )
                if (
                    self.leader_ip is not None
                    and self.sim.now - self.last_leader_beat <= lease
                ):
                    yield msg.conn.send(
                        {
                            "type": "meta_redirect",
                            "epoch": self.epoch_seen,
                            "ip": str(self.leader_ip),
                        },
                        ACK_BYTES,
                    )

    def _sync_log_from(self, ip: IPv4Address):
        """Post-demotion catch-up: copy the new leader's full log."""
        timeout = self.config.peer_timeout_s * 4
        send = self.stack.tcp.send_message(
            ip, META_PORT, {"type": "log_sync"}, REQUEST_BYTES
        )
        got = yield AnyOf(self.sim, [send, self.sim.timeout(timeout)])
        if send not in got:
            return
        conn = got[send]
        reply = conn.inbox.get(
            lambda m: (m.payload or {}).get("type") == "log_sync_reply"
        )
        got = yield AnyOf(self.sim, [reply, self.sim.timeout(timeout)])
        if reply not in got:
            conn.inbox.cancel(reply)
            return
        body = got[reply].payload or {}
        if body.get("epoch", 0) >= self.epoch_seen:
            self.log.replace(body.get("records") or [])
            self.epoch_seen = max(self.epoch_seen, body.get("epoch", 0))

    # -- promotion ----------------------------------------------------------------
    def _tick_loop(self):
        interval = self.config.heartbeat_interval_s
        lease = self.config.heartbeat_miss_limit * interval
        while True:
            yield self.sim.timeout(interval)
            if not self.host.up or self.leading:
                continue
            # Rank-staggered threshold: the lowest-ranked live standby wins
            # the race, later ranks only step up if it too is dead.
            if self.sim.now - self.last_leader_beat > lease * (1 + self.rank / 4):
                self.promote()

    def promote(self) -> Optional[MetadataService]:
        """Take over leadership: replay the log, mint the next epoch,
        reconcile every switch, and point the fleet at this replica."""
        pm, status = replay_log(self.log.records())
        if pm is None:
            return None  # never bootstrapped: nothing to lead
        new_epoch = max(self.epoch_seen, self.log.last_epoch()) + 1
        self.role = "leader"
        svc = MetadataService(
            self.sim, self.stack, self.config, pm, self.controller,
            epoch=new_epoch, peers=self._peer_ips(), log=self.log,
            own_loops=False,
        )
        svc.status = dict(status)
        now = self.sim.now
        for node, state in status.items():
            if state != DOWN:
                # Fresh grace period: judge liveness from takeover time.
                svc.last_heartbeat[node] = now
        self.service = svc
        self.epoch_seen = new_epoch
        svc._log_append("takeover", node=self.host.name)
        self.ha.promotions.add()
        tr = self.sim.tracer
        if tr is not None:
            tr.instant("meta_promote", "ctrl", node=self.host.name,
                       epoch=new_epoch, joining=sum(1 for s in status.values()
                                                    if s == JOINING))
        stats = svc.reconcile_switches()
        self.ha.reconcile_installed.add(stats["installed"])
        self.ha.reconcile_deleted.add(stats["deleted"])
        self.ha.reconcile_matched.add(stats["matched"])
        svc.send_leader_beat()
        self._announce(svc)
        return svc

    def _announce(self, svc: MetadataService) -> None:
        """Tell every live node about the new leader; nodes mid-rejoin are
        told to restart at phase 1 (their old rejoin died with the old
        leader; §4.4 rejoin is idempotent so restarting is always safe)."""
        for node, state in sorted(svc.status.items()):
            if state == DOWN:
                continue
            ip = svc.node_ip(node)
            if ip is None:
                continue
            self.sim.process(self._send_node(ip, {
                "type": "meta_leader", "epoch": svc.epoch, "ip": str(self.host.ip),
            }))
            if state == JOINING:
                self.sim.process(self._send_node(ip, {
                    "type": "rejoin_restart", "epoch": svc.epoch,
                    "ip": str(self.host.ip),
                }))

    def _send_node(self, ip: IPv4Address, body: dict):
        send = self.stack.tcp.send_message(ip, NODE_PORT, body, MEMBERSHIP_BYTES)
        yield AnyOf(self.sim, [send, self.sim.timeout(self.config.peer_timeout_s * 4)])


class ControlPlaneHA:
    """The replica group: build-time wiring plus promotion accounting."""

    def __init__(self, sim: Simulator, config: ClusterConfig, controller: NiceControllerApp):
        self.sim = sim
        self.config = config
        self.controller = controller
        self.replicas: List[MetadataReplica] = []
        self.promotions = Counter("meta.ha.promotions")
        self.demotions = Counter("meta.ha.demotions")
        self.reconcile_installed = Counter("meta.ha.reconcile_installed")
        self.reconcile_deleted = Counter("meta.ha.reconcile_deleted")
        self.reconcile_matched = Counter("meta.ha.reconcile_matched")

    def add_replica(self, replica: MetadataReplica) -> None:
        self.replicas.append(replica)

    @property
    def leader(self) -> Optional[MetadataReplica]:
        """The acting leader.  During a zombie window two replicas may both
        believe they lead; the higher epoch is authoritative."""
        leading = [r for r in self.replicas if r.leading]
        if not leading:
            return None
        return max(leading, key=lambda r: r.current_epoch)

    @property
    def active_service(self) -> Optional[MetadataService]:
        leader = self.leader
        return leader.service if leader else None

    def replica_named(self, name: str) -> Optional[MetadataReplica]:
        for replica in self.replicas:
            if replica.host.name == name:
                return replica
        return None

    def finalize(self) -> None:
        """Wire peer addresses and provision standby logs.

        Build-time registrations were appended before the standbys
        existed, so each standby starts from a direct copy of the
        leader's log — live TCP replication covers everything after.
        """
        leader = self.leader
        if leader is None:
            raise RuntimeError("finalize() requires a build-time leader")
        svc = leader.service
        svc.set_peers([r.host.ip for r in self.replicas if r is not leader])
        for replica in self.replicas:
            if replica is leader:
                continue
            replica.log.replace(list(leader.log.records()))
            replica.epoch_seen = svc.epoch
            replica.last_leader_beat = self.sim.now
            replica.leader_ip = leader.host.ip
