"""Virtual consistent-hashing rings (§3.2, §4.2).

Clients address a *virtual* storage system: a range of IP addresses
organized as a consistent-hashing ring.  The vring is divided into
power-of-two *subgroups* ("e.g., all vnodes in 10.10.1.0/24 form a
subgroup"), and the metadata service maps each subgroup to one physical
replica set via switch prefix rules.  NICE runs two vrings: unicast (gets)
and multicast (puts), over disjoint prefixes.
"""

from __future__ import annotations

from ..kv import RING_SIZE, key_hash
from ..net import IPv4Address, IPv4Network

__all__ = ["VirtualRing", "mc_group_address"]


def mc_group_address(partition: int) -> IPv4Address:
    """The IP multicast group address of one replica set (§4.2: the switch
    rewrites multicast-vring packets "to be the IP multicast address of the
    target replication set")."""
    if not 0 <= partition < (1 << 24):
        raise ValueError(f"partition {partition} out of multicast range")
    return IPv4Address(0xE0000000 | partition)


class VirtualRing:
    """One virtual ring: an IP prefix split into equal subgroups."""

    def __init__(self, prefix: IPv4Network, n_subgroups: int):
        self.prefix = IPv4Network(prefix)
        if n_subgroups < 1 or (n_subgroups & (n_subgroups - 1)):
            raise ValueError(f"subgroup count must be a power of two: {n_subgroups}")
        if n_subgroups > self.prefix.num_addresses:
            raise ValueError(
                f"{n_subgroups} subgroups do not fit in {self.prefix} "
                f"({self.prefix.num_addresses} vnodes)"
            )
        self.n_subgroups = n_subgroups
        shift = 0
        while (1 << shift) < n_subgroups:
            shift += 1
        self.subgroup_prefixlen = self.prefix.prefixlen + shift
        self._subgroup_size = self.prefix.num_addresses // n_subgroups

    # -- client side: key -> vnode ------------------------------------------
    def vnode_for_hash(self, h: int) -> IPv4Address:
        """The vnode address serving ring position ``h``: the hash circle is
        scaled linearly onto the vring's address range."""
        offset = (h % RING_SIZE) * self.prefix.num_addresses // RING_SIZE
        return self.prefix.address + offset

    def vnode_for_key(self, name: str) -> IPv4Address:
        return self.vnode_for_hash(key_hash(name))

    # -- metadata side: subgroups --------------------------------------------
    def subgroup_prefix(self, subgroup: int) -> IPv4Network:
        """The CIDR block of vnode addresses forming ``subgroup``."""
        if not 0 <= subgroup < self.n_subgroups:
            raise ValueError(f"subgroup {subgroup} out of range 0..{self.n_subgroups - 1}")
        base = self.prefix.address + subgroup * self._subgroup_size
        return IPv4Network(base, self.subgroup_prefixlen)

    def subgroup_of_hash(self, h: int) -> int:
        """Partition index of ring position ``h`` (aligned with
        :meth:`vnode_for_hash`: the vnode for ``h`` lies in this subgroup)."""
        return (h % RING_SIZE) * self.n_subgroups // RING_SIZE

    def subgroup_of_key(self, name: str) -> int:
        return self.subgroup_of_hash(key_hash(name))

    def subgroup_of_address(self, ip: IPv4Address) -> int:
        """Which subgroup a vnode address belongs to."""
        ip = IPv4Address(ip)
        if ip not in self.prefix:
            raise ValueError(f"{ip} is not in vring {self.prefix}")
        return (ip - self.prefix.address) // self._subgroup_size

    def __contains__(self, ip: IPv4Address) -> bool:
        return IPv4Address(ip) in self.prefix

    def __repr__(self) -> str:  # pragma: no cover
        return f"<VirtualRing {self.prefix} x{self.n_subgroups}>"
