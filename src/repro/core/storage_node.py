"""The NICE storage node (§4.3–§4.4 and Fig 3).

Every node serves put and get requests and implements the replication,
consistency and fault-tolerance protocols:

* **NICE-2PC put** — the client's put is multicast by the switch to the
  whole replica set.  Each replica locks the object, force-logs (+L),
  writes the object (W) and ack1's the primary; the primary, on all ack1s,
  stamps the operation and multicasts the timestamp; replicas commit,
  unlock (−L) and ack2; the primary then acknowledges the client.
* **Handoff role** — a node standing in for a failed replica stores new
  objects in a separate namespace and forwards get misses to the primary.
* **Recovery** — a restarting node rejoins put-first, fetches missed
  objects from its handoffs, then reports consistency to the metadata
  service (which restores its get visibility).
* **Primary failover** — a promoted secondary queries peers for locked
  operations and applies the paper's rule: committed-anywhere ⇒ commit
  everywhere; locked-everywhere (no commit evidence) ⇒ abort.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..kv import Disk, LockTable, LogRecord, ObjectStore, PutStamp, StoredObject, WriteAheadLog
from ..net import Host, IPv4Address
from ..sim import AnyOf, Counter, Event, Resource, Simulator
from ..transport import MulticastEndpoint, MulticastSender, ProtocolStack
from .config import (
    ACK_BYTES,
    COMMIT_BYTES,
    ClusterConfig,
    CLIENT_PORT,
    GET_PORT,
    HEARTBEAT_BYTES,
    MEMBERSHIP_BYTES,
    META_PORT,
    NODE_PORT,
    PUT_PORT,
    REQUEST_BYTES,
)
from .membership import ReplicaSet
from .vring import VirtualRing, mc_group_address

__all__ = ["NiceStorageNode"]

#: Poll cadence while a partition snapshot waits for in-flight 2PC ops to
#: resolve (the §4.4 catch-up/commit race) — well under one commit round.
FETCH_DRAIN_POLL_S = 100e-6


@dataclass
class _PendingPut:
    """A prepared (locked, logged, written) but uncommitted operation."""

    op_id: Tuple
    partition: int
    key: str
    value: object
    size: int
    client_ip: str
    client_ts: float
    client_port: int
    role: str
    #: Disk sequence of the object data write (W in Fig 3, not forced):
    #: the committed object survives power loss only once a flush covers
    #: this sequence — until then a committed WAL record resurrects it.
    data_seq: int = 0


@dataclass
class _Coordination:
    """Primary-side per-operation 2PC state."""

    need: Set[str]
    ack1: Set[str] = field(default_factory=set)
    ack2: Set[str] = field(default_factory=set)
    ev1: Event = None
    ev2: Event = None


class NiceStorageNode:
    """One storage server: protocol engines + local storage engine."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        name: str,
        config: ClusterConfig,
        unicast_vring: VirtualRing,
        multicast_vring: VirtualRing,
        metadata_ip: IPv4Address,
        directory: Dict[str, IPv4Address],
        rng=None,
    ):
        self.sim = sim
        self.host = host
        self.name = name
        self.config = config
        self.uni = unicast_vring
        self.mc = multicast_vring
        #: Metadata control/heartbeat targets, preference order.  A single
        #: address for the paper's one-process service; leader + standbys
        #: under control-plane HA.  ``_meta_idx`` points at the current
        #: target; it rotates on control timeouts and snaps to the leader
        #: announced by ``meta_leader``/``meta_redirect`` messages.
        if isinstance(metadata_ip, (list, tuple)):
            self.metadata_ips: List[IPv4Address] = [
                IPv4Address(ip) for ip in metadata_ip
            ]
        else:
            self.metadata_ips = [IPv4Address(metadata_ip)]
        self._meta_idx = 0
        #: Highest metadata epoch seen; stale-epoch membership and control
        #: messages from a deposed leader are fenced.
        self.meta_epoch = 0
        #: name -> physical IP for the replicas this node talks to.  The
        #: builder hands over the full directory for convenience, but the
        #: node only ever addresses its O(R) replica-set peers.
        self.directory = directory
        self.stack = ProtocolStack(sim, host)
        self.cpu = Resource(sim, capacity=1, name=f"{name}.cpu")
        self.disk = Disk(sim, name=f"{name}.disk")
        self.store = ObjectStore()
        self.wal = WriteAheadLog(self.disk, forced=config.wal_forced)
        self.locks = LockTable()
        self.replica_sets: Dict[int, ReplicaSet] = {}
        self.mc_sender = MulticastSender(self.stack)
        self.mc_endpoint = MulticastEndpoint(
            self.stack, PUT_PORT, chunk_loss_rate=config.multicast_chunk_loss, rng=rng
        )
        self._get_inbox = self.stack.udp_bind(GET_PORT)
        self._node_inbox = self.stack.tcp.listen(NODE_PORT)
        self._pending: Dict[Tuple, _PendingPut] = {}
        #: Per-partition ops between multicast arrival and `_pending`
        #: registration (CPU/lock/log/disk stages of the prepare).  Rejoin
        #: snapshots drain these so a mid-prepare put is never lost.
        self._preparing: Dict[int, Set[Tuple]] = {}
        self._coord: Dict[Tuple, _Coordination] = {}
        #: Acks that raced ahead of the primary's own prepare (its disk can
        #: queue behind concurrent gets); drained when the coord is created.
        self._early_acks: Dict[Tuple, Dict[int, Set[str]]] = {}
        #: Ops aborted before this replica finished preparing them — the
        #: prepare bails out when it finally gets the lock.
        self._aborted: Dict[Tuple, bool] = {}
        #: Commits that raced our prepare (possible for best-effort joining
        #: replicas, whose ack1 the primary does not wait for).
        self._early_commits: Dict[Tuple, PutStamp] = {}
        self._recently_committed: Dict[Tuple, PutStamp] = {}
        self._timeout_strikes: Dict[str, int] = {}
        self._token_seq = itertools.count(1)
        #: True while the crash-recovery rejoin drives catch-up itself (the
        #: §4.4 node-addition catch-up must not double-trigger).
        self._rejoining = False
        self._clients_seen: Dict[int, set] = {}
        self._was_primary: Set[int] = set()
        #: key → disk sequence of its latest object data write (W is not
        #: forced); entries above the flush barrier are lost on power loss.
        self._volatile: Dict[str, int] = {}
        #: True after a power failure until the cold restart rebuilds the
        #: store from the durable image + WAL replay (§4.4, §5k).
        self._cold = False
        # Fail-slow detector state (§5k): consecutive heartbeat windows
        # whose disk service-time ratio met the threshold.
        self._slow_strikes = 0
        self.failslow = False
        self.puts_served = Counter(f"{name}.puts")
        self.gets_served = Counter(f"{name}.gets")
        self.gets_forwarded = Counter(f"{name}.gets_forwarded")
        self.aborts = Counter(f"{name}.aborts")
        self.membership_fenced = Counter(f"{name}.membership_fenced")
        self.meta_failovers = Counter(f"{name}.meta_failovers")
        self.cold_restarts = Counter(f"{name}.cold_restarts")
        self.replayed_commits = Counter(f"{name}.replayed_commits")
        self.read_repairs = Counter(f"{name}.read_repairs")
        self.scrub_scans = Counter(f"{name}.scrub_scans")
        self.scrub_repairs = Counter(f"{name}.scrub_repairs")
        sim.process(self._put_loop())
        sim.process(self._get_loop())
        sim.process(self._node_loop())
        sim.process(self._heartbeat_loop())
        if config.scrub_interval_s > 0:
            # Opt-in: no scrubber process exists on default configs, so
            # default event timelines are untouched.
            sim.process(self._scrub_loop())

    # ------------------------------------------------------------------ identity
    @property
    def ip(self) -> IPv4Address:
        return self.host.ip

    @property
    def metadata_ip(self) -> IPv4Address:
        """The metadata target currently believed to be the leader."""
        return self.metadata_ips[self._meta_idx]

    # -------------------------------------------------------------- metadata targets
    def _fence_meta(self, epoch) -> bool:
        """True (and counted) if a control message carries a stale epoch."""
        if epoch is None:
            return False
        if epoch < self.meta_epoch:
            self.membership_fenced.add()
            tr = self.sim.tracer
            if tr is not None:
                tr.instant(
                    "membership_fenced", "ctrl",
                    node=self.name, epoch=epoch, current=self.meta_epoch,
                )
            return True
        if epoch > self.meta_epoch:
            self.meta_epoch = epoch
        return False

    def _fail_over_meta(self, target: IPv4Address) -> None:
        """A control exchange with ``target`` timed out: drop any cached
        transport state (half-open connections to a dead leader otherwise
        look established forever) and rotate to the next candidate."""
        self.stack.tcp.reset_peer(target)
        if len(self.metadata_ips) > 1 and self.metadata_ips[self._meta_idx] == target:
            self._meta_idx = (self._meta_idx + 1) % len(self.metadata_ips)
            self.meta_failovers.add()
            tr = self.sim.tracer
            if tr is not None:
                tr.instant(
                    "meta_failover", "ctrl",
                    node=self.name, target=str(self.metadata_ip),
                )

    def _adopt_meta_leader(self, epoch, ip_str) -> None:
        """Point heartbeats/control at an announced leader (``meta_leader``
        broadcast after a takeover, or a standby's redirect)."""
        if not ip_str or epoch is None or epoch < self.meta_epoch:
            return
        self.meta_epoch = max(self.meta_epoch, epoch)
        ip = IPv4Address(ip_str)
        if ip not in self.metadata_ips:
            self.metadata_ips.append(ip)
        if self.metadata_ip != ip:
            self.stack.tcp.reset_peer(self.metadata_ip)
            self._meta_idx = self.metadata_ips.index(ip)
            self.meta_failovers.add()

    def install_replica_set(self, rs: ReplicaSet) -> None:
        """Seed/update this node's O(R) membership slice."""
        self.replica_sets[rs.partition] = rs
        if rs.primary == self.name:
            self._was_primary.add(rs.partition)

    def role(self, partition: int) -> Optional[str]:
        rs = self.replica_sets.get(partition)
        if rs is None:
            return None
        if self.name in rs.handoffs:
            return "handoff"
        if self.name not in rs.members:
            return None
        return "primary" if rs.primary == self.name else "secondary"

    def _peer_ip(self, name: str) -> Optional[IPv4Address]:
        return self.directory.get(name)

    def _cpu_work(self):
        """One request's worth of CPU service time (serialized per node)."""
        cost = self.config.node_cpu_per_op_s
        if cost <= 0:
            return
        req = self.cpu.request()
        yield req
        try:
            yield self.sim.timeout(cost)
        finally:
            req.release()

    # ------------------------------------------------------------------ failure injection
    def crash(self, power_loss: bool = False) -> None:
        """Fail-stop: NIC dark, in-memory locks and 2PC state lost.

        A *process* crash (the default) leaves the disk alone — the
        write cache sits below the failing software, exactly as an OS
        page cache survives an application crash, so the object store
        and WAL carry over (§4.4).  ``power_loss=True`` additionally
        drops the disk's volatile cache (§5k): unflushed WAL appends are
        torn or lost, volatile removals resurrect their records, and
        object writes above the flush barrier vanish — the next
        ``restart`` rebuilds from the durable image + WAL replay.
        """
        self.host.fail()
        self.locks.clear()
        self._pending.clear()
        self._preparing.clear()
        self._coord.clear()
        self._early_acks.clear()
        self._recently_committed.clear()
        # Forget primary roles: if re-promoted after restart, run the
        # log-driven reconciliation again (complete-cluster-failure path).
        self._was_primary.clear()
        if power_loss:
            barrier = self.disk.crash()
            self.wal.power_loss()
            for key, seq in self._volatile.items():
                if seq > barrier:
                    self.store.drop(key)
            self._volatile.clear()
            self._cold = True

    def restart(self) -> "Event":
        """Power on and run the two-phase rejoin; returns the rejoin Process."""
        self.host.recover()
        # Membership knowledge may be arbitrarily stale (e.g. we might
        # still believe we are a primary): drop it and wait for fresh O(R)
        # slices — the rejoin reply carries them.
        self.replica_sets.clear()
        self._was_primary.clear()
        if self._cold:
            self._cold = False
            self._cold_restart()
        return self.sim.process(self._rejoin())

    def _cold_restart(self) -> None:
        """Rebuild after power loss from what the platter holds (§4.4:
        "the persistent logs on the nodes will identify the latest put
        operations").  Committed WAL records re-apply to the store —
        completing the −L the crash interrupted — while uncommitted ones
        stay pending for the primary's lock reconciliation."""
        self.cold_restarts.add()
        for rec in self.wal.replay():
            if not rec.committed:
                continue
            self.store.put(StoredObject(rec.key, rec.value, rec.size_bytes, rec.stamp))
            self.wal.remove(rec.op_id)
            self.replayed_commits.add()
        tr = self.sim.tracer
        if tr is not None:
            tr.instant(
                "cold_restart", "node",
                node=self.name,
                wal_pending=len(self.wal),
                torn=self.wal.torn_records,
            )

    # ------------------------------------------------------------------ put path (Fig 3)
    def _put_loop(self):
        while True:
            msg = yield self.mc_endpoint.messages.get()
            body = msg.payload or {}
            if body.get("type") == "put":
                self.sim.process(self._prepare_put(msg, body))
            elif body.get("type") == "put_anyk":
                self.sim.process(self._store_anyk(body))
            elif body.get("type") == "commit":
                self.sim.process(self._on_commit(body))
            elif body.get("type") == "abort":
                self._apply_abort(tuple(body["op_id"]))

    def _prepare_put(self, msg, body: dict):
        if msg.virtual_dst is None or msg.virtual_dst not in self.mc.prefix:
            return
        partition = self.mc.subgroup_of_address(msg.virtual_dst)
        my_role = self.role(partition)
        if my_role is None:
            return
        op_id = tuple(body["op_id"])
        key = body["key"]
        if op_id in self._pending or op_id in self._recently_committed:
            return  # duplicate delivery of a retried put
        tr = self.sim.tracer
        span = None
        if tr is not None:
            span = tr.begin("2pc.prepare", "2pc", node=self.name, op=op_id,
                            role=my_role, key=key)
        # Mark the op visible to rejoin snapshots *now*: between arrival
        # and `_pending` registration it sits in CPU/lock/log/disk stages
        # where a concurrently-taken catch-up snapshot would miss it.
        self._preparing.setdefault(partition, set()).add(op_id)
        try:
            yield from self._cpu_work()
            # Lock; contended writers queue FIFO — grant order equals
            # multicast arrival order, which the switch makes identical on
            # every replica.
            yield self.locks.request(self.sim, key, op_id)
            if op_id in self._aborted or op_id in self._recently_committed:
                # Aborted (or already force-committed) while we queued.
                self.locks.release(key, op_id)
                if span is not None:
                    span.end(status="raced")
                return
            # +L then W (Fig 3): the log append carries the flush; the
            # object write needs ordering but not a second fsync (group
            # commit — the durable log record already covers the op).
            yield self.wal.append(
                LogRecord(
                    op_id,
                    key,
                    body["size"],
                    body["client_ip"],
                    body["client_ts"],
                    value=body["value"],
                    client_port=body["client_port"],
                    partition=partition,
                )
            )
            data_write = self.disk.write(body["size"], forced=False)
            data_seq = self.disk.issued_seq
            yield data_write
            if not self.host.up:
                if span is not None:
                    span.end(status="crashed")
                return  # crashed mid-prepare: the process dies with the node
            pend = _PendingPut(
                op_id=op_id,
                partition=partition,
                key=key,
                value=body["value"],
                size=body["size"],
                client_ip=body["client_ip"],
                client_ts=body["client_ts"],
                client_port=body["client_port"],
                role=my_role,
                data_seq=data_seq,
            )
            self._pending[op_id] = pend
        finally:
            pre = self._preparing.get(partition)
            if pre is not None:
                pre.discard(op_id)
                if not pre:
                    del self._preparing[partition]
        self._clients_seen.setdefault(partition, set()).add(body["client_ip"])
        rs = self.replica_sets[partition]
        # The 2PC outcome may have raced our prepare (we might be a
        # best-effort joiner whose ack the primary didn't wait for).
        early_stamp = self._early_commits.pop(op_id, None)
        if op_id in self._aborted:
            self._apply_abort(op_id)
            if span is not None:
                span.end(status="aborted")
            return
        if span is not None:
            span.end(status="early_commit" if early_stamp is not None
                     else "prepared")
        if early_stamp is not None:
            self._apply_commit(op_id, early_stamp)
            if my_role != "primary":
                primary_ip = self._peer_ip(rs.primary)
                if primary_ip is not None:
                    yield self.stack.tcp.send_message(
                        primary_ip,
                        NODE_PORT,
                        {"type": "put_ack2", "op_id": op_id, "node": self.name},
                        ACK_BYTES,
                    )
            return
        if my_role == "primary":
            yield from self._coordinate_put(pend, rs)
        else:
            primary_ip = self._peer_ip(rs.primary)
            if primary_ip is not None:
                yield self.stack.tcp.send_message(
                    primary_ip,
                    NODE_PORT,
                    {"type": "put_ack1", "op_id": op_id, "node": self.name},
                    ACK_BYTES,
                )

    def _store_anyk(self, body: dict):
        """Quorum-mode put (§5 any-k multicast): the transport already
        acked reception; just persist — no 2PC round."""
        yield self.disk.write(body["size"], forced=True)
        stamp = PutStamp(str(self.ip), self.sim.now, body["client_ip"], body["client_ts"])
        self.store.put(StoredObject(body["key"], body["value"], body["size"], stamp))
        self.puts_served.add()
        tr = self.sim.tracer
        if tr is not None:
            tr.instant("store_anyk", "op", node=self.name,
                       op=tuple(body["op_id"]), key=body["key"])

    def _coordinate_put(self, pend: _PendingPut, rs: ReplicaSet):
        """Primary-side 2PC (Fig 3): gather ack1, multicast the timestamp,
        gather ack2, acknowledge the client."""
        op_id = pend.op_id
        tr = self.sim.tracer
        span = None
        if tr is not None:
            span = tr.begin("2pc.coordinate", "2pc", node=self.name, op=op_id,
                            key=pend.key)
        # Phase-1 rejoiners receive puts best-effort: they are still
        # catching up and will fetch anything missed from the handoff, so
        # the operation's success must not depend on their acks (§4.4).
        secondaries = {s for s in rs.secondaries() if s not in rs.joining}
        coord = _Coordination(need=secondaries)
        coord.ev1 = Event(self.sim)
        coord.ev2 = Event(self.sim)
        self._coord[op_id] = coord
        # Drain acks that beat us here while our prepare was on the disk.
        early = self._early_acks.pop(op_id, None)
        if early:
            for phase, nodes in early.items():
                for node in nodes:
                    self._record_ack(op_id, node, phase)
        if not secondaries:
            if not coord.ev1.triggered:
                coord.ev1.succeed()
            if not coord.ev2.triggered:
                coord.ev2.succeed()
        ok1 = yield from self._await(coord.ev1)
        if not ok1:
            missing = coord.need - coord.ack1
            yield from self._abort_put(pend, missing)
            if span is not None:
                span.end(status="aborted", missing=sorted(missing))
            return
        stamp = PutStamp(str(self.ip), self.sim.now, pend.client_ip, pend.client_ts)
        # Nodes address the replica set's IP multicast group directly (they
        # hold the O(R) membership); works on cores that cannot rewrite.
        group_addr = mc_group_address(pend.partition)
        self.mc_sender.send_ctrl(
            group_addr,
            PUT_PORT,
            {"type": "commit", "op_id": op_id, "stamp": stamp},
            COMMIT_BYTES,
        )
        if tr is not None:
            tr.instant("commit_mcast", "2pc", node=self.name, op=op_id)
        if not self.host.up:
            if span is not None:
                span.end(status="crashed")
            return  # crashed at the timestamp boundary: no local commit
        self._apply_commit(op_id, stamp)
        ok2 = yield from self._await(coord.ev2)
        self._coord.pop(op_id, None)
        if not ok2:
            missing = coord.need - coord.ack2
            for peer in missing:
                yield from self._strike(peer)
            self._reply_client(pend, status="fail")
            if span is not None:
                span.end(status="fail", missing=sorted(missing))
            return
        self.puts_served.add()
        self._reply_client(pend, status="ok")
        if span is not None:
            span.end(status="ok")

    def _await(self, ev: Event):
        got = yield AnyOf(self.sim, [ev, self.sim.timeout(self.config.peer_timeout_s)])
        return ev in got

    def _abort_put(self, pend: _PendingPut, missing: Set[str]):
        """Secondary failed mid-put: abort, tell the client, report peers."""
        self.aborts.add()
        group_addr = mc_group_address(pend.partition)
        self.mc_sender.send_ctrl(
            group_addr, PUT_PORT, {"type": "abort", "op_id": pend.op_id}, ACK_BYTES
        )
        self._apply_abort(pend.op_id)
        self._coord.pop(pend.op_id, None)
        self._reply_client(pend, status="fail")
        for peer in missing:
            yield from self._strike(peer)

    def _on_commit(self, body: dict):
        op_id = tuple(body["op_id"])
        pend = self._pending.get(op_id)
        if pend is None:
            # Possibly racing our own prepare: stash the stamp so the
            # prepare can commit the moment it finishes.
            if op_id not in self._recently_committed and op_id not in self._aborted:
                self._early_commits[op_id] = body["stamp"]
                if len(self._early_commits) > 4096:
                    self._early_commits.pop(next(iter(self._early_commits)))
            return
        if pend.role == "primary":
            return  # primary committed inline; duplicates ignored
        self._apply_commit(op_id, body["stamp"])
        rs = self.replica_sets.get(pend.partition)
        primary_ip = self._peer_ip(rs.primary) if rs else None
        if primary_ip is not None:
            yield self.stack.tcp.send_message(
                primary_ip,
                NODE_PORT,
                {"type": "put_ack2", "op_id": op_id, "node": self.name},
                ACK_BYTES,
            )

    def _apply_commit(self, op_id: Tuple, stamp: PutStamp) -> None:
        if not self.host.up:
            return
        pend = self._pending.pop(op_id, None)
        if pend is None:
            # No in-memory state: a crash-surviving log record (§4.4
            # complete-cluster-failure) can still be committed from the log.
            rec = self.wal.get(op_id)
            if rec is None:
                return
            role = self.role(rec.partition) or "secondary"
            obj = StoredObject(rec.key, rec.value, rec.size_bytes, stamp)
            if role == "handoff":
                self.store.put_handoff(obj)
            else:
                self.store.put(obj)
            self.wal.mark_committed(op_id, stamp)
            self.wal.remove(op_id)
            self.locks.force_release(rec.key)
            self._recently_committed[op_id] = stamp
            return
        obj = StoredObject(pend.key, pend.value, pend.size, stamp)
        if pend.role == "handoff":
            self.store.put_handoff(obj)
        else:
            self.store.put(obj)
            if pend.data_seq > 0 and not self.disk.is_durable(pend.data_seq):
                self._volatile[pend.key] = pend.data_seq
        tr = self.sim.tracer
        if tr is not None:
            tr.instant("commit", "2pc", node=self.name, op=op_id, role=pend.role)
        self.wal.mark_committed(op_id, stamp)
        self.wal.remove(op_id)
        self.locks.release(pend.key, op_id)
        self._recently_committed[op_id] = stamp
        if len(self._recently_committed) > 4096:
            self._recently_committed.pop(next(iter(self._recently_committed)))

    def _apply_abort(self, op_id: Tuple) -> None:
        if not self.host.up:
            return
        self._early_acks.pop(op_id, None)
        self._early_commits.pop(op_id, None)
        self._aborted[op_id] = True
        if len(self._aborted) > 4096:
            self._aborted.pop(next(iter(self._aborted)))
        tr = self.sim.tracer
        if tr is not None:
            tr.instant("abort", "2pc", node=self.name, op=op_id)
        pend = self._pending.pop(op_id, None)
        if pend is None:
            # Crash-surviving log record: drop it (§4.4 abort rule).
            self.wal.remove(op_id)
            return
        self.wal.remove(op_id)
        self.locks.release(pend.key, op_id)

    def _reply_client(self, pend: _PendingPut, status: str) -> None:
        self.stack.tcp.send_message(
            IPv4Address(pend.client_ip),
            pend.client_port,
            {"type": "put_reply", "op_id": pend.op_id, "status": status},
            ACK_BYTES,
        )

    # ------------------------------------------------------------------ get path
    def _get_loop(self):
        while True:
            dgram = yield self._get_inbox.get()
            body = dgram.payload or {}
            if body.get("type") == "get":
                self.sim.process(self._serve_get(body, dgram.virtual_dst))

    def _serve_get(self, body: dict, virtual_dst):
        tr = self.sim.tracer
        span = None
        if tr is not None:
            span = tr.begin("get.serve", "op", node=self.name,
                            op=tuple(body["op_id"]), key=body["key"])
        yield from self._cpu_work()
        key = body["key"]
        if "partition" in body:
            partition = body["partition"]
        elif virtual_dst is not None and virtual_dst in self.uni.prefix:
            partition = self.uni.subgroup_of_address(virtual_dst)
        else:
            partition = self.uni.subgroup_of_key(key)
        body = dict(body, partition=partition)
        my_role = self.role(partition)
        if my_role == "handoff":
            obj = self.store.get_handoff(key)
            if obj is None:
                # §4.4: handoff forwards gets for objects it never received.
                yield from self._forward_get(partition, body)
                if span is not None:
                    span.end(status="forwarded")
                return
        elif my_role is None:
            # A stale switch rule routed this get here (e.g. to a node
            # just released from handoff duty, before the controller's
            # flow-mods re-sync).  This node is not a consistent replica
            # for the partition and must not answer from its store —
            # §4.3's invariant is that clients only ever reach consistent
            # replicas.  Forward to the primary if the slice is known,
            # else stay silent and let the client's retry find the
            # updated rules.
            yield from self._forward_get(partition, body)
            if span is not None:
                span.end(status="forwarded_stale")
            return
        else:
            rs = self.replica_sets.get(partition)
            if rs is not None and self.name in rs.absent and self.name not in rs.handoffs:
                # Member but not get-visible (failed/mid-rejoin): a stale
                # rule routed the get here — e.g. the controller crashed
                # before the post-failure flow-mods landed.  The local
                # store may be arbitrarily behind; forward to the primary.
                yield from self._forward_get(partition, body)
                if span is not None:
                    span.end(status="forwarded_joining")
                return
            obj = self.store.get(key)
            if obj is not None and not self.store.verify(obj):
                # Bit-rot (§5k): never serve a value that fails its
                # checksum — read-repair from a consistent replica first.
                obj = yield from self._read_repair(key, rs)
                if obj is not None:
                    self.read_repairs.add()
        yield from self._reply_get(body, obj)
        if span is not None:
            span.end(status="ok" if obj is not None else "miss")

    def _forward_get(self, partition: int, body: dict):
        """Relay a get we must not answer to the partition's primary."""
        rs = self.replica_sets.get(partition)
        primary_ip = self._peer_ip(rs.primary) if rs else None
        if primary_ip is None:
            return
        self.gets_forwarded.add()
        yield self.stack.tcp.send_message(
            primary_ip,
            NODE_PORT,
            {"type": "get_forward", "request": body},
            REQUEST_BYTES,
        )

    def _reply_get(self, body: dict, obj: Optional[StoredObject]):
        self.gets_served.add()
        if obj is not None:
            yield self.disk.read(obj.size_bytes)
            reply = {
                "type": "get_reply",
                "op_id": tuple(body["op_id"]),
                "status": "ok",
                "value": obj.value,
                "size": obj.size_bytes,
            }
            size = REQUEST_BYTES + obj.size_bytes
        else:
            reply = {"type": "get_reply", "op_id": tuple(body["op_id"]), "status": "miss"}
            size = ACK_BYTES
        yield self.stack.tcp.send_message(
            IPv4Address(body["client_ip"]), body["client_port"], reply, size
        )

    # ------------------------------------------------------------------ node-to-node TCP
    def _node_loop(self):
        while True:
            msg = yield self._node_inbox.get()
            body = msg.payload or {}
            kind = body.get("type")
            if kind == "put_ack1":
                self._record_ack(tuple(body["op_id"]), body["node"], phase=1)
            elif kind == "put_ack2":
                self._record_ack(tuple(body["op_id"]), body["node"], phase=2)
            elif kind == "membership":
                if not self._fence_meta(body.get("epoch")):
                    self._on_membership(ReplicaSet.from_wire(body["replica_set"]))
            elif kind == "meta_leader":
                # A standby took over: re-point heartbeats and control.
                self._adopt_meta_leader(body.get("epoch"), body.get("ip"))
            elif kind == "rejoin_restart":
                # The new leader found us mid-rejoin in the replayed log:
                # our phase-1 state did not survive the takeover, so the
                # rejoin restarts from the beginning (§4.4 semantics hold:
                # we are still absent, hence not get-visible).
                if (
                    not self._fence_meta(body.get("epoch"))
                    and not self._rejoining
                    and self.host.up
                ):
                    self._adopt_meta_leader(body.get("epoch"), body.get("ip"))
                    self.sim.process(self._rejoin())
            elif kind == "get_forward":
                self.sim.process(self._on_get_forward(body["request"]))
            elif kind == "query_locks":
                self.sim.process(self._on_query_locks(msg, body))
            elif kind == "query_commit":
                self.sim.process(self._on_query_commit(msg, body))
            elif kind == "force_commit":
                self._apply_commit(tuple(body["op_id"]), body["stamp"])
            elif kind == "force_abort":
                self._apply_abort(tuple(body["op_id"]))
            elif kind == "fetch_handoff":
                self.sim.process(self._on_fetch_handoff(msg, body))
            elif kind == "fetch_partition":
                self.sim.process(self._on_fetch_partition(msg, body))
            elif kind == "fetch_object":
                self.sim.process(self._on_fetch_object(msg, body))

    def _record_ack(self, op_id: Tuple, node: str, phase: int) -> None:
        coord = self._coord.get(op_id)
        if coord is None:
            if op_id not in self._recently_committed:
                self._early_acks.setdefault(op_id, {}).setdefault(phase, set()).add(node)
            return
        bucket = coord.ack1 if phase == 1 else coord.ack2
        bucket.add(node)
        self._timeout_strikes.pop(node, None)
        ev = coord.ev1 if phase == 1 else coord.ev2
        if coord.need <= bucket and not ev.triggered:
            ev.succeed()

    def _on_membership(self, rs: ReplicaSet) -> None:
        old = self.replica_sets.get(rs.partition)
        self.replica_sets[rs.partition] = rs
        # Freshly added to this replica set (§4.4 Ring Re-Configuration):
        # catch up from the primary, then report consistency.
        if (
            self.name in rs.joining
            and (old is None or self.name not in old.members)
            and rs.primary != self.name
            and not self._rejoining
        ):
            self.sim.process(self._catch_up(rs))
        # Released from handoff duty: purge that partition's handoff objects.
        if old is not None and self.name in old.handoffs and self.name not in rs.handoffs:
            for obj in self.store.handoff_objects():
                if self.uni.subgroup_of_key(obj.name) == rs.partition:
                    self.store.drop_handoff(obj.name)
        # Newly promoted to primary: reconcile in-flight 2PC state (§4.4).
        if rs.primary == self.name and rs.partition not in self._was_primary:
            self._was_primary.add(rs.partition)
            self.sim.process(self._reconcile(rs))
        if rs.primary != self.name:
            self._was_primary.discard(rs.partition)

    def _on_get_forward(self, request: dict):
        obj = self.store.get(request["key"])
        self.gets_forwarded.add()
        yield from self._reply_get(request, obj)

    def _on_query_locks(self, msg, body: dict):
        partition = body["partition"]
        locked = [
            {
                "op_id": p.op_id,
                "key": p.key,
                "client_ip": p.client_ip,
                "client_ts": p.client_ts,
                "client_port": p.client_port,
            }
            for p in self._pending.values()
            if p.partition == partition
        ]
        # Crash-surviving log records count as locked operations too (§4.4:
        # "the persistent logs on the nodes will identify the latest puts").
        pending_ids = set(self._pending)
        for rec in self.wal.replay():
            if rec.partition == partition and rec.op_id not in pending_ids:
                locked.append(
                    {
                        "op_id": rec.op_id,
                        "key": rec.key,
                        "client_ip": rec.client_addr,
                        "client_ts": rec.client_ts,
                        "client_port": rec.client_port,
                    }
                )
        committed = dict(self._recently_committed)
        yield msg.conn.send(
            {
                "type": "query_locks_reply",
                "token": body["token"],
                "locked": locked,
                "committed": committed,
            },
            MEMBERSHIP_BYTES,
        )

    def _on_fetch_handoff(self, msg, body: dict):
        partition = body["partition"]
        yield from self._drain_partition_writes(partition)
        objs = [
            o
            for o in self.store.handoff_objects()
            if self.uni.subgroup_of_key(o.name) == partition
        ]
        total = sum(o.size_bytes for o in objs) + ACK_BYTES
        yield msg.conn.send(
            {
                "type": "handoff_data",
                "token": body["token"],
                "objects": [(o.name, o.value, o.size_bytes, o.stamp) for o in objs],
            },
            total,
        )

    def _drain_partition_writes(self, partition: int):
        """Hold a rejoin snapshot until in-flight puts for ``partition``
        have resolved (the §4.4 catch-up/commit race).

        A put fanned out *before* the joiner became put-visible has no
        joiner in its data multicast or 2PC round; if it commits after the
        snapshot is taken, the joiner never learns of it and serves stale
        reads once marked consistent.  The settle delay first lets such
        puts arrive — the switch keeps the old multicast group for up to
        the control-plane latency after the metadata decision — then the
        ops captured at that point (mid-prepare or pending) are waited
        out.  Puts arriving later include the joiner and are safe to omit.
        Bounded: unreachable participants abort theirs at the peer timeout.
        """
        settle = self.config.controller_latency_s + 4 * self.config.link_latency_s
        yield self.sim.timeout(settle)
        in_flight = {
            op for op, p in self._pending.items() if p.partition == partition
        }
        in_flight |= self._preparing.get(partition, set())
        deadline = self.sim.now + 2 * self.config.peer_timeout_s
        while in_flight and self.host.up and self.sim.now < deadline:
            yield self.sim.timeout(FETCH_DRAIN_POLL_S)
            in_flight = {
                op for op in in_flight
                if op in self._pending or op in self._preparing.get(partition, ())
            }

    def _on_fetch_partition(self, msg, body: dict):
        """Primary side of §4.4 node addition: ship every object in the
        partition's hash range to the new replica."""
        partition = body["partition"]
        yield from self._drain_partition_writes(partition)
        objs = [
            o
            for o in self.store.objects()
            if self.uni.subgroup_of_key(o.name) == partition
        ]
        total = sum(o.size_bytes for o in objs) + ACK_BYTES
        yield msg.conn.send(
            {
                "type": "partition_data",
                "token": body["token"],
                "objects": [(o.name, o.value, o.size_bytes, o.stamp) for o in objs],
            },
            total,
        )

    def _on_fetch_object(self, msg, body: dict):
        """Serve a peer's read-repair: ship our copy of one object, but
        only if it passes its own checksum — repair must never spread a
        second replica's rot."""
        obj = self.store.get(body["key"])
        good = obj is not None and self.store.verify(obj)
        if good:
            yield self.disk.read(obj.size_bytes)
        yield msg.conn.send(
            {
                "type": "object_data",
                "token": body["token"],
                "object": (obj.name, obj.value, obj.size_bytes, obj.stamp)
                if good
                else None,
            },
            (obj.size_bytes if good else 0) + ACK_BYTES,
        )

    def _read_repair(self, key: str, rs: ReplicaSet):
        """Replace a checksum-failing local copy from a consistent replica
        (§5k).  Returns the repaired object, or ``None`` when no peer
        could supply a verified copy — in which case the rotten version
        is dropped rather than ever served."""
        for peer in rs.get_targets():
            if peer == self.name:
                continue
            ip = self._peer_ip(peer)
            if ip is None:
                continue
            reply = yield from self._request(
                ip,
                {"type": "fetch_object", "key": key},
                REQUEST_BYTES,
                reply_type="object_data",
            )
            if reply is None or reply.get("object") is None:
                continue
            name, value, size, stamp = reply["object"]
            obj = StoredObject(name, value, size, stamp)
            yield self.disk.write(size, forced=True)
            self.store.repair(obj)
            self._volatile.pop(key, None)
            tr = self.sim.tracer
            if tr is not None:
                tr.instant("read_repair", "node", node=self.name, key=key,
                           source=peer)
            return obj
        self.store.drop(key)
        self._volatile.pop(key, None)
        return None

    def _scrub_loop(self):
        """Background scrubber (§5k, opt-in via ``scrub_interval_s``):
        walk the store on a cadence, re-verify every object checksum, and
        read-repair latent bit-rot before a client read ever trips on it."""
        while True:
            yield self.sim.timeout(self.config.scrub_interval_s)
            if not self.host.up:
                continue
            for key in self.store.names():
                if not self.host.up:
                    break
                obj = self.store.get(key)
                if obj is None:
                    continue
                self.scrub_scans.add()
                yield self.disk.read(obj.size_bytes)
                if self.store.verify(obj):
                    continue
                rs = self.replica_sets.get(self.uni.subgroup_of_key(key))
                if rs is None:
                    continue
                repaired = yield from self._read_repair(key, rs)
                if repaired is not None:
                    self.scrub_repairs.add()

    def _catch_up(self, rs: ReplicaSet):
        """New-replica catch-up: fetch the hash range from the primary,
        then tell the metadata service we are consistent."""
        primary_ip = self._peer_ip(rs.primary)
        if primary_ip is None:
            return
        data = yield from self._request(
            primary_ip,
            {"type": "fetch_partition", "partition": rs.partition},
            REQUEST_BYTES,
            reply_type="partition_data",
        )
        if data is None:
            return  # primary unreachable: stay put-only; retry on next slice
        for name, value, size, stamp in data["objects"]:
            yield self.disk.write(size, forced=True)
            self.store.put(StoredObject(name, value, size, stamp))
        yield from self._request_meta(
            {"type": "consistent", "node": self.name}, reply_type="consistent_ack"
        )

    # ------------------------------------------------------------------ failover reconciliation
    def _on_query_commit(self, msg, body: dict):
        """Report commit evidence for one client attempt: does our store
        hold a version committed from that exact (client, timestamp) put?"""
        stamp = self._store_commit_evidence(body["key"], body["client_ip"], body["client_ts"])
        yield msg.conn.send(
            {"type": "query_commit_reply", "token": body["token"], "stamp": stamp},
            ACK_BYTES,
        )

    def _store_commit_evidence(self, key: str, client_ip: str, client_ts: float):
        obj = self.store.get(key) or self.store.get_handoff(key)
        if (
            obj is not None
            and obj.stamp is not None
            and obj.stamp.client_addr == client_ip
            and obj.stamp.client_ts == client_ts
        ):
            return obj.stamp
        return None

    def _reconcile(self, rs: ReplicaSet):
        """New-primary lock reconciliation (§4.4, Failures during Put).

        Gathers locked operations from live 2PC state *and* from the
        crash-surviving write-ahead logs (complete-cluster-failure case),
        then applies the paper's rule: committed anywhere ⇒ commit
        everywhere; otherwise abort.
        """
        peers = [n for n in rs.secondaries() if self._peer_ip(n) is not None]
        locked: Dict[Tuple, dict] = {}
        locked_on: Dict[Tuple, Set[str]] = {}
        committed: Dict[Tuple, PutStamp] = dict(self._recently_committed)
        for pend in self._pending.values():
            if pend.partition == rs.partition:
                locked[pend.op_id] = {
                    "key": pend.key,
                    "client_ip": pend.client_ip,
                    "client_ts": pend.client_ts,
                }
                locked_on.setdefault(pend.op_id, set()).add(self.name)
        for rec in self.wal.replay():
            if rec.partition == rs.partition and rec.op_id not in locked:
                locked[rec.op_id] = {
                    "key": rec.key,
                    "client_ip": rec.client_addr,
                    "client_ts": rec.client_ts,
                }
                locked_on.setdefault(rec.op_id, set()).add(self.name)
        for peer in peers:
            reply = yield from self._request(
                self._peer_ip(peer),
                {"type": "query_locks", "partition": rs.partition},
                REQUEST_BYTES,
                reply_type="query_locks_reply",
            )
            if reply is None:
                continue
            for entry in reply["locked"]:
                op = tuple(entry["op_id"])
                locked.setdefault(op, entry)
                locked_on.setdefault(op, set()).add(peer)
            for op, stamp in reply["committed"].items():
                committed[tuple(op)] = stamp
        for op, info in locked.items():
            stamp = committed.get(op)
            if stamp is None:
                # Crash path: look for a committed version in the stores.
                stamp = self._store_commit_evidence(
                    info["key"], info["client_ip"], info["client_ts"]
                )
            if stamp is None:
                for peer in peers:
                    reply = yield from self._request(
                        self._peer_ip(peer),
                        {"type": "query_commit", **info},
                        REQUEST_BYTES,
                        reply_type="query_commit_reply",
                    )
                    if reply is not None and reply.get("stamp") is not None:
                        stamp = reply["stamp"]
                        break
            if stamp is not None:
                # Committed somewhere: the old primary had committed — the
                # object may have been served already, so commit everywhere.
                self._apply_commit(op, stamp)
                body = {"type": "force_commit", "op_id": op, "stamp": stamp}
            else:
                self._apply_abort(op)
                body = {"type": "force_abort", "op_id": op}
            for peer in peers:
                # Bounded: a peer that became unreachable mid-reconcile
                # must not wedge the remaining force decisions.
                send = self.stack.tcp.send_message(
                    self._peer_ip(peer), NODE_PORT, dict(body), ACK_BYTES
                )
                yield AnyOf(
                    self.sim, [send, self.sim.timeout(self.config.peer_timeout_s)]
                )

    def _request(
        self,
        ip: IPv4Address,
        body: dict,
        size: int,
        reply_type: str,
        wait_s: Optional[float] = None,
    ):
        """Request/response over the node TCP port with a timeout.

        Both halves are bounded: the *send* can wedge on an unreachable
        peer (e.g. a handoff inside an isolated rack that nobody has
        declared failed yet), not just the reply.
        """
        wait = wait_s if wait_s is not None else self.config.peer_timeout_s
        token = (self.name, next(self._token_seq))
        body = dict(body, token=token)
        send = self.stack.tcp.send_message(ip, NODE_PORT, body, size)
        got = yield AnyOf(self.sim, [send, self.sim.timeout(wait)])
        if send not in got:
            return None
        conn = got[send]
        get = conn.inbox.get(
            lambda m: (m.payload or {}).get("token") == token
            and m.payload.get("type") == reply_type
        )
        got = yield AnyOf(self.sim, [get, self.sim.timeout(wait)])
        if get in got:
            return got[get].payload
        conn.inbox.cancel(get)
        return None

    # ------------------------------------------------------------------ failure reporting
    def _strike(self, peer: str):
        """Two consecutive timeouts on a peer ⇒ report it failed (§4.4)."""
        self._timeout_strikes[peer] = self._timeout_strikes.get(peer, 0) + 1
        if self._timeout_strikes[peer] >= 2:
            self._timeout_strikes[peer] = 0
            body = {"type": "report_failure", "suspect": peer, "reporter": self.name}
            # Bounded send with target failover: the report must not wedge
            # this process forever on a dead metadata leader.
            for _ in range(max(2, len(self.metadata_ips))):
                target = self.metadata_ip
                send = self.stack.tcp.send_message(target, META_PORT, body, REQUEST_BYTES)
                got = yield AnyOf(
                    self.sim, [send, self.sim.timeout(self.config.peer_timeout_s * 2)]
                )
                if send in got:
                    return
                self._fail_over_meta(target)

    # ------------------------------------------------------------------ heartbeats & stats
    def _heartbeat_loop(self):
        while True:
            yield self.sim.timeout(self.config.heartbeat_interval_s)
            if not self.host.up:
                continue
            stats = {p: sorted(c) for p, c in self._clients_seen.items()}
            self._clients_seen.clear()
            # Fail-slow detector (§5k): strikes accumulate while the
            # observed/nominal disk service-time ratio holds at or above
            # the threshold; one healthy window clears them (hysteresis).
            # Piggybacks the existing heartbeat — payload keys ride in the
            # same HEARTBEAT_BYTES datagram, so timing is unchanged.
            ratio = self.disk.consume_service_ratio()
            if ratio is not None:
                if ratio >= self.config.failslow_threshold:
                    self._slow_strikes += 1
                    if self._slow_strikes >= self.config.failslow_strikes:
                        self.failslow = True
                else:
                    self._slow_strikes = 0
                    self.failslow = False
            # Bound the volatile-object map: entries at or below the flush
            # barrier are durable and no longer need tracking.
            if self._volatile:
                barrier = self.disk.durable_seq
                for key in [k for k, s in self._volatile.items() if s <= barrier]:
                    del self._volatile[key]
            self.stack.udp_send(
                self.metadata_ip,
                META_PORT,
                {
                    "type": "hb",
                    "node": self.name,
                    "stats": stats,
                    "disk_slow": self.failslow,
                    "disk_ratio": 1.0 if ratio is None else ratio,
                },
                HEARTBEAT_BYTES,
            )

    # ------------------------------------------------------------------ rejoin (§4.4)
    def _rejoin(self):
        """Contact the metadata service, fetch what we missed, report
        consistency.  Returns the number of objects recovered.

        Phase 1 (``rejoin``) must succeed before anything else happens: a
        node that never became put-visible must not report ``consistent``
        (it would be made get-visible with an arbitrarily stale store).
        The request retries with backoff — the metadata leader may be
        failing over, or deferring us while its switch channel is down.
        """
        self._rejoining = True
        try:
            reply = None
            for _ in range(8):
                reply = yield from self._request_meta(
                    {"type": "rejoin", "node": self.name}, reply_type="rejoin_ack"
                )
                if reply is not None or not self.host.up:
                    break
                yield self.sim.timeout(self.config.peer_timeout_s)
            if reply is None:
                return 0
            self._fence_meta(reply.get("epoch"))
            recovered = 0
            for wire in reply.get("replica_sets") or []:
                self._on_membership(ReplicaSet.from_wire(wire))
            for partition, handoffs in (reply.get("handoffs") or {}).items():
                for handoff in handoffs:
                    ip = self._peer_ip(handoff)
                    if ip is None:
                        continue
                    data = yield from self._request(
                        ip,
                        {"type": "fetch_handoff", "partition": partition},
                        REQUEST_BYTES,
                        reply_type="handoff_data",
                    )
                    if data is None:
                        continue
                    for name, value, size, stamp in data["objects"]:
                        yield self.disk.write(size, forced=True)
                        self.store.put(StoredObject(name, value, size, stamp))
                        recovered += 1
            # Partitions whose handoff chain broke while we were away
            # (correlated failures can kill the stand-in too): the
            # incremental handoff fetch cannot cover the gap, so pull the
            # whole partition from the acting primary.  The server-side
            # drain holds the snapshot until in-flight 2PC rounds that
            # predate our put-visibility have resolved.
            for partition in reply.get("full_fetch") or ():
                rs = self.replica_sets.get(partition)
                if rs is None or rs.primary == self.name:
                    continue
                ip = self._peer_ip(rs.primary)
                if ip is None:
                    continue
                data = None
                for _ in range(2):
                    data = yield from self._request(
                        ip,
                        {"type": "fetch_partition", "partition": partition},
                        REQUEST_BYTES,
                        reply_type="partition_data",
                        wait_s=self.config.peer_timeout_s * 3,
                    )
                    if data is not None or not self.host.up:
                        break
                if data is None:
                    continue
                for name, value, size, stamp in data["objects"]:
                    yield self.disk.write(size, forced=True)
                    self.store.put(StoredObject(name, value, size, stamp))
                    recovered += 1
            # ``complete_rejoin`` is idempotent on the service side, so
            # retrying a lost ack is safe.
            for _ in range(3):
                ack = yield from self._request_meta(
                    {"type": "consistent", "node": self.name},
                    reply_type="consistent_ack",
                )
                if ack is not None:
                    break
            return recovered
        finally:
            self._rejoining = False

    def _request_meta(self, body: dict, reply_type: str):
        """One metadata request/response, with control-target failover.

        Copes with three failure shapes: the send wedging on a dead leader
        (bounded, then ``reset_peer`` + rotate targets), a standby
        redirecting us to the leader it follows (``meta_redirect``), and a
        live leader deferring the request (``retry_later`` — e.g. a rejoin
        while the controller channel is down and visibility flow-mods
        cannot be staged).
        """
        accept = (reply_type, "meta_redirect", "retry_later")
        wait = self.config.peer_timeout_s * 4
        attempts = 2 * max(1, len(self.metadata_ips))
        patience = 12
        while attempts > 0 and patience > 0:
            target = self.metadata_ip
            send = self.stack.tcp.send_message(target, META_PORT, body, REQUEST_BYTES)
            got = yield AnyOf(self.sim, [send, self.sim.timeout(wait)])
            if send not in got:
                attempts -= 1
                self._fail_over_meta(target)
                continue
            conn = got[send]
            get = conn.inbox.get(lambda m: (m.payload or {}).get("type") in accept)
            got = yield AnyOf(self.sim, [get, self.sim.timeout(wait)])
            if get not in got:
                conn.inbox.cancel(get)
                attempts -= 1
                self._fail_over_meta(target)
                continue
            payload = got[get].payload or {}
            kind = payload.get("type")
            if kind == reply_type:
                return payload
            patience -= 1
            if kind == "meta_redirect":
                self._adopt_meta_leader(payload.get("epoch"), payload.get("ip"))
                continue
            # retry_later: the leader is up but cannot act yet.
            yield self.sim.timeout(self.config.peer_timeout_s)
        return None
