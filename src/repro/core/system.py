"""NICE cluster builder: wires the full system of Figure 1.

Storage nodes, client nodes and the metadata service hang off an
OpenFlow-enabled switch; the metadata service's controller module installs
the vring mappings.  The builder mirrors the §6 deployment: one metadata
node, ``n_storage_nodes`` storage servers, ``n_clients`` client machines,
1 Gbps links.

Client IPs are spread evenly across the client address space so the §4.5
source-prefix load balancer sees a realistic client population.
"""

from __future__ import annotations

from typing import Dict, List

from ..net import (
    ControlPlane,
    Host,
    IPv4Address,
    MacAddress,
    Network,
    OpenFlowSwitch,
)
from ..sim import RngRegistry, Simulator
from ..transport import ProtocolStack
from .client import NiceClient
from .config import ClusterConfig
from .controller import NiceControllerApp
from .membership import PartitionMap
from .metadata import MetadataService
from .storage_node import NiceStorageNode
from .vring import VirtualRing

__all__ = ["NiceCluster"]

#: Physical address plan.
STORAGE_BASE = IPv4Address("10.0.0.1")
METADATA_IP = IPv4Address("10.0.0.250")
_MAC_BASE = 0x020000000100


class NiceCluster:
    """A fully-wired NICEKV deployment inside one simulator."""

    def __init__(self, config: ClusterConfig = None, sim: Simulator = None):
        self.config = config or ClusterConfig()
        cfg = self.config
        self.sim = sim or Simulator()
        self.rng = RngRegistry(cfg.seed)
        self.network = Network(self.sim)
        self.switch = OpenFlowSwitch(
            self.sim, "sw0", lookup_latency_s=cfg.switch_lookup_latency_s
        )
        self.network.register(self.switch)
        #: Client-side Open vSwitches (§5.1 "ovs" deployment; empty for "hw").
        self.edge_switches = []

        self.uni_vring = VirtualRing(cfg.unicast_vring, cfg.n_partitions)
        self.mc_vring = VirtualRing(cfg.multicast_vring, cfg.n_partitions)

        node_names = [f"n{i}" for i in range(cfg.n_storage_nodes)]
        self.partition_map = PartitionMap.build(
            node_names,
            cfg.n_partitions,
            cfg.replication_level,
            ring_points_per_node=cfg.ring_points_per_node,
        )

        self.controller = NiceControllerApp(
            cfg, self.partition_map, self.uni_vring, self.mc_vring
        )
        self.control_plane = ControlPlane(
            self.sim, self.controller, latency_s=cfg.controller_latency_s
        )
        self.control_plane.attach(self.switch)
        # §5.1: the CloudLab hardware switch forwards and multicasts but
        # cannot modify destination addresses — the edge OVSes do that.
        self.controller.register_switch(
            self.switch, role="core", can_rewrite=(cfg.deployment == "hw")
        )

        # -- hosts ---------------------------------------------------------
        self.directory: Dict[str, IPv4Address] = {}
        mac = _MAC_BASE
        storage_hosts: List[Host] = []
        for i, name in enumerate(node_names):
            host = Host(self.sim, name, STORAGE_BASE + i, MacAddress(mac))
            mac += 1
            self.network.register(host)
            self.network.connect(
                self.switch, host, cfg.link_bandwidth_bps, cfg.link_latency_s
            )
            self.controller.register_host(name, host.ip, host.mac)
            self.directory[name] = host.ip
            storage_hosts.append(host)

        meta_host = Host(self.sim, "meta", METADATA_IP, MacAddress(mac))
        mac += 1
        self.network.register(meta_host)
        self.network.connect(
            self.switch, meta_host, cfg.link_bandwidth_bps, cfg.link_latency_s
        )
        self.controller.register_host("meta", meta_host.ip, meta_host.mac)

        client_hosts: List[Host] = []
        stride = max(1, cfg.client_space.num_addresses // max(cfg.n_clients, 1))
        for i in range(cfg.n_clients):
            ip = cfg.client_space.address + (i * stride) % cfg.client_space.num_addresses
            host = Host(self.sim, f"c{i}", ip, MacAddress(mac))
            mac += 1
            self.network.register(host)
            self.controller.register_host(f"c{i}", host.ip, host.mac)
            if cfg.deployment == "ovs":
                # Client-side Open vSwitch between the client and the fabric.
                ovs = OpenFlowSwitch(
                    self.sim, f"ovs{i}", lookup_latency_s=cfg.switch_lookup_latency_s
                )
                self.network.register(ovs)
                self.network.connect(ovs, host, cfg.link_bandwidth_bps, cfg.link_latency_s)
                uplink = self.network.connect(
                    self.switch, ovs, cfg.link_bandwidth_bps, cfg.link_latency_s
                )
                uplink_port = (uplink.a if uplink.a.device is ovs else uplink.b).number
                self.control_plane.attach(ovs)
                self.controller.register_switch(
                    ovs, role="edge", can_rewrite=True,
                    client_ip=host.ip, uplink_port=uplink_port,
                )
                self.edge_switches.append(ovs)
            else:
                self.network.connect(
                    self.switch, host, cfg.link_bandwidth_bps, cfg.link_latency_s
                )
            client_hosts.append(host)

        # -- control plane bootstrap ----------------------------------------
        self.controller.discover_topology(self.network)
        self.controller.install_static_rules()
        self.controller.sync_all()

        # -- services ----------------------------------------------------------
        meta_stack = ProtocolStack(self.sim, meta_host)
        self.metadata = MetadataService(
            self.sim, meta_stack, cfg, self.partition_map, self.controller
        )

        self.nodes: Dict[str, NiceStorageNode] = {}
        for host, name in zip(storage_hosts, node_names):
            node = NiceStorageNode(
                self.sim,
                host,
                name,
                cfg,
                self.uni_vring,
                self.mc_vring,
                METADATA_IP,
                self.directory,
                rng=self.rng.stream(f"mc-loss:{name}") if cfg.multicast_chunk_loss else None,
            )
            self.metadata.register_node(name)
            for rs in self.partition_map.partitions_of(name):
                node.install_replica_set(rs)
            self.nodes[name] = node

        self.clients: List[NiceClient] = [
            NiceClient(self.sim, host, cfg, self.uni_vring, self.mc_vring)
            for host in client_hosts
        ]

    # -- conveniences -------------------------------------------------------------
    def warm_up(self, duration: float = 0.05) -> None:
        """Let flow-mods land and heartbeats start before measuring."""
        self.sim.run(until=self.sim.now + duration)

    def run(self, until: float = None) -> float:
        return self.sim.run(until=until)

    def node_of_partition(self, partition: int) -> NiceStorageNode:
        """The current acting primary of ``partition``."""
        return self.nodes[self.partition_map.get(partition).primary]

    def replica_nodes(self, key: str) -> List[NiceStorageNode]:
        """Replica set (primary first) currently serving ``key``'s partition."""
        partition = self.uni_vring.subgroup_of_key(key)
        rs = self.partition_map.get(partition)
        return [self.nodes[n] for n in rs.get_targets() if n in self.nodes]

    def reset_measurements(self) -> None:
        self.network.reset_link_counters()
        for host in self.network.devices.values():
            if isinstance(host, Host):
                host.tx_bytes.reset()
                host.rx_bytes.reset()
