"""NICE cluster builder: wires the full system of Figure 1.

Storage nodes, client nodes and the metadata service hang off an
OpenFlow-enabled switch; the metadata service's controller module installs
the vring mappings.  The builder mirrors the §6 deployment: one metadata
node, ``n_storage_nodes`` storage servers, ``n_clients`` client machines,
1 Gbps links.

Client IPs are spread evenly across the client address space so the §4.5
source-prefix load balancer sees a realistic client population.
"""

from __future__ import annotations

from typing import Dict, List

from ..net import (
    ControlPlane,
    HarmoniaRegistry,
    Host,
    IPv4Address,
    IPv4Network,
    LeafSpineFabric,
    MacAddress,
    Network,
    OpenFlowSwitch,
)
from ..sim import RngRegistry, Simulator
from ..transport import ProtocolStack
from .client import NiceClient
from .config import ClusterConfig, META_PORT, NODE_PORT
from .controller import NiceControllerApp
from .controlplane_ha import ControlPlaneHA, MetadataReplica
from .membership import PartitionMap, ReplicaSet
from .metadata import MetadataService
from .storage_node import NiceStorageNode
from .vring import VirtualRing

__all__ = ["NiceCluster"]

#: Physical address plan.
STORAGE_BASE = IPv4Address("10.0.0.1")
METADATA_IP = IPv4Address("10.0.0.250")
_MAC_BASE = 0x020000000100


class NiceCluster:
    """A fully-wired NICEKV deployment inside one simulator."""

    def __init__(self, config: ClusterConfig = None, sim: Simulator = None):
        self.config = config or ClusterConfig()
        cfg = self.config
        self.sim = sim or Simulator()
        if cfg.sim_mode == "approx":
            # Flow-approximation mode (DESIGN.md §5g): the data plane is
            # aggregated analytically at the links; everything addressed to
            # (or sent from) the protocol-critical ports stays discrete.
            self.sim.approx_mode = True
            self.sim.approx_exempt_ports = frozenset((NODE_PORT, META_PORT))
        self.rng = RngRegistry(cfg.seed)
        self.network = Network(self.sim)
        if cfg.n_racks > 1:
            #: Leaf–spine fabric (DESIGN.md §5h).  ``self.switch`` stays
            #: meaningful as "rack 0's access switch" for legacy callers.
            self.fabric = LeafSpineFabric(
                self.sim,
                self.network,
                cfg.n_racks,
                cfg.n_spines,
                lookup_latency_s=cfg.switch_lookup_latency_s,
                table_capacity=cfg.switch_rule_budget,
                link_bandwidth_bps=cfg.link_bandwidth_bps,
                link_latency_s=cfg.link_latency_s,
            )
            self.switch = self.fabric.leaves[0]
        else:
            self.fabric = None
            self.switch = OpenFlowSwitch(
                self.sim, "sw0", lookup_latency_s=cfg.switch_lookup_latency_s
            )
            self.network.register(self.switch)
        #: Client-side Open vSwitches (§5.1 "ovs" deployment; empty for "hw").
        self.edge_switches = []

        self.uni_vring = VirtualRing(cfg.unicast_vring, cfg.n_partitions)
        self.mc_vring = VirtualRing(cfg.multicast_vring, cfg.n_partitions)

        #: Shared dirty-set registry in Harmonia mode (DESIGN.md §5j);
        #: None keeps every switch on the untouched NICE read path.
        self.harmonia = None
        if cfg.protocol_mode != "nice":
            self.harmonia = HarmoniaRegistry(
                self.uni_vring, weak=(cfg.protocol_mode == "harmonia-weak")
            )
            core = self.fabric.switches if self.fabric is not None else [self.switch]
            for sw in core:
                sw._harmonia = self.harmonia

        node_names = [f"n{i}" for i in range(cfg.n_storage_nodes)]
        per_rack = -(-cfg.n_storage_nodes // cfg.n_racks)
        #: node name -> rack index (all rack 0 in the single-switch default).
        self.rack_of = {name: i // per_rack for i, name in enumerate(node_names)}
        partition_map = PartitionMap.build(
            node_names,
            cfg.n_partitions,
            cfg.replication_level,
            ring_points_per_node=cfg.ring_points_per_node,
            racks=self.rack_of if cfg.n_racks > 1 else None,
        )

        self.controller = NiceControllerApp(
            cfg, partition_map, self.uni_vring, self.mc_vring
        )
        self.controller.harmonia = self.harmonia
        self.control_plane = ControlPlane(
            self.sim, self.controller, latency_s=cfg.controller_latency_s
        )
        if self.fabric is not None:
            for rack, leaf in enumerate(self.fabric.leaves):
                self.control_plane.attach(leaf)
                self.controller.register_switch(leaf, role="leaf", rack=rack)
            for spine in self.fabric.spines:
                self.control_plane.attach(spine)
                self.controller.register_switch(
                    spine, role="spine", can_rewrite=False
                )
            # Rack address blocks: the units of spine-side aggregation.
            client_subnets = self._client_subnets()
            for rack in range(cfg.n_racks):
                self.controller.register_rack_prefix(
                    rack, IPv4Network(f"10.0.{rack}.0/24")
                )
                self.controller.register_rack_prefix(rack, client_subnets[rack])
        else:
            self.control_plane.attach(self.switch)
            # §5.1: the CloudLab hardware switch forwards and multicasts but
            # cannot modify destination addresses — the edge OVSes do that.
            self.controller.register_switch(
                self.switch, role="core", can_rewrite=(cfg.deployment == "hw")
            )

        # -- hosts ---------------------------------------------------------
        self.directory: Dict[str, IPv4Address] = {}
        mac = _MAC_BASE
        storage_hosts: List[Host] = []
        rack_fill: Dict[int, int] = {}
        for i, name in enumerate(node_names):
            if self.fabric is not None:
                rack = self.rack_of[name]
                slot = rack_fill.get(rack, 0)
                rack_fill[rack] = slot + 1
                ip = IPv4Address(f"10.0.{rack}.1") + slot
            else:
                ip = STORAGE_BASE + i
            host = Host(self.sim, name, ip, MacAddress(mac))
            mac += 1
            self.network.register(host)
            self._attach(host, self.rack_of[name])
            self.controller.register_host(name, host.ip, host.mac)
            self.directory[name] = host.ip
            storage_hosts.append(host)

        # The metadata service (and its standbys) lives in rack 0, inside
        # rack 0's 10.0.0.0/24 block.
        meta_host = Host(self.sim, "meta", METADATA_IP, MacAddress(mac))
        mac += 1
        self.network.register(meta_host)
        self._attach(meta_host, 0)
        self.controller.register_host("meta", meta_host.ip, meta_host.mac)

        standby_hosts: List[Host] = []
        for i in range(1, cfg.metadata_standbys + 1):
            standby = Host(self.sim, f"meta{i}", METADATA_IP + i, MacAddress(mac))
            mac += 1
            self.network.register(standby)
            self._attach(standby, 0)
            self.controller.register_host(f"meta{i}", standby.ip, standby.mac)
            standby_hosts.append(standby)

        client_hosts: List[Host] = []
        stride = max(1, cfg.client_space.num_addresses // max(cfg.n_clients, 1))
        for i in range(cfg.n_clients):
            if self.fabric is not None:
                # Round-robin clients over racks, packed into each rack's
                # client subnet so client traffic aggregates per rack too.
                client_rack = i % cfg.n_racks
                ip = client_subnets[client_rack].address + 1 + (i // cfg.n_racks)
            else:
                client_rack = 0
                ip = cfg.client_space.address + (i * stride) % cfg.client_space.num_addresses
            host = Host(self.sim, f"c{i}", ip, MacAddress(mac))
            mac += 1
            self.network.register(host)
            self.controller.register_host(f"c{i}", host.ip, host.mac)
            if cfg.deployment == "ovs":
                # Client-side Open vSwitch between the client and the fabric.
                ovs = OpenFlowSwitch(
                    self.sim, f"ovs{i}", lookup_latency_s=cfg.switch_lookup_latency_s
                )
                self.network.register(ovs)
                self.network.connect(ovs, host, cfg.link_bandwidth_bps, cfg.link_latency_s)
                uplink = self.network.connect(
                    self.switch, ovs, cfg.link_bandwidth_bps, cfg.link_latency_s
                )
                uplink_port = (uplink.a if uplink.a.device is ovs else uplink.b).number
                self.control_plane.attach(ovs)
                self.controller.register_switch(
                    ovs, role="edge", can_rewrite=True,
                    client_ip=host.ip, uplink_port=uplink_port,
                )
                if self.harmonia is not None:
                    ovs._harmonia = self.harmonia
                self.edge_switches.append(ovs)
            else:
                self._attach(host, client_rack)
            client_hosts.append(host)

        # -- control plane bootstrap ----------------------------------------
        self.controller.discover_topology(self.network)
        self.controller.install_static_rules()
        self.controller.sync_all()

        # -- services ----------------------------------------------------------
        if cfg.metadata_standbys > 0:
            # HA mode: the replicas own the metadata sockets and the
            # membership log; rank 0 leads at epoch 1.
            self.metadata_ha = ControlPlaneHA(self.sim, cfg, self.controller)
            primary = MetadataReplica(
                self.sim, meta_host, cfg, self.controller, self.metadata_ha, rank=0
            )
            self.metadata = primary.lead(partition_map, epoch=1)
            for i, standby in enumerate(standby_hosts, start=1):
                MetadataReplica(
                    self.sim, standby, cfg, self.controller, self.metadata_ha, rank=i
                )
            self.metadata_ha.finalize()
            meta_targets = [METADATA_IP] + [h.ip for h in standby_hosts]
        else:
            self.metadata_ha = None
            meta_stack = ProtocolStack(self.sim, meta_host)
            self.metadata = MetadataService(
                self.sim, meta_stack, cfg, partition_map, self.controller
            )
            meta_targets = [METADATA_IP]

        self.nodes: Dict[str, NiceStorageNode] = {}
        # One pass over the map instead of O(nodes × partitions) scans of
        # partitions_of() — at 20×50 the repeated scans dominated build time.
        member_of: Dict[str, List[ReplicaSet]] = {name: [] for name in node_names}
        for rs in partition_map:
            for member in dict.fromkeys([*rs.members, *rs.handoffs]):
                if member in member_of:
                    member_of[member].append(rs)
        for host, name in zip(storage_hosts, node_names):
            node = NiceStorageNode(
                self.sim,
                host,
                name,
                cfg,
                self.uni_vring,
                self.mc_vring,
                meta_targets,
                self.directory,
                rng=self.rng.stream(f"mc-loss:{name}") if cfg.multicast_chunk_loss else None,
            )
            self.metadata.register_node(name)
            for rs in member_of[name]:
                if cfg.metadata_standbys > 0:
                    # A private copy per node: a deposed leader replaying
                    # old state must not be able to mutate node views
                    # through shared objects (epoch fencing guards the
                    # message path; this guards the reference path).
                    rs = ReplicaSet.from_wire(rs.to_wire())
                node.install_replica_set(rs)
            self.nodes[name] = node

        self.clients: List[NiceClient] = [
            NiceClient(self.sim, host, cfg, self.uni_vring, self.mc_vring)
            for host in client_hosts
        ]

    # -- topology helpers ---------------------------------------------------------
    def _attach(self, host: Host, rack: int):
        """Wire a host to its access switch (the rack's leaf, or ``sw0``)."""
        cfg = self.config
        if self.fabric is not None:
            return self.fabric.attach_host(
                host, rack, cfg.link_bandwidth_bps, cfg.link_latency_s
            )
        return self.network.connect(
            self.switch, host, cfg.link_bandwidth_bps, cfg.link_latency_s
        )

    def _client_subnets(self) -> List[IPv4Network]:
        """The per-rack client blocks: the first ``n_racks`` subnets of the
        client space after a power-of-two split."""
        cfg = self.config
        blocks = 1
        while blocks < cfg.n_racks:
            blocks *= 2
        plen = cfg.client_space.prefixlen + (blocks.bit_length() - 1)
        return list(cfg.client_space.subnets(plen))[: cfg.n_racks]

    @property
    def switches(self) -> list:
        """Every data-plane switch: fabric (or sw0), then client edges."""
        core = self.fabric.switches if self.fabric is not None else [self.switch]
        return [*core, *self.edge_switches]

    # -- conveniences -------------------------------------------------------------
    @property
    def partition_map(self) -> PartitionMap:
        """The authoritative map: the acting leader rebinds the controller's
        reference on takeover, so reading through it always sees the
        current leader's copy."""
        return self.controller.partition_map

    @property
    def metadata_active(self) -> MetadataService:
        """The acting metadata leader (falls back to the build-time
        primary when no HA replica currently leads)."""
        if self.metadata_ha is not None:
            service = self.metadata_ha.active_service
            if service is not None:
                return service
        return self.metadata

    def warm_up(self, duration: float = 0.05) -> None:
        """Let flow-mods land and heartbeats start before measuring."""
        self.sim.run(until=self.sim.now + duration)

    def run(self, until: float = None) -> float:
        return self.sim.run(until=until)

    def node_of_partition(self, partition: int) -> NiceStorageNode:
        """The current acting primary of ``partition``."""
        return self.nodes[self.partition_map.get(partition).primary]

    def replica_nodes(self, key: str) -> List[NiceStorageNode]:
        """Replica set (primary first) currently serving ``key``'s partition."""
        partition = self.uni_vring.subgroup_of_key(key)
        rs = self.partition_map.get(partition)
        return [self.nodes[n] for n in rs.get_targets() if n in self.nodes]

    def reset_measurements(self) -> None:
        self.network.reset_link_counters()
        for host in self.network.devices.values():
            if isinstance(host, Host):
                host.tx_bytes.reset()
                host.rx_bytes.reset()
