"""NOOB storage node: end-host replication over point-to-point TCP (§2.1).

Everything the network does for NICE happens here in server code: the
primary fans the object out over R−1 unicast TCP connections (primary-only
and quorum modes), or runs two explicit 2PC rounds, or pushes the object
down a replication chain [43].  The node keeps *full membership* — the
complete partition map — as production NOOB systems do (§2.1), so any node
can forward a misdirected request (the ROG extra hop).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..core.config import ACK_BYTES, CLIENT_PORT, COMMIT_BYTES, NODE_PORT, REQUEST_BYTES
from ..core.membership import PartitionMap
from ..kv import (
    ConsistentHashRing,
    Disk,
    LockTable,
    LogRecord,
    ObjectStore,
    PutStamp,
    StoredObject,
    WriteAheadLog,
    key_hash,
)
from ..net import Host, IPv4Address
from ..sim import AllOf, AnyOf, Counter, Event, Resource, Simulator
from ..transport import ProtocolStack
from .config import NoobConfig

__all__ = ["NoobStorageNode"]


class NoobStorageNode:
    """One NOOB storage server."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        name: str,
        config: NoobConfig,
        partition_map: PartitionMap,
        directory: Dict[str, IPv4Address],
    ):
        self.sim = sim
        self.host = host
        self.name = name
        self.config = config
        #: Full membership (§2.1): the complete map, not an O(R) slice.
        self.partition_map = partition_map
        self.directory = directory
        self.stack = ProtocolStack(sim, host)
        self.cpu = Resource(sim, capacity=1, name=f"{name}.cpu")
        self.disk = Disk(sim, name=f"{name}.disk")
        self.store = ObjectStore()
        self.wal = WriteAheadLog(self.disk)
        self.locks = LockTable()
        self._inbox = self.stack.tcp.listen(NODE_PORT)
        self._token_seq = itertools.count(1)
        self.puts_served = Counter(f"{name}.puts")
        self.gets_served = Counter(f"{name}.gets")
        self.forwards = Counter(f"{name}.forwards")
        self.membership_updates = Counter(f"{name}.membership_updates")
        sim.process(self._serve_loop())

    @property
    def ip(self) -> IPv4Address:
        return self.host.ip

    # -- failure injection -------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: NIC dark, volatile 2PC state lost; the object store
        and WAL survive (they model the disk, as in the NICE node)."""
        self.host.fail()
        self.locks.clear()
        if hasattr(self, "_pending_value"):
            self._pending_value.clear()

    def restart(self) -> None:
        """Power back on.  NOOB has no staged rejoin (§2.1): the node
        serves again immediately with whatever (possibly stale) data it
        holds — the gap the chaos consistency checker exists to expose."""
        self.host.recover()

    # -- helpers -----------------------------------------------------------------
    def partition_of(self, key: str) -> int:
        return ConsistentHashRing.partition_of_hash(key_hash(key), len(self.partition_map))

    def replicas_of(self, key: str) -> List[str]:
        rs = self.partition_map.get(self.partition_of(key))
        return [rs.primary] + [m for m in rs.members if m != rs.primary]

    def _send(self, ip: IPv4Address, body: dict, size: int) -> Event:
        return self.stack.tcp.send_message(ip, NODE_PORT, body, size)

    def _cpu_work(self):
        """One request's worth of CPU service time (serialized per node)."""
        cost = self.config.node_cpu_per_op_s
        if cost <= 0:
            return
        req = self.cpu.request()
        yield req
        try:
            yield self.sim.timeout(cost)
        finally:
            req.release()

    def _reply_client(self, request: dict, body: dict, size: int) -> None:
        self.stack.tcp.send_message(
            IPv4Address(request["client_ip"]), request["client_port"], body, size
        )

    # -- dispatch --------------------------------------------------------------------
    def _serve_loop(self):
        while True:
            msg = yield self._inbox.get()
            body = msg.payload or {}
            kind = body.get("type")
            if kind == "put":
                self.sim.process(self._handle_put(body))
            elif kind == "get":
                self.sim.process(self._handle_get(body))
            elif kind == "replicate":
                self.sim.process(self._handle_replicate(msg, body))
            elif kind == "prepare":
                self.sim.process(self._handle_prepare(msg, body))
            elif kind == "commit2pc":
                self.sim.process(self._handle_commit2pc(msg, body))
            elif kind == "chain_put":
                self.sim.process(self._handle_chain_put(body))
            elif kind == "read_version":
                self.sim.process(self._handle_read_version(msg, body))
            elif kind == "membership_update":
                self.membership_updates.add()
                self.sim.process(self._ack(msg))

    def _ack(self, msg):
        yield msg.conn.send({"type": "membership_ack"}, ACK_BYTES)

    def _handle_read_version(self, msg, body: dict):
        """Quorum-read participant: return our version of the object."""
        yield from self._cpu_work()
        obj = self.store.get(body["key"])
        if obj is not None:
            yield self.disk.read(obj.size_bytes)
        yield msg.conn.send(
            {
                "type": "read_version_reply",
                "token": body["token"],
                "stamp": obj.stamp if obj else None,
                "value": obj.value if obj else None,
                "size": obj.size_bytes if obj else 0,
            },
            (obj.size_bytes if obj else 0) + ACK_BYTES,
        )

    def _read_version(self, peer: str, key: str):
        token = (self.name, next(self._token_seq))
        conn = yield self._send(
            self.directory[peer],
            {"type": "read_version", "key": key, "token": token},
            REQUEST_BYTES,
        )
        get = conn.inbox.get(lambda m: (m.payload or {}).get("token") == token)
        got = yield AnyOf(self.sim, [get, self.sim.timeout(self.config.peer_timeout_s * 2)])
        if get in got:
            return got[get].payload
        conn.inbox.cancel(get)
        return None

    # -- put coordination ----------------------------------------------------------------
    def _handle_put(self, body: dict):
        yield from self._cpu_work()
        key = body["key"]
        replicas = self.replicas_of(key)
        tr = self.sim.tracer
        if replicas[0] != self.name:
            # Misdirected (ROG random node): one extra hop to the primary.
            self.forwards.add()
            if tr is not None:
                tr.instant("put_forward", "op", node=self.name,
                           op=tuple(body["op_id"]), to=replicas[0])
            yield self._send(self.directory[replicas[0]], dict(body), body["size"])
            return
        secondaries = replicas[1:]
        mode = self.config.consistency
        span = None
        if tr is not None:
            span = tr.begin(f"put.{mode}", "op", node=self.name,
                            op=tuple(body["op_id"]), key=key)
        if mode == "primary":
            yield from self._put_primary_only(body, secondaries)
        elif mode == "2pc":
            yield from self._put_2pc(body, secondaries)
        elif mode == "quorum":
            yield from self._put_quorum(body, secondaries)
        elif mode == "chain":
            yield from self._put_chain(body, replicas)
        if span is not None:
            span.end()

    def _stamp(self, body: dict) -> PutStamp:
        return PutStamp(str(self.ip), self.sim.now, body["client_ip"], body["client_ts"])

    def _commit_local(self, body: dict, stamp: PutStamp):
        yield self.disk.write(body["size"], forced=True)
        self.store.put(StoredObject(body["key"], body["value"], body["size"], stamp))

    def _replication_request(self, peer: str, body: dict, stamp: PutStamp, msg_type: str):
        """One unicast copy to one secondary; completes on its app ack.

        Each outbound copy costs the primary CPU time — the end-host
        replication work NICE offloads to the switch (§4.2).
        """
        yield from self._cpu_work()
        token = (self.name, next(self._token_seq))
        conn = yield self._send(
            self.directory[peer],
            {
                "type": msg_type,
                "token": token,
                "key": body["key"],
                "value": body["value"],
                "size": body["size"],
                "stamp": stamp,
                "op_id": tuple(body["op_id"]),
                "client_ip": body["client_ip"],
                "client_ts": body["client_ts"],
            },
            body["size"],
        )
        get = conn.inbox.get(lambda m: (m.payload or {}).get("token") == token)
        got = yield AnyOf(self.sim, [get, self.sim.timeout(self.config.peer_timeout_s * 4)])
        if get in got:
            return got[get].payload
        conn.inbox.cancel(get)
        return None

    def _put_primary_only(self, body: dict, secondaries: List[str]):
        """Primary-backup: write locally, fan out R−1 unicast copies, ack
        client when every replica confirmed."""
        stamp = self._stamp(body)
        transfers = [
            self.sim.process(self._replication_request(s, body, stamp, "replicate"))
            for s in secondaries
        ]
        yield from self._commit_local(body, stamp)
        if transfers:
            yield AllOf(self.sim, transfers)
        self.puts_served.add()
        self._reply_client(body, {"type": "put_reply", "op_id": tuple(body["op_id"]), "status": "ok"}, ACK_BYTES)

    def _put_2pc(self, body: dict, secondaries: List[str]):
        """Two explicit rounds (Fig 2's dashed arrows): prepare (data) then
        commit, each acked by every secondary."""
        op_id = tuple(body["op_id"])
        key = body["key"]
        yield self.locks.request(self.sim, key, op_id)
        yield self.wal.append(LogRecord(op_id, key, body["size"], body["client_ip"], body["client_ts"]))
        yield self.disk.write(body["size"], forced=False)  # log flush covers it
        stamp = self._stamp(body)
        prepares = [
            self.sim.process(self._replication_request(s, body, stamp, "prepare"))
            for s in secondaries
        ]
        if prepares:
            replies = yield AllOf(self.sim, prepares)
            if any(v is None for v in replies.values()):
                self.locks.release(key, op_id)
                self.wal.remove(op_id)
                self._reply_client(body, {"type": "put_reply", "op_id": op_id, "status": "fail"}, ACK_BYTES)
                return
        commits = [
            self.sim.process(self._commit_request(s, op_id, key, stamp))
            for s in secondaries
        ]
        self.store.put(StoredObject(key, body["value"], body["size"], stamp))
        self.wal.remove(op_id)
        self.locks.release(key, op_id)
        if commits:
            yield AllOf(self.sim, commits)
        self.puts_served.add()
        self._reply_client(body, {"type": "put_reply", "op_id": op_id, "status": "ok"}, ACK_BYTES)

    def _commit_request(self, peer: str, op_id: Tuple, key: str, stamp: PutStamp):
        token = (self.name, next(self._token_seq))
        conn = yield self._send(
            self.directory[peer],
            {"type": "commit2pc", "token": token, "op_id": op_id, "key": key, "stamp": stamp},
            COMMIT_BYTES,
        )
        get = conn.inbox.get(lambda m: (m.payload or {}).get("token") == token)
        got = yield AnyOf(self.sim, [get, self.sim.timeout(self.config.peer_timeout_s * 4)])
        if get in got:
            return got[get].payload
        conn.inbox.cancel(get)
        return None

    def _put_quorum(self, body: dict, secondaries: List[str]):
        """Quorum write: the primary concurrently unicasts to *all* replicas
        but acks the client after the write-set is met.  The remaining
        transfers keep running — the link contention the paper blames for
        NOOB's Fig 8 behaviour."""
        stamp = self._stamp(body)
        k = self.config.quorum_k
        transfers = [
            self.sim.process(self._replication_request(s, body, stamp, "replicate"))
            for s in secondaries
        ]
        yield from self._commit_local(body, stamp)
        needed = k - 1  # local write counts toward the write set
        if needed > 0:
            done = Event(self.sim)
            state = {"acks": 0}

            def on_done(ev):
                if ev.ok and ev.value is not None:
                    state["acks"] += 1
                    if state["acks"] >= needed and not done.triggered:
                        done.succeed()

            for t in transfers:
                t.add_callback(on_done)
            if len(transfers) >= needed:
                yield done
        self.puts_served.add()
        self._reply_client(body, {"type": "put_reply", "op_id": tuple(body["op_id"]), "status": "ok"}, ACK_BYTES)

    def _put_chain(self, body: dict, replicas: List[str]):
        """Chain replication [43]: store locally, pass the object down the
        chain; the tail acknowledges the client."""
        stamp = self._stamp(body)
        yield from self._commit_local(body, stamp)
        yield from self._chain_forward(body, replicas, position=0, stamp=stamp)

    def _chain_forward(self, body: dict, replicas: List[str], position: int, stamp: PutStamp):
        if position + 1 < len(replicas):
            nxt = replicas[position + 1]
            yield self._send(
                self.directory[nxt],
                {
                    "type": "chain_put",
                    "key": body["key"],
                    "value": body["value"],
                    "size": body["size"],
                    "stamp": stamp,
                    "op_id": tuple(body["op_id"]),
                    "client_ip": body["client_ip"],
                    "client_port": body["client_port"],
                    "client_ts": body["client_ts"],
                    "position": position + 1,
                },
                body["size"],
            )
        else:
            self.puts_served.add()
            self._reply_client(
                body, {"type": "put_reply", "op_id": tuple(body["op_id"]), "status": "ok"}, ACK_BYTES
            )

    # -- replica-side handlers --------------------------------------------------------------
    def _handle_replicate(self, msg, body: dict):
        yield from self._cpu_work()
        yield self.disk.write(body["size"], forced=True)
        self.store.put(StoredObject(body["key"], body["value"], body["size"], body["stamp"]))
        yield msg.conn.send({"type": "replicate_ack", "token": body["token"]}, ACK_BYTES)

    def _handle_prepare(self, msg, body: dict):
        yield from self._cpu_work()
        op_id = tuple(body["op_id"])
        key = body["key"]
        tr = self.sim.tracer
        span = None
        if tr is not None:
            span = tr.begin("2pc.prepare", "2pc", node=self.name, op=op_id,
                            key=key)
        yield self.locks.request(self.sim, key, op_id)
        yield self.wal.append(LogRecord(op_id, key, body["size"], body["client_ip"], body["client_ts"]))
        yield self.disk.write(body["size"], forced=False)  # log flush covers it
        self._pending_value = getattr(self, "_pending_value", {})
        self._pending_value[op_id] = (body["value"], body["size"])
        if span is not None:
            span.end(status="prepared")
        yield msg.conn.send({"type": "prepare_ack", "token": body["token"]}, ACK_BYTES)

    def _handle_commit2pc(self, msg, body: dict):
        op_id = tuple(body["op_id"])
        pend = getattr(self, "_pending_value", {}).pop(op_id, None)
        if pend is not None:
            value, size = pend
            self.store.put(StoredObject(body["key"], value, size, body["stamp"]))
        self.wal.remove(op_id)
        self.locks.release(body["key"], op_id)
        tr = self.sim.tracer
        if tr is not None:
            tr.instant("commit", "2pc", node=self.name, op=op_id,
                       applied=pend is not None)
        yield msg.conn.send({"type": "commit_ack", "token": body["token"]}, ACK_BYTES)

    def _handle_chain_put(self, body: dict):
        yield from self._cpu_work()
        yield self.disk.write(body["size"], forced=True)
        self.store.put(StoredObject(body["key"], body["value"], body["size"], body["stamp"]))
        replicas = self.replicas_of(body["key"])
        yield from self._chain_forward(body, replicas, body["position"], body["stamp"])

    # -- gets ------------------------------------------------------------------------------
    def _handle_get(self, body: dict):
        tr = self.sim.tracer
        span = None
        if tr is not None:
            span = tr.begin("get.serve", "op", node=self.name,
                            op=tuple(body["op_id"]), key=body["key"])
        yield from self._cpu_work()
        key = body["key"]
        replicas = self.replicas_of(key)
        can_serve = (
            self.name in replicas
            if self.config.consistency in ("2pc", "chain", "quorum")
            or self.config.get_lb == "round_robin"
            else self.name == replicas[0]
        )
        if not can_serve:
            self.forwards.add()
            yield self._send(self.directory[replicas[0]], dict(body), REQUEST_BYTES)
            if span is not None:
                span.end(status="forwarded")
            return
        obj = self.store.get(key)
        if self.config.consistency == "quorum":
            # §3.3: quorum systems must read a write-set-covering quorum —
            # R − W + 1 replicas — to guarantee they see the latest commit.
            # This is the "unnecessary high overhead during get operations"
            # the paper charges quorum designs with.
            read_set = self.config.replication_level - self.config.quorum_k + 1
            peers = [r for r in replicas if r != self.name][: read_set - 1]
            votes = []
            for peer in peers:
                reply = yield from self._read_version(peer, key)
                if reply is not None and reply.get("stamp") is not None:
                    votes.append((reply["stamp"], reply["value"], reply["size"]))
            if obj is not None:
                votes.append((obj.stamp, obj.value, obj.size_bytes))
            if votes:
                votes.sort(key=lambda v: v[0])
                stamp, value, size = votes[-1]
                obj = StoredObject(key, value, size, stamp)
            else:
                obj = None
        self.gets_served.add()
        if obj is not None:
            yield self.disk.read(obj.size_bytes)
            reply = {
                "type": "get_reply",
                "op_id": tuple(body["op_id"]),
                "status": "ok",
                "value": obj.value,
                "size": obj.size_bytes,
            }
            size = REQUEST_BYTES + obj.size_bytes
        else:
            reply = {"type": "get_reply", "op_id": tuple(body["op_id"]), "status": "miss"}
            size = ACK_BYTES
        self._reply_client(body, reply, size)
        if span is not None:
            span.end(status=reply["status"])
