"""NOOB client library (§2.1 access mechanisms).

* **RAC** — replica-aware client: holds the placement metadata (the cache
  of [33]) and sends straight to the responsible node.  Gets may
  round-robin over replicas when the consistency mode keeps them identical
  (the NOOB-2PC configuration of Fig 10).
* **RAG/ROG** — clients send everything to a gateway.

Requests and data travel over TCP; replies come straight from the serving
node to the client's reply socket.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

import numpy as np

from ..core.client import OpResult
from ..core.config import CLIENT_PORT, NODE_PORT, REQUEST_BYTES
from ..core.membership import PartitionMap
from ..kv import ConsistentHashRing, key_hash
from ..net import Host, IPv4Address
from ..sim import AnyOf, Counter, Event, Simulator, Tally
from ..transport import ProtocolStack
from .config import GW_PORT, NoobConfig

__all__ = ["NoobClient"]


class NoobClient:
    """One client machine under the configured access mode."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        config: NoobConfig,
        partition_map: PartitionMap,
        directory: Dict[str, IPv4Address],
        gateway_ips: List[IPv4Address],
        rng: np.random.Generator,
    ):
        self.sim = sim
        self.host = host
        self.config = config
        self.partition_map = partition_map
        self.directory = directory
        self.gateway_ips = gateway_ips
        self.rng = rng
        self.stack = ProtocolStack(sim, host)
        self._reply_inbox = self.stack.tcp.listen(CLIENT_PORT)
        self._waiters: Dict[Tuple, Event] = {}
        self._op_seq = itertools.count(1)
        self._rr = 0
        self.put_latency = Tally(f"{host.name}.put")
        self.get_latency = Tally(f"{host.name}.get")
        self.failures = Counter(f"{host.name}.failures")
        self.retries = Counter(f"{host.name}.retries")
        #: Optional :class:`~repro.check.HistoryRecorder` (same hook as
        #: :class:`~repro.core.client.NiceClient`).
        self.recorder = None
        sim.process(self._reply_loop())

    @property
    def ip(self) -> IPv4Address:
        return self.host.ip

    def _traced(self, kind: str, key: str, value, gen):
        if self.recorder is not None:
            gen = self.recorder.record(self.host.name, kind, key, value, self.sim, gen)
        return self.sim.process(gen)

    def _reply_loop(self):
        while True:
            msg = yield self._reply_inbox.get()
            body = msg.payload or {}
            op_id = tuple(body.get("op_id", ()))
            waiter = self._waiters.pop(op_id, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(body)

    # -- target selection ------------------------------------------------------
    def _replicas_of(self, key: str) -> List[str]:
        partition = ConsistentHashRing.partition_of_hash(
            key_hash(key), len(self.partition_map)
        )
        rs = self.partition_map.get(partition)
        return [rs.primary] + [m for m in rs.members if m != rs.primary]

    def _request_target(self, key: str, is_get: bool) -> Tuple[IPv4Address, int]:
        if self.config.access in ("rog", "rag"):
            gw = self.gateway_ips[self._rr % len(self.gateway_ips)]
            self._rr += 1
            return gw, GW_PORT
        # get_lb defaults to the safe choice per consistency mode
        # (__post_init__); an explicit "round_robin" on a weaker mode is an
        # intentional misconfiguration (the chaos suite's violation oracle).
        replicas = self._replicas_of(key)
        if (
            is_get
            and self.config.get_lb == "round_robin"
            and len(replicas) > 1
        ):
            pick = replicas[int(self.rng.integers(len(replicas)))]
            return self.directory[pick], NODE_PORT
        return self.directory[replicas[0]], NODE_PORT

    # -- operations ---------------------------------------------------------------
    def put(self, key: str, value, size: int, max_retries: int = 3):
        return self._traced("put", key, value, self._op("put", key, value, size, max_retries))

    def get(self, key: str, max_retries: int = 3):
        return self._traced("get", key, None, self._op("get", key, None, REQUEST_BYTES, max_retries))

    def _op(self, kind: str, key: str, value, size: int, max_retries: int):
        t0 = self.sim.now
        client_ts = self.sim.now
        tr = self.sim.tracer
        for attempt in range(max_retries + 1):
            op_id = (str(self.ip), next(self._op_seq))
            waiter = Event(self.sim)
            self._waiters[op_id] = waiter
            target_ip, target_port = self._request_target(key, is_get=(kind == "get"))
            span = None
            if tr is not None:
                span = tr.begin(kind, "op", node=self.host.name, op=op_id,
                                key=key, attempt=attempt, target=str(target_ip))
            body = {
                "type": kind,
                "op_id": op_id,
                "key": key,
                "client_ip": str(self.ip),
                "client_port": CLIENT_PORT,
                "client_ts": client_ts,
            }
            if kind == "put":
                body["value"] = value
                body["size"] = size
            self.stack.tcp.send_message(target_ip, target_port, body, size)
            got = yield AnyOf(
                self.sim, [waiter, self.sim.timeout(self.config.client_retry_timeout_s)]
            )
            self._waiters.pop(op_id, None)
            replied = waiter in got
            if replied:
                reply = got[waiter]
                status = reply.get("status", "error")
                latency = self.sim.now - t0
                if status == "ok":
                    (self.put_latency if kind == "put" else self.get_latency).observe(latency)
                    if span is not None:
                        span.end(status="ok")
                    return OpResult(True, latency, attempt, value=reply.get("value"))
                if kind == "get" and status == "miss":
                    # Authoritative miss: an answer, not a routing failure.
                    if span is not None:
                        span.end(status="miss")
                    return OpResult(False, latency, attempt, status="miss")
            if span is not None:
                span.end(
                    status=got[waiter].get("status", "error") if replied
                    else "timeout"
                )
            if attempt < max_retries:
                self.retries.add()
                if replied:
                    # Same fixed back-off as the NICE client: an early
                    # rejection must not trigger a same-instant resend.
                    yield self.sim.timeout(self.config.client_retry_timeout_s)
        self.failures.add()
        return OpResult(False, self.sim.now - t0, max_retries, status="timeout")
