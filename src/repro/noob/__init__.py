"""NOOB baselines: the network-oblivious storage designs NICE is compared
against (§2.1, §6) — ROG/RAG/RAC access, primary-only/2PC/quorum/chain
replication."""

from .client import NoobClient
from .config import GW_PORT, NoobConfig
from .gateway import Gateway
from .storage_node import NoobStorageNode
from .system import NoobCluster

__all__ = [
    "GW_PORT",
    "Gateway",
    "NoobClient",
    "NoobCluster",
    "NoobConfig",
    "NoobStorageNode",
]
