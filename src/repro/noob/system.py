"""NOOB cluster builder: the same physical platform as NICE, with the
storage logic in end hosts and the network as a dumb (statically routed)
fabric (§2.1).

Also implements the NOOB full-membership maintenance path: a membership
change is broadcast to *every* node over O(N) point-to-point messages
(§2.1: "this update happens through contacting every node ... using O(N)
connections and messages"), measured by the scalability ablation bench.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.config import MEMBERSHIP_BYTES, NODE_PORT
from ..core.membership import PartitionMap
from ..net import (
    Host,
    IPv4Address,
    MacAddress,
    Match,
    Network,
    OpenFlowSwitch,
    Output,
    Rule,
    SetEthDst,
)
from ..sim import AllOf, RngRegistry, Simulator
from ..transport import ProtocolStack
from .client import NoobClient
from .config import NoobConfig
from .gateway import Gateway
from .storage_node import NoobStorageNode

__all__ = ["NoobCluster"]

STORAGE_BASE = IPv4Address("10.0.0.1")
GATEWAY_BASE = IPv4Address("10.0.2.1")
_MAC_BASE = 0x020000001100


class NoobCluster:
    """A fully-wired NOOB deployment inside one simulator."""

    def __init__(self, config: NoobConfig = None, sim: Simulator = None):
        self.config = config or NoobConfig()
        cfg = self.config
        self.sim = sim or Simulator()
        self.rng = RngRegistry(cfg.seed)
        self.network = Network(self.sim)
        self.switch = OpenFlowSwitch(
            self.sim, "sw0", lookup_latency_s=cfg.switch_lookup_latency_s
        )
        self.network.register(self.switch)

        node_names = [f"n{i}" for i in range(cfg.n_storage_nodes)]
        self.partition_map = PartitionMap.build(
            node_names,
            cfg.n_partitions,
            cfg.replication_level,
            ring_points_per_node=cfg.ring_points_per_node,
        )

        self.directory: Dict[str, IPv4Address] = {}
        mac = _MAC_BASE
        hosts: List[Host] = []

        def add_host(name: str, ip: IPv4Address) -> Host:
            nonlocal mac
            host = Host(self.sim, name, ip, MacAddress(mac))
            mac += 1
            self.network.register(host)
            self.network.connect(
                self.switch, host, cfg.link_bandwidth_bps, cfg.link_latency_s
            )
            hosts.append(host)
            return host

        storage_hosts = [add_host(n, STORAGE_BASE + i) for i, n in enumerate(node_names)]
        for name, host in zip(node_names, storage_hosts):
            self.directory[name] = host.ip

        gateway_hosts: List[Host] = []
        if cfg.access in ("rog", "rag"):
            gateway_hosts = [
                add_host(f"gw{i}", GATEWAY_BASE + i) for i in range(cfg.n_gateways)
            ]

        client_hosts: List[Host] = []
        stride = max(1, cfg.client_space.num_addresses // max(cfg.n_clients, 1))
        for i in range(cfg.n_clients):
            ip = cfg.client_space.address + (i * stride) % cfg.client_space.num_addresses
            client_hosts.append(add_host(f"c{i}", ip))

        # Static L3 forwarding: NOOB's network is a plain switched fabric.
        for host in hosts:
            link = self.network.link_between(self.switch, host)
            port_no = (link.a if link.a.device is self.switch else link.b).number
            self.switch.install_rule(
                Rule(Match(ip_dst=host.ip), [SetEthDst(host.mac), Output(port_no)], 100)
            )

        self.nodes: Dict[str, NoobStorageNode] = {
            name: NoobStorageNode(
                self.sim, host, name, cfg, self.partition_map, self.directory
            )
            for name, host in zip(node_names, storage_hosts)
        }

        self.gateways: List[Gateway] = [
            Gateway(
                self.sim,
                host,
                cfg,
                self.partition_map,
                self.directory,
                self.rng.stream(f"gw:{host.name}"),
            )
            for host in gateway_hosts
        ]
        gateway_ips = [g.host.ip for g in self.gateways]

        self.clients: List[NoobClient] = [
            NoobClient(
                self.sim,
                host,
                cfg,
                self.partition_map,
                self.directory,
                gateway_ips,
                self.rng.stream(f"client:{host.name}"),
            )
            for host in client_hosts
        ]

        #: The "membership coordinator" stack used for O(N) broadcasts: in
        #: production NOOB systems a seed node plays this role; we reuse the
        #: first gateway or the first storage host's stack.
        self._coordinator_stack: ProtocolStack = (
            self.gateways[0].stack if self.gateways else self.nodes[node_names[0]].stack
        )
        self.membership_messages_sent = 0

    # -- O(N) membership maintenance (§2.1) -------------------------------------
    def broadcast_membership_change(self):
        """Push a membership update to every node; returns a Process that
        completes when all nodes acknowledged.  Message count is O(N)."""
        stack = self._coordinator_stack

        def one(ip):
            conn = yield stack.tcp.send_message(
                ip, NODE_PORT, {"type": "membership_update"}, MEMBERSHIP_BYTES
            )
            yield conn.inbox.get(
                lambda m: (m.payload or {}).get("type") == "membership_ack"
            )

        def run():
            procs = []
            for name, ip in self.directory.items():
                self.membership_messages_sent += 1
                procs.append(self.sim.process(one(ip)))
            if procs:
                yield AllOf(self.sim, procs)
            return len(procs)

        return self.sim.process(run())

    # -- conveniences ---------------------------------------------------------------
    def warm_up(self, duration: float = 0.05) -> None:
        self.sim.run(until=self.sim.now + duration)

    def run(self, until: float = None) -> float:
        return self.sim.run(until=until)

    def replica_nodes(self, key: str) -> List[NoobStorageNode]:
        names = self.nodes[next(iter(self.nodes))].replicas_of(key)
        return [self.nodes[n] for n in names]

    def primary_of(self, key: str) -> NoobStorageNode:
        return self.replica_nodes(key)[0]

    def reset_measurements(self) -> None:
        self.network.reset_link_counters()
        for host in self.network.devices.values():
            if isinstance(host, Host):
                host.tx_bytes.reset()
                host.rx_bytes.reset()
