"""NOOB access gateways (§2.1).

* **ROG** — replica-oblivious gateway: a generic load balancer that picks a
  storage node at random; a mis-hit node forwards to the responsible node,
  so requests pay two extra hops.
* **RAG** — replica-aware gateway: forwards straight to the responsible
  node (one extra hop).

Either way the storage node replies *directly* to the client — only the
request (and, for puts, its data) transits the gateway.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.config import NODE_PORT
from ..core.membership import PartitionMap
from ..kv import ConsistentHashRing, key_hash
from ..net import Host, IPv4Address
from ..sim import Counter, Simulator
from ..transport import ProtocolStack
from .config import GW_PORT, NoobConfig

__all__ = ["Gateway"]


class Gateway:
    """One ROG or RAG load-balancer machine."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        config: NoobConfig,
        partition_map: PartitionMap,
        directory: Dict[str, IPv4Address],
        rng: np.random.Generator,
    ):
        if config.access not in ("rog", "rag"):
            raise ValueError(f"gateway deployed under access mode {config.access!r}")
        self.sim = sim
        self.host = host
        self.config = config
        self.partition_map = partition_map
        self.directory = directory
        self.rng = rng
        self.stack = ProtocolStack(sim, host)
        self._inbox = self.stack.tcp.listen(GW_PORT)
        self.requests_forwarded = Counter(f"{host.name}.forwarded")
        sim.process(self._serve_loop())

    def _target_for(self, key: str) -> IPv4Address:
        names = sorted(self.directory)
        if self.config.access == "rog":
            # Replica-oblivious: any node, uniformly at random (§2.1).
            return self.directory[names[int(self.rng.integers(len(names)))]]
        partition = ConsistentHashRing.partition_of_hash(
            key_hash(key), len(self.partition_map)
        )
        rs = self.partition_map.get(partition)
        if (
            self.config.get_lb == "round_robin"
            and self.config.consistency in ("2pc", "chain")
        ):
            members = rs.members
            return self.directory[members[int(self.rng.integers(len(members)))]]
        return self.directory[rs.primary]

    def _serve_loop(self):
        while True:
            msg = yield self._inbox.get()
            body = msg.payload or {}
            if body.get("type") in ("put", "get"):
                self.requests_forwarded.add()
                target = self._target_for(body["key"])
                tr = self.sim.tracer
                if tr is not None:
                    tr.instant(
                        "gw_forward", "op", node=self.host.name,
                        op=tuple(body.get("op_id", ())) or None,
                        kind=body["type"], target=str(target),
                    )
                # Forward the full request (put data transits the gateway).
                self.stack.tcp.send_message(
                    target, NODE_PORT, dict(body), msg.payload_bytes
                )
