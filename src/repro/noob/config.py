"""NOOB baseline configuration (§2.1, §6).

The evaluation's NOOB prototype has "rich configuration options": three
access mechanisms (ROG / RAG / RAC) and multiple consistency/replication
modes (primary-only, 2PC, quorum, plus chain replication from §4.2's
related-work discussion)."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import ClusterConfig

__all__ = ["NoobConfig", "GW_PORT"]

#: TCP port gateways (ROG/RAG load balancers) listen on.
GW_PORT = 7400

ACCESS_MODES = ("rac", "rag", "rog")
CONSISTENCY_MODES = ("primary", "2pc", "quorum", "chain")
GET_LB_MODES = ("primary", "round_robin")


@dataclass
class NoobConfig(ClusterConfig):
    """ClusterConfig plus the NOOB-specific switches."""

    #: Request routing: replica-aware client (RAC), replica-aware gateway
    #: (RAG, +1 hop) or replica-oblivious gateway (ROG, +2 hops) — §2.1.
    access: str = "rac"
    #: Replication/consistency protocol run by the primary.
    consistency: str = "primary"
    #: Write-set size for quorum mode (Fig 8).
    quorum_k: int = 2
    #: Client-side get spreading: 2PC keeps replicas identical, so gets may
    #: round-robin (the Fig 10 NOOB-2PC behaviour); primary-only must read
    #: the primary.
    get_lb: str = ""
    #: Number of gateway machines (ROG/RAG deployments).
    n_gateways: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.access not in ACCESS_MODES:
            raise ValueError(f"access must be one of {ACCESS_MODES}: {self.access!r}")
        if self.consistency not in CONSISTENCY_MODES:
            raise ValueError(
                f"consistency must be one of {CONSISTENCY_MODES}: {self.consistency!r}"
            )
        if not self.get_lb:
            # 2PC keeps all replicas consistent at commit: reads spread.
            self.get_lb = "round_robin" if self.consistency == "2pc" else "primary"
        if self.get_lb not in GET_LB_MODES:
            raise ValueError(f"get_lb must be one of {GET_LB_MODES}: {self.get_lb!r}")
        if self.consistency == "quorum" and not 1 <= self.quorum_k <= self.replication_level:
            raise ValueError(
                f"quorum_k {self.quorum_k} out of range 1..{self.replication_level}"
            )
        if self.access != "rac" and self.n_gateways < 1:
            raise ValueError("gateway access modes need at least one gateway")
