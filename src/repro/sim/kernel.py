"""Discrete-event simulation kernel.

This module provides the event loop (:class:`Simulator`) and the event
primitives (:class:`Event`, :class:`Timeout`, :class:`Condition`) used by
every other subsystem in the reproduction.  The design follows the classic
calendar-queue / coroutine-process structure (cf. SimPy), re-implemented
here because the reproduction must be fully self-contained.

Determinism is a hard requirement: two runs with the same seed must produce
bit-identical results.  The event heap therefore breaks ties on
``(time, priority, event_id)`` where ``event_id`` is a monotonically
increasing counter — never on object identity.

Data layout (DESIGN.md §5g): the heap is an array-backed binary heap of
*pooled event records* — mutable 4-slot lists ``[when, priority, eid,
target]`` recycled through a per-simulator free list, so the steady-state
timer path allocates nothing.  Records compare element-wise exactly like
the tuples they replaced (``eid`` is unique, so comparison never reaches
the target slot).  Cancelling a timer tombstones its record in O(1)
(``target = None``); tombstones are skipped and recycled when they
surface, which replaces the old cancel-by-flag churn where dead timeouts
ran a full ``_process`` on expiry.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping
from typing import Any, Callable, Iterable, List, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Condition",
    "ConditionValue",
    "AnyOf",
    "AllOf",
    "URGENT",
    "NORMAL",
    "SimulationError",
    "StopSimulation",
]

#: Scheduling priority for bookkeeping events that must run before ordinary
#: events scheduled at the same timestamp (e.g. process initialization and
#: interrupts).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class SimulationError(Exception):
    """Raised for misuse of the kernel API (not for modeled failures)."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event goes through three states:

    1. *pending* — created, not yet triggered; callbacks may be attached.
    2. *triggered* — a value or an exception has been set and the event is
       scheduled on the simulator heap; callbacks may still be attached.
    3. *processed* — the simulator has popped the event and run all
       callbacks.  Attaching a callback to a processed event schedules an
       immediate (same-timestamp, urgent) delivery so late waiters are not
       lost.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_ok", "_processed", "_defused", "_entry")

    _PENDING = object()

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        # Created lazily on first add_callback: most events carry 0–1
        # callbacks, and the empty-list allocation shows up on the hot path.
        self._callbacks: Optional[List[Callable[["Event"], None]]] = None
        self._value: Any = Event._PENDING
        self._ok: Optional[bool] = None
        self._processed = False
        self._defused = False
        #: Live heap record while scheduled (a list), the original fire time
        #: (a float) after a tombstone cancel, else None.
        self._entry = None

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        """True if the event succeeded, False if it failed, None if pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance, if it failed)."""
        if self._value is Event._PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not Event._PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule_event(self, priority)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception is delivered into every waiting process.  If nobody
        waits (and nobody calls :meth:`defuse`), the simulation aborts when
        the event is processed — silent failures hide protocol bugs.
        """
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._value is not Event._PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exc
        self.sim._schedule_event(self, priority)
        return self

    def defuse(self) -> "Event":
        """Mark a failed event as handled even if no process awaits it."""
        self._defused = True
        return self

    # -- callbacks ---------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback(event)``; runs when the event is processed."""
        if self._processed:
            # Late registration: deliver on the next urgent tick so the
            # callback still observes a fully-triggered event.
            self.sim._schedule_call(0.0, callback, self, priority=URGENT)
            return
        if type(self._entry) is float:
            # Revive a tombstone-cancelled timer: a new waiter appeared, so
            # put it back on the heap at its original fire time — or now,
            # if that time already passed while it sat cancelled (the heap
            # must never carry an entry behind the clock).
            delay = self._entry - self.sim._now
            self.sim._schedule_event(self, NORMAL, delay=delay if delay > 0.0 else 0.0)
        if self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Detach a previously-attached callback (no-op if absent)."""
        if self._callbacks is not None:
            try:
                self._callbacks.remove(callback)
            except ValueError:
                pass

    def _process(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        self._processed = True
        if callbacks:
            for cb in callbacks:
                cb(self)
        elif self._ok is False and not self._defused:
            raise self._value  # nobody handled the failure

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed" if self._processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule_event(self, NORMAL, delay=delay)


class ConditionValue(Mapping):
    """Snapshot of a small condition's result without building a dict.

    Semantically identical to the dict ``{ev: ev.value for ev in events}``
    (supports ``in``, ``[]``, ``.get``, ``.values()``, ``==`` against
    dicts), but stores only a tuple of the constituent events that had been
    processed when the condition triggered.  Membership is frozen at
    trigger time — exactly what the eager dict captured — and the
    constituent values are immutable once processed, so lazy access is
    safe.  For the 1–3 event ``AnyOf``/``AllOf`` cases that dominate the
    2PC and retry paths, an identity scan over ≤3 events beats hashing
    event objects into a fresh dict on every join.
    """

    __slots__ = ("_events",)

    def __init__(self, events: tuple):
        self._events = events

    def __getitem__(self, ev: Event) -> Any:
        for e in self._events:
            if e is ev:
                return e._value
        raise KeyError(ev)

    def __contains__(self, ev: object) -> bool:
        for e in self._events:
            if e is ev:
                return True
        return False

    def __iter__(self):
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def get(self, ev: Event, default: Any = None) -> Any:
        # Overrides Mapping.get: skip the try/except KeyError round-trip.
        for e in self._events:
            if e is ev:
                return e._value
        return default

    def values(self):
        # Overrides Mapping.values: a tuple beats a ValuesView that would
        # re-run the identity scan per element.
        return tuple(e._value for e in self._events)

    def todict(self) -> dict:
        return {e: e._value for e in self._events}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ConditionValue({self.todict()!r})"


#: Condition fan-ins at or below this size return a ConditionValue
#: instead of a dict (the no-allocation fast path).
_SMALL_CONDITION = 3


def _eval_any(events: List[Event], count: int) -> bool:
    return count >= 1


def _eval_all(events: List[Event], count: int) -> bool:
    return count >= len(events)


class Condition(Event):
    """Waits on several events; triggers when ``evaluate`` says so.

    The condition's value maps each constituent event that was *processed*
    at trigger time to its value.  Large fan-ins get a plain dict; small
    (≤3 event) fan-ins get a :class:`ConditionValue`, a lighter mapping
    with identical semantics.
    """

    __slots__ = ("_events", "_evaluate", "_count")

    def __init__(
        self,
        sim: "Simulator",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ):
        super().__init__(sim)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        if not self._events:
            self.succeed({})
            return
        cb = self._on_trigger  # one bound method shared by all constituents
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("conditions cannot span simulators")
            if ev._processed:
                cb(ev)
            else:
                # Not yet *processed*: even if the value is already set
                # (e.g. Timeout sets it at creation), the occurrence happens
                # when the event is popped from the heap — wait for that.
                ev.add_callback(cb)

    def _on_trigger(self, ev: Event) -> None:
        if self._value is not Event._PENDING:
            return
        if ev._ok is False:
            ev.defuse()
            self.fail(ev.value)
            self._settle_losers()
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect())
            self._settle_losers()

    def _settle_losers(self) -> None:
        """Cancel loser *timers* once the condition has settled.

        A pure :class:`Timeout` whose only waiter is this condition can
        never matter again (timeouts cannot fail), so its heap record is
        tombstoned instead of letting it expire and run a dead callback —
        this is where e.g. the per-put 2s client retry timer dies the
        moment the reply wins the race.  Other event kinds are left
        untouched: their late failures must keep the historic
        swallowed-by-the-settled-condition behaviour.
        """
        for ev in self._events:
            if type(ev) is Timeout and not ev._processed:
                cbs = ev._callbacks
                if (
                    cbs is not None
                    and len(cbs) == 1
                    and getattr(cbs[0], "__self__", None) is self
                ):
                    ev._callbacks = None
                    ev.sim.cancel_timer(ev)

    def _collect(self):
        ready = tuple(ev for ev in self._events if ev._processed and ev._ok)
        if len(self._events) <= _SMALL_CONDITION:
            return ConditionValue(ready)
        return {ev: ev._value for ev in ready}


class _AnyCondition(Condition):
    """`AnyOf` with the generic evaluate/count machinery inlined away."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        Condition.__init__(self, sim, _eval_any, events)

    def _on_trigger(self, ev: Event) -> None:
        if self._value is not Event._PENDING:
            return
        if ev._ok is False:
            ev._defused = True
            self.fail(ev._value)
        else:
            self._ok = True
            self._value = self._collect()
            self.sim._schedule_event(self, NORMAL)
        self._settle_losers()


class _AllCondition(Condition):
    """`AllOf` with a countdown instead of the generic evaluate hook."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        Condition.__init__(self, sim, _eval_all, events)

    def _on_trigger(self, ev: Event) -> None:
        if self._value is not Event._PENDING:
            return
        if ev._ok is False:
            ev._defused = True
            self.fail(ev._value)
            self._settle_losers()
            return
        self._count = count = self._count + 1
        if count >= len(self._events):
            # Every constituent is processed — no losers left to settle.
            self._ok = True
            self._value = self._collect()
            self.sim._schedule_event(self, NORMAL)


def AnyOf(sim: "Simulator", events: Iterable[Event]) -> Condition:
    """Condition that triggers as soon as any constituent triggers."""
    return _AnyCondition(sim, events)


def AllOf(sim: "Simulator", events: Iterable[Event]) -> Condition:
    """Condition that triggers when all constituents have triggered."""
    return _AllCondition(sim, events)


class _Call:
    """A pooled heap entry that invokes ``func(*args)`` when popped.

    ``call_at``/``call_in``/``_schedule_call`` used to wrap every deferred
    call in a full :class:`Event` plus a closure callback — three
    allocations per timer on the hottest kernel path.  This slotted stand-in
    quacks like a processed event as far as the run loop is concerned
    (``_process()``) and is recycled through a per-simulator free list.
    """

    __slots__ = ("sim", "func", "args", "_entry")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.func: Optional[Callable] = None
        self.args: tuple = ()
        self._entry = None

    def _process(self) -> None:
        func, args = self.func, self.args
        # Release before invoking: the callee may schedule new calls and
        # immediately reuse this object (its heap entry is already popped).
        self.func = None
        self.args = ()
        pool = self.sim._call_pool
        if len(pool) < self.sim._call_pool_cap:
            pool.append(self)
        func(*args)


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        sim.process(my_protocol(sim))
        sim.run(until=120.0)
    """

    #: Maximum number of recycled heap records kept in the free list; above
    #: this the records are simply dropped (steady state never gets here
    #: unless a burst scheduled far more concurrent timers than usual).
    ENTRY_POOL_CAP = 8192

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list = []
        self._eid = 0
        self._running = False
        self._call_pool: List[_Call] = []
        #: `_Call` pool cap; grown by Process spawn accounting so reuse does
        #: not starve at cluster scale (was a hard-coded 256).
        self._call_pool_cap = 256
        self._live_procs = 0
        #: Free list of recycled 4-slot heap records.
        self._entry_pool: List[list] = []
        #: Number of tombstoned (cancelled) records still in the heap.
        self._cancelled = 0
        # Pool-reuse statistics (see :meth:`pool_stats`).  Entry-pool hits
        # are derived (eid - misses) to keep the hit branch increment-free.
        self._entry_misses = 0
        self._call_hits = 0
        self._call_misses = 0
        #: Optional :class:`repro.obs.Tracer`.  ``None`` means tracing is
        #: off and every hook site reduces to an attribute load + branch
        #: (the null-tracer pattern; install via ``repro.obs.install``).
        self.tracer = None
        #: Flow-approximation mode (DESIGN.md §5g), owned by the net layer
        #: but stored here so ``Channel.transmit`` pays one attribute load
        #: to check it (and to avoid a net→core import cycle).  When True,
        #: packets whose sport/dport is not in ``approx_exempt_ports`` get
        #: analytic single-event delivery instead of the exact wire chain.
        self.approx_mode = False
        self.approx_exempt_ports: frozenset = frozenset()

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling (internal) ----------------------------------------------
    def _next_eid(self) -> int:
        self._eid += 1
        return self._eid

    def _schedule_event(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._eid = eid = self._eid + 1
        pool = self._entry_pool
        if pool:
            entry = pool.pop()
            entry[0] = self._now + delay
            entry[1] = priority
            entry[2] = eid
            entry[3] = event
        else:
            # Misses are the rare branch; hits are derived as eid - misses
            # (every schedule consumes exactly one record and one eid).
            self._entry_misses += 1
            entry = [self._now + delay, priority, eid, event]
        event._entry = entry
        heapq.heappush(self._heap, entry)

    def _schedule_call(
        self, delay: float, func: Callable, *args: Any, priority: int = NORMAL
    ) -> None:
        if self._call_pool:
            self._call_hits += 1
            call = self._call_pool.pop()
        else:
            self._call_misses += 1
            call = _Call(self)
        call.func = func
        call.args = args
        self._eid = eid = self._eid + 1
        pool = self._entry_pool
        if pool:
            entry = pool.pop()
            entry[0] = self._now + delay
            entry[1] = priority
            entry[2] = eid
            entry[3] = call
        else:
            self._entry_misses += 1
            entry = [self._now + delay, priority, eid, call]
        heapq.heappush(self._heap, entry)

    def cancel_timer(self, event: Event) -> bool:
        """Tombstone ``event``'s heap record in O(1); True if cancelled.

        Only meaningful for events that are scheduled but not yet processed
        (i.e. Timeouts, or triggered events awaiting their pop).  The record
        stays in the heap until it surfaces, where it is skipped and
        recycled instead of running a full ``_process``.  A cancelled timer
        that later gains a new waiter (``add_callback``) is transparently
        revived at its original fire time.
        """
        entry = event._entry
        if type(entry) is list and entry[3] is event:
            entry[3] = None
            event._entry = entry[0]  # remember the fire time for revival
            self._cancelled += 1
            return True
        return False

    # -- public API ----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` seconds."""
        # Inline construction: skips the Timeout/Event __init__ frames on
        # the single hottest allocation site in the kernel.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        t = Timeout.__new__(Timeout)
        t.sim = self
        t._callbacks = None
        t._value = value
        t._ok = True
        t._processed = False
        t._defused = False
        t._entry = None
        t.delay = delay
        self._schedule_event(t, NORMAL, delay=delay)
        return t

    def any_of(self, events: Iterable[Event]) -> Condition:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> Condition:
        return AllOf(self, events)

    def process(self, generator) -> "Process":
        """Start a new process running ``generator`` (see :mod:`.process`)."""
        cls = _process_cls()
        proc = cls(self, generator)
        tr = self.tracer
        if tr is not None:
            tr.instant("spawn", "proc", node=proc.name)
        return proc

    def call_at(self, when: float, func: Callable, *args: Any) -> None:
        """Invoke ``func(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(f"call_at({when}) is in the past (now={self._now})")
        self._schedule_call(when - self._now, func, *args)

    def call_in(self, delay: float, func: Callable, *args: Any) -> None:
        """Invoke ``func(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._schedule_call(delay, func, *args)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or simulated time reaches ``until``.

        Returns the simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        heap = self._heap
        heappop = heapq.heappop
        pool = self._entry_pool
        cap = self.ENTRY_POOL_CAP
        try:
            if until is None:
                # Fast loop: no deadline check and no heap peek per event.
                while heap:
                    entry = heappop(heap)
                    target = entry[3]
                    if target is None:  # tombstone: cancelled, just recycle
                        self._cancelled -= 1
                        if len(pool) < cap:
                            pool.append(entry)
                        continue
                    self._now = entry[0]
                    target._entry = None
                    entry[3] = None
                    if len(pool) < cap:
                        pool.append(entry)
                    try:
                        target._process()
                    except StopSimulation:
                        break
                return self._now
            while heap:
                entry = heap[0]
                if entry[3] is None:
                    heappop(heap)
                    self._cancelled -= 1
                    if len(pool) < cap:
                        pool.append(entry)
                    continue
                when = entry[0]
                if when > until:
                    self._now = until
                    break
                heappop(heap)
                self._now = when
                target = entry[3]
                target._entry = None
                entry[3] = None
                if len(pool) < cap:
                    pool.append(entry)
                try:
                    target._process()
                except StopSimulation:
                    break
            else:
                if until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_until(self, event: Event, until: Optional[float] = None) -> float:
        """Run until ``event`` has been processed; return the stop time.

        Stops *exactly* when ``event``'s callbacks have run — no spinning
        through fixed-size ``run(until=...)`` chunks and no draining of
        unrelated same-time events afterwards.  Also stops if the heap
        drains or simulated time would pass ``until`` (whichever comes
        first); callers distinguish the cases via ``event.processed`` and
        ``pending_events``.
        """
        if event.sim is not self:
            raise SimulationError("run_until() got an event from another simulator")
        if self._running:
            raise SimulationError("run_until() is not reentrant")
        if event._processed:
            return self._now
        self._running = True
        heap = self._heap
        heappop = heapq.heappop
        pool = self._entry_pool
        cap = self.ENTRY_POOL_CAP
        try:
            if until is None:
                while heap and not event._processed:
                    entry = heappop(heap)
                    target = entry[3]
                    if target is None:
                        self._cancelled -= 1
                        if len(pool) < cap:
                            pool.append(entry)
                        continue
                    self._now = entry[0]
                    target._entry = None
                    entry[3] = None
                    if len(pool) < cap:
                        pool.append(entry)
                    try:
                        target._process()
                    except StopSimulation:
                        break
                return self._now
            while heap and not event._processed:
                entry = heap[0]
                if entry[3] is None:
                    heappop(heap)
                    self._cancelled -= 1
                    if len(pool) < cap:
                        pool.append(entry)
                    continue
                when = entry[0]
                if when > until:
                    self._now = until
                    break
                heappop(heap)
                self._now = when
                target = entry[3]
                target._entry = None
                entry[3] = None
                if len(pool) < cap:
                    pool.append(entry)
                try:
                    target._process()
                except StopSimulation:
                    break
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Process exactly one live event; returns False if none remain.

        Tombstoned (cancelled) records encountered on the way are skipped
        and recycled without counting as the step.
        """
        heap = self._heap
        pool = self._entry_pool
        while heap:
            entry = heapq.heappop(heap)
            target = entry[3]
            if target is None:
                self._cancelled -= 1
                if len(pool) < self.ENTRY_POOL_CAP:
                    pool.append(entry)
                continue
            self._now = entry[0]
            target._entry = None
            entry[3] = None
            if len(pool) < self.ENTRY_POOL_CAP:
                pool.append(entry)
            target._process()
            return True
        return False

    def stop(self) -> None:
        """Request the current :meth:`run` to stop after this event."""
        raise StopSimulation()

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events currently scheduled."""
        return len(self._heap) - self._cancelled

    def pool_stats(self) -> dict:
        """Reuse statistics for the heap-record and ``_Call`` free lists."""
        e_hits = self._eid - self._entry_misses
        c_total = self._call_hits + self._call_misses
        return {
            "entry_pool": {
                "hits": e_hits,
                "misses": self._entry_misses,
                "reuse_rate": e_hits / self._eid if self._eid else 0.0,
                "free": len(self._entry_pool),
            },
            "call_pool": {
                "hits": self._call_hits,
                "misses": self._call_misses,
                "reuse_rate": self._call_hits / c_total if c_total else 0.0,
                "free": len(self._call_pool),
                "cap": self._call_pool_cap,
            },
        }


_Process = None


def _process_cls():
    """Late-bound :class:`~repro.sim.process.Process` (avoids the circular
    import at module load and the per-call import inside ``process()``)."""
    global _Process
    if _Process is None:
        from .process import Process as _P

        _Process = _P
    return _Process
